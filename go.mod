module sompi

go 1.22
