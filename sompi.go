// Package sompi is the public API of the SOMPI reproduction: monetary
// cost optimization for MPI applications on spot + on-demand cloud
// instances with checkpoints and replicated execution (Gong, He, Zhou —
// SC '15).
//
// The package re-exports the pieces a downstream user composes:
//
//   - workloads and the cloud substrate (Workload*, GenerateMarket),
//   - the SOMPI optimizer (Optimize, Config) and its plans,
//   - the trace-replay simulator and Monte Carlo harness,
//   - every comparison strategy from the paper,
//   - the experiment registry that regenerates each paper figure/table.
//
// See examples/quickstart for the three-call happy path.
package sompi

import (
	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/experiments"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/report"
)

// Core model types.
type (
	// Profile is a TAU-style application resource profile.
	Profile = app.Profile
	// InstanceType describes one cloud instance type.
	InstanceType = cloud.InstanceType
	// Market holds spot-price histories for every (type, zone) pair.
	Market = cloud.Market
	// MarketKey names one spot market.
	MarketKey = cloud.MarketKey
	// Plan is a hybrid spot/on-demand execution plan.
	Plan = model.Plan
	// Estimate is the model's expected cost/time evaluation of a plan.
	Estimate = model.Estimate
	// Config parameterizes the SOMPI optimizer.
	Config = opt.Config
	// Result is a scored plan returned by Optimize.
	Result = opt.Result
	// Runner replays plans against a market.
	Runner = replay.Runner
	// Strategy is an executable planning policy (SOMPI or a baseline).
	Strategy = replay.Strategy
	// MCStats aggregates Monte Carlo replications of a strategy.
	MCStats = replay.MCStats
	// MCConfig sizes a Monte Carlo evaluation.
	MCConfig = replay.MCConfig
	// Table is a rendered experiment result.
	Table = report.Table
	// ExperimentParams sizes a paper-experiment run.
	ExperimentParams = experiments.Params
)

// Workloads from the paper's evaluation (NPB kernels and LAMMPS).
var (
	WorkloadBT   = app.BT
	WorkloadSP   = app.SP
	WorkloadLU   = app.LU
	WorkloadFT   = app.FT
	WorkloadIS   = app.IS
	WorkloadBTIO = app.BTIO
)

// WorkloadLAMMPS returns the LAMMPS campaign profile for a process count.
func WorkloadLAMMPS(procs int) Profile { return app.LAMMPS(procs) }

// Workloads returns every preset profile the paper evaluates.
func Workloads() []Profile {
	return append(app.NPB(), app.LAMMPS(32), app.LAMMPS(128))
}

// DefaultCatalog returns the paper's four candidate instance types.
func DefaultCatalog() []InstanceType { return cloud.DefaultCatalog() }

// DefaultZones returns the availability zones the paper draws circle
// groups from.
func DefaultZones() []string { return cloud.DefaultZones() }

// GenerateMarket synthesizes hours of spot-price history for every
// (type, zone) pair, deterministically from seed.
func GenerateMarket(hours float64, seed uint64) *Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), hours, seed)
}

// EstimateHours predicts the execution time of a profile on a fleet of
// the given instance type (the paper's Section 4.4 performance model).
func EstimateHours(p Profile, it InstanceType) float64 { return app.EstimateHours(p, it) }

// Optimize runs the SOMPI optimizer and returns the cheapest plan whose
// expected completion time meets the deadline.
func Optimize(cfg Config) (Result, error) { return opt.Optimize(cfg) }

// Evaluate computes the expected monetary cost and execution time of a
// plan under the paper's cost model.
func Evaluate(p Plan) Estimate { return model.Evaluate(p) }

// MonteCarlo replays a strategy repeatedly from random trace start points.
func MonteCarlo(s Strategy, r *Runner, cfg MCConfig) MCStats {
	return replay.MonteCarlo(s, r, cfg)
}

// Strategies from the paper's evaluation.
var (
	// NewSOMPI is the full adaptive optimizer (Algorithm 1).
	NewSOMPI = baselines.SOMPI
	// NewBaseline runs on the best-performance on-demand fleet.
	NewBaseline = baselines.Baseline
	// NewOnDemand picks the cheapest deadline-feasible on-demand fleet.
	NewOnDemand = baselines.OnDemandOnly
	// NewMarathe is the state-of-the-art comparison [30].
	NewMarathe = baselines.Marathe
	// NewMaratheOpt is Marathe with optimized instance-type choice.
	NewMaratheOpt = baselines.MaratheOpt
	// NewSpotInf bids effectively infinitely on the cheapest spot market.
	NewSpotInf = baselines.SpotInf
	// NewSpotAvg bids the historical average price.
	NewSpotAvg = baselines.SpotAvg
)

// Experiments returns the registry of paper figures/tables this
// repository regenerates; run entries via their Run field.
func Experiments() []experiments.Experiment { return experiments.Registry() }

// ExperimentByID looks up one experiment (e.g. "fig5").
func ExperimentByID(id string) (experiments.Experiment, error) { return experiments.ByID(id) }
