// Package sompi is the public API of the SOMPI reproduction: monetary
// cost optimization for MPI applications on spot + on-demand cloud
// instances with checkpoints and replicated execution (Gong, He, Zhou —
// SC '15).
//
// The package re-exports the pieces a downstream user composes:
//
//   - workloads and the cloud substrate (Workload*, GenerateMarket),
//   - the SOMPI optimizer (Optimize, Config) and its plans,
//   - the trace-replay simulator and Monte Carlo harness,
//   - every comparison strategy from the paper,
//   - the experiment registry that regenerates each paper figure/table.
//
// The v1 surface is context-aware: OptimizeContext and MonteCarloContext
// accept a context.Context for cancellation and report typed sentinel
// errors (ErrInvalidConfig, ErrDeadlineInfeasible, ErrNoCandidates,
// ErrMarketTooShort) that callers match with errors.Is. The pre-v1
// entry points (Optimize, MonteCarlo) remain as deprecated thin
// wrappers. The same engine runs as a long-lived HTTP/JSON service —
// see cmd/sompid and internal/serve.
//
// See examples/quickstart for the three-call happy path.
package sompi

import (
	"context"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/experiments"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/report"
	"sompi/internal/strategy"
)

// Core model types.
type (
	// Profile is a TAU-style application resource profile.
	Profile = app.Profile
	// InstanceType describes one cloud instance type.
	InstanceType = cloud.InstanceType
	// Market is the live sharded price store: one independently locked
	// and versioned shard per (type, zone) pair.
	Market = cloud.Market
	// MarketView is the read-only interface consumers program against;
	// *Market and immutable snapshots (Market.Snapshot, Market.Window)
	// both implement it.
	MarketView = cloud.MarketView
	// MarketKey names one spot market.
	MarketKey = cloud.MarketKey
	// Plan is a hybrid spot/on-demand execution plan.
	Plan = model.Plan
	// Estimate is the model's expected cost/time evaluation of a plan.
	Estimate = model.Estimate
	// Config parameterizes the SOMPI optimizer.
	Config = opt.Config
	// Result is a scored plan returned by Optimize.
	Result = opt.Result
	// Runner replays plans against a market.
	Runner = replay.Runner
	// Strategy is an executable planning policy (SOMPI or a baseline).
	Strategy = replay.Strategy
	// MCStats aggregates Monte Carlo replications of a strategy.
	MCStats = replay.MCStats
	// MCConfig sizes a Monte Carlo evaluation.
	MCConfig = replay.MCConfig
	// Option tweaks an OptimizeContext call (WithWorkers, WithKappa, ...).
	Option = opt.Option
	// Session threads Algorithm 1's window-by-window execution state.
	Session = replay.Session
	// Table is a rendered experiment result.
	Table = report.Table
	// ExperimentParams sizes a paper-experiment run.
	ExperimentParams = experiments.Params
)

// Workloads from the paper's evaluation (NPB kernels and LAMMPS).
var (
	WorkloadBT   = app.BT
	WorkloadSP   = app.SP
	WorkloadLU   = app.LU
	WorkloadFT   = app.FT
	WorkloadIS   = app.IS
	WorkloadBTIO = app.BTIO
)

// WorkloadLAMMPS returns the LAMMPS campaign profile for a process count.
func WorkloadLAMMPS(procs int) Profile { return app.LAMMPS(procs) }

// Workloads returns every preset profile the paper evaluates.
func Workloads() []Profile {
	return append(app.NPB(), app.LAMMPS(32), app.LAMMPS(128))
}

// DefaultCatalog returns the paper's four candidate instance types.
func DefaultCatalog() []InstanceType { return cloud.DefaultCatalog() }

// DefaultZones returns the availability zones the paper draws circle
// groups from.
func DefaultZones() []string { return cloud.DefaultZones() }

// GenerateMarket synthesizes hours of spot-price history for every
// (type, zone) pair, deterministically from seed.
func GenerateMarket(hours float64, seed uint64) *Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), hours, seed)
}

// EstimateHours predicts the execution time of a profile on a fleet of
// the given instance type (the paper's Section 4.4 performance model).
func EstimateHours(p Profile, it InstanceType) float64 { return app.EstimateHours(p, it) }

// Optimize runs the SOMPI optimizer and returns the cheapest plan whose
// expected completion time meets the deadline.
//
// Deprecated: use OptimizeContext, which adds cancellation, functional
// options and typed errors. Optimize behaves identically.
func Optimize(cfg Config) (Result, error) { return opt.Optimize(cfg) }

// OptimizeContext runs the SOMPI optimizer under ctx: cancelling aborts
// the κ-subset search at the next evaluation and returns ctx.Err()
// alongside a partial Result. Invalid configurations are reported as
// ErrInvalidConfig; see also ErrDeadlineInfeasible and ErrNoCandidates.
func OptimizeContext(ctx context.Context, cfg Config, opts ...Option) (Result, error) {
	return opt.OptimizeContext(ctx, cfg, opts...)
}

// Functional options for OptimizeContext.
var (
	WithWorkers        = opt.WithWorkers
	WithKappa          = opt.WithKappa
	WithSlack          = opt.WithSlack
	WithGridLevels     = opt.WithGridLevels
	WithMaxGroups      = opt.WithMaxGroups
	WithMaxAllFail     = opt.WithMaxAllFail
	WithCandidates     = opt.WithCandidates
	WithOnDemandTypes  = opt.WithOnDemandTypes
	WithoutCheckpoints = opt.WithoutCheckpoints
	WithoutPruning     = opt.WithoutPruning
)

// Typed sentinel errors of the v1 API, for errors.Is matching.
var (
	// ErrInvalidConfig reports out-of-range optimizer or Monte Carlo
	// configuration fields. The opt and replay packages each wrap their
	// own sentinel; test against the one matching the call.
	ErrInvalidConfig = opt.ErrInvalidConfig
	// ErrMCInvalidConfig is the Monte Carlo analogue of ErrInvalidConfig.
	ErrMCInvalidConfig = replay.ErrInvalidConfig
	// ErrDeadlineInfeasible reports that no on-demand fleet can meet the
	// deadline.
	ErrDeadlineInfeasible = opt.ErrDeadlineInfeasible
	// ErrNoCandidates reports a candidate market outside the catalog or
	// trace set.
	ErrNoCandidates = opt.ErrNoCandidates
	// ErrMarketTooShort reports a market with no usable price history.
	ErrMarketTooShort = replay.ErrMarketTooShort
)

// NewSession starts an Algorithm-1 execution session for the runner's
// application at absolute market hour start.
func NewSession(r *Runner, deadline, start float64) *Session {
	return replay.NewSession(r, deadline, start)
}

// Evaluate computes the expected monetary cost and execution time of a
// plan under the paper's cost model.
func Evaluate(p Plan) Estimate { return model.Evaluate(p) }

// MonteCarlo replays a strategy repeatedly from random trace start points.
//
// Deprecated: use MonteCarloContext, which validates the configuration
// with typed errors and supports cancellation; MonteCarlo panics on an
// invalid configuration.
func MonteCarlo(s Strategy, r *Runner, cfg MCConfig) MCStats {
	return replay.MonteCarlo(s, r, cfg)
}

// MonteCarloContext replays a strategy repeatedly from random trace
// start points under ctx. Results are identical at every worker count
// for a fixed seed.
func MonteCarloContext(ctx context.Context, s Strategy, r *Runner, cfg MCConfig) (MCStats, error) {
	return replay.MonteCarloContext(ctx, s, r, cfg)
}

// Strategies from the paper's evaluation.
var (
	// NewSOMPI is the full adaptive optimizer (Algorithm 1).
	NewSOMPI = baselines.SOMPI
	// NewBaseline runs on the best-performance on-demand fleet.
	NewBaseline = baselines.Baseline
	// NewOnDemand picks the cheapest deadline-feasible on-demand fleet.
	NewOnDemand = baselines.OnDemandOnly
	// NewMarathe is the state-of-the-art comparison [30].
	NewMarathe = baselines.Marathe
	// NewMaratheOpt is Marathe with optimized instance-type choice.
	NewMaratheOpt = baselines.MaratheOpt
	// NewSpotInf bids effectively infinitely on the cheapest spot market.
	NewSpotInf = baselines.SpotInf
	// NewSpotAvg bids the historical average price.
	NewSpotAvg = baselines.SpotAvg
)

// Experiments returns the registry of paper figures/tables this
// repository regenerates; run entries via their Run field.
func Experiments() []experiments.Experiment { return experiments.Registry() }

// ExperimentByID looks up one experiment (e.g. "fig5").
func ExperimentByID(id string) (experiments.Experiment, error) { return experiments.ByID(id) }

// Strategy catalog & tournament surface. A PlanStrategy is a named,
// typed-parameter planning policy from the registry ("sompi" — the
// default, byte-identical to OptimizeContext — plus "portfolio", "noft"
// and "adaptive-ckpt"); PlanContext plans through one, and Tournament
// Monte Carlo-evaluates the whole catalog across market scenarios.
type (
	// PlanStrategy is a named planning policy from the registry.
	PlanStrategy = strategy.Strategy
	// StrategyPlan is a strategy's answer: plan, estimate, search effort.
	StrategyPlan = strategy.Plan
	// StrategyExplain is a strategy's decision trail.
	StrategyExplain = strategy.Explain
	// StrategyDescriptor is one registry entry with its parameter schema.
	StrategyDescriptor = strategy.Descriptor
	// StrategyParamSpec is one strategy parameter's wire schema.
	StrategyParamSpec = strategy.ParamSpec
	// Workload is the application a strategy plans for.
	Workload = strategy.Workload
	// Deadline is the completion constraint a strategy plans against.
	Deadline = strategy.Deadline
	// PlanOption configures one PlanContext call (WithStrategy, ...).
	PlanOption = strategy.PlanOption
	// Scenario is a named market-and-billing regime for evaluation.
	Scenario = strategy.Scenario
	// TournamentConfig selects the (strategy × workload × deadline ×
	// scenario) grid a tournament evaluates.
	TournamentConfig = strategy.TournamentConfig
	// TournamentReport is a deterministic tournament result.
	TournamentReport = strategy.Report
)

// Typed sentinels of the strategy surface.
var (
	// ErrUnknownStrategy reports a name absent from the registry.
	ErrUnknownStrategy = strategy.ErrUnknownStrategy
	// ErrUnknownScenario reports a name absent from the scenario catalog.
	ErrUnknownScenario = strategy.ErrUnknownScenario
)

// Options for PlanContext.
var (
	// WithStrategy selects a registered strategy by name with typed
	// parameters (nil = defaults); omitted, PlanContext plans with the
	// default "sompi" strategy.
	WithStrategy = strategy.WithStrategy
	// WithStrategyCandidates restricts planning to the given markets.
	WithStrategyCandidates = strategy.WithCandidates
	// WithStrategyExplain asks for the strategy's decision trail.
	WithStrategyExplain = strategy.WithExplain
)

// Strategies lists the registered planning strategies in registration
// order — the default, "sompi", first — with their parameter schemas.
func Strategies() []StrategyDescriptor { return strategy.List() }

// NewStrategy builds a registered strategy by name (nil params =
// defaults). Unknown names report ErrUnknownStrategy; bad parameters
// ErrInvalidConfig.
func NewStrategy(name string, params map[string]float64) (PlanStrategy, error) {
	return strategy.New(name, params)
}

// PlanContext plans one workload against a market view through a
// registry strategy. With no options it is exactly the default sompi
// plan — byte-identical to OptimizeContext with the same inputs.
func PlanContext(ctx context.Context, view MarketView, w Workload, d Deadline, opts ...PlanOption) (StrategyPlan, *StrategyExplain, error) {
	return strategy.PlanWith(ctx, view, w, d, opts...)
}

// Scenarios lists the named market scenarios tournaments evaluate
// against (optimistic, realistic, spike-storm, quiet-az, per-second,
// notice-2m).
func Scenarios() []Scenario { return strategy.Scenarios() }

// ReplayStrategy adapts a planning strategy to the replay engine so it
// can be Monte Carlo-evaluated like the paper's baselines.
func ReplayStrategy(s PlanStrategy, m MarketView, history float64) Strategy {
	return strategy.Replay(s, m, history)
}

// Tournament Monte Carlo-evaluates every configured (strategy, workload,
// deadline, scenario) cell and ranks the strategies. For a fixed config
// the report is identical across runs and worker counts.
func Tournament(ctx context.Context, cfg TournamentConfig) (*TournamentReport, error) {
	return strategy.Tournament(ctx, cfg)
}
