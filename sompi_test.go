package sompi

import (
	"context"
	"errors"
	"testing"
)

// The facade tests exercise the public API end to end the way a
// downstream user would (examples/quickstart mirrors this flow).

func TestFacadeEndToEnd(t *testing.T) {
	market := GenerateMarket(24*10, 1)
	bt := WorkloadBT()

	var baseline float64
	for _, it := range DefaultCatalog() {
		if h := EstimateHours(bt, it); baseline == 0 || h < baseline {
			baseline = h
		}
	}
	if baseline <= 0 {
		t.Fatal("no baseline time")
	}

	res, err := Optimize(Config{
		Profile:  bt,
		Market:   market.Window(0, 96),
		Deadline: baseline * 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Cost <= 0 || res.Est.Time <= 0 {
		t.Fatalf("degenerate estimate %+v", res.Est)
	}

	// Evaluate is consistent with the optimizer's own estimate.
	est := Evaluate(res.Plan)
	if est.Cost != res.Est.Cost {
		t.Fatalf("Evaluate disagrees with Optimize: %v vs %v", est.Cost, res.Est.Cost)
	}

	runner := &Runner{Market: market, Profile: bt}
	st := MonteCarlo(NewSOMPI(market), runner, MCConfig{
		Deadline: baseline * 1.5, Runs: 2, Seed: 1,
	})
	if st.Runs != 2 {
		t.Fatalf("MonteCarlo ran %d times", st.Runs)
	}
	if st.Cost.Mean() <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestWorkloadsComplete(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("%d workloads, want 8 (6 NPB + 2 LAMMPS)", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) != 14 {
		t.Fatalf("%d experiments, want 14 (13 paper artifacts + tournament)", len(Experiments()))
	}
	if _, err := ExperimentByID("fig5"); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyConstructorsProduceDistinctNames(t *testing.T) {
	m := GenerateMarket(24*5, 2)
	names := map[string]bool{}
	for _, s := range []Strategy{
		NewSOMPI(m), NewBaseline(), NewOnDemand(),
		NewMarathe(m), NewMaratheOpt(m), NewSpotInf(m), NewSpotAvg(m),
	} {
		if names[s.Name()] {
			t.Errorf("duplicate strategy name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

// TestFacadeV1ContextAPI exercises the v1 surface: context-aware entry
// points, functional options, typed sentinel errors and the session
// vehicle — the shape examples/quickstart teaches.
func TestFacadeV1ContextAPI(t *testing.T) {
	market := GenerateMarket(24*10, 1)
	bt := WorkloadBT()
	deadline := EstimateHours(bt, DefaultCatalog()[0]) // generous

	res, err := OptimizeContext(context.Background(), Config{
		Profile:  bt,
		Market:   market.Window(0, 96),
		Deadline: deadline * 3,
	}, WithWorkers(1), WithKappa(2), WithGridLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Optimize(Config{
		Profile: bt, Market: market.Window(0, 96), Deadline: deadline * 3,
		Workers: 1, Kappa: 2, GridLevels: 3,
	})
	if err != nil || res.Est.Cost != legacy.Est.Cost {
		t.Fatalf("options path disagrees with struct path: %v vs %v (err %v)",
			res.Est.Cost, legacy.Est.Cost, err)
	}

	// Typed errors surface through the facade.
	if _, err := OptimizeContext(context.Background(), Config{
		Profile: bt, Market: market, Deadline: -1,
	}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative deadline: %v, want ErrInvalidConfig", err)
	}
	if _, err := MonteCarloContext(context.Background(), NewBaseline(),
		&Runner{Market: market, Profile: bt},
		MCConfig{Deadline: 10, Runs: 0}); !errors.Is(err, ErrMCInvalidConfig) {
		t.Fatalf("zero runs: %v, want ErrMCInvalidConfig", err)
	}

	// Cancellation propagates.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeContext(cancelled, Config{
		Profile: bt, Market: market.Window(0, 96), Deadline: deadline * 3,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled optimize: %v, want context.Canceled", err)
	}

	// Market ingestion and sessions through the facade.
	if market.Version() != 1 {
		t.Fatalf("fresh market version %d, want 1", market.Version())
	}
	if _, err := market.Append(MarketKey{Type: "nope", Zone: "nowhere"}, nil); err == nil {
		t.Fatal("append to unknown market succeeded")
	}
	sess := NewSession(&Runner{Market: market, Profile: bt}, deadline*3, 96)
	sess.Advance(res.Plan, 1)
	if sess.Windows != 1 || sess.Elapsed <= 0 {
		t.Fatalf("session did not advance: %+v", sess)
	}
}

// TestFacadeStrategyCatalog exercises the strategy surface: the registry
// listing, PlanContext's parity with OptimizeContext on the default
// strategy, named strategies with typed errors, scenarios and a tiny
// deterministic tournament.
func TestFacadeStrategyCatalog(t *testing.T) {
	ds := Strategies()
	if len(ds) < 4 || ds[0].Name != "sompi" {
		t.Fatalf("Strategies() = %v, want >=4 with sompi first", ds)
	}
	if len(Scenarios()) < 4 {
		t.Fatalf("only %d scenarios", len(Scenarios()))
	}
	if _, err := NewStrategy("nope", nil); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("unknown strategy: %v, want ErrUnknownStrategy", err)
	}

	market := GenerateMarket(24*10, 1)
	bt := WorkloadBT()
	deadline := EstimateHours(bt, DefaultCatalog()[0]) * 3
	view := market.Window(0, 96)
	knobs := map[string]float64{"kappa": 2, "grid_levels": 3, "max_groups": 3}

	p, _, err := PlanContext(context.Background(), view,
		Workload{Profile: bt}, Deadline{Hours: deadline},
		WithStrategy("sompi", knobs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeContext(context.Background(), Config{
		Profile: bt, Market: view, Deadline: deadline,
		Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	if err != nil || p.Est != res.Est {
		t.Fatalf("PlanContext disagrees with OptimizeContext: %+v vs %+v (err %v)", p.Est, res.Est, err)
	}

	// A named strategy replays through the standard Monte Carlo engine.
	st, err := NewStrategy("noft", nil)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarlo(ReplayStrategy(st, market, 96),
		&Runner{Market: market, Profile: bt}, MCConfig{Deadline: deadline, Runs: 2, Seed: 1})
	if mc.Runs != 2 || mc.Cost.Mean() <= 0 {
		t.Fatalf("noft replay stats %+v", mc)
	}

	rep, err := Tournament(context.Background(), TournamentConfig{
		Workloads:       []string{"BT"},
		Scenarios:       []string{"realistic", "per-second"},
		DeadlineFactors: []float64{2},
		Runs:            2,
		Hours:           150,
		Seed:            3,
		Params:          map[string]map[string]float64{"sompi": knobs, "adaptive-ckpt": knobs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rankings) != len(ds) || len(rep.Cells) != len(ds)*2 {
		t.Fatalf("tournament shape: %d rankings, %d cells", len(rep.Rankings), len(rep.Cells))
	}
}
