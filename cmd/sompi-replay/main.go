// Command sompi-replay replays a sompid capture log against one or two
// live sompid targets, diffs twin responses field-by-field under ignore
// rules, reports per-endpoint latency percentiles, error rates and
// cache hit-rates, and gates the outcome on a JSON rules file.
//
// Usage:
//
//	sompi-replay -log DIR|FILE -target name=url[,url...] [-target ...]
//	             [-rate 1.0] [-concurrency 1] [-timeout 30s]
//	             [-ignore field,path.field] [-rules rules.json]
//	             [-out report.json] [-append-bench BENCH.json]
//
// A capture log is produced by sompid -capture-log DIR. With one
// -target the run is a load/latency replay; with two it is a twin-diff:
// every captured request is sent to both targets and the responses are
// compared, with /v1/plan responses additionally held to byte identity
// (the twin-equivalence gate; ?explain=1 responses are exempt because
// their trails carry wall-clock timings).
//
// -rate scales the capture's own pacing (1 = real time, 10 = 10x
// faster, 0 = as fast as the targets answer). -concurrency > 1 lets
// later records overtake slow ones, exactly like production traffic —
// keep it 1 for twin-diffs over order-sensitive traffic.
//
// The rules file (see internal/harness.Rules) sets latency budgets per
// endpoint, error-rate ceilings, a cache hit-rate floor, and diff
// tolerances. Exit codes, in precedence order:
//
//	0  replay completed, no twin diffs, every rule passed
//	1  twin targets diverged but no explicit rule was violated
//	2  one or more regression rules tripped
//	3  bad arguments or an unreadable rules file
//	4  the replay itself failed (unreadable capture, no responses)
//
// -append-bench merges the replay's throughput summary into a
// BENCH_serve.json-style file under the "replay" key, so sustained-load
// numbers live next to the serve benchmarks they extend.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"sompi/internal/harness"
)

// targetFlags collects repeated -target name=url flags.
type targetFlags []harness.Target

func (t *targetFlags) String() string {
	parts := make([]string, len(*t))
	for i, tg := range *t {
		parts[i] = tg.Name + "=" + tg.URL
	}
	return strings.Join(parts, ",")
}

func (t *targetFlags) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" || urls == "" {
		return fmt.Errorf("want name=url[,url...], got %q", v)
	}
	// A comma-separated URL list addresses one logical target through
	// several nodes (a cluster): the first URL is primary, the rest are
	// transport-failure fallbacks, so the replay rides through a node
	// being killed mid-run.
	parts := strings.Split(urls, ",")
	for i, p := range parts {
		if parts[i] = strings.TrimSpace(p); parts[i] == "" {
			return fmt.Errorf("empty url in %q", v)
		}
	}
	*t = append(*t, harness.Target{Name: name, URL: parts[0], Fallback: parts[1:]})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sompi-replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var targets targetFlags
	var (
		logPath     = fs.String("log", "", "capture log: a directory written by sompid -capture-log, or a single NDJSON file")
		rate        = fs.Float64("rate", 0, "time-scale multiplier for the capture's own pacing (1 = real time, 0 = full speed)")
		concurrency = fs.Int("concurrency", 1, "in-flight replay requests (keep 1 for order-sensitive twin-diffs)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		ignore      = fs.String("ignore", "", "comma-separated extra diff ignore rules (field names or dotted paths)")
		rulesPath   = fs.String("rules", "", "JSON regression-rules file; violations exit 2")
		outPath     = fs.String("out", "", "write the full JSON report here ('-' = stdout)")
		appendBench = fs.String("append-bench", "", "merge the throughput summary into this BENCH_serve.json-style file under the \"replay\" key")
	)
	fs.Var(&targets, "target", "replay target as name=url[,url...]; extra urls are cluster-node fallbacks; repeat the flag for a twin-diff (max 2)")
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	if *logPath == "" || len(targets) == 0 {
		fmt.Fprintln(stderr, "sompi-replay: -log and at least one -target are required")
		fs.Usage()
		return harness.ExitUsage
	}

	var rules harness.Rules
	if *rulesPath != "" {
		var err error
		rules, err = harness.LoadRules(*rulesPath)
		if err != nil {
			fmt.Fprintf(stderr, "sompi-replay: %v\n", err)
			return harness.ExitUsage
		}
	}
	var extraIgnore []string
	for _, r := range strings.Split(*ignore, ",") {
		if r = strings.TrimSpace(r); r != "" {
			extraIgnore = append(extraIgnore, r)
		}
	}
	extraIgnore = append(extraIgnore, rules.Ignore...)

	records, err := harness.Load(*logPath)
	if err != nil {
		fmt.Fprintf(stderr, "sompi-replay: %v\n", err)
		return harness.ExitRuntime
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stderr, "sompi-replay: %d records from %s against %d target(s), rate=%g concurrency=%d\n",
		len(records), *logPath, len(targets), *rate, *concurrency)
	rep, err := harness.Replay(ctx, records, harness.Options{
		Targets:     targets,
		Rate:        *rate,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Ignore:      extraIgnore,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sompi-replay: %v\n", err)
		return harness.ExitRuntime
	}
	// A replay where no record ever produced a response is a runtime
	// failure, not a gradeable run.
	if rep.TransportErrors >= rep.Records*len(targets) {
		fmt.Fprintf(stderr, "sompi-replay: no target answered any of the %d records\n", rep.Records)
		return harness.ExitRuntime
	}

	printSummary(stderr, rep)
	if *outPath != "" {
		if err := writeReport(*outPath, stdout, rep); err != nil {
			fmt.Fprintf(stderr, "sompi-replay: %v\n", err)
			return harness.ExitRuntime
		}
	}
	if *appendBench != "" {
		if err := harness.AppendBench(*appendBench, rep); err != nil {
			fmt.Fprintf(stderr, "sompi-replay: %v\n", err)
			return harness.ExitRuntime
		}
		fmt.Fprintf(stderr, "sompi-replay: appended replay summary to %s\n", *appendBench)
	}

	if *rulesPath != "" {
		if violations := rules.Evaluate(rep); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(stderr, "sompi-replay: RULE VIOLATION %s\n", v)
			}
			return harness.ExitRules
		}
		fmt.Fprintf(stderr, "sompi-replay: all rules in %s passed\n", *rulesPath)
	}
	if rep.FieldDiffs > 0 || rep.PlanDiffs > 0 {
		return harness.ExitDiffs
	}
	return harness.ExitOK
}

// printSummary renders the human-facing per-endpoint table.
func printSummary(w *os.File, rep *harness.Report) {
	fmt.Fprintf(w, "sompi-replay: %d records in %.2fs", rep.Records, rep.WallSeconds)
	if len(rep.Targets) == 2 {
		fmt.Fprintf(w, "; twin-diff: %d field-diff records, %d plan-byte diffs", rep.FieldDiffs, rep.PlanDiffs)
	}
	fmt.Fprintf(w, "; %d transport errors\n", rep.TransportErrors)
	for _, t := range rep.Targets {
		names := make([]string, 0, len(t.Endpoints))
		for name := range t.Endpoints {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ep := t.Endpoints[name]
			fmt.Fprintf(w, "  %-8s %-11s n=%-5d err=%-3d p50=%7.2fms p90=%7.2fms p99=%7.2fms qps=%.1f",
				t.Name, name, ep.Requests, ep.Errors, ep.P50MS, ep.P90MS, ep.P99MS, ep.QPS)
			if ep.CacheLookups > 0 {
				fmt.Fprintf(w, " cache=%d/%d", ep.CacheHits, ep.CacheLookups)
			}
			fmt.Fprintln(w)
		}
	}
	for _, s := range rep.DiffSamples {
		fmt.Fprintf(w, "  diff seq=%d %s %s\n", s.Seq, s.Endpoint, s.Path)
		for _, f := range s.Fields {
			fmt.Fprintf(w, "    %s: %s != %s\n", f.Path, f.A, f.B)
		}
	}
}

func writeReport(path string, stdout *os.File, rep *harness.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
