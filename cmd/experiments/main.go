// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig5 [-runs 30] [-seed 42] [-hours 720] [-csv out.csv]
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sompi/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		id       = flag.String("id", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		runs     = flag.Int("runs", 0, "Monte Carlo replications per configuration (0 = default)")
		seed     = flag.Uint64("seed", 0, "market + sampling seed (0 = default)")
		hours    = flag.Float64("hours", 0, "synthesized market length in hours (0 = default)")
		csv      = flag.String("csv", "", "also write the table as CSV to this file")
		parallel = flag.Int("parallel", 0, "optimizer/replay worker count (0 = GOMAXPROCS, 1 = serial; results are identical)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Artifact)
		}
		return
	}

	params := experiments.Params{Seed: *seed, MarketHours: *hours, Runs: *runs, Workers: *parallel}
	switch {
	case *all:
		for _, e := range experiments.Registry() {
			tab, dur := experiments.Timing(e.ID, e.Run, params)
			fmt.Println(tab)
			fmt.Printf("[%s took %v]\n\n", e.ID, dur.Round(1e7))
		}
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			log.Fatal(err)
		}
		tab, dur := experiments.Timing(e.ID, e.Run, params)
		fmt.Println(tab)
		fmt.Printf("[%s took %v]\n", e.ID, dur.Round(1e7))
		if *csv != "" {
			f, err := os.Create(*csv)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := tab.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
