package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/serve"
	"sompi/internal/strategy"
)

// runTournament is the `sompi tournament` subcommand: Monte
// Carlo-evaluate every (strategy, workload, deadline, scenario) cell of
// the configured grid and print a deterministic ranking report.
func runTournament(args []string) {
	fs := flag.NewFlagSet("tournament", flag.ExitOnError)
	var (
		strategiesF = fs.String("strategies", "", "comma-separated strategy names (default: every registered strategy)")
		scenariosF  = fs.String("scenarios", "", "comma-separated scenario names (default: every scenario)")
		appsF       = fs.String("apps", "", "comma-separated workloads (default: BT,FT)")
		deadlinesF  = fs.String("deadlines", "", "comma-separated deadline factors (default: 1.5,3)")
		runs        = fs.Int("runs", 0, "Monte Carlo replications per cell (default 20)")
		seed        = fs.Uint64("seed", 7, "tournament seed: fixes the markets, start points and report")
		hours       = fs.Float64("hours", 0, "generated market length per scenario (default 480)")
		parallel    = fs.Int("parallel", 0, "cell worker count (0 = GOMAXPROCS; the report is identical at any count)")
		out         = fs.String("out", "", "write the report to this file instead of stdout")
		asJSON      = fs.Bool("json", false, "emit the JSON report instead of markdown")
		smoke       = fs.Bool("smoke", false, "CI smoke mode: tiny fixed grid, then verify the report schema and sompi-strategy plan parity (non-zero exit on drift)")
	)
	fs.Parse(args)

	cfg := strategy.TournamentConfig{
		Strategies: splitList(*strategiesF),
		Scenarios:  splitList(*scenariosF),
		Workloads:  splitList(*appsF),
		Runs:       *runs,
		Hours:      *hours,
		Seed:       *seed,
		Workers:    *parallel,
	}
	for _, f := range splitList(*deadlinesF) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("bad deadline factor %q: %v", f, err)
		}
		cfg.DeadlineFactors = append(cfg.DeadlineFactors, v)
	}
	if *smoke {
		cfg = smokeConfig(*seed, *parallel)
	}

	rep, err := strategy.Tournament(context.Background(), cfg)
	if err != nil {
		log.Fatalf("tournament failed: %v", err)
	}

	if *smoke {
		if err := verifySmoke(rep); err != nil {
			log.Fatalf("smoke check failed: %v", err)
		}
		log.Print("tournament-smoke: schema ok, sompi plan parity ok")
	}

	var body []byte
	if *asJSON {
		body, err = json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		body = append(body, '\n')
	} else {
		body = []byte(rep.Markdown())
	}
	if *out == "" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	log.Printf("wrote %s", *out)
}

// smokeConfig is the CI grid: every strategy and scenario, one small
// workload, one deadline, few replications, reduced search knobs — the
// whole thing runs in seconds while still exercising each (strategy,
// scenario) pairing.
func smokeConfig(seed uint64, workers int) strategy.TournamentConfig {
	small := map[string]float64{"kappa": 2, "grid_levels": 3, "max_groups": 3}
	return strategy.TournamentConfig{
		Workloads:       []string{"BT"},
		DeadlineFactors: []float64{2},
		Runs:            3,
		Hours:           200,
		Seed:            seed,
		Workers:         workers,
		Params: map[string]map[string]float64{
			"sompi":         small,
			"adaptive-ckpt": small,
		},
	}
}

// reportSchema is the expected JSON shape of a tournament report: every
// leaf key path, sorted. CI fails when the emitted report drifts from
// it, forcing schema changes to be deliberate (bump
// strategy.ReportSchemaVersion and this list together).
var reportSchema = []string{
	"cells[].cost_mean",
	"cells[].cost_std",
	"cells[].deadline_factor",
	"cells[].deadline_hours",
	"cells[].failures",
	"cells[].hours_mean",
	"cells[].miss_rate",
	"cells[].norm_cost",
	"cells[].runs",
	"cells[].scenario",
	"cells[].score",
	"cells[].strategy",
	"cells[].workload",
	"config.deadline_factors[]",
	"config.history",
	"config.hours",
	"config.params.*",
	"config.runs",
	"config.scenarios[]",
	"config.seed",
	"config.strategies[]",
	"config.workloads[]",
	"rankings[].cells",
	"rankings[].mean_miss_rate",
	"rankings[].mean_norm_cost",
	"rankings[].mean_score",
	"rankings[].rank",
	"rankings[].strategy",
	"schema_version",
}

// verifySmoke gates CI: the emitted report must match the expected
// schema exactly, and the "sompi" strategy's plan must be byte-identical
// to the library optimizer path on the same inputs.
func verifySmoke(rep *strategy.Report) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("decoding report: %w", err)
	}
	paths := map[string]bool{}
	collectPaths(v, "", paths)
	got := make([]string, 0, len(paths))
	for p := range paths {
		got = append(got, p)
	}
	sort.Strings(got)
	if want := reportSchema; !equalStrings(got, want) {
		return fmt.Errorf("report schema drift:\n  got:  %s\n  want: %s",
			strings.Join(got, " "), strings.Join(want, " "))
	}

	// Plan parity: the registry's sompi strategy vs the raw optimizer,
	// same market, same knobs, rendered through the service's single
	// encoding path and compared byte for byte.
	profile, _ := app.ByName("BT")
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 200, 7)
	train := m.Window(0, baselines.History)
	deadline := opt.FastestOnDemand(nil, profile).T * 2

	st, err := strategy.New("sompi", map[string]float64{"kappa": 2, "grid_levels": 3, "max_groups": 3})
	if err != nil {
		return err
	}
	sp, _, err := st.Plan(context.Background(), train, strategy.Workload{Profile: profile}, strategy.Deadline{Hours: deadline})
	if err != nil {
		return fmt.Errorf("strategy plan: %w", err)
	}
	res, err := opt.OptimizeContext(context.Background(), opt.Config{
		Profile: profile, Market: train, Deadline: deadline,
		Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	if err != nil {
		return fmt.Errorf("library plan: %w", err)
	}
	a, _ := json.Marshal(serve.EncodePlan(sp.Model))
	b, _ := json.Marshal(serve.EncodePlan(res.Plan))
	if !bytes.Equal(a, b) {
		return fmt.Errorf("sompi strategy plan diverged from library path:\n  strategy: %s\n  library:  %s", a, b)
	}
	return nil
}

// collectPaths walks decoded JSON recording every leaf key path. Arrays
// descend through their first element as "[]"; the free-form
// config.params map collapses to a single "*" path.
func collectPaths(v any, prefix string, out map[string]bool) {
	switch t := v.(type) {
	case map[string]any:
		if prefix == "config.params" {
			out[prefix+".*"] = true
			return
		}
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			collectPaths(child, p, out)
		}
	case []any:
		if len(t) == 0 {
			out[prefix+"[]"] = true
			return
		}
		collectPaths(t[0], prefix+"[]", out)
	default:
		out[prefix] = true
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
