// Command sompi optimizes one MPI application run: given a workload, a
// deadline factor and a market seed, it prints the plan SOMPI chooses
// (circle groups, bids, checkpoint intervals, on-demand recovery type)
// and its expected cost/time, then optionally replays it.
//
// Usage:
//
//	sompi -app BT -deadline 1.5 [-seed 42] [-hours 720] [-replay 20] [-parallel N]
//	sompi explain -app BT -deadline 1.5 [-seed 42] [-hours 720] [-json]
//	sompi tournament [-strategies a,b] [-scenarios x,y] [-apps BT,FT]
//	                 [-deadlines 1.5,3] [-runs N] [-seed S] [-parallel N]
//	                 [-out FILE] [-json] [-smoke]
//
// The explain subcommand runs the same optimization with the decision
// trail enabled and renders why each candidate market was kept or
// rejected, how long every pipeline stage took, and what the search
// selected (-json dumps the raw trail instead). The tournament
// subcommand Monte Carlo-evaluates every registered planning strategy
// against every market scenario and prints a deterministic ranking
// report (see internal/strategy).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/replay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sompi: ")
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "tournament" {
		runTournament(os.Args[2:])
		return
	}
	var (
		name     = flag.String("app", "BT", "workload: BT SP LU FT IS BTIO LAMMPS-32 LAMMPS-128")
		deadline = flag.Float64("deadline", 1.5, "deadline as a multiple of Baseline Time")
		seed     = flag.Uint64("seed", 42, "market seed")
		hours    = flag.Float64("hours", 720, "market history length")
		replays  = flag.Int("replay", 0, "Monte Carlo replays of the adaptive strategy (0 = skip)")
		parallel = flag.Int("parallel", 0, "optimizer/replay worker count (0 = GOMAXPROCS, 1 = serial; results are identical)")
	)
	flag.Parse()

	profile, ok := app.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), *hours, *seed)
	baselineFleet := opt.FastestOnDemand(nil, profile)
	dl := baselineFleet.T * *deadline

	fmt.Printf("workload %s (%s), %d processes\n", profile.Name, profile.Class, profile.Procs)
	fmt.Printf("baseline: %s x%d, %.1fh, $%.0f\n",
		baselineFleet.Instance.Name, baselineFleet.M, baselineFleet.T, baselineFleet.FullCost())
	fmt.Printf("deadline: %.1fh (%.2fx baseline)\n\n", dl, *deadline)

	train := m.Window(0, baselines.History)
	res, err := opt.Optimize(opt.Config{Profile: profile, Market: train, Deadline: dl, Workers: *parallel})
	if err != nil {
		log.Fatalf("optimization failed: %v", err)
	}
	printPlan(res)

	if *replays > 0 {
		r := &replay.Runner{Market: m, Profile: profile}
		st := replay.MonteCarlo(baselines.SOMPI(m), r, replay.MCConfig{
			Deadline: dl, Runs: *replays, Seed: *seed, Workers: *parallel,
		})
		fmt.Printf("\nadaptive replay: %s\n", st.String())
		fmt.Printf("normalized cost vs baseline: %.2f\n", st.Cost.Mean()/baselineFleet.FullCost())
	}
}

// runExplain is the `sompi explain` subcommand: the same optimization
// with the decision trail on, rendered for a human (or as JSON).
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		name     = fs.String("app", "BT", "workload: BT SP LU FT IS BTIO LAMMPS-32 LAMMPS-128")
		deadline = fs.Float64("deadline", 1.5, "deadline as a multiple of Baseline Time")
		seed     = fs.Uint64("seed", 42, "market seed")
		hours    = fs.Float64("hours", 720, "market history length")
		parallel = fs.Int("parallel", 0, "optimizer worker count (0 = GOMAXPROCS)")
		asJSON   = fs.Bool("json", false, "dump the raw trail as JSON instead of rendering it")
	)
	fs.Parse(args)

	profile, ok := app.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), *hours, *seed)
	baselineFleet := opt.FastestOnDemand(nil, profile)
	dl := baselineFleet.T * *deadline

	train := m.Window(0, baselines.History)
	res, err := opt.OptimizeContext(context.Background(),
		opt.Config{Profile: profile, Market: train, Deadline: dl, Workers: *parallel},
		opt.WithExplain())
	if err != nil {
		log.Fatalf("optimization failed: %v", err)
	}
	ex := res.Explain

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ex); err != nil {
			log.Fatalf("encoding trail: %v", err)
		}
		return
	}

	fmt.Printf("workload %s, deadline %.1fh (%.2fx baseline)\n", profile.Name, dl, *deadline)
	fmt.Printf("search: kappa=%d grid=%d workers=%d  baseline $%.0f on-demand\n\n",
		ex.Kappa, ex.GridLevels, ex.Workers, ex.BaselineCost)
	fmt.Println("stages:")
	for _, st := range ex.Stages {
		fmt.Printf("  %-22s %s\n", st.Name, time.Duration(st.DurationNs).Round(time.Microsecond))
	}
	fmt.Printf("  %-22s %s\n", "total", time.Duration(ex.TotalNs).Round(time.Microsecond))
	fmt.Printf("\ncandidates (%d):\n", len(ex.Candidates))
	for _, d := range ex.Candidates {
		mark := "-"
		switch {
		case d.Selected:
			mark = "*"
		case d.Kept:
			mark = "+"
		}
		fmt.Printf("  %s %-26s %s\n", mark, d.Market, d.Reason)
	}
	fmt.Printf("\nselected: %v\n", ex.Selected)
	fmt.Printf("%d evaluations, %d pruned\n", ex.Evals, ex.Pruned)
	printPlan(res)
}

func printPlan(res opt.Result) {
	fmt.Printf("plan (expected cost $%.0f, expected time %.1fh, %d evaluations, %d pruned):\n",
		res.Est.Cost, res.Est.Time, res.Evals, res.Pruned)
	if len(res.Plan.Groups) == 0 {
		fmt.Println("  pure on-demand execution")
	}
	for _, gp := range res.Plan.Groups {
		fmt.Printf("  circle group %-24s x%-3d bid $%.3f/h, checkpoint every %.2fh\n",
			gp.Group.Key, gp.Group.M, gp.Bid, gp.Interval)
	}
	rec := res.Plan.Recovery
	fmt.Printf("  on-demand recovery: %s x%d ($%.2f/h fleet)\n",
		rec.Instance.Name, rec.M, rec.Rate())
	fmt.Printf("  P(all groups fail) = %.3f, E[recovered fraction] = %.3f\n",
		res.Est.PAllFail, res.Est.EMinRatio)
}
