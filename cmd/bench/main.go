// Command bench is the benchmark-regression harness for the optimizer's
// search. It times the three search configurations — the exhaustive
// serial search (the pre-parallel baseline), branch-and-bound pruning on
// one worker, and pruning on the full worker pool — on the same
// synthesized market BenchmarkOptimize uses, checks that all three agree
// on the plan, and writes the numbers to a JSON file so CI can diff runs.
//
// Usage:
//
//	bench [-out BENCH_opt.json] [-benchtime 5x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
)

// variantResult is one row of the regression file.
type variantResult struct {
	Name    string  `json:"name"`
	NsPerOp int64   `json:"ns_per_op"`
	Evals   int     `json:"evals"`
	Pruned  int     `json:"pruned"`
	Cost    float64 `json:"plan_cost"`
	// Speedup is ns/op of the serial exhaustive baseline divided by this
	// variant's ns/op.
	Speedup float64 `json:"speedup_vs_exhaustive"`
}

type benchFile struct {
	// Benchmark parameters, recorded so a regression diff compares like
	// with like.
	MarketHours int             `json:"market_hours"`
	Seed        uint64          `json:"seed"`
	Profile     string          `json:"profile"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Results     []variantResult `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	testing.Init() // registers test.benchtime before we set it
	var (
		out       = flag.String("out", "BENCH_opt.json", "output JSON path")
		benchtime = flag.String("benchtime", "", "benchtime passed to the testing harness (e.g. 5x, 2s)")
	)
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			log.Fatal(err)
		}
	}

	const hours, seed = 24 * 14, 42
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), hours, seed)
	p := app.BT()
	deadline := opt.FastestOnDemand(nil, p).T * 1.5

	variants := []struct {
		name string
		cfg  opt.Config
	}{
		{"serial-exhaustive", opt.Config{Workers: 1, DisablePruning: true}},
		{"serial-pruned", opt.Config{Workers: 1}},
		{"parallel-pruned", opt.Config{Workers: 0}},
	}

	file := benchFile{MarketHours: hours, Seed: seed, Profile: p.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var wantCost float64
	for i, v := range variants {
		cfg := v.cfg
		cfg.Profile, cfg.Market, cfg.Deadline = p, m, deadline
		var last opt.Result
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := opt.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		})
		if i == 0 {
			wantCost = last.Est.Cost
		} else if last.Est.Cost != wantCost {
			log.Fatalf("%s found cost %v, baseline found %v — search configurations disagree",
				v.name, last.Est.Cost, wantCost)
		}
		file.Results = append(file.Results, variantResult{
			Name:    v.name,
			NsPerOp: r.NsPerOp(),
			Evals:   last.Evals,
			Pruned:  last.Pruned,
			Cost:    last.Est.Cost,
		})
		fmt.Printf("%-18s %12d ns/op  %7d evals  %7d pruned\n",
			v.name, r.NsPerOp(), last.Evals, last.Pruned)
	}
	base := float64(file.Results[0].NsPerOp)
	for i := range file.Results {
		file.Results[i].Speedup = base / float64(file.Results[i].NsPerOp)
	}
	fmt.Printf("speedup vs serial exhaustive: pruned %.2fx, parallel+pruned %.2fx (GOMAXPROCS=%d)\n",
		file.Results[1].Speedup, file.Results[2].Speedup, file.GOMAXPROCS)

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
