// Command bench is the benchmark-regression harness for the optimizer's
// search. It times the serial search configurations — the exhaustive
// baseline and branch-and-bound pruning, with and without tracing — then
// sweeps the parallel search across worker counts {1, 2, 4, GOMAXPROCS},
// recording a per-worker-count scaling table. Every configuration must
// return the byte-identical plan; on a runner with >= 4 cores the run
// fails if parallel-pruned at 4 workers is slower than serial-pruned
// (-minscale4 raises that floor, e.g. 1.8 for the acceptance gate).
//
// It then benchmarks the T_m re-optimization path: after one shard of
// the market ticks, a warm-started (opt.WarmBound incumbent seed) and
// delta-evaluated (opt.ReuseCache) re-optimization must return the plan
// a cold search returns while evaluating at most -reoptmax (default
// 0.5) of the cold candidate count.
//
// It then drives a mixed plan+ingest workload through the sompid HTTP
// handler against the sharded market, recording the plan-cache hit rate
// and the p50/p99 ingest-to-invalidate latency (the wall time of a
// /v1/prices POST, which covers the shard append, metric update and
// session advance that make the next plan request see fresh prices).
//
// With -obscheck it instead verifies the observability layer's overhead
// contract: the κ-subset search with no collector installed must run
// within -tolerance (default 2%) of the serial-pruned ns/op recorded in
// the baseline file, proving the disabled tracing path costs nothing
// measurable. The check times best-of-N fresh runs (best-of filters
// scheduling noise upward only — genuine instrumentation overhead still
// shows in the fastest run).
//
// Usage:
//
//	bench [-out BENCH_opt.json] [-benchtime 5x] [-serveiters 400] [-minscale4 1.0] [-reoptmax 0.5]
//	bench -obscheck [-baseline BENCH_opt.json] [-tolerance 0.02]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/obs"
	"sompi/internal/opt"
	"sompi/internal/serve"
)

// variantResult is one row of the regression file.
type variantResult struct {
	Name    string  `json:"name"`
	NsPerOp int64   `json:"ns_per_op"`
	Evals   int     `json:"evals"`
	Pruned  int     `json:"pruned"`
	Cost    float64 `json:"plan_cost"`
	// Speedup is ns/op of the serial exhaustive baseline divided by this
	// variant's ns/op.
	Speedup float64 `json:"speedup_vs_exhaustive"`
}

// scalingRow is one worker count of the parallel scaling table. Evals
// and Pruned are the last run's counters — boundedly nondeterministic
// above one worker (see opt.Result) — while Cost is bit-identical at
// every worker count.
type scalingRow struct {
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"ns_per_op"`
	Evals   int     `json:"evals"`
	Pruned  int     `json:"pruned"`
	Cost    float64 `json:"plan_cost"`
	// Speedup is serial-pruned ns/op divided by this row's ns/op.
	Speedup float64 `json:"speedup_vs_serial_pruned"`
}

// reoptResult summarizes the warm-started, delta-evaluated T_m
// re-optimization against a cold search of the same post-tick market.
type reoptResult struct {
	ColdNsPerOp int64 `json:"cold_ns_per_op"`
	WarmNsPerOp int64 `json:"warm_ns_per_op"`
	// ColdEvals/WarmEvals are cost-model evaluations actually performed;
	// WarmSaved the evaluations the reuse cache answered from memo.
	ColdEvals int `json:"cold_evals"`
	WarmEvals int `json:"warm_evals"`
	WarmSaved int `json:"warm_saved_evals"`
	// EvalRatio = WarmEvals / ColdEvals, the <= -reoptmax gate.
	EvalRatio   float64 `json:"eval_ratio"`
	WarmSpeedup float64 `json:"warm_speedup"`
	WarmRetried bool    `json:"warm_retried"`
}

// serveResult summarizes the mixed plan+ingest workload against the
// sharded service: how well the vector-keyed plan cache holds up while
// ticks land on rotating shards, and how long one ingestion takes
// end-to-end.
type serveResult struct {
	PlanRequests int     `json:"plan_requests"`
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	HitRate      float64 `json:"cache_hit_rate"`
	Ingests      int     `json:"ingests"`
	IngestP50Ns  int64   `json:"ingest_to_invalidate_p50_ns"`
	IngestP99Ns  int64   `json:"ingest_to_invalidate_p99_ns"`
}

type benchFile struct {
	// Benchmark parameters, recorded so a regression diff compares like
	// with like.
	MarketHours int             `json:"market_hours"`
	Seed        uint64          `json:"seed"`
	Profile     string          `json:"profile"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Results     []variantResult `json:"results"`
	// ParallelScaling is the per-worker-count table for the parallel
	// pruned search; each row carries its worker count so single-core
	// numbers can never masquerade as parallel results again.
	ParallelScaling []scalingRow `json:"parallel_scaling"`
	Reopt           *reoptResult `json:"reopt,omitempty"`
	Serve           *serveResult `json:"serve,omitempty"`
}

// planFingerprint renders a result's plan and estimate byte-for-byte
// (mirroring the opt package's test helper) so cross-configuration
// equality is exact, never within a tolerance.
func planFingerprint(res opt.Result) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "cost=%x time=%x spot=%x od=%x pfail=%x emin=%x\n",
		res.Est.Cost, res.Est.Time, res.Est.CostSpot, res.Est.CostOD,
		res.Est.PAllFail, res.Est.EMinRatio)
	for _, gp := range res.Plan.Groups {
		fmt.Fprintf(&b, "group=%s m=%d bid=%x interval=%x\n",
			gp.Group.Key, gp.Group.M, gp.Bid, gp.Interval)
	}
	fmt.Fprintf(&b, "recovery=%s m=%d t=%x\n",
		res.Plan.Recovery.Instance.Name, res.Plan.Recovery.M, res.Plan.Recovery.T)
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	testing.Init() // registers test.benchtime before we set it
	var (
		out        = flag.String("out", "BENCH_opt.json", "output JSON path")
		benchtime  = flag.String("benchtime", "", "benchtime passed to the testing harness (e.g. 5x, 2s)")
		serveiters = flag.Int("serveiters", 400, "iterations of the mixed plan+ingest serve workload (0 disables)")
		obscheck   = flag.Bool("obscheck", false, "verify disabled-tracing overhead against the baseline file instead of benchmarking")
		baseline   = flag.String("baseline", "BENCH_opt.json", "baseline file for -obscheck")
		tolerance  = flag.Float64("tolerance", 0.02, "allowed fractional overhead for -obscheck")
		minscale4  = flag.Float64("minscale4", 1.0, "minimum parallel speedup over serial-pruned at 4 workers (enforced only when GOMAXPROCS >= 4)")
		reoptmax   = flag.Float64("reoptmax", 0.5, "maximum warm/cold evaluation ratio for the re-optimization scenario")
	)
	flag.Parse()
	if *obscheck {
		runObsCheck(*baseline, *tolerance)
		return
	}
	if *benchtime != "" {
		if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			log.Fatal(err)
		}
	}

	const hours, seed = 24 * 14, 42
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), hours, seed)
	p := app.BT()
	deadline := opt.FastestOnDemand(nil, p).T * 1.5

	// serial-pruned-traced runs the same search with a span collector in
	// the context — the documented cost of the *enabled* path; every other
	// variant exercises the disabled fast path the -obscheck gate protects.
	variants := []struct {
		name   string
		cfg    opt.Config
		traced bool
	}{
		{"serial-exhaustive", opt.Config{Workers: 1, DisablePruning: true}, false},
		{"serial-pruned", opt.Config{Workers: 1}, false},
		{"serial-pruned-traced", opt.Config{Workers: 1}, true},
	}

	file := benchFile{MarketHours: hours, Seed: seed, Profile: p.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var wantPlan string
	var serialPrunedNs int64
	for i, v := range variants {
		cfg := v.cfg
		cfg.Profile, cfg.Market, cfg.Deadline = p, m, deadline
		ctx := context.Background()
		if v.traced {
			ctx = obs.WithCollector(ctx, obs.NewCollector(0))
		}
		var last opt.Result
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := opt.OptimizeContext(ctx, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		})
		if i == 0 {
			wantPlan = planFingerprint(last)
		} else if planFingerprint(last) != wantPlan {
			log.Fatalf("%s found a different plan than the exhaustive baseline — search configurations disagree:\n%s\nvs\n%s",
				v.name, planFingerprint(last), wantPlan)
		}
		if v.name == "serial-pruned" {
			serialPrunedNs = r.NsPerOp()
		}
		file.Results = append(file.Results, variantResult{
			Name:    v.name,
			NsPerOp: r.NsPerOp(),
			Evals:   last.Evals,
			Pruned:  last.Pruned,
			Cost:    last.Est.Cost,
		})
		fmt.Printf("%-20s %12d ns/op  %7d evals  %7d pruned\n",
			v.name, r.NsPerOp(), last.Evals, last.Pruned)
	}
	base := float64(file.Results[0].NsPerOp)
	for i := range file.Results {
		file.Results[i].Speedup = base / float64(file.Results[i].NsPerOp)
	}
	fmt.Printf("speedup vs serial exhaustive: pruned %.2fx (GOMAXPROCS=%d)\n",
		file.Results[1].Speedup, file.GOMAXPROCS)

	// Parallel scaling sweep: the pruned search at worker counts
	// {1, 2, 4, GOMAXPROCS}, deduplicated. Each row must reproduce the
	// baseline plan byte-for-byte — scaling that changes answers is a bug,
	// not a speedup.
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	seen := map[int]bool{}
	for _, w := range counts {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		cfg := opt.Config{Profile: p, Market: m, Deadline: deadline, Workers: w}
		var last opt.Result
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := opt.OptimizeContext(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		})
		if planFingerprint(last) != wantPlan {
			log.Fatalf("parallel search at %d workers found a different plan:\n%s\nvs\n%s",
				w, planFingerprint(last), wantPlan)
		}
		row := scalingRow{
			Workers: w,
			NsPerOp: r.NsPerOp(),
			Evals:   last.Evals,
			Pruned:  last.Pruned,
			Cost:    last.Est.Cost,
			Speedup: float64(serialPrunedNs) / float64(r.NsPerOp()),
		}
		file.ParallelScaling = append(file.ParallelScaling, row)
		fmt.Printf("parallel %2d workers  %12d ns/op  %7d evals  %7d pruned  %.2fx vs serial-pruned\n",
			w, row.NsPerOp, row.Evals, row.Pruned, row.Speedup)
	}
	if runtime.GOMAXPROCS(0) >= 4 {
		for _, row := range file.ParallelScaling {
			if row.Workers == 4 && row.Speedup < *minscale4 {
				log.Fatalf("parallel search at 4 workers is %.2fx serial-pruned, below the -minscale4=%.2f floor",
					row.Speedup, *minscale4)
			}
		}
	} else {
		fmt.Printf("scaling gate skipped: GOMAXPROCS=%d < 4\n", runtime.GOMAXPROCS(0))
	}

	ro, err := benchReopt(hours, seed, deadline)
	if err != nil {
		log.Fatal(err)
	}
	file.Reopt = ro
	fmt.Printf("reopt: cold %d ns/op %d evals, warm %d ns/op %d evals (%d memoized), eval ratio %.2f, speedup %.2fx\n",
		ro.ColdNsPerOp, ro.ColdEvals, ro.WarmNsPerOp, ro.WarmEvals, ro.WarmSaved, ro.EvalRatio, ro.WarmSpeedup)
	if ro.WarmRetried {
		log.Fatal("reopt: warm search hit the cold-retry path — the WarmBound seed was inadmissible")
	}
	if ro.EvalRatio > *reoptmax {
		log.Fatalf("reopt: warm search evaluated %.0f%% of cold candidates, above the -reoptmax=%.0f%% ceiling",
			100*ro.EvalRatio, 100**reoptmax)
	}

	if *serveiters > 0 {
		sv, err := benchServe(*serveiters, hours, seed, deadline)
		if err != nil {
			log.Fatal(err)
		}
		file.Serve = sv
		fmt.Printf("serve: %d plans (%.0f%% cache hits), %d ingests, invalidate p50 %v p99 %v\n",
			sv.PlanRequests, 100*sv.HitRate, sv.Ingests,
			time.Duration(sv.IngestP50Ns), time.Duration(sv.IngestP99Ns))
	}

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runObsCheck is the `-obscheck` gate: the κ-subset search with no
// collector installed must match the baseline file's serial-pruned ns/op
// within tolerance. Exits non-zero on a breach.
func runObsCheck(baselinePath string, tolerance float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("obscheck: reading baseline: %v", err)
	}
	var file benchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		log.Fatalf("obscheck: parsing baseline: %v", err)
	}
	var baseNs int64
	for _, r := range file.Results {
		if r.Name == "serial-pruned" {
			baseNs = r.NsPerOp
		}
	}
	if baseNs == 0 {
		log.Fatalf("obscheck: baseline %s has no serial-pruned result", baselinePath)
	}

	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), float64(file.MarketHours), file.Seed)
	p, ok := app.ByName(file.Profile)
	if !ok {
		log.Fatalf("obscheck: baseline profile %q unknown", file.Profile)
	}
	deadline := opt.FastestOnDemand(nil, p).T * 1.5
	cfg := opt.Config{Profile: p, Market: m, Deadline: deadline, Workers: 1}

	// Best-of-N: scheduling noise only inflates individual runs, so the
	// fastest run is the honest measure of the code path's cost.
	const n = 5
	best := int64(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := opt.OptimizeContext(context.Background(), cfg); err != nil {
			log.Fatalf("obscheck: optimize: %v", err)
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}

	overhead := float64(best-baseNs) / float64(baseNs)
	fmt.Printf("obscheck: disabled-tracing serial-pruned best-of-%d %d ns/op, baseline %d ns/op, overhead %+.2f%% (budget %.0f%%)\n",
		n, best, baseNs, 100*overhead, 100*tolerance)
	if overhead > tolerance {
		log.Fatalf("obscheck: overhead %.2f%% exceeds the %.0f%% budget — the disabled observability path got slower (regenerate %s with `make bench` only if the slowdown is intended)",
			100*overhead, 100*tolerance, baselinePath)
	}
	fmt.Println("obscheck: ok")
}

// benchReopt times the T_m re-optimization scenario the serve layer
// runs at every window boundary. A session holds its previous plan and
// the server's shared ReuseCache; one market shard ticks; the session
// re-optimizes warm-started (opt.WarmBound incumbent seed) and
// delta-evaluated (the cache answers unchanged shards from memo),
// compared against a cold search of the same snapshot. An intermediate
// tick-and-re-opt first brings the cache to the steady state the T_m
// loop actually lives in.
func benchReopt(hours int, seed uint64, deadline float64) (*reoptResult, error) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), float64(hours), seed)
	p := app.BT()
	ctx := context.Background()

	cache := opt.NewReuseCache()
	prime := opt.Config{Profile: p, Market: m.Snapshot(), Deadline: deadline, Workers: 1, Reuse: cache}
	res0, err := opt.OptimizeContext(ctx, prime)
	if err != nil {
		return nil, err
	}
	keys := m.Keys()
	if _, err := m.Append(keys[2], []float64{0.19, 0.21}); err != nil {
		return nil, err
	}
	mid := opt.Config{Profile: p, Market: m.Snapshot(), Deadline: deadline, Workers: 1, Reuse: cache}
	if hint, ok := opt.WarmBound(mid, res0.Plan); ok {
		mid.InitialIncumbent = hint
	}
	res1, err := opt.OptimizeContext(ctx, mid)
	if err != nil {
		return nil, err
	}

	// The measured tick: one shard moves, the rest keep their versions.
	if _, err := m.Append(keys[9], []float64{0.27}); err != nil {
		return nil, err
	}
	view := m.Snapshot()

	coldCfg := opt.Config{Profile: p, Market: view, Deadline: deadline, Workers: 1}
	var cold opt.Result
	rc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := opt.OptimizeContext(ctx, coldCfg)
			if err != nil {
				b.Fatal(err)
			}
			cold = res
		}
	})

	// The warm run is timed as a single pass: re-optimizing mutates the
	// cache, so only the first post-tick search is the scenario under
	// test — a b.N loop would measure an ever-warmer cache. WarmBound
	// runs inside the timed region because re-evaluating the previous
	// plan is part of the re-optimization's real cost.
	warmCfg := opt.Config{Profile: p, Market: view, Deadline: deadline, Workers: 1, Reuse: cache}
	start := time.Now()
	if hint, ok := opt.WarmBound(warmCfg, res1.Plan); ok {
		warmCfg.InitialIncumbent = hint
	}
	warm, err := opt.OptimizeContext(ctx, warmCfg)
	warmNs := time.Since(start).Nanoseconds()
	if err != nil {
		return nil, err
	}
	if planFingerprint(warm) != planFingerprint(cold) {
		return nil, fmt.Errorf("reopt: warm plan differs from cold:\n%s\nvs\n%s",
			planFingerprint(warm), planFingerprint(cold))
	}
	ro := &reoptResult{
		ColdNsPerOp: rc.NsPerOp(),
		WarmNsPerOp: warmNs,
		ColdEvals:   cold.Evals,
		WarmEvals:   warm.Evals,
		WarmSaved:   warm.SavedEvals,
		WarmSpeedup: float64(rc.NsPerOp()) / float64(warmNs),
		WarmRetried: warm.WarmRetried,
	}
	if cold.Evals > 0 {
		ro.EvalRatio = float64(warm.Evals) / float64(cold.Evals)
	}
	return ro, nil
}

// benchServe runs the mixed workload: plan requests rotate over
// per-shard restricted candidate sets while every eighth iteration
// ingests a tick on a rotating shard. With vector cache keys only the
// ticked shard's plans recompute, so the steady-state hit rate stays
// high; a global version key would drive it to zero.
func benchServe(iters, hours int, seed uint64, deadline float64) (*serveResult, error) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), float64(hours), seed)
	s, err := serve.New(serve.Config{Market: m})
	if err != nil {
		return nil, err
	}
	h := s.Handler()
	post := func(path string, v any) (int, http.Header, []byte) {
		body, err := json.Marshal(v)
		if err != nil {
			log.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Header(), rec.Body.Bytes()
	}

	keys := m.Keys()
	res := &serveResult{}
	var ingestNs []int64
	tickPrice := 0.02
	for i := 0; i < iters; i++ {
		if i%8 == 7 {
			key := keys[(i/8)%len(keys)]
			tickPrice += 0.0001 // every tick genuinely changes the shard
			start := time.Now()
			code, _, body := post("/v1/prices", serve.PriceTick{
				Type: key.Type, Zone: key.Zone, Prices: []float64{tickPrice, tickPrice},
			})
			ingestNs = append(ingestNs, time.Since(start).Nanoseconds())
			if code != http.StatusOK {
				return nil, fmt.Errorf("ingest %v: %d %s", key, code, body)
			}
			res.Ingests++
			continue
		}
		key := keys[i%len(keys)]
		req := serve.PlanRequest{
			App: "BT", DeadlineHours: deadline,
			Workers: 1, Kappa: 1, GridLevels: 3, MaxGroups: 3,
			Types: []string{key.Type}, Zones: []string{key.Zone},
		}
		code, hdr, body := post("/v1/plan", req)
		if code != http.StatusOK {
			return nil, fmt.Errorf("plan %v: %d %s", key, code, body)
		}
		res.PlanRequests++
		if hdr.Get("X-Sompid-Cache") == "hit" {
			res.CacheHits++
		} else {
			res.CacheMisses++
		}
	}
	if res.PlanRequests > 0 {
		res.HitRate = float64(res.CacheHits) / float64(res.PlanRequests)
	}
	sort.Slice(ingestNs, func(i, j int) bool { return ingestNs[i] < ingestNs[j] })
	if n := len(ingestNs); n > 0 {
		res.IngestP50Ns = ingestNs[n/2]
		res.IngestP99Ns = ingestNs[n*99/100]
	}
	return res, nil
}
