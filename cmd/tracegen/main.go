// Command tracegen synthesizes spot-price histories and writes them as
// CSV, one file per (type, zone) market.
//
// Usage:
//
//	tracegen -hours 720 -seed 42 -out ./traces
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"sompi/internal/cloud"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		hours = flag.Float64("hours", 720, "trace length in hours")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("out", "traces", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), *hours, *seed)
	for _, key := range m.Keys() {
		name := strings.ReplaceAll(key.String(), "/", "_") + ".csv"
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		tr := m.Trace(key.Type, key.Zone)
		if err := tr.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d samples, max $%.3f/h)\n",
			path, tr.Len(), tr.Max())
	}
}
