// Command sompid runs the SOMPI planner as a long-lived HTTP/JSON
// service: plan, evaluate and Monte Carlo requests against a live,
// versioned spot market that grows through streaming price ingestion.
//
// Usage:
//
//	sompid [-addr :8377] [-seed 42] [-hours 720] [-traces DIR]
//	       [-window 15] [-history 96] [-cache 256] [-timeout 60s]
//	       [-retain 0] [-log-format text|ndjson] [-log-level info]
//	       [-trace-ring 4096] [-data-dir DIR] [-fsync] [-snapshot-every 4096]
//	       [-ingest-queue 1024] [-reopt-workers 4]
//	       [-cluster-self a -cluster-node a=URL -cluster-node b=URL ...]
//
// The market is either synthesized (-seed/-hours) or loaded from a
// cmd/tracegen CSV directory (-traces). With -data-dir, every ingested
// tick and session transition is written to a checksummed WAL under DIR
// before it is applied, periodic snapshots bound replay time, and a
// restart recovers the exact pre-crash market and session state before
// accepting traffic. Without -data-dir the service is purely in-memory,
// exactly as before. The v1 API:
//
//	POST /v1/plan        optimize a workload against the latest prices
//	POST /v1/evaluate    cost-model an explicit plan
//	POST /v1/montecarlo  replay a strategy over the ingested market
//	POST /v1/prices      append spot-price ticks (array or NDJSON)
//	GET  /v1/sessions    tracked Algorithm-1 sessions (with audit log)
//	GET  /metrics        Prometheus text exposition
//	GET  /healthz        liveness + market version
//	GET  /debug/trace    recent request spans (?request_id=..., ?limit=N)
//	GET  /debug/pprof/   runtime profiles
//
// POST /v1/plan also accepts ?explain=1, returning the optimizer's
// decision trail alongside the plan.
//
// With -cluster-self/-cluster-node (requires -data-dir), the process
// runs as one node of a static cluster: market shards are owned by
// rendezvous hash, mis-routed ingest and plan requests forward to
// their owner, every peer's WAL replicates into DIR/standby/<peer>,
// and a dead peer's shards and sessions are promoted locally. Cluster
// endpoints: GET /cluster/wal (segment stream), /cluster/status,
// /cluster/healthz and /cluster/metrics (merged views).
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/cluster"
	"sompi/internal/obs"
	"sompi/internal/serve"
	"sompi/internal/store"
)

// nodeFlags collects repeated -cluster-node name=url entries.
type nodeFlags []cluster.Node

func (f *nodeFlags) String() string {
	parts := make([]string, len(*f))
	for i, n := range *f {
		parts[i] = n.Name + "=" + n.URL
	}
	return strings.Join(parts, ",")
}

func (f *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*f = append(*f, cluster.Node{Name: name, URL: strings.TrimSuffix(url, "/")})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sompid: ")
	var (
		addr       = flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port)")
		seed       = flag.Uint64("seed", 42, "market seed for the synthesized market")
		hours      = flag.Float64("hours", 720, "hours of synthesized price history")
		traces     = flag.String("traces", "", "load the market from this cmd/tracegen CSV directory instead of synthesizing")
		window     = flag.Float64("window", 0, "re-optimization window T_m in hours (0 = paper default)")
		history    = flag.Float64("history", 0, "default training history in hours (0 = default 96)")
		cache      = flag.Int("cache", 256, "plan cache entries")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request timeout for plan/evaluate/montecarlo")
		retain     = flag.Float64("retain", 0, "per-shard price retention in hours (0 = unbounded): a long-lived feed keeps only this much trailing history per (type, zone) shard, compacting older samples")
		logFormat  = flag.String("log-format", "text", "structured log encoding: text or ndjson")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		traceRing  = flag.Int("trace-ring", 0, "span ring capacity for /debug/trace (0 = default 4096)")
		dataDir    = flag.String("data-dir", "", "durability directory for the WAL + snapshots (empty = in-memory only)")
		fsync      = flag.Bool("fsync", true, "fsync every WAL append (with -data-dir); off trades the tail since the last sync for latency")
		snapEvery  = flag.Int("snapshot-every", 0, "cut a snapshot every N WAL appends (with -data-dir; 0 = default 4096)")
		ingestQ    = flag.Int("ingest-queue", 0, "per-shard ingest queue capacity in batches; full queues answer 429 (0 = default 1024)")
		reoptWork  = flag.Int("reopt-workers", 0, "session re-optimization worker pool size (0 = default 4)")
		captureLog = flag.String("capture-log", "", "capture every v1 request to a segmented NDJSON log under this directory for cmd/sompi-replay (empty = capture off)")
		captureSeg = flag.Int("capture-segment", 0, "records per capture segment before it is sealed (0 = default 4096)")

		clusterSelf     = flag.String("cluster-self", "", "this node's name in a multi-node cluster (requires -data-dir and at least two -cluster-node entries)")
		clusterProbe    = flag.Duration("cluster-probe", 0, "peer health-probe interval (0 = default 300ms)")
		clusterFailures = flag.Int("cluster-failover-after", 0, "consecutive failed probes before a peer is declared dead and its shards promoted (0 = default 5)")
	)
	var clusterNodes nodeFlags
	flag.Var(&clusterNodes, "cluster-node", "cluster member as name=url (repeatable; must include -cluster-self)")
	flag.Parse()

	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		log.Fatalf("bad -log-format: %v", err)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("bad -log-level: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level, format)

	var m *cloud.Market
	if *traces != "" {
		var err error
		m, err = cloud.LoadMarket(*traces, cloud.DefaultCatalog(), cloud.DefaultZones())
		if err != nil {
			log.Fatalf("loading market: %v", err)
		}
	} else {
		m = cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), *hours, *seed)
	}
	if *retain > 0 {
		m.SetRetention(*retain)
	}

	// With -data-dir, open the store first: serve.New replays its WAL and
	// snapshot into the market and session registry before the listener
	// exists, so the first request already sees the recovered state.
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{Fsync: *fsync})
		if err != nil {
			log.Fatalf("opening data dir: %v", err)
		}
	}

	// Cluster mode: the standby mirrors live next to the node's own WAL,
	// one directory per peer.
	var clusterCfg *serve.ClusterConfig
	if *clusterSelf != "" || len(clusterNodes) > 0 {
		if *clusterSelf == "" || len(clusterNodes) < 2 {
			log.Fatalf("cluster mode needs -cluster-self and at least two -cluster-node entries")
		}
		if *dataDir == "" {
			log.Fatalf("cluster mode requires -data-dir (replication ships WAL segments)")
		}
		clusterCfg = &serve.ClusterConfig{
			Self:          *clusterSelf,
			Nodes:         clusterNodes,
			StandbyDir:    filepath.Join(*dataDir, "standby"),
			ProbeInterval: *clusterProbe,
			FailoverAfter: *clusterFailures,
		}
	}

	s, err := serve.New(serve.Config{
		Market:                m,
		WindowHours:           *window,
		HistoryHours:          *history,
		CacheSize:             *cache,
		RequestTimeout:        *timeout,
		TraceRing:             *traceRing,
		Logger:                logger,
		Store:                 st,
		SnapshotEvery:         *snapEvery,
		IngestQueue:           *ingestQ,
		ReoptWorkers:          *reoptWork,
		CaptureLog:            *captureLog,
		CaptureSegmentRecords: *captureSeg,
		Cluster:               clusterCfg,
	})
	if err != nil {
		log.Fatalf("configuring service: %v", err)
	}

	// One structured line with the effective startup configuration, so
	// operators (and log pipelines) see what this process actually runs
	// with — defaults resolved, not just the flags that were set.
	logger.Info("starting",
		"addr", *addr, "seed", *seed, "hours", *hours, "traces", *traces,
		"window", *window, "history", *history, "cache", *cache,
		"timeout", timeout.String(), "retain", *retain,
		"log_format", *logFormat, "log_level", *logLevel, "trace_ring", *traceRing,
		"data_dir", *dataDir, "fsync", *fsync, "snapshot_every", *snapEvery,
		"ingest_queue", *ingestQ, "reopt_workers", *reoptWork,
		"capture_log", *captureLog,
		"cluster_self", *clusterSelf, "cluster_nodes", len(clusterNodes),
		"market_version", m.Version(), "markets", m.NumMarkets(),
		"frontier_hours", m.MinDuration())

	// Listen before announcing so -addr :0 callers can parse a real port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("sompid: listening on http://%s (market v%d, %d markets, frontier %.1fh)\n",
		ln.Addr(), m.Version(), m.NumMarkets(), m.MinDuration())

	srv := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("sompid: %v: draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		// Requests are drained: cut the shutdown snapshot, fsync and close
		// the active WAL segment so the next boot recovers instantly from
		// the snapshot instead of replaying the log (no-op in-memory).
		if err := s.Close(); err != nil {
			log.Fatalf("closing store: %v", err)
		}
		fmt.Println("sompid: bye")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}
