// Command bench-serve is the serve-path scaling benchmark behind the
// million-session claim: ingest latency must not degrade with the
// number of registered sessions, because the batched appliers and the
// re-optimization scheduler keep session work off the request path.
//
// It boots an in-process sompid handler, then runs four phases:
//
//  1. Baseline — single-tick /v1/prices POSTs over rotating shards with
//     zero sessions, recording client-side p50/p99.
//  2. Register — -sessions identical tracked plans (the plan cache and
//     the re-opt dedup layer make the marginal session cheap).
//  3. Loaded — repeat the phase-1 measurement with every session live;
//     the headline gate is loaded p99 within 2x of baseline p99.
//  4. Boundary — tick every shard across one T_m window, drain with
//     ?sync=1, and record the drain wall time plus the scheduler's own
//     /metrics: re-optimizations, deduped share count, lag p99 and the
//     ingest queue high-water mark.
//
// The regression file is BENCH_serve.json (make bench-serve).
//
// Usage:
//
//	bench-serve [-sessions 10000] [-ingest-iters 300] [-hours 240] [-seed 7] [-window 2] [-out BENCH_serve.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/serve"
)

// latency is a client-side percentile pair for one ingest phase.
type latency struct {
	Samples int   `json:"samples"`
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
}

// boundaryResult is the phase-4 row: one T_m crossing under full load.
type boundaryResult struct {
	DrainSeconds     float64 `json:"drain_seconds"`
	Reoptimizations  float64 `json:"reoptimizations_total"`
	ReoptDeduped     float64 `json:"reopt_deduped_total"`
	SchedulerLagP99S float64 `json:"scheduler_lag_p99_s"`
	IngestQueuePeak  float64 `json:"ingest_queue_peak_depth"`
}

// benchFile is the BENCH_serve.json schema.
type benchFile struct {
	Date            string         `json:"date"`
	CPUs            int            `json:"cpus"`
	Sessions        int            `json:"sessions"`
	WindowHours     float64        `json:"window_hours"`
	Baseline        latency        `json:"ingest_baseline"`
	Loaded          latency        `json:"ingest_loaded"`
	P99Ratio        float64        `json:"ingest_p99_ratio"`
	RegisterSeconds float64        `json:"register_seconds"`
	Boundary        boundaryResult `json:"boundary"`
}

func main() {
	sessions := flag.Int("sessions", 10000, "tracked sessions to register before the loaded phase")
	iters := flag.Int("ingest-iters", 300, "single-tick POSTs per ingest phase")
	hours := flag.Int("hours", 240, "market horizon in hours")
	seed := flag.Uint64("seed", 7, "market generator seed")
	window := flag.Float64("window", 2, "T_m re-optimization window in hours")
	out := flag.String("out", "", "write the result JSON here (default stdout only)")
	maxRatio := flag.Float64("maxratio", 2.0, "fail if loaded p99 exceeds this multiple of baseline p99")
	flag.Parse()

	res, err := run(*sessions, *iters, *hours, *seed, *window)
	if err != nil {
		log.Fatal(err)
	}
	res.Date = time.Now().UTC().Format(time.RFC3339)
	res.CPUs = runtime.NumCPU()
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// The ratio gate needs real parallelism to mean anything: on a
	// runner with fewer than 4 cores the re-opt workers and the client
	// time-slice one CPU, so a slow loaded phase measures the machine,
	// not the request path (same convention as cmd/bench's scaling
	// gate). The ratio is still recorded for the regression file.
	if res.P99Ratio > *maxRatio {
		if runtime.NumCPU() >= 4 {
			log.Fatalf("ingest p99 with %d sessions is %.2fx the empty-server baseline, want <= %gx",
				*sessions, res.P99Ratio, *maxRatio)
		}
		fmt.Fprintf(os.Stderr, "bench-serve: p99 ratio %.2fx exceeds %gx but only %d CPU(s) — gate skipped\n",
			res.P99Ratio, *maxRatio, runtime.NumCPU())
	}
}

func run(sessions, iters, hours int, seed uint64, window float64) (*benchFile, error) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), float64(hours), seed)
	s, err := serve.New(serve.Config{Market: m, WindowHours: window})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	h := s.Handler()
	do := func(method, path string, v any) (int, []byte) {
		var body []byte
		if v != nil {
			var err error
			if body, err = json.Marshal(v); err != nil {
				log.Fatal(err)
			}
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}

	keys := m.Keys()
	tickPrice := 0.02
	ingestPhase := func() (latency, error) {
		var ns []int64
		for i := 0; i < iters; i++ {
			key := keys[i%len(keys)]
			tickPrice += 0.0001
			start := time.Now()
			code, body := do(http.MethodPost, "/v1/prices", serve.PriceTick{
				Type: key.Type, Zone: key.Zone, Prices: []float64{tickPrice},
			})
			switch code {
			case http.StatusOK:
				ns = append(ns, time.Since(start).Nanoseconds())
			case http.StatusTooManyRequests:
				i-- // backpressure retry; its latency is not an apply latency
				time.Sleep(5 * time.Millisecond)
			default:
				return latency{}, fmt.Errorf("ingest %v: %d %s", key, code, body)
			}
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		return latency{Samples: len(ns), P50Ns: ns[len(ns)/2], P99Ns: ns[len(ns)*99/100]}, nil
	}

	res := &benchFile{Sessions: sessions, WindowHours: window}
	if res.Baseline, err = ingestPhase(); err != nil {
		return nil, fmt.Errorf("baseline phase: %w", err)
	}

	plan := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		Track: true,
	}
	regStart := time.Now()
	for i := 0; i < sessions; i++ {
		if code, body := do(http.MethodPost, "/v1/plan", plan); code != http.StatusOK {
			return nil, fmt.Errorf("registering session %d: %d %s", i, code, body)
		}
	}
	res.RegisterSeconds = time.Since(regStart).Seconds()

	if res.Loaded, err = ingestPhase(); err != nil {
		return nil, fmt.Errorf("loaded phase: %w", err)
	}
	res.P99Ratio = float64(res.Loaded.P99Ns) / float64(res.Baseline.P99Ns)

	// Phase 4: push every shard across one full T_m window, then drain.
	// 12 samples per hour is the generator's native tick interval.
	samplesNeeded := int(window*12) + 1
	for _, key := range keys {
		prices := make([]float64, samplesNeeded)
		for i := range prices {
			tickPrice += 0.0001
			prices[i] = tickPrice
		}
		for {
			code, body := do(http.MethodPost, "/v1/prices", serve.PriceTick{
				Type: key.Type, Zone: key.Zone, Prices: prices,
			})
			if code == http.StatusTooManyRequests {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			if code != http.StatusOK {
				return nil, fmt.Errorf("boundary ingest %v: %d %s", key, code, body)
			}
			break
		}
	}
	drainStart := time.Now()
	if code, body := do(http.MethodPost, "/v1/prices?sync=1", []serve.PriceTick{}); code != http.StatusOK {
		return nil, fmt.Errorf("drain: %d %s", code, body)
	}
	res.Boundary.DrainSeconds = time.Since(drainStart).Seconds()

	code, mx := do(http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %d", code)
	}
	text := string(mx)
	if res.Boundary.Reoptimizations, err = metricValue(text, "sompid_reoptimizations_total"); err != nil {
		return nil, err
	}
	if res.Boundary.ReoptDeduped, err = metricValue(text, "sompid_reopt_deduped_total"); err != nil {
		return nil, err
	}
	if res.Boundary.IngestQueuePeak, err = metricValue(text, "sompid_ingest_queue_peak_depth"); err != nil {
		return nil, err
	}
	if res.Boundary.SchedulerLagP99S, err = histogramQuantile(text, "sompid_scheduler_lag_seconds", 0.99); err != nil {
		return nil, err
	}
	if res.Boundary.Reoptimizations < float64(sessions) {
		return nil, fmt.Errorf("only %v re-optimizations after a boundary crossing with %d sessions",
			res.Boundary.Reoptimizations, sessions)
	}
	return res, nil
}

// metricValue extracts an unlabeled gauge/counter value from exposition
// text.
func metricValue(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return 0, fmt.Errorf("parsing %s: %w", name, err)
			}
			return f, nil
		}
	}
	return 0, fmt.Errorf("/metrics has no %s", name)
}

// histogramQuantile resolves a quantile to its upper bucket bound from
// an unlabeled histogram's cumulative buckets.
func histogramQuantile(text, family string, q float64) (float64, error) {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, family+`_bucket{le="`)
		if !ok {
			continue
		}
		end := strings.Index(rest, `"} `)
		if end < 0 {
			continue
		}
		le := math.Inf(1)
		if rest[:end] != "+Inf" {
			if _, err := fmt.Sscanf(rest[:end], "%g", &le); err != nil {
				return 0, fmt.Errorf("parsing %s bucket bound %q: %w", family, rest[:end], err)
			}
		}
		var count float64
		if _, err := fmt.Sscanf(rest[end+3:], "%g", &count); err != nil {
			return 0, fmt.Errorf("parsing %s bucket count: %w", family, err)
		}
		buckets = append(buckets, bucket{le, count})
	}
	if len(buckets) == 0 {
		return 0, fmt.Errorf("/metrics has no %s buckets", family)
	}
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, fmt.Errorf("%s recorded no observations", family)
	}
	for _, b := range buckets {
		if b.count >= q*total {
			return b.le, nil
		}
	}
	return math.Inf(1), nil
}
