// Command replay-smoke is the capture/replay end-to-end gate behind
// `make replay-smoke`. Four stages against real processes:
//
//  1. Capture: boot sompid -capture-log, drive mixed v1 traffic (plans
//     with a cache hit, an explained plan, a synchronous ingest, an
//     evaluate, a seeded Monte Carlo, the GET listings), SIGTERM, and
//     assert the log sealed into complete segments.
//  2. Twin-diff: boot an in-memory sompid and a -data-dir sompid at the
//     same market seed, replay the captured log against both through
//     the sompi-replay binary under a passing rules file, and require
//     exit 0 with zero plan-byte diffs and zero field diffs.
//  3. Gate demo: re-run the same replay under an impossible latency
//     budget and require the distinct rules exit code — the regression
//     gate must actually be able to fail.
//  4. Sustained load: synthesize a mixed plan/ingest/listing capture
//     with the harness writer, replay it full speed at concurrency 4
//     against a fresh sompid, and verify -append-bench merges a replay
//     summary (QPS, per-endpoint p99) into a BENCH_serve.json copy
//     without disturbing the benchmarks already there.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/harness"
	"sompi/internal/serve"
)

const (
	smokeHours = 240
	smokeSeed  = 7
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay-smoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "sompi-replay-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	sompid := filepath.Join(tmp, "sompid")
	replayBin := filepath.Join(tmp, "sompi-replay")
	for bin, pkg := range map[string]string{sompid: "./cmd/sompid", replayBin: "./cmd/sompi-replay"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	capDir := filepath.Join(tmp, "capture")
	captured, err := captureStage(sompid, capDir)
	if err != nil {
		return fmt.Errorf("capture stage: %w", err)
	}
	if err := twinDiffStage(tmp, sompid, replayBin, capDir, captured); err != nil {
		return fmt.Errorf("twin-diff stage: %w", err)
	}
	if err := sustainedLoadStage(tmp, sompid, replayBin); err != nil {
		return fmt.Errorf("sustained-load stage: %w", err)
	}
	return nil
}

// planBody is the deterministic plan request every stage reuses
// (workers=1 keeps search-effort counters reproducible across twins).
func planBody() []byte {
	b, _ := json.Marshal(serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	return b
}

// captureStage boots a capturing sompid, drives one of everything, and
// verifies SIGTERM seals the log into complete segments.
func captureStage(sompid, capDir string) (int, error) {
	cmd, base, err := startSompid(sompid, "-capture-log", capDir, "-capture-segment", "4")
	if err != nil {
		return 0, err
	}
	defer cmd.Process.Kill()

	plan := planBody()
	mc, _ := json.Marshal(serve.MonteCarloRequest{
		App: "BT", DeadlineHours: 60, Runs: 4, Seed: 11, Workers: 1,
	})
	tick, _ := json.Marshal([]serve.PriceTick{{
		Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05, 0.06},
	}})

	// The first plan request doubles as the evaluate stage's input: its
	// served plan is re-posted to /v1/evaluate, so the capture carries a
	// structurally valid evaluate body.
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(plan))
	if err != nil {
		return 0, fmt.Errorf("first plan: %w", err)
	}
	servedPlan, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("first plan: %d %s", resp.StatusCode, servedPlan)
	}
	var pr serve.PlanResponse
	if err := json.Unmarshal(servedPlan, &pr); err != nil {
		return 0, fmt.Errorf("first plan body: %w", err)
	}
	eval, _ := json.Marshal(serve.EvaluateRequest{App: "BT", Plan: pr.Plan})

	traffic := []struct {
		method, path string
		body         []byte
	}{
		{"POST", "/v1/plan", plan}, // identical: the twin replay must see a cache hit
		{"POST", "/v1/plan?explain=1", plan},
		{"POST", "/v1/prices?sync=1", tick},
		{"POST", "/v1/evaluate", eval},
		{"POST", "/v1/montecarlo", mc},
		{"GET", "/v1/sessions", nil},
		{"GET", "/v1/strategies", nil},
	}
	for i, tr := range traffic {
		req, err := http.NewRequest(tr.method, base+tr.path, bytes.NewReader(tr.body))
		if err != nil {
			return 0, err
		}
		if tr.body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, fmt.Errorf("traffic %d %s %s: %w", i, tr.method, tr.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("traffic %d %s %s: %d %s", i, tr.method, tr.path, resp.StatusCode, body)
		}
	}

	if err := stopGracefully(cmd); err != nil {
		return 0, err
	}

	// SIGTERM must have sealed everything: only final-named segments.
	entries, err := os.ReadDir(capDir)
	if err != nil {
		return 0, err
	}
	segments := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".part") {
			return 0, fmt.Errorf("capture log still has an unsealed segment %s after SIGTERM", e.Name())
		}
		segments++
	}
	records, err := harness.Load(capDir)
	if err != nil {
		return 0, err
	}
	requests := len(traffic) + 1 // the first plan request is captured too
	if len(records) != requests {
		return 0, fmt.Errorf("captured %d records for %d requests", len(records), requests)
	}
	if segments < 2 {
		return 0, fmt.Errorf("%d requests at -capture-segment 4 produced %d segments, want rotation", requests, segments)
	}
	for i, rec := range records {
		if rec.Seq != i || rec.RequestID == "" || rec.Status != http.StatusOK {
			return 0, fmt.Errorf("capture record %d malformed: %+v", i, rec)
		}
	}
	fmt.Printf("replay-smoke: captured %d records across %d sealed segments\n", len(records), segments)
	return len(records), nil
}

// twinDiffStage replays the capture against an in-memory and a durable
// sompid at the same market seed: rules must pass with zero diffs, and
// an impossible budget must trip the distinct rules exit code.
func twinDiffStage(tmp, sompid, replayBin, capDir string, captured int) error {
	mem, memBase, err := startSompid(sompid)
	if err != nil {
		return err
	}
	defer mem.Process.Kill()
	disk, diskBase, err := startSompid(sompid, "-data-dir", filepath.Join(tmp, "twin-data"))
	if err != nil {
		return err
	}
	defer disk.Process.Kill()

	// The passing gate: twin equivalence (zero plan-byte diffs, zero
	// field diffs), a latency budget loose enough for CI hardware, and a
	// hit-rate floor the repeated identical plan must clear. Both twins
	// serve every request locally, so the per-target floors simply pin
	// the global one per name — and prove the per-target override path
	// (the one a cluster target with forwarded requests relies on, where
	// proxied plans land in the owner's cache, not the entry node's)
	// stays wired through the rules file.
	rules := filepath.Join(tmp, "rules.json")
	if err := os.WriteFile(rules, []byte(`{
  "max_plan_diffs": 0,
  "max_field_diffs": 0,
  "max_transport_errors": 0,
  "min_cache_hit_rate": 0.1,
  "targets": {
    "mem":  {"min_cache_hit_rate": 0.1},
    "disk": {"min_cache_hit_rate": 0.1}
  },
  "endpoints": {
    "plan":       {"p99_ms": 60000, "max_error_rate": 0},
    "prices":     {"p99_ms": 60000, "max_error_rate": 0},
    "montecarlo": {"p99_ms": 60000, "max_error_rate": 0}
  }
}
`), 0o644); err != nil {
		return err
	}
	report := filepath.Join(tmp, "report.json")
	out, code, err := runReplay(replayBin,
		"-log", capDir,
		"-target", "mem="+memBase, "-target", "disk="+diskBase,
		"-rules", rules, "-out", report)
	if err != nil {
		return err
	}
	if code != harness.ExitOK {
		return fmt.Errorf("twin-diff replay exited %d, want %d:\n%s", code, harness.ExitOK, out)
	}
	var rep harness.Report
	data, err := os.ReadFile(report)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("report.json: %w", err)
	}
	if rep.Records != captured {
		return fmt.Errorf("report covers %d records, capture had %d", rep.Records, captured)
	}
	if rep.PlanDiffs != 0 || rep.FieldDiffs != 0 || rep.TransportErrors != 0 {
		return fmt.Errorf("twins diverged: %d plan diffs, %d field diffs, %d transport errors\n%s",
			rep.PlanDiffs, rep.FieldDiffs, rep.TransportErrors, out)
	}
	hit := false
	for _, t := range rep.Targets {
		if rate, ok := t.HitRate(); ok && rate > 0 {
			hit = true
		}
	}
	if !hit {
		return fmt.Errorf("replayed identical plans produced no cache hit on either twin:\n%s", out)
	}
	fmt.Printf("replay-smoke: twin-diff mem vs disk over %d records: 0 plan diffs, 0 field diffs, rules passed\n", rep.Records)

	// The gate must be able to fail: a sub-microsecond p99 budget no
	// real replay can meet has to exit with the rules code, nothing else.
	badRules := filepath.Join(tmp, "bad-rules.json")
	if err := os.WriteFile(badRules, []byte(`{"endpoints":{"plan":{"p99_ms":0.0001}}}`), 0o644); err != nil {
		return err
	}
	out, code, err = runReplay(replayBin,
		"-log", capDir,
		"-target", "mem="+memBase, "-target", "disk="+diskBase,
		"-rules", badRules)
	if err != nil {
		return err
	}
	if code != harness.ExitRules {
		return fmt.Errorf("violated rules file exited %d, want %d:\n%s", code, harness.ExitRules, out)
	}
	if !strings.Contains(out, "RULE VIOLATION p99_ms[plan]") {
		return fmt.Errorf("violation output names no p99_ms[plan] rule:\n%s", out)
	}
	fmt.Printf("replay-smoke: impossible latency budget tripped exit code %d as designed\n", harness.ExitRules)

	if err := stopGracefully(mem); err != nil {
		return err
	}
	return stopGracefully(disk)
}

// sustainedLoadStage synthesizes a mixed-load capture, replays it full
// speed at concurrency 4 against one sompid, and checks -append-bench
// merges the throughput summary into a BENCH_serve.json-style file.
func sustainedLoadStage(tmp, sompid, replayBin string) error {
	loadDir := filepath.Join(tmp, "load-capture")
	w, err := harness.OpenWriter(loadDir, 256)
	if err != nil {
		return err
	}
	plans := [][]byte{planBody()}
	for _, dl := range []float64{72, 90} {
		b, _ := json.Marshal(serve.PlanRequest{
			App: "BT", DeadlineHours: dl,
			Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		})
		plans = append(plans, b)
	}
	tick, _ := json.Marshal([]serve.PriceTick{{
		Type: cloud.M1Small.Name, Zone: cloud.ZoneB, Prices: []float64{0.1},
	}})
	const rounds = 40
	for i := 0; i < rounds; i++ {
		recs := []harness.Record{
			{Endpoint: "plan", Method: "POST", Path: "/v1/plan", Body: string(plans[i%len(plans)]), Status: 200},
			{Endpoint: "prices", Method: "POST", Path: "/v1/prices", Body: string(tick), Status: 200},
		}
		if i%4 == 0 {
			recs = append(recs, harness.Record{Endpoint: "strategies", Method: "GET", Path: "/v1/strategies", Status: 200})
		}
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				return err
			}
		}
	}
	if err := w.Close(); err != nil {
		return err
	}

	cmd, base, err := startSompid(sompid)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	// Seed the bench copy with an existing key: the merge must keep it.
	bench := filepath.Join(tmp, "BENCH_serve.json")
	if err := os.WriteFile(bench, []byte(`{"existing_suite":{"note":"must survive"}}`), 0o644); err != nil {
		return err
	}
	out, code, err := runReplay(replayBin,
		"-log", loadDir,
		"-target", "mem="+base,
		"-concurrency", "4",
		"-append-bench", bench)
	if err != nil {
		return err
	}
	if code != harness.ExitOK {
		return fmt.Errorf("sustained-load replay exited %d:\n%s", code, out)
	}

	data, err := os.ReadFile(bench)
	if err != nil {
		return err
	}
	var doc struct {
		Existing json.RawMessage `json:"existing_suite"`
		Replay   struct {
			Records   int     `json:"records"`
			QPS       float64 `json:"qps"`
			Endpoints map[string]struct {
				QPS   float64 `json:"qps"`
				P99MS float64 `json:"p99_ms"`
			} `json:"endpoints"`
		} `json:"replay"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench file after append: %w (%s)", err, data)
	}
	if doc.Existing == nil {
		return fmt.Errorf("-append-bench dropped pre-existing keys: %s", data)
	}
	if doc.Replay.Records == 0 || doc.Replay.QPS <= 0 {
		return fmt.Errorf("replay summary empty: %s", data)
	}
	for _, ep := range []string{"plan", "prices"} {
		e, ok := doc.Replay.Endpoints[ep]
		if !ok || e.QPS <= 0 || e.P99MS <= 0 {
			return fmt.Errorf("replay summary missing %s throughput: %s", ep, data)
		}
	}
	fmt.Printf("replay-smoke: sustained load %d records at %.0f qps (plan p99 %.1fms, ingest p99 %.1fms), bench merge ok\n",
		doc.Replay.Records, doc.Replay.QPS,
		doc.Replay.Endpoints["plan"].P99MS, doc.Replay.Endpoints["prices"].P99MS)
	return stopGracefully(cmd)
}

// runReplay executes the sompi-replay binary, returning its combined
// output and exit code (only unexpected failures are errors).
func runReplay(bin string, args ...string) (string, int, error) {
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0, nil
	}
	if exit, ok := err.(*exec.ExitError); ok {
		return string(out), exit.ExitCode(), nil
	}
	return string(out), -1, fmt.Errorf("running sompi-replay: %w\n%s", err, out)
}

// startSompid boots the built binary and returns the process plus its
// announced base URL (same contract as serve-smoke's helper).
func startSompid(bin string, extra ...string) (*exec.Cmd, string, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed)}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("starting sompid: %w", err)
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for lines := 0; base == "" && lines < 20 && sc.Scan(); lines++ {
		banner := sc.Text()
		if i := strings.Index(banner, "http://"); i >= 0 {
			base = strings.Fields(banner[i:])[0]
		}
	}
	if base == "" {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("sompid never printed a listen banner on stdout")
	}
	go io.Copy(io.Discard, stdout)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, "", fmt.Errorf("sompid never became healthy")
}

// stopGracefully SIGTERMs a sompid and waits for a clean exit.
func stopGracefully(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("sompid exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(15 * time.Second):
		return fmt.Errorf("sompid did not exit within 15s of SIGTERM")
	}
}
