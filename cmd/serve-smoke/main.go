// Command serve-smoke is the sompid end-to-end gate: it builds and boots
// a real sompid process on an ephemeral port, ingests a price tick,
// requests a plan over HTTP, byte-diffs the served plan against the
// library-path optimizer at the same market state, and checks graceful
// shutdown on SIGTERM. A second stage boots sompid with -data-dir,
// ingests past a session window boundary, SIGKILLs the process and
// restarts it from the same directory, asserting the market version
// vector, the session listing and the served plan bytes all survive the
// crash. `make serve-smoke` wires it into `make check`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/serve"
)

const (
	smokeHours = 240
	smokeSeed  = 7
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serve-smoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "sompid-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "sompid")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sompid")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building sompid: %w", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting sompid: %w", err)
	}
	defer cmd.Process.Kill()

	// An early stdout line announces the bound address (structured logs
	// go to stderr, but tolerate other stdout chatter before the banner).
	sc := bufio.NewScanner(stdout)
	base := ""
	for lines := 0; base == "" && lines < 20 && sc.Scan(); lines++ {
		banner := sc.Text()
		if i := strings.Index(banner, "http://"); i >= 0 {
			base = strings.Fields(banner[i:])[0]
		}
	}
	if base == "" {
		return fmt.Errorf("sompid never printed a listen banner on stdout")
	}
	fmt.Printf("serve-smoke: sompid at %s\n", base)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	if err := waitHealthy(base); err != nil {
		return err
	}

	// Ingest one tick; the market version must move to 2.
	tick := serve.PriceTick{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05, 0.06}}
	var pricesResp serve.PricesResponse
	if err := postJSON(base+"/v1/prices", tick, &pricesResp); err != nil {
		return fmt.Errorf("ingesting tick: %w", err)
	}
	if pricesResp.MarketVersion != 2 || pricesResp.Ticks != 1 {
		return fmt.Errorf("ingest response %+v, want version 2 after 1 tick", pricesResp)
	}

	// Served plan (workers=1 so the search-effort counters are
	// deterministic too).
	req := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("requesting plan: %w", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("plan request: %d %s", resp.StatusCode, served)
	}
	planReqID := resp.Header.Get("X-Request-Id")
	if planReqID == "" {
		return fmt.Errorf("plan response carries no X-Request-Id header")
	}

	// Library path: rebuild the identical market state in-process and
	// render through the same encoding helper. Any divergence — price
	// generation, ingestion, training window, optimizer, JSON layout —
	// breaks the byte diff.
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), smokeHours, smokeSeed)
	if _, err := m.Append(cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}, tick.Prices); err != nil {
		return err
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		return fmt.Errorf("unknown workload %q", req.App)
	}
	frontier := m.MinDuration()
	lo := math.Max(0, frontier-96)
	res, err := opt.OptimizeContext(context.Background(), req.Config(profile, m.Window(lo, frontier-lo)))
	if err != nil {
		return fmt.Errorf("library optimize: %w", err)
	}
	want, _ := json.Marshal(serve.BuildPlanResponse(m.Version(), res))
	if !bytes.Equal(served, want) {
		return fmt.Errorf("served plan differs from library plan:\n served %s\nlibrary %s", served, want)
	}
	fmt.Println("serve-smoke: served plan is byte-identical to the library path")

	// The flight recorder must have the plan request's trace: filtering
	// /debug/trace by the response's request ID has to surface both the
	// HTTP root span and the optimizer spans nested under it.
	if err := checkTrace(base, planReqID); err != nil {
		return err
	}

	// ?explain=1 must return the same plan plus a populated decision
	// trail, without poisoning the plan cache (the explain body differs
	// from the cached byte-identical plan).
	if err := checkExplain(base, payload, served); err != nil {
		return err
	}

	// The endpoint latency histograms must be live on /metrics.
	if err := checkMetrics(base); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("sompid exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("sompid did not exit within 15s of SIGTERM")
	}
	fmt.Println("serve-smoke: graceful shutdown ok")

	if err := checkCrashRecovery(tmp, bin); err != nil {
		return err
	}
	return checkSustainedIngest(bin)
}

// startSompid boots the built binary with the given extra flags and
// returns the process plus its announced base URL.
func startSompid(bin string, extra ...string) (*exec.Cmd, string, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed)}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("starting sompid: %w", err)
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for lines := 0; base == "" && lines < 20 && sc.Scan(); lines++ {
		banner := sc.Text()
		if i := strings.Index(banner, "http://"); i >= 0 {
			base = strings.Fields(banner[i:])[0]
		}
	}
	if base == "" {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("sompid never printed a listen banner on stdout")
	}
	go io.Copy(io.Discard, stdout)
	if err := waitHealthy(base); err != nil {
		cmd.Process.Kill()
		return nil, "", err
	}
	return cmd, base, nil
}

// marketState extracts the durable market identity from /metrics: the
// composite version and the full per-shard version vector.
func marketState(base string) (string, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return "", fmt.Errorf("fetching metrics: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	var lines []string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "sompid_market_version ") ||
			strings.HasPrefix(line, "sompid_shard_version{") {
			lines = append(lines, line)
		}
	}
	if len(lines) < 2 {
		return "", fmt.Errorf("/metrics has no shard version vector")
	}
	return strings.Join(lines, "\n"), nil
}

// getBytes fetches a URL and returns the raw body.
func getBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %d %s", url, resp.StatusCode, body)
	}
	return body, nil
}

// checkCrashRecovery is the durability stage: boot with -data-dir, track
// a session, ingest past its window boundary so it re-optimizes, capture
// the externally observable state, SIGKILL the process mid-flight and
// restart it from the same directory. Recovery must reproduce the
// version vector, the session listing (plans, audit log, clocks) and
// the served plan bytes exactly.
func checkCrashRecovery(tmp, bin string) error {
	dataDir := filepath.Join(tmp, "data")
	// -window 2 so two hours of ticks cross a re-optimization boundary.
	flags := []string{"-data-dir", dataDir, "-window", "2"}

	cmd, base, err := startSompid(bin, flags...)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	track := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		Track: true,
	}
	var tracked serve.PlanResponse
	if err := postJSON(base+"/v1/plan", track, &tracked); err != nil {
		return fmt.Errorf("tracking session: %w", err)
	}
	if tracked.SessionID == "" {
		return fmt.Errorf("tracked plan returned no session id")
	}

	// Two hours of flat ticks on every shard: crosses the boundary, so
	// the session re-optimizes and its transition lands in the WAL.
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), smokeHours, smokeSeed)
	samples := make([]float64, 24)
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []serve.PriceTick
	for _, key := range m.Keys() {
		ticks = append(ticks, serve.PriceTick{Type: key.Type, Zone: key.Zone, Prices: samples})
	}
	// ?sync=1: re-optimization is asynchronous, and the stage snapshots
	// the session listing next — drain so the boundary's re-opt is in it.
	var pr serve.PricesResponse
	if err := postJSON(base+"/v1/prices?sync=1", ticks, &pr); err != nil {
		return fmt.Errorf("ingesting ticks: %w", err)
	}
	if pr.Reoptimized < 1 {
		return fmt.Errorf("session never re-optimized before the crash: %+v", pr)
	}

	versionsBefore, err := marketState(base)
	if err != nil {
		return err
	}
	sessionsBefore, err := getBytes(base + "/v1/sessions")
	if err != nil {
		return err
	}
	// An untracked plan at the current market: pure function of market
	// state, so byte-equality after restart proves the recovered prices
	// feed the optimizer identically.
	planPayload, _ := json.Marshal(serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(planPayload))
	if err != nil {
		return fmt.Errorf("pre-crash plan: %w", err)
	}
	planBefore, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pre-crash plan: %d %s", resp.StatusCode, planBefore)
	}

	// SIGKILL: no drain, no shutdown snapshot — the data dir holds only
	// what the WAL fsynced.
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	fmt.Println("serve-smoke: SIGKILLed sompid mid-session")

	cmd2, base2, err := startSompid(bin, flags...)
	if err != nil {
		return fmt.Errorf("restarting from %s: %w", dataDir, err)
	}
	defer cmd2.Process.Kill()

	versionsAfter, err := marketState(base2)
	if err != nil {
		return err
	}
	if versionsBefore != versionsAfter {
		return fmt.Errorf("market version vector did not survive the crash:\nbefore:\n%s\nafter:\n%s", versionsBefore, versionsAfter)
	}
	sessionsAfter, err := getBytes(base2 + "/v1/sessions")
	if err != nil {
		return err
	}
	if !bytes.Equal(sessionsBefore, sessionsAfter) {
		return fmt.Errorf("/v1/sessions did not survive the crash:\nbefore: %s\nafter:  %s", sessionsBefore, sessionsAfter)
	}
	resp, err = http.Post(base2+"/v1/plan", "application/json", bytes.NewReader(planPayload))
	if err != nil {
		return fmt.Errorf("post-crash plan: %w", err)
	}
	planAfter, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post-crash plan: %d %s", resp.StatusCode, planAfter)
	}
	if !bytes.Equal(planBefore, planAfter) {
		return fmt.Errorf("served plan changed across the crash:\nbefore: %s\nafter:  %s", planBefore, planAfter)
	}

	// The recovered daemon must say so on /metrics: a nonzero recovery
	// duration and appended WAL records carried over from the first life.
	mx, err := getBytes(base2 + "/metrics")
	if err != nil {
		return err
	}
	recovered := false
	for _, line := range strings.Split(string(mx), "\n") {
		if v, ok := strings.CutPrefix(line, "sompid_recovery_seconds "); ok && v != "0.000000" {
			recovered = true
		}
	}
	if !recovered {
		return fmt.Errorf("/metrics reports no recovery ran after the restart")
	}

	// Clean SIGTERM so the second boot also exercises the shutdown
	// snapshot path on a recovered store.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("recovered sompid exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("recovered sompid did not exit within 15s of SIGTERM")
	}
	fmt.Println("serve-smoke: crash recovery restored the version vector, sessions and plan bytes")
	return nil
}

// checkSustainedIngest is the batched-ingest stage: boot sompid with a
// small ingest queue and a worker pool, track identical sessions plus a
// distinct one, firehose concurrent multi-shard NDJSON across two
// window boundaries, drain, and gate the new observability families —
// the queue's high-water mark must respect its configured ceiling, the
// scheduler-lag p99 must be sane, and the identical sessions must have
// coalesced at least one optimizer run.
func checkSustainedIngest(bin string) error {
	const queueCap = 64
	cmd, base, err := startSompid(bin,
		"-window", "2", "-ingest-queue", fmt.Sprint(queueCap), "-reopt-workers", "4")
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	track := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		Track: true,
	}
	for i := 0; i < 2; i++ { // the identical pair that must dedup
		var tracked serve.PlanResponse
		if err := postJSON(base+"/v1/plan", track, &tracked); err != nil {
			return fmt.Errorf("tracking session %d: %w", i, err)
		}
	}
	other := track
	other.DeadlineHours = 90
	var tracked serve.PlanResponse
	if err := postJSON(base+"/v1/plan", other, &tracked); err != nil {
		return fmt.Errorf("tracking distinct session: %w", err)
	}

	// 4.5 hours of flat prices per shard — two T_m boundaries — fed as
	// concurrent NDJSON streams, several requests per shard.
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), smokeHours, smokeSeed)
	keys := m.Keys()
	const rounds = 9 // 0.5h per round
	samples := strings.TrimSuffix(strings.Repeat("0.05,", 6), ",")
	errs := make(chan error, len(keys))
	for i := range keys {
		go func(key cloud.MarketKey) {
			for r := 0; r < rounds; r++ {
				body := fmt.Sprintf("{\"type\":%q,\"zone\":%q,\"prices\":[%s]}\n", key.Type, key.Zone, samples)
				resp, err := http.Post(base+"/v1/prices", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					r-- // backpressure is a legal answer; retry the round
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("firehose on %v: status %d", key, resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(keys[i])
	}
	for range keys {
		if err := <-errs; err != nil {
			return err
		}
	}
	var pr serve.PricesResponse
	if err := postJSON(base+"/v1/prices?sync=1", []serve.PriceTick{}, &pr); err != nil {
		return fmt.Errorf("draining scheduler: %w", err)
	}

	mx, err := getBytes(base + "/metrics")
	if err != nil {
		return err
	}
	text := string(mx)
	peak, err := metricValue(text, "sompid_ingest_queue_peak_depth")
	if err != nil {
		return err
	}
	if peak > queueCap {
		return fmt.Errorf("ingest queue peak depth %v exceeds its configured ceiling %d", peak, queueCap)
	}
	lagP99, err := histogramQuantile(text, "sompid_scheduler_lag_seconds", 0.99)
	if err != nil {
		return err
	}
	// Loose by design: the gate catches a scheduler that wedges or lags
	// by whole seconds, not micro-regressions.
	if lagP99 > 30 {
		return fmt.Errorf("scheduler lag p99 bucket %vs, want under 30s", lagP99)
	}
	deduped, err := metricValue(text, "sompid_reopt_deduped_total")
	if err != nil {
		return err
	}
	if deduped < 1 {
		return fmt.Errorf("identical tracked sessions never coalesced an optimizer run (reopt_deduped_total %v)", deduped)
	}
	reopts, err := metricValue(text, "sompid_reoptimizations_total")
	if err != nil {
		return err
	}
	if reopts < 6 { // 3 sessions x 2 boundaries
		return fmt.Errorf("only %v re-optimizations across 3 sessions and 2 boundaries", reopts)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("sompid exited uncleanly after the sustained-ingest stage: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("sompid did not exit within 15s of SIGTERM after sustained ingest")
	}
	fmt.Printf("serve-smoke: sustained ingest ok (queue peak %.0f/%d, scheduler lag p99 <= %vs, %0.f deduped re-opts)\n",
		peak, queueCap, lagP99, deduped)
	return nil
}

// metricValue extracts an unlabeled gauge/counter value from exposition
// text.
func metricValue(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return 0, fmt.Errorf("parsing %s: %w", name, err)
			}
			return f, nil
		}
	}
	return 0, fmt.Errorf("/metrics has no %s", name)
}

// histogramQuantile resolves a quantile to its upper bucket bound from
// an unlabeled histogram's cumulative buckets (+Inf maps to math.Inf).
func histogramQuantile(text, family string, q float64) (float64, error) {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, family+`_bucket{le="`)
		if !ok {
			continue
		}
		end := strings.Index(rest, `"} `)
		if end < 0 {
			continue
		}
		le := math.Inf(1)
		if rest[:end] != "+Inf" {
			if _, err := fmt.Sscanf(rest[:end], "%g", &le); err != nil {
				return 0, fmt.Errorf("parsing %s bucket bound %q: %w", family, rest[:end], err)
			}
		}
		var count float64
		if _, err := fmt.Sscanf(rest[end+3:], "%g", &count); err != nil {
			return 0, fmt.Errorf("parsing %s bucket count: %w", family, err)
		}
		buckets = append(buckets, bucket{le, count})
	}
	if len(buckets) == 0 {
		return 0, fmt.Errorf("/metrics has no %s buckets", family)
	}
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, fmt.Errorf("%s recorded no observations", family)
	}
	for _, b := range buckets {
		if b.count >= q*total {
			return b.le, nil
		}
	}
	return math.Inf(1), nil
}

// checkTrace pulls the span ring filtered to the plan request's ID and
// verifies the HTTP root span and the optimizer stage spans are there.
func checkTrace(base, reqID string) error {
	resp, err := http.Get(base + "/debug/trace?request_id=" + reqID)
	if err != nil {
		return fmt.Errorf("fetching trace: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace: %d %s", resp.StatusCode, body)
	}
	var tr serve.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("/debug/trace is not valid JSON: %w (%s)", err, body)
	}
	if tr.Total == 0 || len(tr.Spans) == 0 {
		return fmt.Errorf("/debug/trace has no spans for request %s: %s", reqID, body)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.TraceID != reqID {
			return fmt.Errorf("span %q has trace %q, want %q", sp.Name, sp.TraceID, reqID)
		}
		if sp.SpanID == 0 || sp.DurationNs < 0 {
			return fmt.Errorf("span %q malformed: %+v", sp.Name, sp)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"http.plan", "opt.optimize", "opt.subset_search"} {
		if !names[want] {
			return fmt.Errorf("trace for %s is missing span %q (got %v)", reqID, want, names)
		}
	}
	fmt.Printf("serve-smoke: /debug/trace has %d spans for the plan request\n", len(tr.Spans))
	return nil
}

// checkExplain re-requests the plan with ?explain=1 and verifies the
// trail is populated while the plan itself is unchanged.
func checkExplain(base string, payload, served []byte) error {
	resp, err := http.Post(base+"/v1/plan?explain=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("requesting explained plan: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("explain request: %d %s", resp.StatusCode, body)
	}
	var pr serve.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return fmt.Errorf("explained plan is not valid JSON: %w", err)
	}
	ex := pr.Explain
	if ex == nil {
		return fmt.Errorf("?explain=1 returned no explain payload: %s", body)
	}
	if len(ex.Candidates) == 0 || len(ex.Stages) == 0 || len(ex.Selected) == 0 {
		return fmt.Errorf("explain trail incomplete: %d candidates, %d stages, %d selected",
			len(ex.Candidates), len(ex.Stages), len(ex.Selected))
	}
	// Stripping the trail must give back the plan the cached path served —
	// explain observes the decision, never perturbs it. Search-effort
	// counters are normalized first: the explained request bypasses the
	// plan cache and recomputes against the server's now-warm reuse cache,
	// which legitimately changes Evals/Pruned/SavedEvals but never the plan.
	var servedPR serve.PlanResponse
	if err := json.Unmarshal(served, &servedPR); err != nil {
		return fmt.Errorf("served plan is not valid JSON: %w", err)
	}
	pr.Explain = nil
	pr.Evals, pr.Pruned, pr.SavedEvals = servedPR.Evals, servedPR.Pruned, servedPR.SavedEvals
	stripped, _ := json.Marshal(pr)
	reserved, _ := json.Marshal(servedPR)
	if !bytes.Equal(stripped, reserved) {
		return fmt.Errorf("explained plan differs from served plan:\nexplain %s\n served %s", stripped, reserved)
	}
	fmt.Printf("serve-smoke: ?explain=1 returned %d candidate decisions over %d stages, plan unchanged\n",
		len(ex.Candidates), len(ex.Stages))
	return nil
}

// checkMetrics verifies the request-latency histogram is exposed with
// its TYPE header and has recorded the plan requests.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE sompid_request_seconds histogram",
		`sompid_request_seconds_count{endpoint="plan"}`,
		`sompid_request_seconds_bucket{endpoint="plan",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics is missing %q", want)
		}
	}
	fmt.Println("serve-smoke: request latency histograms are exposed")
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("sompid never became healthy")
}

func postJSON(url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %d %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
