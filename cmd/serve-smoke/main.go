// Command serve-smoke is the sompid end-to-end gate: it builds and boots
// a real sompid process on an ephemeral port, ingests a price tick,
// requests a plan over HTTP, byte-diffs the served plan against the
// library-path optimizer at the same market state, and checks graceful
// shutdown on SIGTERM. `make serve-smoke` wires it into `make check`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/serve"
)

const (
	smokeHours = 240
	smokeSeed  = 7
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serve-smoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "sompid-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "sompid")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sompid")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building sompid: %w", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting sompid: %w", err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		return fmt.Errorf("sompid printed nothing")
	}
	banner := sc.Text()
	i := strings.Index(banner, "http://")
	if i < 0 {
		return fmt.Errorf("no listen address in banner %q", banner)
	}
	base := strings.Fields(banner[i:])[0]
	fmt.Printf("serve-smoke: sompid at %s\n", base)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	if err := waitHealthy(base); err != nil {
		return err
	}

	// Ingest one tick; the market version must move to 2.
	tick := serve.PriceTick{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05, 0.06}}
	var pricesResp serve.PricesResponse
	if err := postJSON(base+"/v1/prices", tick, &pricesResp); err != nil {
		return fmt.Errorf("ingesting tick: %w", err)
	}
	if pricesResp.MarketVersion != 2 || pricesResp.Ticks != 1 {
		return fmt.Errorf("ingest response %+v, want version 2 after 1 tick", pricesResp)
	}

	// Served plan (workers=1 so the search-effort counters are
	// deterministic too).
	req := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("requesting plan: %w", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("plan request: %d %s", resp.StatusCode, served)
	}

	// Library path: rebuild the identical market state in-process and
	// render through the same encoding helper. Any divergence — price
	// generation, ingestion, training window, optimizer, JSON layout —
	// breaks the byte diff.
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), smokeHours, smokeSeed)
	if _, err := m.Append(cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}, tick.Prices); err != nil {
		return err
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		return fmt.Errorf("unknown workload %q", req.App)
	}
	frontier := m.MinDuration()
	lo := math.Max(0, frontier-96)
	res, err := opt.OptimizeContext(context.Background(), req.Config(profile, m.Window(lo, frontier-lo)))
	if err != nil {
		return fmt.Errorf("library optimize: %w", err)
	}
	want, _ := json.Marshal(serve.BuildPlanResponse(m.Version(), res))
	if !bytes.Equal(served, want) {
		return fmt.Errorf("served plan differs from library plan:\n served %s\nlibrary %s", served, want)
	}
	fmt.Println("serve-smoke: served plan is byte-identical to the library path")

	// Graceful shutdown: SIGTERM must drain and exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("sompid exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("sompid did not exit within 15s of SIGTERM")
	}
	fmt.Println("serve-smoke: graceful shutdown ok")
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("sompid never became healthy")
}

func postJSON(url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %d %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
