// Command cluster-smoke is the 2-node failover gate behind
// `make cluster-smoke`. It runs real sompid processes end to end:
//
//  1. Topology: boot nodes a and b as a 2-node cluster plus a
//     single-node reference at the same market seed, and assert the
//     rendezvous ownership split is disjoint, covering, and
//     non-degenerate.
//  2. Twin-diff: synthesize a mixed capture (synchronous ingest across
//     both owners' shards, repeated plans, listings) with the harness
//     writer and replay it through sompi-replay against the single
//     node and the cluster target (`cluster=urlA,urlB`), requiring
//     exit 0, zero plan-byte diffs, zero field diffs, and the
//     per-target cache-hit floors.
//  3. Failover: create a tracked session that the proxy lands on b,
//     ingest past a window boundary so it re-optimizes, then SIGKILL
//     b mid-session. Node a must promote b's shards and sessions,
//     serve the promoted shard's next plan byte-identical to the
//     uninterrupted single node, list the adopted session, and keep
//     ingesting — and the merged /cluster/metrics and /cluster/healthz
//     views must stay sane with a dead member.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"sompi/internal/harness"
	"sompi/internal/serve"
)

const (
	smokeHours  = 240
	smokeSeed   = 7
	smokeWindow = 2 // hours per session window: 2.5h of ticks crosses a boundary
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster-smoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "sompi-cluster-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	sompid := filepath.Join(tmp, "sompid")
	replayBin := filepath.Join(tmp, "sompi-replay")
	for bin, pkg := range map[string]string{sompid: "./cmd/sompid", replayBin: "./cmd/sompi-replay"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Cluster node URLs must be known before either process starts (the
	// -cluster-node flags carry them), so reserve two ephemeral ports up
	// front instead of parsing banners.
	portA, err := freePort()
	if err != nil {
		return err
	}
	portB, err := freePort()
	if err != nil {
		return err
	}
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	clusterFlags := []string{
		"-cluster-node", "a=" + urlA,
		"-cluster-node", "b=" + urlB,
		"-cluster-probe", "50ms",
		"-cluster-failover-after", "3",
	}
	nodeA, err := startSompid(sompid, append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", portA),
		"-data-dir", filepath.Join(tmp, "node-a"),
		"-cluster-self", "a"}, clusterFlags...)...)
	if err != nil {
		return err
	}
	defer nodeA.Process.Kill()
	nodeB, err := startSompid(sompid, append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", portB),
		"-data-dir", filepath.Join(tmp, "node-b"),
		"-cluster-self", "b"}, clusterFlags...)...)
	if err != nil {
		return err
	}
	defer nodeB.Process.Kill()
	ref, refURL, err := startRef(sompid)
	if err != nil {
		return err
	}
	defer ref.Process.Kill()
	for _, u := range []string{urlA, urlB, refURL} {
		if err := waitHealthy(u); err != nil {
			return err
		}
	}

	bShard, err := checkTopology(urlA, urlB)
	if err != nil {
		return fmt.Errorf("topology stage: %w", err)
	}
	if err := twinDiff(tmp, replayBin, refURL, urlA, urlB); err != nil {
		return fmt.Errorf("twin-diff stage: %w", err)
	}
	if err := failover(nodeB, urlA, urlB, refURL, bShard); err != nil {
		return fmt.Errorf("failover stage: %w", err)
	}
	return nil
}

// checkTopology asserts the rendezvous split over the default market is
// disjoint, covering, and gives both nodes work, then returns one shard
// owned by b (the node the failover stage kills). It also waits until
// a's failure detector has seen b healthy: failover only arms after
// that, so killing earlier would never promote.
func checkTopology(urlA, urlB string) (string, error) {
	var stA, stB serve.ClusterStatus
	if err := getJSON(urlA+"/cluster/status", &stA); err != nil {
		return "", err
	}
	if err := getJSON(urlB+"/cluster/status", &stB); err != nil {
		return "", err
	}
	if len(stA.OwnedShards) == 0 || len(stB.OwnedShards) == 0 {
		return "", fmt.Errorf("degenerate ownership split: a=%d b=%d shards", len(stA.OwnedShards), len(stB.OwnedShards))
	}
	owned := map[string]string{}
	for _, sh := range stA.OwnedShards {
		owned[sh] = "a"
	}
	for _, sh := range stB.OwnedShards {
		if owned[sh] == "a" {
			return "", fmt.Errorf("shard %s claimed by both nodes", sh)
		}
		owned[sh] = "b"
	}
	if len(owned) != 12 {
		return "", fmt.Errorf("ownership covers %d shards, want 12", len(owned))
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st serve.ClusterStatus
		if err := getJSON(urlA+"/cluster/status", &st); err == nil {
			armed := false
			for _, p := range st.PeersUp {
				armed = armed || p == "b"
			}
			if armed {
				break
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("a's failure detector never saw b healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("cluster-smoke: ownership split a=%d b=%d shards, detector armed\n",
		len(stA.OwnedShards), len(stB.OwnedShards))
	return stB.OwnedShards[0], nil
}

// twinDiff replays a synthesized mixed capture against the single node
// and the cluster (entered through a; b is the fallback URL) and
// requires byte-level equivalence. Every plan in the capture is
// unrestricted, so both targets serve the identical optimization
// sequence locally — which keeps even the reuse-cache effort counters,
// and therefore the plan bytes, in lockstep.
func twinDiff(tmp, replayBin, refURL, urlA, urlB string) error {
	capDir := filepath.Join(tmp, "capture")
	w, err := harness.OpenWriter(capDir, 256)
	if err != nil {
		return err
	}
	planA, _ := json.Marshal(serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	planB, _ := json.Marshal(serve.PlanRequest{
		App: "BT", DeadlineHours: 90,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	records := 0
	for round := 0; round < 6; round++ {
		recs := []harness.Record{
			// Mixed ingest: one batch covering every shard, so the entry
			// node keeps its own shards and forwards the peer's. ?sync=1
			// makes the cluster converge before the next record.
			{Endpoint: "prices", Method: "POST", Path: "/v1/prices?sync=1", Body: string(flatTicks(0.25)), Status: 200},
			// A fresh market version: the first plan misses, its repeat
			// must hit — on both targets (the per-target hit-rate floors).
			{Endpoint: "plan", Method: "POST", Path: "/v1/plan", Body: string(planA), Status: 200},
			{Endpoint: "plan", Method: "POST", Path: "/v1/plan", Body: string(planA), Status: 200},
			{Endpoint: "plan", Method: "POST", Path: "/v1/plan", Body: string(planB), Status: 200},
		}
		if round%3 == 0 {
			recs = append(recs, harness.Record{Endpoint: "strategies", Method: "GET", Path: "/v1/strategies", Status: 200})
		}
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				return err
			}
			records++
		}
	}
	if err := w.Close(); err != nil {
		return err
	}

	rules := filepath.Join(tmp, "rules.json")
	if err := os.WriteFile(rules, []byte(`{
  "max_plan_diffs": 0,
  "max_field_diffs": 0,
  "max_transport_errors": 0,
  "min_cache_hit_rate": 0.1,
  "targets": {
    "single":  {"min_cache_hit_rate": 0.1},
    "cluster": {"min_cache_hit_rate": 0.1}
  },
  "endpoints": {
    "plan":   {"p99_ms": 60000, "max_error_rate": 0},
    "prices": {"p99_ms": 60000, "max_error_rate": 0}
  }
}
`), 0o644); err != nil {
		return err
	}
	report := filepath.Join(tmp, "report.json")
	cmd := exec.Command(replayBin,
		"-log", capDir,
		"-target", "single="+refURL,
		"-target", "cluster="+urlA+","+urlB,
		"-rules", rules, "-out", report)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err = cmd.Run()
	if code, ok := exitCode(err); !ok {
		return fmt.Errorf("running sompi-replay: %w", err)
	} else if code != harness.ExitOK {
		return fmt.Errorf("cluster twin-diff exited %d, want %d:\n%s", code, harness.ExitOK, buf.String())
	}
	var rep harness.Report
	data, err := os.ReadFile(report)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("report.json: %w", err)
	}
	if rep.Records != records {
		return fmt.Errorf("report covers %d records, capture had %d", rep.Records, records)
	}
	if rep.PlanDiffs != 0 || rep.FieldDiffs != 0 || rep.TransportErrors != 0 {
		return fmt.Errorf("single node and cluster diverged: %d plan diffs, %d field diffs, %d transport errors\n%s",
			rep.PlanDiffs, rep.FieldDiffs, rep.TransportErrors, buf.String())
	}
	fmt.Printf("cluster-smoke: twin-diff single vs cluster over %d records: 0 plan diffs, 0 field diffs\n", rep.Records)
	return nil
}

// failover kills node b mid-session and requires a to take over:
// promotion, the adopted session, byte-identical plans for the promoted
// shard, continued ingest, and sane merged views.
func failover(nodeB *exec.Cmd, urlA, urlB, refURL, bShard string) error {
	parts := strings.SplitN(bShard, "/", 2)
	if len(parts) != 2 {
		return fmt.Errorf("malformed shard key %q", bShard)
	}
	restricted := serve.PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		Types: []string{parts[0]}, Zones: []string{parts[1]},
	}

	// A tracked session on a b-owned shard, created through a: the proxy
	// must land it on b under b's node-prefixed session id.
	tracked := restricted
	tracked.Track = true
	body, _ := json.Marshal(tracked)
	var plan serve.PlanResponse
	if err := postJSON(urlA+"/v1/plan", body, &plan); err != nil {
		return err
	}
	if !strings.HasPrefix(plan.SessionID, "b/") {
		return fmt.Errorf("proxied tracked session id = %q, want b/ prefix", plan.SessionID)
	}

	// Cross a window boundary through b directly (mixed entry points:
	// the twin-diff ingested through a). The session re-optimizes on b;
	// an empty flush through a then replicates the re-optimized state,
	// so what a adopts below is current.
	var pr serve.PricesResponse
	if err := postJSON(urlB+"/v1/prices?sync=1", flatTicks(2.5), &pr); err != nil {
		return err
	}
	if pr.Reoptimized < 1 {
		return fmt.Errorf("sync ingest reported %d re-optimizations, want >=1", pr.Reoptimized)
	}
	if err := postJSON(refURL+"/v1/prices?sync=1", flatTicks(2.5), nil); err != nil {
		return err
	}
	if err := postJSON(urlA+"/v1/prices?sync=1", []byte("[]"), nil); err != nil {
		return err
	}

	// SIGKILL b mid-session. No shutdown hooks run — exactly the spot
	// interruption the paper's replication discipline is about.
	if err := nodeB.Process.Kill(); err != nil {
		return err
	}
	deadline := time.Now().Add(20 * time.Second)
	for promoted := false; !promoted; {
		var st serve.ClusterStatus
		if err := getJSON(urlA+"/cluster/status", &st); err == nil {
			for _, p := range st.Promoted {
				promoted = promoted || p == "b"
			}
		}
		if promoted {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("a never promoted b after SIGKILL")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("cluster-smoke: a promoted b's shards after SIGKILL")

	// The promoted shard's next plan, served by a, must be byte-identical
	// to the uninterrupted single node. Both processes ran the identical
	// unrestricted optimization sequence (the twin-diff replays against
	// each target), so even the search-effort counters agree.
	body, _ = json.Marshal(restricted)
	got, err := postBytes(urlA+"/v1/plan", body)
	if err != nil {
		return err
	}
	want, err := postBytes(refURL+"/v1/plan", body)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("promoted-shard plan diverged from the single node:\ncluster: %s\nsingle:  %s", got, want)
	}
	fmt.Println("cluster-smoke: promoted-shard plan is byte-identical to the single node")

	// The adopted session must be first-class on a, with its pre-kill
	// re-optimization history intact.
	var sessions []serve.SessionInfo
	if err := getJSON(urlA+"/v1/sessions", &sessions); err != nil {
		return err
	}
	found := false
	for _, s := range sessions {
		if s.ID == plan.SessionID {
			found = true
			if s.Reoptimized < 1 {
				return fmt.Errorf("adopted session %s lost its re-optimization count", s.ID)
			}
		}
	}
	if !found {
		return fmt.Errorf("adopted session %s missing from a's listing", plan.SessionID)
	}

	// Post-failover ingest: a now owns everything, nothing is forwarded,
	// and the adopted session keeps re-optimizing locally.
	if err := postJSON(urlA+"/v1/prices?sync=1", flatTicks(2.5), &pr); err != nil {
		return err
	}
	if pr.Reoptimized < 1 {
		return fmt.Errorf("post-failover ingest reported %d re-optimizations, want >=1 (adopted session)", pr.Reoptimized)
	}
	if err := postJSON(refURL+"/v1/prices?sync=1", flatTicks(2.5), nil); err != nil {
		return err
	}
	// The adopted session's re-optimizations touch a's reuse cache (the
	// single node has no session), so effort counters may legitimately
	// differ now — everything else must still match exactly.
	got, err = postBytes(urlA+"/v1/plan", body)
	if err != nil {
		return err
	}
	want, err = postBytes(refURL+"/v1/plan", body)
	if err != nil {
		return err
	}
	gs, err := stripSearchEffort(got)
	if err != nil {
		return err
	}
	ws, err := stripSearchEffort(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(gs, ws) {
		return fmt.Errorf("post-failover plan diverged beyond search effort:\ncluster: %s\nsingle:  %s", got, want)
	}

	// Merged views with a dead member: /cluster/healthz reports b dead,
	// /cluster/metrics carries only a's samples (node-labelled, one
	// header per family) and records the promotion.
	var ch serve.ClusterHealthResponse
	if err := getJSON(urlA+"/cluster/healthz", &ch); err != nil {
		return err
	}
	for _, n := range ch.Nodes {
		switch n.Name {
		case "a":
			if n.Status != "ok" {
				return fmt.Errorf("merged healthz: a is %q, want ok", n.Status)
			}
		case "b":
			if n.Status != "dead" {
				return fmt.Errorf("merged healthz: b is %q, want dead", n.Status)
			}
		}
	}
	metrics, err := getBytes(urlA + "/cluster/metrics")
	if err != nil {
		return err
	}
	text := string(metrics)
	if !strings.Contains(text, `node="a"`) {
		return fmt.Errorf("merged metrics carry no node=\"a\" samples")
	}
	if strings.Contains(text, `node="b"`) {
		return fmt.Errorf("merged metrics still carry node=\"b\" samples after promotion")
	}
	if got := strings.Count(text, "# HELP sompid_market_version "); got != 1 {
		return fmt.Errorf("merged metrics repeat the sompid_market_version header %d times, want 1", got)
	}
	if !strings.Contains(text, `sompid_cluster_promotions_total{node="a"} 1`) {
		return fmt.Errorf("merged metrics do not record a's promotion")
	}
	fmt.Println("cluster-smoke: merged healthz and metrics are sane with a dead member")
	return nil
}

// flatTicks is the deterministic all-shard feed: hours of flat 0.05
// samples (12 per hour) for each of the 12 default market shards.
func flatTicks(hours float64) []byte {
	samples := make([]float64, int(hours*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []serve.PriceTick
	for _, ty := range []string{"m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"} {
		for _, z := range []string{"us-east-1a", "us-east-1b", "us-east-1c"} {
			ticks = append(ticks, serve.PriceTick{Type: ty, Zone: z, Prices: samples})
		}
	}
	b, _ := json.Marshal(ticks)
	return b
}

// stripSearchEffort drops the reuse-cache effort counters from a plan
// response; equal maps re-marshal to equal bytes (JSON keys sort).
func stripSearchEffort(raw []byte) ([]byte, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("decoding plan response %s: %w", raw, err)
	}
	delete(m, "evals")
	delete(m, "pruned")
	delete(m, "saved_evals")
	return json.Marshal(m)
}

// freePort reserves an ephemeral TCP port and releases it for the node
// process to claim. The tiny reuse race is acceptable in a smoke gate.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	return port, ln.Close()
}

// startSompid boots a cluster node on a pre-assigned address.
func startSompid(bin string, extra ...string) (*exec.Cmd, error) {
	args := append([]string{
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed),
		"-window", fmt.Sprint(smokeWindow)}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting sompid: %w", err)
	}
	return cmd, nil
}

// startRef boots the single-node reference on an ephemeral port and
// parses its listen banner for the base URL.
func startRef(bin string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(smokeHours),
		"-seed", fmt.Sprint(smokeSeed),
		"-window", fmt.Sprint(smokeWindow))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("starting reference sompid: %w", err)
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for lines := 0; base == "" && lines < 20 && sc.Scan(); lines++ {
		banner := sc.Text()
		if i := strings.Index(banner, "http://"); i >= 0 {
			base = strings.Fields(banner[i:])[0]
		}
	}
	if base == "" {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("reference sompid never printed a listen banner")
	}
	go io.Copy(io.Discard, stdout)
	return cmd, base, nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func exitCode(err error) (int, bool) {
	if err == nil {
		return 0, true
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), true
	}
	return 0, false
}

func postBytes(url string, body []byte) ([]byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return b, nil
}

func postJSON(url string, body []byte, out any) error {
	b, err := postBytes(url, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

func getBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return b, nil
}

func getJSON(url string, out any) error {
	b, err := getBytes(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}
