// Command bench-replay is the sustained-load replay benchmark behind
// `make bench-replay`: it synthesizes a mixed plan/ingest/listing
// capture with the harness writer, boots a real sompid on an ephemeral
// port, replays the capture full speed at a fixed concurrency, and
// appends the plan QPS / ingest QPS / p99-under-mixed-load summary to
// a BENCH_serve.json-style file under the "replay" key.
//
// Usage:
//
//	bench-replay [-out BENCH_serve.json] [-rounds 200] [-concurrency 8]
//	             [-hours 240] [-seed 7]
//
// Each round is two plan requests (cycling three deadlines, so the plan
// cache sees repeats), two ingest posts and periodically a strategies
// listing — a mixed read/write load, which is what makes the recorded
// p99 numbers meaningful: plans are served while the market underneath
// them is being invalidated.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/harness"
	"sompi/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-replay: ")
	var (
		out         = flag.String("out", "BENCH_serve.json", "bench file to merge the replay summary into")
		rounds      = flag.Int("rounds", 200, "synthesized load rounds (2 plans + 2 ingests each)")
		concurrency = flag.Int("concurrency", 8, "in-flight replay requests")
		hours       = flag.Float64("hours", 240, "synthesized market hours")
		seed        = flag.Uint64("seed", 7, "market seed")
	)
	flag.Parse()
	if err := run(*out, *rounds, *concurrency, *hours, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(out string, rounds, concurrency int, hours float64, seed uint64) error {
	tmp, err := os.MkdirTemp("", "sompi-bench-replay")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	capDir := filepath.Join(tmp, "capture")
	records, err := synthesize(capDir, rounds)
	if err != nil {
		return err
	}

	bin := filepath.Join(tmp, "sompid")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sompid")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building sompid: %w", err)
	}
	cmd, base, err := startSompid(bin, hours, seed)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	fmt.Printf("bench-replay: replaying %d records at concurrency %d against %s\n", records, concurrency, base)
	loaded, err := harness.Load(capDir)
	if err != nil {
		return err
	}
	rep, err := harness.Replay(context.Background(), loaded, harness.Options{
		Targets:     []harness.Target{{Name: "sompid", URL: base}},
		Concurrency: concurrency,
	})
	if err != nil {
		return err
	}
	if rep.TransportErrors > 0 {
		return fmt.Errorf("%d transport errors during the bench replay", rep.TransportErrors)
	}
	if err := harness.AppendBench(out, rep); err != nil {
		return err
	}
	s := rep.Summarize()
	fmt.Printf("bench-replay: %d records in %.2fs (%.0f qps): plan p99 %.2fms at %.0f qps, ingest p99 %.2fms at %.0f qps -> %s\n",
		s.Records, s.WallSeconds, s.QPS,
		s.Endpoints["plan"].P99MS, s.Endpoints["plan"].QPS,
		s.Endpoints["prices"].P99MS, s.Endpoints["prices"].QPS, out)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("sompid exited uncleanly: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("sompid did not exit within 15s of SIGTERM")
	}
	return nil
}

// synthesize writes the mixed-load capture and reports its record count.
func synthesize(dir string, rounds int) (int, error) {
	w, err := harness.OpenWriter(dir, 1024)
	if err != nil {
		return 0, err
	}
	var plans [][]byte
	for _, dl := range []float64{60, 72, 90} {
		b, _ := json.Marshal(serve.PlanRequest{
			App: "BT", DeadlineHours: dl,
			Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		})
		plans = append(plans, b)
	}
	keys := []cloud.MarketKey{
		{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA},
		{Type: cloud.M1Small.Name, Zone: cloud.ZoneB},
	}
	n := 0
	appendRec := func(rec harness.Record) error {
		if err := w.Append(rec); err != nil {
			return err
		}
		n++
		return nil
	}
	for i := 0; i < rounds; i++ {
		for j := 0; j < 2; j++ {
			if err := appendRec(harness.Record{
				Endpoint: "plan", Method: "POST", Path: "/v1/plan",
				Body: string(plans[(2*i+j)%len(plans)]), Status: 200,
			}); err != nil {
				return 0, err
			}
			key := keys[(i+j)%len(keys)]
			tick, _ := json.Marshal([]serve.PriceTick{{Type: key.Type, Zone: key.Zone, Prices: []float64{0.05}}})
			if err := appendRec(harness.Record{
				Endpoint: "prices", Method: "POST", Path: "/v1/prices",
				Body: string(tick), Status: 200,
			}); err != nil {
				return 0, err
			}
		}
		if i%8 == 0 {
			if err := appendRec(harness.Record{Endpoint: "strategies", Method: "GET", Path: "/v1/strategies", Status: 200}); err != nil {
				return 0, err
			}
		}
	}
	return n, w.Close()
}

// startSompid boots the built binary and returns the process plus its
// announced base URL.
func startSompid(bin string, hours float64, seed uint64) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-hours", fmt.Sprint(hours),
		"-seed", fmt.Sprint(seed))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("starting sompid: %w", err)
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for lines := 0; base == "" && lines < 20 && sc.Scan(); lines++ {
		banner := sc.Text()
		if i := strings.Index(banner, "http://"); i >= 0 {
			base = strings.Fields(banner[i:])[0]
		}
	}
	if base == "" {
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("sompid never printed a listen banner on stdout")
	}
	go io.Copy(io.Discard, stdout)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, "", fmt.Errorf("sompid never became healthy")
}
