package serve

import (
	"container/list"
	"context"
	"sync"

	"sompi/internal/opt"
)

// reoptCache coalesces identical optimizer runs: a vector-keyed
// single-flight in front of a small LRU of opt.Results. When k sessions
// share a workload profile, deadline leftover, training window and
// strategy knobs at the same T_m boundary, the first to arrive runs the
// optimizer and the other k-1 adopt its result — the plan dedup leg of
// the million-session path. Results are shareable because nothing
// downstream mutates an opt.Result: replay advances only Session state
// and model.Group's internal caches are synchronized.
//
// Errors are never cached: a failed leader removes its entry, waiting
// followers observe the failure and retry as leader, so a transient
// cancellation cannot poison a key.
type reoptCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

// reoptEntry is one in-flight or completed optimizer run. done closes
// when res/err are final; both are written before the close, so a
// reader that saw done closed reads them race-free.
type reoptEntry struct {
	key  string
	done chan struct{}
	res  opt.Result
	err  error
}

func newReoptCache(capacity int) *reoptCache {
	if capacity < 1 {
		capacity = 1
	}
	return &reoptCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// do returns the optimizer result for key, running fn at most once per
// key across concurrent callers. shared reports whether the result came
// from another caller's run (a deduplicated re-opt). A follower whose
// ctx dies while waiting returns ctx's error; the leader's run is
// governed by the leader's own context inside fn.
func (c *reoptCache) do(ctx context.Context, key string, fn func() (opt.Result, error)) (res opt.Result, shared bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			e := el.Value.(*reoptEntry)
			select {
			case <-e.done:
				// Completed successfully (failures remove their entry).
				c.ll.MoveToFront(el)
				c.mu.Unlock()
				return e.res, true, nil
			default:
			}
			c.mu.Unlock()
			select {
			case <-e.done:
				if e.err == nil {
					return e.res, true, nil
				}
				// Leader failed; its entry is gone. Retry as leader.
				continue
			case <-ctx.Done():
				return opt.Result{}, false, ctx.Err()
			}
		}
		e := &reoptEntry{key: key, done: make(chan struct{})}
		el := c.ll.PushFront(e)
		c.items[key] = el
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*reoptEntry).key)
		}
		c.mu.Unlock()

		res, err = fn()
		c.mu.Lock()
		e.res, e.err = res, err
		if err != nil {
			// Only remove our own entry — eviction may have already
			// replaced it with a fresh leader under the same key.
			if cur, ok := c.items[key]; ok && cur == el {
				c.ll.Remove(el)
				delete(c.items, key)
			}
		}
		close(e.done)
		c.mu.Unlock()
		return res, false, err
	}
}

// len reports the number of resident entries (including in-flight).
func (c *reoptCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
