package serve

import (
	"container/list"
	"sync"
)

// planCache is a fixed-capacity LRU mapping a plan-request key (the full
// request plus the market version it was answered at) to the exact
// response bytes served. Storing bytes rather than structs is what makes
// a hit byte-identical to the miss that populated it; versioned keys are
// what makes ingestion invalidate every stale entry without scanning.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns the cached bytes and marks the entry most recently used.
func (c *planCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one when over capacity.
func (c *planCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of live entries.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
