package serve

import (
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"m1.medium/us-east-1a", "m1.medium/us-east-1a"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"", ""},
		{"héllo→", "héllo→"}, // UTF-8 passes through, no \uXXXX escapes
		{"\\\"\n", `\\\"\n`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// unescapeLabel inverts escapeLabel for the round-trip property.
func unescapeLabel(t *testing.T, v string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			b.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			t.Fatalf("escaped value %q ends mid-escape", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("escaped value %q has unknown escape \\%c", v, v[i])
		}
	}
	return b.String()
}

// FuzzEscapeLabel checks the three properties a Prometheus parser needs
// from a quoted label value: no raw newline survives, every quote and
// backslash is escaped, and unescaping recovers the input exactly.
func FuzzEscapeLabel(f *testing.F) {
	for _, seed := range []string{
		"m1.medium/us-east-1a", `a\b"c` + "\nd", "", `\`, `"`, "\n", "héllo→", `trailing\`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		out := escapeLabel(in)
		if strings.ContainsRune(out, '\n') {
			t.Fatalf("escapeLabel(%q) = %q contains a raw newline", in, out)
		}
		// Every quote must be escaped: scanning left to right, a quote is
		// only legal directly after an escaping backslash.
		for i := 0; i < len(out); i++ {
			switch out[i] {
			case '\\':
				i++ // the next byte is consumed by the escape
				if i >= len(out) {
					t.Fatalf("escapeLabel(%q) = %q ends mid-escape", in, out)
				}
			case '"':
				t.Fatalf("escapeLabel(%q) = %q has an unescaped quote at %d", in, out, i)
			}
		}
		if got := unescapeLabel(t, out); got != in {
			t.Fatalf("round trip: escapeLabel(%q) = %q unescapes to %q", in, out, got)
		}
	})
}
