package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/cluster"
	"sompi/internal/opt"
	"sompi/internal/store"
)

// This file threads internal/cluster through the service: a static
// N-node topology where each (type, AZ) market shard has exactly one
// owner (rendezvous hash of the shard key over the node names), every
// node replicates every peer's WAL into a local standby mirror, and a
// node whose peer dies promotes the mirrored shards and sessions to
// first-class local state.
//
// The replication model is full-market: a node's own WAL holds only the
// ticks it ingested (its owned shards) and its own sessions, while its
// live market holds ALL shards — peer-owned shards advance through the
// follower stream (cluster.Follower replays each shipped record into
// cloud.Market.ApplyTick). Because replication is byte-exact and
// per-shard ordered, a caught-up node's composite market version equals
// the single-node equivalent, which is what makes plans byte-identical
// no matter which node serves them.

// forwardedHeader marks a request another cluster node already routed:
// the receiver serves it locally and never re-forwards (loop guard).
const forwardedHeader = "X-Sompid-Forwarded"

const (
	// clusterChunkBytes bounds one shipped WAL chunk frame.
	clusterChunkBytes = 256 << 10
	// clusterHeartbeat paces keep-alive frames on an idle stream.
	clusterHeartbeat = 500 * time.Millisecond
)

// ClusterConfig parameterizes cluster mode. Requires Config.Store: WAL
// segment shipping is what replication is made of.
type ClusterConfig struct {
	// Self is this node's name; it must appear in Nodes.
	Self string
	// Nodes is the full static membership (at least 2, self included).
	Nodes []cluster.Node
	// StandbyDir holds one mirror directory per peer (<dir>/<peer>).
	StandbyDir string
	// ProbeInterval is the peer health-probe cadence; zero means 300ms.
	ProbeInterval time.Duration
	// FailoverAfter is how many consecutive probe failures — after the
	// peer has been seen healthy at least once — declare it dead and
	// trigger promotion; zero means 5.
	FailoverAfter int
	// BarrierTimeout bounds the ?sync=1 replication barrier; zero means
	// 10s. On timeout the request answers with whatever replicated.
	BarrierTimeout time.Duration
}

// walPosition is a (segment, offset) WAL byte position on the wire.
type walPosition struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

func posGE(a, b walPosition) bool {
	return a.Segment > b.Segment || (a.Segment == b.Segment && a.Offset >= b.Offset)
}

// ClusterStatus is the GET /cluster/status payload: this node's view of
// the topology, its own WAL frontier, and how far it has mirrored each
// peer — the version-vector half of the merged cluster view.
type ClusterStatus struct {
	Self        string         `json:"self"`
	Nodes       []cluster.Node `json:"nodes"`
	Dead        []string       `json:"dead,omitempty"`
	Promoted    []string       `json:"promoted,omitempty"`
	OwnedShards []string       `json:"owned_shards"`
	WAL         walPosition    `json:"wal"`
	// Replicas maps peer name -> how far this node has mirrored (and
	// applied) that peer's WAL.
	Replicas map[string]walPosition `json:"replicas"`
	// StagedSessions counts warm-standby sessions held per peer, ready
	// for promotion.
	StagedSessions map[string]int `json:"staged_sessions,omitempty"`
	// PeersUp lists peers the failure detector has seen healthy at least
	// once this process lifetime — the arming condition for failover
	// (a peer that never came up is an operator problem, not a failover).
	PeersUp []string `json:"peers_up,omitempty"`
	// Reoptimized and Completed are this node's cumulative session
	// counters. Cumulative, not per-request: a session re-optimizes
	// whenever its watched shards advance — locally ingested or
	// replicated — so a peer coordinating a ?sync=1 flush diffs these
	// against the bases it captured at request start.
	Reoptimized int64 `json:"reoptimized"`
	Completed   int64 `json:"completed"`
}

// NodeHealth is one node's row in the merged /cluster/healthz view.
type NodeHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Status is "ok"/"degraded" (the node's own /healthz), "unreachable"
	// (probe failed just now), or "dead" (promoted away).
	Status         string `json:"status"`
	MarketVersion  uint64 `json:"market_version,omitempty"`
	ActiveSessions int64  `json:"active_sessions,omitempty"`
}

// ClusterHealthResponse is the GET /cluster/healthz payload: per-node
// health plus the merged per-shard max-version vector.
type ClusterHealthResponse struct {
	Status string        `json:"status"`
	Self   string        `json:"self"`
	Nodes  []NodeHealth  `json:"nodes"`
	Shards []ShardHealth `json:"shards"`
}

// clusterNode is the server's cluster state: topology, per-peer
// followers, the staged standby sessions, and the failure detector.
type clusterNode struct {
	s    *Server
	topo *cluster.Topology

	client      *http.Client // forwarding/proxy; no global timeout (requests carry contexts)
	probeClient *http.Client

	probeInterval  time.Duration
	failAfter      int
	barrierTimeout time.Duration

	// followers is fixed after init (one per peer); only the map values'
	// own synchronization applies.
	followers map[string]*cluster.Follower

	mu       sync.Mutex
	dead     map[string]bool
	seenUp   map[string]bool // peers seen healthy at least once (arms failover)
	promoted []string
	// staged holds each peer's replicated session states (latest Seq
	// wins) — the warm standby a promotion registers.
	staged map[string]map[string]sessionState

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// initCluster wires cluster mode into a fully constructed server: the
// standby mirrors are pre-replayed into the live market, followers
// start streaming, and the failure detector starts probing. Called at
// the end of New, after recovery and the scheduler/ingester exist.
func (s *Server) initCluster(cfg ClusterConfig) error {
	if s.store == nil {
		return fmt.Errorf("%w: cluster mode requires a store (replication ships WAL segments)", opt.ErrInvalidConfig)
	}
	if cfg.StandbyDir == "" {
		return fmt.Errorf("%w: cluster mode requires a standby directory", opt.ErrInvalidConfig)
	}
	topo, err := cluster.NewTopology(cfg.Self, cfg.Nodes)
	if err != nil {
		return err
	}
	c := &clusterNode{
		s:              s,
		topo:           topo,
		client:         &http.Client{},
		probeInterval:  cfg.ProbeInterval,
		failAfter:      cfg.FailoverAfter,
		barrierTimeout: cfg.BarrierTimeout,
		followers:      make(map[string]*cluster.Follower),
		dead:           make(map[string]bool),
		seenUp:         make(map[string]bool),
		staged:         make(map[string]map[string]sessionState),
		stopCh:         make(chan struct{}),
	}
	if c.probeInterval <= 0 {
		c.probeInterval = 300 * time.Millisecond
	}
	if c.failAfter <= 0 {
		c.failAfter = 5
	}
	if c.barrierTimeout <= 0 {
		c.barrierTimeout = 10 * time.Second
	}
	// The probe timeout is deliberately decoupled from the probe cadence:
	// even the lock-light status endpoint can lag behind a loaded
	// scheduler, so a probe only fails on a dead-looking peer (refused,
	// reset, or seconds of silence) — never on one that is merely busy.
	probeTimeout := 4 * c.probeInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	c.probeClient = &http.Client{Timeout: probeTimeout}
	s.cluster = c

	for _, peer := range topo.Peers() {
		dir := filepath.Join(cfg.StandbyDir, peer.Name)
		if err := c.preplayStandby(dir, peer.Name); err != nil {
			// A standby mirror the local replay rejects (torn beyond the
			// store's own repair, or behind a local state it cannot reach)
			// is rebuilt from scratch: wipe it and let the follower resync
			// from the peer's snapshot.
			s.log.Error("standby mirror unusable; resyncing from scratch",
				"peer", peer.Name, "error", err.Error())
			if rerr := os.RemoveAll(dir); rerr != nil {
				c.stopFollowers()
				return fmt.Errorf("wiping standby mirror %s: %w", dir, rerr)
			}
		}
		peerName := peer.Name
		f, err := cluster.StartFollower(cluster.FollowerConfig{
			Peer:   peer,
			Dir:    dir,
			OnRecord: func(rec store.Record) error {
				return c.applyReplicated(peerName, rec)
			},
			OnSnapshot: func(payload []byte) error {
				return c.applyPeerSnapshot(peerName, payload)
			},
			Logf:          func(format string, args ...any) { s.log.Error(fmt.Sprintf(format, args...)) },
			RetryInterval: c.probeInterval,
		})
		if err != nil {
			c.stopFollowers()
			return fmt.Errorf("starting follower of %s: %w", peer.Name, err)
		}
		c.followers[peer.Name] = f
	}
	for _, peer := range topo.Peers() {
		c.wg.Add(1)
		go c.probe(peer)
	}
	s.log.Info("cluster mode", "self", topo.Self().Name, "nodes", len(topo.Nodes()),
		"owned_shards", len(c.ownedShards()))
	return nil
}

// stop shuts the failure detector and every follower down. Idempotent.
func (c *clusterNode) stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		c.wg.Wait()
		c.stopFollowers()
	})
}

func (c *clusterNode) stopFollowers() {
	for _, f := range c.followers {
		f.Stop()
	}
}

// preplayStandby replays a peer's mirrored WAL into the live market and
// the staged session set, then truncates any torn tail — establishing
// the follower's pre-Start contract (resume position is a record
// boundary, nothing already mirrored is re-delivered).
func (c *clusterNode) preplayStandby(dir, peer string) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	rerr := st.Recover(
		func(payload []byte) error { return c.applyPeerSnapshot(peer, payload) },
		func(rec store.Record) error { return c.applyReplicated(peer, rec) },
	)
	cerr := st.Close()
	if rerr != nil {
		return rerr
	}
	return cerr
}

// applyReplicated lands one replicated WAL record from a peer: ticks
// apply to the live market (idempotently, by shard version — the same
// replay path crash recovery uses) and wake the re-optimization
// scheduler; session transitions stage the peer's latest state for
// promotion.
func (c *clusterNode) applyReplicated(peer string, rec store.Record) error {
	switch rec.Type {
	case store.RecordTick:
		tick, err := store.DecodeTick(rec.Payload)
		if err != nil {
			return err
		}
		key := cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}
		if err := c.s.market.ApplyTick(key, tick.Prices, tick.Version); err != nil {
			return err
		}
		c.s.sched.shardAdvanced(key)
		return nil
	case store.RecordSession:
		var st sessionState
		if err := json.Unmarshal(rec.Payload, &st); err != nil {
			return fmt.Errorf("decoding replicated session record: %w", err)
		}
		c.stageSession(peer, st)
		return nil
	default:
		return nil // newer record kinds ship through untouched
	}
}

// applyPeerSnapshot merges one shipped snapshot: market shards land
// forward-only (a lagging shipped state never rewinds locally applied
// records) and every session in the capture is staged.
func (c *clusterNode) applyPeerSnapshot(peer string, payload []byte) error {
	var snap snapshotPayload
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("decoding replicated snapshot: %w", err)
	}
	if _, err := c.s.market.MergeShards(snap.Market); err != nil {
		return err
	}
	for _, st := range snap.Sessions {
		c.stageSession(peer, st)
	}
	for _, ms := range snap.Market {
		c.s.sched.shardAdvanced(cloud.MarketKey{Type: ms.Type, Zone: ms.Zone})
	}
	return nil
}

// stageSession keeps a peer session's highest-Seq state.
func (c *clusterNode) stageSession(peer string, st sessionState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.staged[peer]
	if m == nil {
		m = make(map[string]sessionState)
		c.staged[peer] = m
	}
	if prev, ok := m[st.ID]; !ok || st.Seq > prev.Seq {
		m[st.ID] = st
	}
}

// --- ownership and routing ---

func (c *clusterNode) selfName() string { return c.topo.Self().Name }

// ownerOf resolves a shard's current owner under the live dead set.
func (c *clusterNode) ownerOf(shard string) cluster.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.topo.OwnerAlive(shard, c.dead)
}

func (c *clusterNode) isDead(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[name]
}

// ownedShards lists the market shards this node currently owns, in the
// market's deterministic key order.
func (c *clusterNode) ownedShards() []string {
	var out []string
	for _, k := range c.s.market.Keys() {
		if c.ownerOf(k.String()).Name == c.selfName() {
			out = append(out, k.String())
		}
	}
	return out
}

// planOwner resolves which node serves a plan request: the owner of the
// request's first candidate shard. CandidateKeys returns keys in the
// market's fixed order, so the routing shard — and therefore the node —
// is deterministic for a given request. Unrestricted requests (no
// Types/Zones filter) serve locally: the market is fully replicated, so
// any node answers them byte-identically.
func (c *clusterNode) planOwner(req PlanRequest) (cluster.Node, bool) {
	keys := req.CandidateKeys(c.s.market)
	if len(keys) == 0 {
		return cluster.Node{}, false
	}
	n := c.ownerOf(keys[0].String())
	if n.Name == "" || n.Name == c.selfName() {
		return cluster.Node{}, false
	}
	return n, true
}

// proxyPlan forwards a plan request body verbatim to the owning node
// and relays the response — status, body bytes and the X-Sompid-Cache
// header, so cache observability survives the hop.
func (c *clusterNode) proxyPlan(w http.ResponseWriter, r *http.Request, owner cluster.Node, body []byte) {
	c.s.met.clusterForwardedPlans.Add(1)
	u := owner.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	if id := w.Header().Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: proxying plan to %s: %v", owner.Name, err))
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: reading %s's plan response: %v", owner.Name, err))
		return
	}
	if ch := resp.Header.Get("X-Sompid-Cache"); ch != "" {
		w.Header().Set("X-Sompid-Cache", ch)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	w.Write(b)
}

// forwardPrices POSTs a tick batch (or, with nil ticks, an empty
// operational flush) to a peer's ingest endpoint with the loop guard
// set, and decodes its response for merging.
func (c *clusterNode) forwardPrices(ctx context.Context, name string, ticks []PriceTick, sync bool) (PricesResponse, error) {
	node, ok := c.topo.Lookup(name)
	if !ok {
		return PricesResponse{}, fmt.Errorf("cluster: unknown node %q", name)
	}
	var body io.Reader
	if len(ticks) > 0 {
		b, err := json.Marshal(ticks)
		if err != nil {
			return PricesResponse{}, err
		}
		body = bytes.NewReader(b)
	}
	u := node.URL + "/v1/prices"
	if sync {
		u += "?sync=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return PricesResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	c.s.met.clusterForwardedPrices.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		return PricesResponse{}, fmt.Errorf("cluster: forwarding prices to %s: %v", name, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return PricesResponse{}, fmt.Errorf("cluster: reading %s's ingest response: %v", name, err)
	}
	if resp.StatusCode != http.StatusOK {
		return PricesResponse{}, fmt.Errorf("cluster: node %s answered ingest with %d: %s", name, resp.StatusCode, clip(string(b), 256))
	}
	var pr PricesResponse
	if err := json.Unmarshal(b, &pr); err != nil {
		return PricesResponse{}, fmt.Errorf("cluster: decoding %s's ingest response: %v", name, err)
	}
	return pr, nil
}

// fetchStatus reads a peer's /cluster/status.
func (c *clusterNode) fetchStatus(ctx context.Context, node cluster.Node) (ClusterStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.URL+"/cluster/status", nil)
	if err != nil {
		return ClusterStatus{}, err
	}
	resp, err := c.probeClient.Do(req)
	if err != nil {
		return ClusterStatus{}, err
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return ClusterStatus{}, err
	}
	return st, nil
}

// syncBarrier blocks until replication has caught up in both
// directions with every live peer: the peer's mirror of this node's
// WAL has reached this node's current position, and this node's mirror
// of the peer's WAL has reached the position the peer reported when
// the barrier began. Under concurrent ingest the barrier is a lower
// bound (later traffic may extend the wait, never shorten it); at
// concurrency 1 it makes ?sync=1 responses — and any plan served
// afterwards by either node — reflect a fully converged market, which
// is the byte-parity anchor the cluster twin-diff leans on. Dead peers
// are skipped; the timeout bounds a peer dying mid-barrier.
func (c *clusterNode) syncBarrier(ctx context.Context) {
	mySeg, myOff := c.s.store.Position()
	mine := walPosition{Segment: mySeg, Offset: myOff}
	deadline := time.Now().Add(c.barrierTimeout)
	for _, peer := range c.topo.Peers() {
		var peerTarget *walPosition
		for time.Now().Before(deadline) && ctx.Err() == nil {
			if c.isDead(peer.Name) {
				break
			}
			st, err := c.fetchStatus(ctx, peer)
			if err == nil {
				if peerTarget == nil {
					p := st.WAL
					peerTarget = &p
				}
				caughtRemote := posGE(st.Replicas[c.selfName()], mine)
				caughtLocal := true
				if f := c.followers[peer.Name]; f != nil {
					fs, fo := f.Position()
					caughtLocal = posGE(walPosition{Segment: fs, Offset: fo}, *peerTarget)
				}
				if caughtRemote && caughtLocal {
					break
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
}

// drainPeers runs an empty ?sync=1 flush on every live peer — after the
// barrier replicated this request's ticks to them — so their sessions'
// released re-optimizations settle before peerDelta reads the counters.
func (c *clusterNode) drainPeers(ctx context.Context) {
	for _, peer := range c.topo.Peers() {
		if c.isDead(peer.Name) {
			continue
		}
		// Errors stay best-effort: the prober will notice a dead peer.
		c.forwardPrices(ctx, peer.Name, nil, true)
	}
}

// peerCounts is one peer's cumulative session counters.
type peerCounts struct{ reoptimized, completed int64 }

// peerCounters samples every live peer's cumulative counters. Called
// once when a ?sync=1 request arrives (the bases) and once after the
// barrier and drain (the deltas): a peer's re-optimizations run off the
// request path whenever replication advances its shards, so per-request
// deltas measured on the peer would miss work that settled before the
// drain flush arrived.
func (c *clusterNode) peerCounters(ctx context.Context) map[string]peerCounts {
	out := make(map[string]peerCounts)
	for _, peer := range c.topo.Peers() {
		if c.isDead(peer.Name) {
			continue
		}
		st, err := c.fetchStatus(ctx, peer)
		if err != nil {
			continue
		}
		out[peer.Name] = peerCounts{reoptimized: st.Reoptimized, completed: st.Completed}
	}
	return out
}

// peerDelta sums how far each peer's counters moved past the captured
// bases. Peers absent from the base sample are skipped — without a base
// their cumulative totals cannot be attributed to this request.
func (c *clusterNode) peerDelta(ctx context.Context, base map[string]peerCounts) (reoptimized, completed int) {
	if len(base) == 0 {
		return 0, 0
	}
	now := c.peerCounters(ctx)
	for name, b := range base {
		n, ok := now[name]
		if !ok {
			continue
		}
		reoptimized += int(n.reoptimized - b.reoptimized)
		completed += int(n.completed - b.completed)
	}
	return reoptimized, completed
}

// --- failure detection and promotion ---

// probe is one peer's failure detector: it declares the peer dead — and
// promotes its shards — after failAfter consecutive failed health
// checks, but only once the peer has been seen healthy at least once
// this process lifetime (a peer that never came up is an operator
// problem, not a failover).
func (c *clusterNode) probe(peer cluster.Node) {
	defer c.wg.Done()
	t := time.NewTicker(c.probeInterval)
	defer t.Stop()
	fails := 0
	// The first probe runs immediately, not a tick from now: arming the
	// detector must not lose a race against a peer that comes up, does
	// useful work, and dies all inside the first probe interval.
	for first := true; ; first = false {
		if !first {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
			}
		}
		if c.isDead(peer.Name) {
			return
		}
		if c.healthOK(peer) {
			c.mu.Lock()
			c.seenUp[peer.Name] = true
			c.mu.Unlock()
			fails = 0
			continue
		}
		c.mu.Lock()
		armed := c.seenUp[peer.Name]
		c.mu.Unlock()
		if !armed {
			continue
		}
		fails++
		if fails >= c.failAfter {
			c.promote(peer)
			return
		}
	}
}

// healthOK reports whether a peer's HTTP front answers. It probes
// /cluster/status, not /healthz: the status read touches only the WAL
// position and follower cursors, while /healthz aggregates per-shard
// stats whose read locks queue behind ingest writers — on a node busy
// applying ticks it can stall past the probe timeout, and a
// busy-but-alive node is exactly what a failure detector must never
// declare dead.
func (c *clusterNode) healthOK(peer cluster.Node) bool {
	resp, err := c.probeClient.Get(peer.URL + "/cluster/status")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// promote takes over a dead peer: the follower stops, the staged
// sessions register as first-class local sessions (event-sourced into
// this node's own WAL), a snapshot makes the adopted shard versions
// durable locally, and the ownership view flips — OwnerAlive now routes
// the peer's shards here, so ingest and plans for them serve locally.
// Promotion is one-way: a node that comes back is not re-admitted (the
// static topology has no rejoin protocol; see DESIGN.md §15).
func (c *clusterNode) promote(peer cluster.Node) {
	c.mu.Lock()
	if c.dead[peer.Name] {
		c.mu.Unlock()
		return
	}
	c.dead[peer.Name] = true
	c.promoted = append(c.promoted, peer.Name)
	staged := c.staged[peer.Name]
	delete(c.staged, peer.Name)
	c.mu.Unlock()

	// Stop streaming first: everything mirrored is already applied, and
	// the staged set must be final before registration.
	if f := c.followers[peer.Name]; f != nil {
		f.Stop()
	}

	s := c.s
	ids := make([]string, 0, len(staged))
	for id := range staged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	adopted := 0
	for _, id := range ids {
		st := staged[id]
		s.mu.Lock()
		if _, exists := s.sessions[id]; exists {
			s.mu.Unlock()
			continue
		}
		t, err := s.materializeSession(st)
		if err != nil {
			s.mu.Unlock()
			s.log.Error("adopting replicated session failed", "session", id, "error", err.Error())
			continue
		}
		// Event-source the adoption into our own WAL (Seq advances past
		// the replicated state, so replays converge on this record) and
		// publish exactly as registration does.
		s.persistSession(t)
		s.sessions[id] = t
		s.order = append(s.order, id)
		if !t.done {
			s.met.activeSessions.Add(1)
			s.sched.add(t)
		} else {
			s.met.completedSessions.Add(1)
		}
		s.mu.Unlock()
		adopted++
	}
	s.met.clusterPromotions.Add(1)
	s.met.clusterAdoptedSessions.Add(int64(adopted))

	// Adopted shard versions exist in memory and in the standby mirror,
	// but not in this node's own WAL — cut a snapshot before the first
	// post-promotion append lands on them, so a restart of THIS node
	// recovers the adopted state from its own data dir.
	if err := s.cutSnapshot(); err != nil {
		s.log.Error("post-promotion snapshot failed", "error", err.Error())
	}
	s.log.Info("promoted dead peer's shards", "peer", peer.Name,
		"adopted_sessions", adopted, "owned_shards", len(c.ownedShards()))
}

// sample captures the cluster gauges for one /metrics render.
func (c *clusterNode) sample() clusterMetricsSample {
	out := clusterMetricsSample{enabled: true, ownedShards: len(c.ownedShards())}
	for _, f := range c.followers {
		if f.Connected() {
			out.peersConnected++
		}
		out.replicatedRecords += f.Records()
		out.replicatedSnapshots += f.Snapshots()
		out.resyncs += f.Resyncs()
		out.replicationErrors += f.Errors()
	}
	return out
}

// --- HTTP handlers ---

// handleClusterWAL streams this node's WAL to a follower: chunk frames
// from the requested (segment, offset), a snapshot frame whenever the
// follower's position predates compaction, a reset frame when the
// follower is ahead of anything this store ever wrote (divergence), and
// heartbeats while idle. The stream lives until the client disconnects
// or the store closes.
func (s *Server) handleClusterWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seg, err1 := strconv.ParseUint(q.Get("seg"), 10, 64)
	off, err2 := strconv.ParseInt(q.Get("off"), 10, 64)
	if err1 != nil || err2 != nil || off < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: bad seg/off", opt.ErrInvalidConfig))
		return
	}
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	shipSnapshot := func() (uint64, bool) {
		snapSeq, data, err := s.store.ReadSnapshotFile()
		if err != nil {
			return 0, false
		}
		if err := cluster.WriteSnapshotFrame(w, snapSeq, data); err != nil {
			return 0, false
		}
		return snapSeq, true
	}

	if seg == 0 {
		// Fresh follower: lead with the newest snapshot (if any) and
		// stream from its boundary.
		snapSeq, firstSeg := s.store.ShipStart()
		if snapSeq > 0 {
			sq, ok := shipSnapshot()
			if !ok {
				return
			}
			seg, off = sq, 0
		} else {
			seg, off = firstSeg, 0
		}
		flush()
	}

	ctx := r.Context()
	for {
		if ctx.Err() != nil {
			return
		}
		// Arm before reading: an append between the last read and the
		// wait below closes this channel, so nothing is missed.
		ch := s.store.AppendSignal()
	read:
		for {
			data, sealed, err := s.store.ReadChunk(seg, off, clusterChunkBytes)
			switch {
			case errors.Is(err, store.ErrSegmentCompacted):
				sq, ok := shipSnapshot()
				if !ok {
					cluster.WriteFrame(w, cluster.FrameReset, nil)
					flush()
					return
				}
				seg, off = sq, 0
				flush()
				continue
			case errors.Is(err, store.ErrOutOfRange):
				// The follower claims a position this store never reached:
				// it mirrors someone else's bytes (or a wiped-and-recreated
				// store). Force a from-scratch resync.
				cluster.WriteFrame(w, cluster.FrameReset, nil)
				flush()
				return
			case err != nil:
				return // store closed or I/O failure: drop the stream
			}
			if len(data) > 0 {
				if werr := cluster.WriteChunkFrame(w, seg, off, data); werr != nil {
					return
				}
				off += int64(len(data))
				flush()
				continue
			}
			if sealed {
				seg, off = seg+1, 0
				continue
			}
			break read // caught up with the active segment
		}
		select {
		case <-ch:
		case <-time.After(clusterHeartbeat):
			if err := cluster.WriteFrame(w, cluster.FrameHeartbeat, nil); err != nil {
				return
			}
			flush()
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	seg, off := s.store.Position()
	c.mu.Lock()
	dead := make([]string, 0, len(c.dead))
	for name := range c.dead {
		dead = append(dead, name)
	}
	sort.Strings(dead)
	promoted := append([]string(nil), c.promoted...)
	stagedCounts := make(map[string]int, len(c.staged))
	for peer, m := range c.staged {
		stagedCounts[peer] = len(m)
	}
	peersUp := make([]string, 0, len(c.seenUp))
	for name := range c.seenUp {
		peersUp = append(peersUp, name)
	}
	sort.Strings(peersUp)
	c.mu.Unlock()
	replicas := make(map[string]walPosition, len(c.followers))
	for name, f := range c.followers {
		fs, fo := f.Position()
		replicas[name] = walPosition{Segment: fs, Offset: fo}
	}
	writeJSON(w, http.StatusOK, ClusterStatus{
		Self:           c.selfName(),
		Nodes:          c.topo.Nodes(),
		Dead:           dead,
		Promoted:       promoted,
		OwnedShards:    c.ownedShards(),
		WAL:            walPosition{Segment: seg, Offset: off},
		Replicas:       replicas,
		StagedSessions: stagedCounts,
		PeersUp:        peersUp,
		Reoptimized:    s.met.reoptimizations.Load(),
		Completed:      s.met.completedSessions.Load(),
	})
}

// handleClusterHealthz merges every node's /healthz into one cluster
// view: per-node status rows plus the per-shard max-version vector
// across the cluster.
func (s *Server) handleClusterHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	overall := "ok"
	maxShards := make(map[string]ShardHealth)
	fold := func(hr HealthResponse) {
		for _, sh := range hr.Shards {
			if cur, ok := maxShards[sh.Market]; !ok || sh.Version > cur.Version {
				maxShards[sh.Market] = sh
			}
		}
	}
	var nodes []NodeHealth
	for _, n := range c.topo.Nodes() {
		row := NodeHealth{Name: n.Name, URL: n.URL}
		switch {
		case n.Name == c.selfName():
			hr := s.healthResponse()
			row.Status = hr.Status
			row.MarketVersion = hr.MarketVersion
			row.ActiveSessions = hr.ActiveSessions
			fold(hr)
		case c.isDead(n.Name):
			row.Status = "dead"
		default:
			hr, err := c.fetchHealth(r.Context(), n)
			if err != nil {
				row.Status = "unreachable"
				overall = "degraded"
			} else {
				row.Status = hr.Status
				row.MarketVersion = hr.MarketVersion
				row.ActiveSessions = hr.ActiveSessions
				fold(hr)
			}
		}
		if row.Status == "degraded" {
			overall = "degraded"
		}
		nodes = append(nodes, row)
	}
	shards := make([]ShardHealth, 0, len(maxShards))
	for _, sh := range maxShards {
		shards = append(shards, sh)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Market < shards[j].Market })
	writeJSON(w, http.StatusOK, ClusterHealthResponse{
		Status: overall,
		Self:   c.selfName(),
		Nodes:  nodes,
		Shards: shards,
	})
}

func (c *clusterNode) fetchHealth(ctx context.Context, node cluster.Node) (HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.URL+"/healthz", nil)
	if err != nil {
		return HealthResponse{}, err
	}
	resp, err := c.probeClient.Do(req)
	if err != nil {
		return HealthResponse{}, err
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr); err != nil {
		return HealthResponse{}, err
	}
	return hr, nil
}

// handleClusterMetrics concatenates every reachable node's /metrics
// exposition into one cluster-wide page, tagging each sample line with
// a node label and deduplicating family headers (every node runs the
// same binary, so the first occurrence speaks for all).
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	type exposition struct {
		node string
		text string
	}
	var parts []exposition
	var self bytes.Buffer
	s.writeMetricsTo(&self)
	for _, n := range c.topo.Nodes() {
		switch {
		case n.Name == c.selfName():
			parts = append(parts, exposition{n.Name, self.String()})
		case c.isDead(n.Name):
			// A dead node exports nothing; its shards report through the
			// promoting node's exposition.
		default:
			text, err := c.fetchMetrics(r.Context(), n)
			if err == nil {
				parts = append(parts, exposition{n.Name, text})
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	seen := make(map[string]bool)
	for _, p := range parts {
		for _, line := range bytes.Split([]byte(p.text), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if line[0] == '#' {
				// "# HELP name ..." / "# TYPE name ...": dedupe per family.
				fields := bytes.Fields(line)
				if len(fields) >= 3 {
					key := string(fields[1]) + " " + string(fields[2])
					if seen[key] {
						continue
					}
					seen[key] = true
				}
				w.Write(line)
				w.Write([]byte("\n"))
				continue
			}
			w.Write(injectNodeLabel(line, p.node))
			w.Write([]byte("\n"))
		}
	}
}

func (c *clusterNode) fetchMetrics(ctx context.Context, node cluster.Node) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.URL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.probeClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// injectNodeLabel rewrites one exposition sample line to carry
// node="name" as its first label. The metric name never contains '{'
// or spaces, so splitting on the first of either is sound.
func injectNodeLabel(line []byte, node string) []byte {
	brace := bytes.IndexByte(line, '{')
	space := bytes.IndexByte(line, ' ')
	if space < 0 {
		return line // not a sample line; pass through
	}
	label := `node="` + escapeLabel(node) + `"`
	var out bytes.Buffer
	if brace >= 0 && brace < space {
		out.Write(line[:brace+1])
		out.WriteString(label)
		out.WriteByte(',')
		out.Write(line[brace+1:])
	} else {
		out.Write(line[:space])
		out.WriteByte('{')
		out.WriteString(label)
		out.WriteByte('}')
		out.Write(line[space:])
	}
	return out.Bytes()
}

// mergeSessions builds the cluster-wide session listing: each node's
// sessions in topology (node-name) order. Dead peers contribute
// nothing directly — their adopted sessions already appear in the
// promoting node's local list.
func (c *clusterNode) mergeSessions(ctx context.Context, local []SessionInfo) []SessionInfo {
	out := make([]SessionInfo, 0, len(local))
	for _, n := range c.topo.Nodes() {
		if n.Name == c.selfName() {
			out = append(out, local...)
			continue
		}
		if c.isDead(n.Name) {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/v1/sessions", nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedHeader, "1")
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		var infos []SessionInfo
		derr := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&infos)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		out = append(out, infos...)
	}
	return out
}
