package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/serve"
)

const (
	testHours = 240
	testSeed  = 7
)

// testMarket regenerates the deterministic market the test server runs
// on, so library-path comparisons see byte-for-byte the same prices.
func testMarket() *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), testHours, testSeed)
}

func newTestServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	if cfg.Market == nil {
		cfg.Market = testMarket()
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if cerr := s.Close(); cerr != nil {
			t.Errorf("server close: %v", cerr)
		}
	})
	return ts
}

// postJSON posts v and returns the status, headers and body.
func postJSON(t *testing.T, url string, v any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, out
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, out)
	}
	return out
}

// metricValue extracts one gauge/counter from Prometheus text.
func metricValue(t *testing.T, metrics []byte, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, metrics)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// smallPlan is a fast deterministic plan request (serial search, tiny
// subset space) used wherever the test only needs *a* plan.
func smallPlan(deadline float64) serve.PlanRequest {
	return serve.PlanRequest{
		App: "BT", DeadlineHours: deadline,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
	}
}

// TestPlanMatchesLibrary is the service's core guarantee: the served
// plan is byte-identical to a library-path OptimizeContext call at the
// same market version (workers=1 so Evals/Pruned are deterministic too).
func TestPlanMatchesLibrary(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := smallPlan(60)

	status, hdr, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	if got := hdr.Get("X-Sompid-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}

	// Library path over an identical market: same training window, same
	// config, rendered through the same encoding helper.
	m := testMarket()
	profile, _ := app.ByName("BT")
	frontier := m.MinDuration()
	lo := math.Max(0, frontier-baselines.History)
	train := m.Window(lo, frontier-lo)
	res, err := opt.OptimizeContext(context.Background(), req.Config(profile, train))
	if err != nil {
		t.Fatalf("library optimize: %v", err)
	}
	want, _ := json.Marshal(serve.BuildPlanResponse(m.Version(), res))
	if !bytes.Equal(body, want) {
		t.Fatalf("served plan differs from library plan:\n got %s\nwant %s", body, want)
	}

	var resp serve.PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.MarketVersion != 1 || len(resp.Plan.Groups) == 0 || resp.Evals == 0 {
		t.Fatalf("implausible plan response: %+v", resp)
	}
}

// TestPlanCacheHitAndInvalidation: a repeated request is a byte-equal
// hit; ingestion bumps the version, which invalidates the cache (the key
// changed) and shows up in the fresh plan's market_version.
func TestPlanCacheHitAndInvalidation(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := smallPlan(60)

	_, _, first := postJSON(t, ts.URL+"/v1/plan", req)
	status, hdr, second := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "hit" {
		t.Fatalf("second request: %d, cache %q, want 200 hit", status, hdr.Get("X-Sompid-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit is not byte-identical:\n%s\n%s", first, second)
	}

	tick := serve.PriceTick{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05, 0.05}}
	status, _, body := postJSON(t, ts.URL+"/v1/prices", tick)
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	var pr serve.PricesResponse
	json.Unmarshal(body, &pr)
	if pr.MarketVersion != 2 || pr.Ticks != 1 || pr.Samples != 2 {
		t.Fatalf("ingest response: %+v, want version 2, 1 tick, 2 samples", pr)
	}

	status, hdr, third := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "miss" {
		t.Fatalf("post-ingest request: %d, cache %q, want 200 miss (version changed)", status, hdr.Get("X-Sompid-Cache"))
	}
	var resp serve.PlanResponse
	json.Unmarshal(third, &resp)
	if resp.MarketVersion != 2 {
		t.Fatalf("post-ingest plan at version %d, want 2", resp.MarketVersion)
	}

	mx := getBody(t, ts.URL+"/metrics")
	if hits := metricValue(t, mx, "sompid_plan_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits %v, want 1", hits)
	}
	if misses := metricValue(t, mx, "sompid_plan_cache_misses_total"); misses != 2 {
		t.Fatalf("cache misses %v, want 2", misses)
	}
	if v := metricValue(t, mx, "sompid_market_version"); v != 2 {
		t.Fatalf("market version metric %v, want 2", v)
	}
}

func TestPlanValidationErrors(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		req  serve.PlanRequest
		want int
	}{
		{"unknown workload", serve.PlanRequest{App: "NOPE", DeadlineHours: 50}, http.StatusBadRequest},
		{"negative deadline", serve.PlanRequest{App: "BT", DeadlineHours: -5}, http.StatusBadRequest},
		{"kappa over max groups", serve.PlanRequest{App: "BT", DeadlineHours: 50, Kappa: 5, MaxGroups: 2}, http.StatusBadRequest},
		{"infeasible deadline", serve.PlanRequest{App: "BT", DeadlineHours: 0.001}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		status, _, body := postJSON(t, ts.URL+"/v1/plan", tc.req)
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
		var e serve.ErrorResponse
		if json.Unmarshal(body, &e) != nil || e.Error == "" {
			t.Errorf("%s: error body %s is not an ErrorResponse", tc.name, body)
		}
	}
}

// TestEvaluateEndpoint round-trips a served plan through /v1/evaluate
// and expects the cost model to reproduce the optimizer's estimate
// exactly — the wire encoding loses nothing the model needs.
func TestEvaluateEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	_, _, planBody := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	var plan serve.PlanResponse
	if err := json.Unmarshal(planBody, &plan); err != nil {
		t.Fatalf("unmarshal plan: %v", err)
	}

	status, _, body := postJSON(t, ts.URL+"/v1/evaluate", serve.EvaluateRequest{App: "BT", Plan: plan.Plan})
	if status != http.StatusOK {
		t.Fatalf("evaluate: %d %s", status, body)
	}
	var ev serve.EvaluateResponse
	json.Unmarshal(body, &ev)
	if ev.Estimate != plan.Estimate {
		t.Fatalf("evaluate estimate %+v differs from optimizer estimate %+v", ev.Estimate, plan.Estimate)
	}

	// A plan naming an unknown instance type is unprocessable.
	bad := plan.Plan
	bad.Recovery.Type = "x9.metal"
	status, _, body = postJSON(t, ts.URL+"/v1/evaluate", serve.EvaluateRequest{App: "BT", Plan: bad})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad recovery type: %d %s, want 422", status, body)
	}
}

// TestMonteCarloEndpoint checks the served statistics equal a
// library-path MonteCarloContext run with the same seed on the same
// market snapshot.
func TestMonteCarloEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := serve.MonteCarloRequest{
		App: "BT", DeadlineHours: 30, Runs: 5, Seed: 3, Workers: 2, Strategy: "baseline",
	}
	status, _, body := postJSON(t, ts.URL+"/v1/montecarlo", req)
	if status != http.StatusOK {
		t.Fatalf("montecarlo: %d %s", status, body)
	}
	var got serve.MonteCarloResponse
	json.Unmarshal(body, &got)

	profile, _ := app.ByName("BT")
	m := testMarket()
	st, err := replay.MonteCarloContext(context.Background(), baselines.Baseline(),
		&replay.Runner{Market: m, Profile: profile},
		replay.MCConfig{Deadline: 30, Runs: 5, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatalf("library montecarlo: %v", err)
	}
	if got.Runs != st.Runs || got.CostMean != st.Cost.Mean() || got.HoursMean != st.Hours.Mean() {
		t.Fatalf("served stats %+v differ from library stats %+v", got, st)
	}
	if got.Strategy != "Baseline" {
		t.Fatalf("strategy name %q, want Baseline", got.Strategy)
	}

	status, _, body = postJSON(t, ts.URL+"/v1/montecarlo",
		serve.MonteCarloRequest{App: "BT", DeadlineHours: 30, Runs: 5, Strategy: "nope"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown strategy: %d %s, want 400", status, body)
	}
	status, _, body = postJSON(t, ts.URL+"/v1/montecarlo",
		serve.MonteCarloRequest{App: "BT", DeadlineHours: 30, Runs: 0})
	if status != http.StatusBadRequest {
		t.Fatalf("zero runs: %d %s, want 400", status, body)
	}
}

// TestPricesStreamAndErrors covers the NDJSON stream shape, the array
// shape, and the typed rejection paths.
func TestPricesStreamAndErrors(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	// NDJSON: two ticks in one body.
	nd := fmt.Sprintf("{%q:%q,%q:%q,%q:[0.05]}\n{%q:%q,%q:%q,%q:[0.06,0.07]}\n",
		"type", cloud.M1Small.Name, "zone", cloud.ZoneB, "prices",
		"type", cloud.M1Small.Name, "zone", cloud.ZoneB, "prices")
	resp, err := http.Post(ts.URL+"/v1/prices", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatalf("ndjson post: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var pr serve.PricesResponse
	json.Unmarshal(body, &pr)
	if resp.StatusCode != http.StatusOK || pr.Ticks != 2 || pr.Samples != 3 || pr.MarketVersion != 3 {
		t.Fatalf("ndjson ingest: %d %+v, want 2 ticks, 3 samples, version 3", resp.StatusCode, pr)
	}

	// Array shape.
	status, _, body := postJSON(t, ts.URL+"/v1/prices", []serve.PriceTick{
		{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneC, Prices: []float64{0.1}},
		{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneA, Prices: []float64{0.1}},
	})
	json.Unmarshal(body, &pr)
	if status != http.StatusOK || pr.Ticks != 2 || pr.MarketVersion != 5 {
		t.Fatalf("array ingest: %d %+v, want 2 ticks at version 5", status, pr)
	}

	// Unknown market: 422, and the version must not move.
	status, _, body = postJSON(t, ts.URL+"/v1/prices",
		serve.PriceTick{Type: "x9.metal", Zone: cloud.ZoneA, Prices: []float64{0.1}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown market: %d %s, want 422", status, body)
	}

	// Negative price: 400, version still parked.
	status, _, body = postJSON(t, ts.URL+"/v1/prices",
		serve.PriceTick{Type: cloud.M1Small.Name, Zone: cloud.ZoneA, Prices: []float64{-1}})
	if status != http.StatusBadRequest {
		t.Fatalf("negative price: %d %s, want 400", status, body)
	}

	mx := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, mx, "sompid_market_version"); v != 5 {
		t.Fatalf("market version %v after rejected ticks, want 5", v)
	}
	if v := metricValue(t, mx, "sompid_ingest_samples_total"); v != 5 {
		t.Fatalf("ingested samples %v, want 5", v)
	}
}

// TestSessionReoptimization is the tentpole's adaptive loop end to end:
// a tracked plan becomes a session; ingesting prices past the session's
// T_m boundary replays the elapsed window against the actual ticks and
// re-optimizes the residual — observable in the ingest response, the
// session listing and /metrics.
func TestSessionReoptimization(t *testing.T) {
	const window = 2.0
	ts := newTestServer(t, serve.Config{WindowHours: window})

	req := smallPlan(60)
	req.Track = true
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("tracked plan: %d %s", status, body)
	}
	var plan serve.PlanResponse
	json.Unmarshal(body, &plan)
	if plan.SessionID == "" {
		t.Fatalf("tracked plan has no session id: %s", body)
	}

	mx := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, mx, "sompid_active_sessions"); v != 1 {
		t.Fatalf("active sessions %v, want 1", v)
	}

	// Advance every market two hours (one window) past the frontier. The
	// flat 0.05 price sits below every plausible bid, so the groups
	// survive the window and the session re-optimizes rather than dying.
	samples := make([]float64, int(window*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []serve.PriceTick
	for _, key := range testMarket().Keys() {
		ticks = append(ticks, serve.PriceTick{Type: key.Type, Zone: key.Zone, Prices: samples})
	}
	status, _, body = postJSON(t, ts.URL+"/v1/prices?sync=1", ticks)
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	var pr serve.PricesResponse
	json.Unmarshal(body, &pr)
	if pr.Reoptimized < 1 {
		t.Fatalf("ingest crossed the window boundary but re-optimized %d sessions: %+v", pr.Reoptimized, pr)
	}

	var sessions []serve.SessionInfo
	json.Unmarshal(getBody(t, ts.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 1 {
		t.Fatalf("session listing: %+v, want 1 session", sessions)
	}
	got := sessions[0]
	if got.ID != plan.SessionID || got.Reoptimized < 1 || got.Windows < 1 || got.Progress <= 0 {
		t.Fatalf("session did not advance through the window: %+v", got)
	}
	if got.PlanVersion < 2 {
		t.Fatalf("session plan version %d, want re-optimized at an ingested version", got.PlanVersion)
	}

	mx = getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, mx, "sompid_reoptimizations_total"); v < 1 {
		t.Fatalf("reoptimizations metric %v, want >= 1", v)
	}
}

// TestPlanCancellationStopsSearch cancels a deliberately exhaustive
// request mid-search and asserts (a) the service registers the
// cancellation and (b) the search provably stopped early: the evals
// counter stays below what the same request performs when allowed to
// finish.
func TestPlanCancellationStopsSearch(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := serve.PlanRequest{
		App: "BT", DeadlineHours: 200, Workers: 1, DisablePruning: true,
	}
	payload, _ := json.Marshal(req)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	httpReq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(payload))
	httpReq.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(httpReq); err == nil {
		resp.Body.Close()
		t.Fatalf("expected the client to abandon the request, got status %d", resp.StatusCode)
	}

	// The handler notices the disconnect at the next evaluation; give it
	// a moment, then read the counters.
	var cancelled, evals float64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mx := getBody(t, ts.URL+"/metrics")
		cancelled = metricValue(t, mx, "sompid_requests_cancelled_total")
		evals = metricValue(t, mx, "sompid_optimizer_evals_total")
		if cancelled >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if cancelled < 1 {
		t.Fatalf("cancelled-requests metric %v, want >= 1", cancelled)
	}

	// Full search for comparison (library path, same config).
	profile, _ := app.ByName("BT")
	m := testMarket()
	lo := m.MinDuration() - baselines.History
	full, err := opt.OptimizeContext(context.Background(), req.Config(profile, m.Window(lo, baselines.History)))
	if err != nil {
		t.Fatalf("full search: %v", err)
	}
	if evals <= 0 || evals >= float64(full.Evals) {
		t.Fatalf("cancelled search recorded %v evals, want in (0, %d): the search did not stop early", evals, full.Evals)
	}
}

// TestConcurrentPlansAndIngest hammers planning and ingestion from
// concurrent goroutines; under -race this is the service's locking
// soundness gate.
func TestConcurrentPlansAndIngest(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				req := serve.PlanRequest{
					App: "BT", DeadlineHours: 40 + float64(4*g+i),
					Workers: 1, Kappa: 1, GridLevels: 2, MaxGroups: 2,
				}
				status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("plan g%d i%d: %d %s", g, i, status, body)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			zone := []string{cloud.ZoneA, cloud.ZoneB}[g]
			for i := 0; i < 5; i++ {
				tick := serve.PriceTick{Type: cloud.M1Medium.Name, Zone: zone, Prices: []float64{0.05}}
				status, _, body := postJSON(t, ts.URL+"/v1/prices", tick)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("ingest g%d i%d: %d %s", g, i, status, body)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	mx := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, mx, "sompid_ingest_ticks_total"); v != 10 {
		t.Fatalf("ingested ticks %v, want 10", v)
	}
	if v := metricValue(t, mx, "sompid_market_version"); v != 11 {
		t.Fatalf("market version %v, want 11 (1 + 10 appends)", v)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	var hz struct {
		Status        string  `json:"status"`
		MarketVersion uint64  `json:"market_version"`
		Frontier      float64 `json:"frontier_hours"`
	}
	json.Unmarshal(getBody(t, ts.URL+"/healthz"), &hz)
	if hz.Status != "ok" || hz.MarketVersion != 1 || hz.Frontier != testHours {
		t.Fatalf("healthz: %+v", hz)
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: %d, want 405", resp.StatusCode)
	}
	status, _, _ := postJSON(t, ts.URL+"/v1/unknown", struct{}{})
	if status != http.StatusNotFound {
		t.Fatalf("POST /v1/unknown: %d, want 404", status)
	}
}
