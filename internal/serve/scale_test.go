package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/store"
)

// storeOpen opens a fsync'd WAL store over dir.
func storeOpen(dir string) (*store.Store, error) {
	return store.Open(dir, store.Options{Fsync: true})
}

// newMemServer builds an in-memory server plus a test HTTP front, both
// torn down at cleanup.
func newMemServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Market == nil {
		cfg.Market = durableMarket()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if cerr := s.Close(); cerr != nil {
			t.Errorf("server close: %v", cerr)
		}
	})
	return s, ts
}

// A full per-shard queue must answer 429 with Retry-After instead of
// buffering without bound: the backpressure contract of the batched
// ingest path.
func TestIngestBackpressure429(t *testing.T) {
	m := durableMarket()
	s, ts := newMemServer(t, Config{Market: m, IngestQueue: -1}) // capacity 1

	// Stall the applier inside the persist hook: the first batch blocks
	// mid-apply, the second fills the 1-slot queue, the third must bounce.
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	m.SetPersistBatch(func(_ cloud.MarketKey, ticks [][]float64, _ uint64) (int, error) {
		entered <- struct{}{}
		<-release
		return len(ticks), nil
	})

	tick := `{"type":"m1.small","zone":"us-east-1a","prices":[0.05]}`
	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/v1/prices", "application/json", strings.NewReader(tick))
	}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := post()
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
		if i == 0 {
			<-entered // applier owns batch 1; batch 2 will sit in the queue
		} else {
			// Wait until batch 2 is actually queued behind the stalled
			// applier before sending the one that must bounce. White-box:
			// /metrics would wedge here — ShardStats takes the shard read
			// lock the stalled apply holds for writing.
			deadline := time.Now().Add(5 * time.Second)
			for s.ing.depths()["m1.small/us-east-1a"] < 1 {
				if time.Now().After(deadline) {
					t.Fatal("second batch never reached the queue")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	resp, err := post()
	if err != nil {
		t.Fatalf("backpressure POST: %v", err)
	}
	body := make([]byte, 512)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d (%s), want 429", resp.StatusCode, body[:n])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	once.Do(func() { close(release) })
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("stalled request %d finished with %d, want 200", i, code)
		}
	}
}

// The adaptive flush threshold doubles under queue pressure, halves
// when the backlog drains, stays inside [minBatchTicks,
// maxBatchTicksCap], and is observable per shard on /metrics.
func TestIngestBatchTargetAdapts(t *testing.T) {
	s, ts := newMemServer(t, Config{})
	key := s.market.Keys()[0]
	if got := s.ing.batchTarget(key); got != initBatchTicks {
		t.Fatalf("initial batch target %d, want %d", got, initBatchTicks)
	}
	for i := 0; i < 10; i++ {
		s.ing.growTarget(key)
	}
	if got := s.ing.batchTarget(key); got != maxBatchTicksCap {
		t.Fatalf("grown batch target %d, want capped at %d", got, maxBatchTicksCap)
	}
	for i := 0; i < 10; i++ {
		s.ing.decayTarget(key)
	}
	if got := s.ing.batchTarget(key); got != minBatchTicks {
		t.Fatalf("decayed batch target %d, want floored at %d", got, minBatchTicks)
	}

	// Unknown shards fall back to the default; grow/decay are no-ops.
	other := cloud.MarketKey{Type: "none", Zone: "nowhere"}
	s.ing.growTarget(other)
	if got := s.ing.batchTarget(other); got != initBatchTicks {
		t.Fatalf("unknown-shard batch target %d, want %d", got, initBatchTicks)
	}

	snap := s.ing.targetsSnapshot()
	if len(snap) != len(s.market.Keys()) {
		t.Fatalf("targets snapshot has %d shards, want %d", len(snap), len(s.market.Keys()))
	}
	if snap[key.String()] != minBatchTicks {
		t.Fatalf("snapshot[%s] = %d, want %d", key, snap[key.String()], minBatchTicks)
	}
	metrics := durableGet(t, ts.URL+"/metrics")
	want := fmt.Sprintf("sompid_ingest_batch_target{market=%q} %d", key.String(), minBatchTicks)
	if !strings.Contains(string(metrics), want) {
		t.Fatalf("/metrics misses %q", want)
	}
}

// k identical tracked sessions crossing one boundary must coalesce onto
// a single optimizer run — every session re-optimizes, k-1 of them
// adopt the leader's shared result, and all k adopt byte-identical
// plans.
func TestReoptDedupCoalescesIdenticalSessions(t *testing.T) {
	s, ts := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})

	const k = 5
	for i := 0; i < k; i++ {
		var plan PlanResponse
		if err := json.Unmarshal(durablePost(t, ts.URL+"/v1/plan", trackedPlan()), &plan); err != nil || plan.SessionID == "" {
			t.Fatalf("tracked plan %d: err %v, id %q", i, err, plan.SessionID)
		}
	}
	// A sixth session with a different deadline shares nothing: its
	// boundary re-opt must run its own search.
	other := trackedPlan()
	other.DeadlineHours = 90
	durablePost(t, ts.URL+"/v1/plan", other)

	reoptsBefore := s.met.reoptimizations.Load()
	dedupBefore := s.met.reoptDeduped.Load()

	ingestHours(t, ts.URL, 2.5) // one T_m boundary, drained via ?sync=1

	if got := s.met.reoptimizations.Load() - reoptsBefore; got != k+1 {
		t.Fatalf("reoptimizations delta %d, want %d (every session re-planned)", got, k+1)
	}
	if got := s.met.reoptDeduped.Load() - dedupBefore; got != k-1 {
		t.Fatalf("reopt_deduped delta %d, want %d (one shared run for %d twins, a solo run for the odd one)",
			got, k-1, k)
	}

	var sessions []SessionInfo
	json.Unmarshal(durableGet(t, ts.URL+"/v1/sessions"), &sessions)
	if len(sessions) != k+1 {
		t.Fatalf("%d sessions listed, want %d", len(sessions), k+1)
	}
	var wantPlan string
	for _, si := range sessions[:k] {
		if len(si.Audit) == 0 || si.Audit[0].NewPlan == nil {
			t.Fatalf("session %s has no adopted plan after the boundary: %+v", si.ID, si)
		}
		p, _ := json.Marshal(si.Audit[0].NewPlan)
		if wantPlan == "" {
			wantPlan = string(p)
		} else if string(p) != wantPlan {
			t.Fatalf("deduplicated sessions diverged:\n%s\n%s", wantPlan, p)
		}
	}
}

// Identical concurrent plan requests (tracked included) coalesce too:
// registering k sessions costs one optimizer search.
func TestTrackedPlanRegistrationDedups(t *testing.T) {
	s, ts := newMemServer(t, Config{Market: durableMarket()})

	durablePost(t, ts.URL+"/v1/plan", trackedPlan()) // leader populates the run cache
	dedupBefore := s.met.reoptDeduped.Load()
	evalsBefore := s.met.evals.Load()
	for i := 0; i < 3; i++ {
		durablePost(t, ts.URL+"/v1/plan", trackedPlan())
	}
	if got := s.met.reoptDeduped.Load() - dedupBefore; got != 3 {
		t.Fatalf("reopt_deduped delta %d, want 3 (every follower shared the leader's run)", got)
	}
	if got := s.met.evals.Load() - evalsBefore; got != 0 {
		t.Fatalf("followers spent %d optimizer evals, want 0", got)
	}
}

// The asynchronous scheduler path must land sessions in exactly the
// state the synchronous lockstep path does: same audit trail, same
// adopted plan bytes, same cost — only the processing-time-dependent
// market versions may differ.
func TestAsyncSchedulerMatchesLockstep(t *testing.T) {
	_, lockstep := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})
	_, async := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})

	reqs := []PlanRequest{trackedPlan()}
	other := trackedPlan()
	other.DeadlineHours = 90
	reqs = append(reqs, other)
	for _, req := range reqs {
		durablePost(t, lockstep.URL+"/v1/plan", req)
		durablePost(t, async.URL+"/v1/plan", req)
	}

	// The same 4.5 hours of flat prices, tick by tick: the lockstep twin
	// drains the scheduler after every tick, the async twin streams the
	// full feed in one request per shard and drains once at the end.
	const hours, tickHours = 4.5, 0.5
	samples := make([]float64, int(tickHours*12))
	for i := range samples {
		samples[i] = 0.05
	}
	keys := durableMarket().Keys()
	for step := 0; step < int(hours/tickHours); step++ {
		var ticks []PriceTick
		for _, k := range keys {
			ticks = append(ticks, PriceTick{Type: k.Type, Zone: k.Zone, Prices: samples})
		}
		durablePost(t, lockstep.URL+"/v1/prices?sync=1", ticks)
	}
	for _, k := range keys {
		var ticks []PriceTick
		for step := 0; step < int(hours/tickHours); step++ {
			ticks = append(ticks, PriceTick{Type: k.Type, Zone: k.Zone, Prices: samples})
		}
		durablePost(t, async.URL+"/v1/prices", ticks)
	}
	durablePost(t, async.URL+"/v1/prices?sync=1", []PriceTick{})

	var a, b []SessionInfo
	json.Unmarshal(durableGet(t, lockstep.URL+"/v1/sessions"), &a)
	json.Unmarshal(durableGet(t, async.URL+"/v1/sessions"), &b)
	normalize := func(ss []SessionInfo) string {
		for i := range ss {
			ss[i].PlanVersion = 0
			for j := range ss[i].Audit {
				ss[i].Audit[j].MarketVersions = nil
			}
		}
		out, _ := json.MarshalIndent(ss, "", " ")
		return string(out)
	}
	na, nb := normalize(a), normalize(b)
	if na != nb {
		t.Fatalf("async scheduler diverged from lockstep:\nlockstep: %s\nasync: %s", na, nb)
	}
	if len(a) != len(reqs) || len(a[0].Audit) == 0 {
		t.Fatalf("twin comparison is vacuous: %d sessions, %d audit records", len(a), len(a[0].Audit))
	}
}

// The headline scale test: thousands of tracked sessions advancing
// under concurrent multi-shard NDJSON ingest. Registration is white-box
// (one optimizer run fans out to every session) so the test spends its
// time where the PR does — the ingest queues, the scheduler heaps and
// the dedup cache — not in the optimizer.
func TestManySessionsUnderConcurrentIngest(t *testing.T) {
	sessions := 10000
	if raceEnabled {
		sessions = 1500
	}
	if testing.Short() {
		sessions = 500
	}

	s, ts := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})
	req := trackedPlan()
	profile, ok := app.ByName(req.App)
	if !ok {
		t.Fatalf("unknown app %q", req.App)
	}
	// keys stays nil for the unfiltered request — "every shard" — so the
	// ingest fan-out below walks the market's concrete key set instead.
	snap, keys, frontier, train := s.trainSnapshot(req, s.historyOr(req.HistoryHours))
	shards := s.market.Keys()
	cfg := req.Config(profile, train)
	cfg.Reuse = s.reuse
	res, err := opt.OptimizeContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("seed optimization: %v", err)
	}
	for i := 0; i < sessions; i++ {
		if _, rerr := s.registerSession(profile, req, res, snap.Version(), frontier, keys); rerr != nil {
			t.Fatalf("register %d: %v", i, rerr)
		}
	}
	if got := s.met.activeSessions.Load(); got != int64(sessions) {
		t.Fatalf("active sessions %d, want %d", got, sessions)
	}
	reoptsBefore := s.met.reoptimizations.Load()

	// 2.5 hours of flat prices — one boundary for every session — fed as
	// concurrent NDJSON streams, each goroutine owning a disjoint shard
	// subset, each shard's history split across several requests.
	const workers, requestsPerShard = 4, 5
	samples := strings.Repeat("0.05,", int(2.5*12/requestsPerShard))
	samples = samples[:len(samples)-1]
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < requestsPerShard; r++ {
				var body strings.Builder
				for i := w; i < len(shards); i += workers {
					fmt.Fprintf(&body, "{\"type\":%q,\"zone\":%q,\"prices\":[%s]}\n",
						shards[i].Type, shards[i].Zone, samples)
				}
				resp, err := http.Post(ts.URL+"/v1/prices", "application/json", strings.NewReader(body.String()))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("ingest worker %d: status %d", w, resp.StatusCode)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					r-- // backpressure: retry the same slice
					time.Sleep(10 * time.Millisecond)
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	durablePost(t, ts.URL+"/v1/prices?sync=1", []PriceTick{}) // drain

	if got := s.met.reoptimizations.Load() - reoptsBefore; got < int64(sessions) {
		t.Fatalf("only %d re-optimizations for %d sessions past a boundary", got, sessions)
	}
	if deduped := s.met.reoptDeduped.Load(); deduped < int64(sessions/2) {
		t.Fatalf("dedup did not engage: %d shares across %d identical sessions", deduped, sessions)
	}
	s.mu.RLock()
	var advanced int
	for _, tr := range s.sessions {
		tr.mu.Lock()
		if tr.reopts > 0 || tr.done {
			advanced++
		}
		tr.mu.Unlock()
	}
	s.mu.RUnlock()
	if advanced != sessions {
		t.Fatalf("%d of %d sessions advanced past the boundary", advanced, sessions)
	}
}

// A crash between a boundary-crossing ingest and its re-optimization
// must not lose the re-opt: the restart reschedules the recovered
// session and the scheduler runs it.
func TestRestartReschedulesPendingReopts(t *testing.T) {
	dir := t.TempDir()

	// Server A has no re-opt workers — the ingest crosses the boundary,
	// the WAL records the ticks, and the re-optimization stays pending
	// forever, exactly the window a SIGKILL would hit.
	stA, err := storeOpen(dir)
	if err != nil {
		t.Fatal(err)
	}
	sA, err := New(Config{Market: durableMarket(), WindowHours: 2, Store: stA, ReoptWorkers: -1})
	if err != nil {
		t.Fatalf("serve.New A: %v", err)
	}
	tsA := httptest.NewServer(sA.Handler())
	var plan PlanResponse
	json.Unmarshal(durablePost(t, tsA.URL+"/v1/plan", trackedPlan()), &plan)
	if plan.SessionID == "" {
		t.Fatal("no session id")
	}

	samples := make([]float64, int(2.5*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []PriceTick
	for _, k := range durableMarket().Keys() {
		ticks = append(ticks, PriceTick{Type: k.Type, Zone: k.Zone, Prices: samples})
	}
	var pr PricesResponse
	json.Unmarshal(durablePost(t, tsA.URL+"/v1/prices", ticks), &pr)
	if pr.Reoptimized != 0 {
		t.Fatalf("a worker-less server re-optimized %d sessions", pr.Reoptimized)
	}

	// Crash: close the WAL out from under the server, never s.Close —
	// no shutdown snapshot, no graceful session persist.
	tsA.Close()
	if err := sA.store.Close(); err != nil {
		t.Fatalf("killing store: %v", err)
	}
	t.Cleanup(func() { sA.Close() })

	stB, err := storeOpen(dir)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := New(Config{Market: durableMarket(), WindowHours: 2, Store: stB})
	if err != nil {
		t.Fatalf("serve.New B: %v", err)
	}
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(func() {
		tsB.Close()
		if cerr := sB.Close(); cerr != nil {
			t.Errorf("close B: %v", cerr)
		}
	})

	// An empty ?sync=1 feed is a pure drain: the recovered session was
	// rescheduled at startup, so its pending re-opt has landed by the
	// time this returns (it may already have landed before the request —
	// workers start at New — so assert on the session, not the delta).
	durablePost(t, tsB.URL+"/v1/prices?sync=1", []PriceTick{})
	var sessions []SessionInfo
	json.Unmarshal(durableGet(t, tsB.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 1 || sessions[0].Reoptimized < 1 {
		t.Fatalf("restart lost the pending re-optimization: %+v", sessions)
	}
	if v := promValue(t, durableGet(t, tsB.URL+"/metrics"), "sompid_reoptimizations_total"); v < 1 {
		t.Fatalf("reoptimizations_total %v after restart, want >= 1", v)
	}
}
