package serve_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sompi/internal/harness"
	"sompi/internal/serve"
)

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// TestCaptureLogRecordsTraffic drives a capture-enabled server and
// checks the log against the live responses: one record per request in
// order, the echoed X-Request-Id (client-supplied or minted) recorded,
// the body verbatim, and the response identified by status and body
// hash. The tiny segment size forces rotation mid-test, so the loaded
// stream also proves ordering across sealed segments and the still-
// active .part one.
func TestCaptureLogRecordsTraffic(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, serve.Config{CaptureLog: dir, CaptureSegmentRecords: 2})

	planBody, err := json.Marshal(smallPlan(60))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	// Request 0: plan with a client-supplied request id.
	req, err := http.NewRequest("POST", ts.URL+"/v1/plan", bytes.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "capture-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("plan request: %v", err)
	}
	firstBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, firstBody)
	}

	// Request 1: the same plan again (a cache hit server-side; the id is
	// minted by the middleware this time). Request 2: a GET.
	_, hdr, secondBody := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	mintedID := hdr.Get("X-Request-Id")
	if mintedID == "" {
		t.Fatal("middleware stopped echoing X-Request-Id")
	}
	stratBody := getBody(t, ts.URL+"/v1/strategies")

	recs, err := harness.Load(dir)
	if err != nil {
		t.Fatalf("loading capture log: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("captured %d records, want 3: %+v", len(recs), recs)
	}

	sum := func(b []byte) string {
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}
	checks := []struct {
		endpoint, method, path, reqID, body, bodySum string
	}{
		{"plan", "POST", "/v1/plan", "capture-test-1", string(planBody), sum(firstBody)},
		{"plan", "POST", "/v1/plan", mintedID, string(planBody), sum(secondBody)},
		{"strategies", "GET", "/v1/strategies", "", "", sum(stratBody)},
	}
	for i, want := range checks {
		got := recs[i]
		if got.Seq != i {
			t.Errorf("record %d: seq %d", i, got.Seq)
		}
		if got.Endpoint != want.endpoint || got.Method != want.method || got.Path != want.path {
			t.Errorf("record %d: %s %s %s, want %s %s %s", i, got.Method, got.Path, got.Endpoint, want.method, want.path, want.endpoint)
		}
		if want.reqID != "" && got.RequestID != want.reqID {
			t.Errorf("record %d: request id %q, want the echoed %q", i, got.RequestID, want.reqID)
		}
		if got.RequestID == "" {
			t.Errorf("record %d: no request id captured", i)
		}
		if got.Body != want.body {
			t.Errorf("record %d: body %q, want %q", i, got.Body, want.body)
		}
		if got.Status != http.StatusOK {
			t.Errorf("record %d: status %d", i, got.Status)
		}
		if got.BodySHA256 != want.bodySum {
			t.Errorf("record %d: body hash %s, want %s (capture hashed different bytes than the client saw)", i, got.BodySHA256, want.bodySum)
		}
	}

	// The capture families on /metrics track the log.
	text := string(getBody(t, ts.URL+"/metrics"))
	if v := metricValue(t, []byte(text), "sompid_capture_records_total"); v != 3 {
		t.Errorf("sompid_capture_records_total = %v, want 3", v)
	}
	if v := metricValue(t, []byte(text), "sompid_capture_active_segment"); v != 1 {
		t.Errorf("sompid_capture_active_segment = %v, want 1 after rotating a 2-record segment", v)
	}
}

// TestCaptureSkipsOversizedBodies proves the capture bound never fails
// a request: a body past the bound is served normally (streamed through
// untouched) but lands in sompid_capture_skipped_total instead of the
// log.
func TestCaptureSkipsOversizedBodies(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, serve.Config{CaptureLog: dir, CaptureSegmentRecords: 8})

	// 4 MiB + slack of newline-delimited garbage: the prices handler
	// reads it all (and rejects it), so the pass-through reader is fully
	// exercised.
	big := strings.Repeat("not json\n", (4<<20)/9+64)
	resp, err := http.Post(ts.URL+"/v1/prices", "application/x-ndjson", strings.NewReader(big))
	if err != nil {
		t.Fatalf("oversized request: %v", err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized garbage body answered %d, want 400", resp.StatusCode)
	}

	text := string(getBody(t, ts.URL+"/metrics"))
	if v := metricValue(t, []byte(text), "sompid_capture_skipped_total"); v != 1 {
		t.Errorf("sompid_capture_skipped_total = %v, want 1", v)
	}
	if v := metricValue(t, []byte(text), "sompid_capture_records_total"); v != 0 {
		t.Errorf("sompid_capture_records_total = %v, want 0 (oversized request must not be captured)", v)
	}
	if _, err := harness.Load(dir); err == nil {
		t.Error("capture log holds records despite every request being skipped")
	}
}
