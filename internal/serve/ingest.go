package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/cloud"
)

// This file is the batched ingest pipeline: handlePrices stages a tick
// stream per (type, AZ) shard and hands each shard's run to a dedicated
// applier goroutine through a bounded queue. The applier applies the
// whole run under one shard write-lock acquisition (and one WAL group
// commit) via cloud.Market.AppendBatch, then wakes the re-optimization
// scheduler for that shard. Ingest latency therefore stops depending on
// how many sessions a tick invalidates — the request path never runs an
// optimizer — and a firehose feeding one shard amortizes its lock and
// fsync cost across the batch.

// errIngestBacklog reports a shard queue that stayed full past the
// enqueue grace period: the client should back off (429 + Retry-After).
var errIngestBacklog = errors.New("serve: ingest queue full")

// errIngestClosed reports an enqueue against a stopped ingester (the
// server is shutting down).
var errIngestClosed = errors.New("serve: ingest stopped")

// ingestEnqueueWait is how long an enqueue blocks on a full shard queue
// before surfacing backpressure to the client.
const ingestEnqueueWait = 50 * time.Millisecond

// Adaptive batch sizing: each shard's flush threshold — how many ticks
// handlePrices stages before handing the applier a batch — starts at
// initBatchTicks, doubles (up to maxBatchTicksCap) whenever an enqueue
// observes batches already waiting in the shard's queue, and halves
// (down to minBatchTicks) whenever the applier drains the queue empty.
// Under sustained pressure bigger batches amortize the shard lock and
// the WAL group-commit fsync across more ticks; when the feed idles the
// threshold decays so a trickle doesn't sit staged in request memory.
// The previous fixed maxBatchTicks constant is now the initial target.
const (
	initBatchTicks   = 256
	minBatchTicks    = 64
	maxBatchTicksCap = 2048
)

// tickBatch is one shard's staged run of ticks. done is buffered so the
// applier never blocks on a waiter, even one that abandoned the result.
type tickBatch struct {
	key   cloud.MarketKey
	ticks [][]float64
	start time.Time
	done  chan batchResult
}

// batchResult reports what a batch apply did: how many leading ticks
// landed, the market's composite version after them, and the durability
// error on a partial apply.
type batchResult struct {
	applied int
	version uint64
	err     error
}

// ingester owns the per-shard queues and applier goroutines. The mutex
// only fences enqueue against stop: the queues themselves are the
// synchronization between handlers and appliers.
type ingester struct {
	s      *Server
	queues map[cloud.MarketKey]chan *tickBatch
	// targets holds each shard's adaptive flush threshold. The map is
	// fixed at construction; the values move atomically.
	targets map[cloud.MarketKey]*atomic.Int64

	mu     sync.RWMutex
	closed bool
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// newIngester builds the queues — one per market shard, capacity
// queueCap batches each — and starts one applier per shard. Appliers
// are per shard so batches for one market apply in arrival order
// (shard versions stay sequential) while different markets never
// contend.
func newIngester(s *Server, queueCap int) *ingester {
	i := &ingester{
		s:       s,
		queues:  make(map[cloud.MarketKey]chan *tickBatch),
		targets: make(map[cloud.MarketKey]*atomic.Int64),
		stopCh:  make(chan struct{}),
	}
	for _, k := range s.market.Keys() {
		q := make(chan *tickBatch, queueCap)
		i.queues[k] = q
		t := &atomic.Int64{}
		t.Store(initBatchTicks)
		i.targets[k] = t
		i.wg.Add(1)
		go i.run(k, q)
	}
	return i
}

// batchTarget reports a shard's current flush threshold.
func (i *ingester) batchTarget(key cloud.MarketKey) int {
	if t, ok := i.targets[key]; ok {
		return int(t.Load())
	}
	return initBatchTicks
}

// targetsSnapshot samples every shard's flush threshold for /metrics.
func (i *ingester) targetsSnapshot() map[string]int {
	out := make(map[string]int, len(i.targets))
	for k, t := range i.targets {
		out[k.String()] = int(t.Load())
	}
	return out
}

// growTarget doubles a shard's flush threshold: called when an enqueue
// finds batches already queued, i.e. the applier is falling behind.
func (i *ingester) growTarget(key cloud.MarketKey) {
	t, ok := i.targets[key]
	if !ok {
		return
	}
	for {
		cur := t.Load()
		next := cur * 2
		if next > maxBatchTicksCap {
			next = maxBatchTicksCap
		}
		if next == cur || t.CompareAndSwap(cur, next) {
			return
		}
	}
}

// decayTarget halves a shard's flush threshold: called when the applier
// drains its queue empty, i.e. pressure has passed.
func (i *ingester) decayTarget(key cloud.MarketKey) {
	t, ok := i.targets[key]
	if !ok {
		return
	}
	for {
		cur := t.Load()
		next := cur / 2
		if next < minBatchTicks {
			next = minBatchTicks
		}
		if next == cur || t.CompareAndSwap(cur, next) {
			return
		}
	}
}

// enqueue hands a batch to its shard's applier. A full queue gets a
// short grace period (the applier may just be mid-batch), then the
// typed backlog error — the client's signal to slow down.
func (i *ingester) enqueue(b *tickBatch) error {
	i.mu.RLock()
	defer i.mu.RUnlock()
	if i.closed {
		return errIngestClosed
	}
	q, ok := i.queues[b.key]
	if !ok {
		// Unknown markets were rejected by validation before staging;
		// reaching here is a programming error surfaced as the typed error.
		return cloud.ErrUnknownMarket
	}
	select {
	case q <- b:
	default:
		t := time.NewTimer(ingestEnqueueWait)
		defer t.Stop()
		select {
		case q <- b:
		case <-t.C:
			return errIngestBacklog
		case <-i.stopCh:
			return errIngestClosed
		}
	}
	depth := len(q)
	i.s.met.noteQueueDepth(int64(depth))
	if depth > 1 {
		// More than this batch waiting: the applier is behind; bigger
		// batches amortize its per-batch costs.
		i.growTarget(b.key)
	}
	return nil
}

// depths samples every queue's current occupancy for /metrics.
func (i *ingester) depths() map[string]int {
	out := make(map[string]int, len(i.queues))
	for k, q := range i.queues {
		out[k.String()] = len(q)
	}
	return out
}

// run is one shard's applier loop.
func (i *ingester) run(key cloud.MarketKey, q chan *tickBatch) {
	defer i.wg.Done()
	for {
		select {
		case <-i.stopCh:
			return
		case b := <-q:
			i.apply(b, len(q))
		}
	}
}

// apply lands one batch: the shard append (WAL-first, one lock hold),
// the ingest counters, the scheduler wake for sessions watching this
// shard, and the snapshot check — all before the waiter is released, so
// a caller that waits on done observes a market and scheduler that
// already know about its ticks.
func (i *ingester) apply(b *tickBatch, backlog int) {
	s := i.s
	if backlog == 0 {
		i.decayTarget(b.key)
	}
	applied, version, err := s.market.AppendBatch(b.key, b.ticks)
	if applied > 0 {
		s.met.ingestTicks.Add(int64(applied))
		samples := 0
		for _, t := range b.ticks[:applied] {
			samples += len(t)
		}
		s.met.ingestSamples.Add(int64(samples))
		s.sched.shardAdvanced(b.key)
	}
	s.met.batchSize.Observe(float64(len(b.ticks)))
	s.met.observeIngest(b.key.String(), time.Since(b.start).Seconds())
	s.maybeSnapshot()
	b.done <- batchResult{applied: applied, version: version, err: err}
}

// stop shuts the pipeline down: no new enqueues, appliers drained, and
// every still-queued batch failed with the typed closed error so no
// waiter hangs. Idempotent.
func (i *ingester) stop() {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return
	}
	i.closed = true
	i.mu.Unlock()
	// The write lock above waited out every in-flight enqueue, so the
	// queued set is fixed now; appliers may consume part of it before
	// they observe stopCh, the sweep below fails the rest.
	close(i.stopCh)
	i.wg.Wait()
	for _, q := range i.queues {
		for {
			select {
			case b := <-q:
				b.done <- batchResult{err: errIngestClosed}
			default:
			}
			if len(q) == 0 {
				break
			}
		}
	}
}
