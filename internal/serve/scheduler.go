package serve

import (
	"container/heap"
	"sync"
	"time"

	"sompi/internal/cloud"
)

// This file is the central re-optimization scheduler: the replacement
// for the per-tick full registry scan. Every live session sits in
// exactly one min-heap, keyed by the shard that currently gates its
// next T_m boundary (the argmin-frontier shard of its candidate set),
// ordered by boundary hour. A batch landing on a shard pops only the
// sessions whose boundary that shard's new frontier actually released —
// O(log n) per released session, zero work for the rest — and hands
// them to a fixed worker pool that replays and re-optimizes off the
// request path, under the server-lifecycle context.
//
// The ingest path never does the heap work itself: shardAdvanced only
// marks the shard dirty under noteMu (O(1), so a boundary releasing ten
// thousand sessions costs the tick that crossed it nothing) and a
// dispatcher goroutine drains dirty shards' heaps into the pending
// queue behind it.
//
// Lock ordering: sched.mu is taken after s.mu (registration) and never
// together with a session's t.mu — workers re-enqueue a session only
// after advanceSession released it. Eligibility checks read shard
// frontiers, so sched.mu may be held while taking shard read locks
// (shard locks are leaves); the market never calls back into the
// scheduler. noteMu is independent: it is never held together with
// sched.mu or any other lock.

// boundaryItem is one scheduled session: the boundary is pinned at
// insert time, which is sound because t.boundary only mutates while a
// worker owns the session — and an owned session is never in a heap.
type boundaryItem struct {
	t        *trackedSession
	boundary float64
}

// boundaryHeap is a min-heap of sessions by next boundary hour.
type boundaryHeap []*boundaryItem

func (h boundaryHeap) Len() int           { return len(h) }
func (h boundaryHeap) Less(i, j int) bool { return h[i].boundary < h[j].boundary }
func (h boundaryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *boundaryHeap) Push(x any)        { *h = append(*h, x.(*boundaryItem)) }
func (h *boundaryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// pendingItem is a session whose boundary the frontier has crossed,
// waiting for a worker. eligibleAt feeds the scheduler-lag histogram.
type pendingItem struct {
	t          *trackedSession
	eligibleAt time.Time
}

// reoptScheduler indexes sessions by the shards their plans read and
// drives their window boundaries through a worker pool.
type reoptScheduler struct {
	s *Server

	mu       sync.Mutex
	heaps    map[cloud.MarketKey]*boundaryHeap
	pending  []pendingItem
	running  int
	closed   bool
	workCond *sync.Cond
	idleCond *sync.Cond
	wg       sync.WaitGroup

	// The ingest-side notification state. Appliers only ever touch this
	// half, so a dispatcher mid-drain (holding mu for a large heap pop)
	// never stalls a tick batch.
	noteMu     sync.Mutex
	dirty      map[cloud.MarketKey]time.Time // shard -> earliest un-dispatched advance
	inflight   bool                          // a dispatch is between pick-up and completion
	noteClosed bool
	noteCond   *sync.Cond // dispatcher wake: dirty non-empty or closing
	noteIdle   *sync.Cond // drain wake: dirty empty and no dispatch in flight
}

// newReoptScheduler builds the per-shard heaps and starts the worker
// pool. workers <= 0 starts none — the test hook for exercising the
// "boundaries persist but never run" recovery path.
func newReoptScheduler(s *Server, workers int) *reoptScheduler {
	sc := &reoptScheduler{
		s:     s,
		heaps: make(map[cloud.MarketKey]*boundaryHeap),
		dirty: make(map[cloud.MarketKey]time.Time),
	}
	sc.workCond = sync.NewCond(&sc.mu)
	sc.idleCond = sync.NewCond(&sc.mu)
	sc.noteCond = sync.NewCond(&sc.noteMu)
	sc.noteIdle = sync.NewCond(&sc.noteMu)
	for _, k := range s.market.Keys() {
		h := make(boundaryHeap, 0)
		sc.heaps[k] = &h
	}
	sc.wg.Add(1)
	go sc.dispatcher()
	for w := 0; w < workers; w++ {
		sc.wg.Add(1)
		go sc.worker()
	}
	return sc
}

// bindShard picks the heap a session waits in: the shard of its
// candidate set whose frontier is furthest behind, because that shard
// is the one gating MinDurationFor — no boundary can be crossed until
// it advances. Caller holds sc.mu.
func (sc *reoptScheduler) bindShard(t *trackedSession) cloud.MarketKey {
	keys := t.keys
	if keys == nil {
		keys = sc.s.market.Keys()
	}
	best := keys[0]
	bestDur := sc.s.market.MinDurationFor(keys[:1])
	for _, k := range keys[1:] {
		if d := sc.s.market.MinDurationFor([]cloud.MarketKey{k}); d < bestDur {
			best, bestDur = k, d
		}
	}
	return best
}

// add schedules a session for its next boundary: straight to the
// pending queue when the frontier already crossed it (the recovery
// path re-arms pre-crash boundaries this way), otherwise into the
// gating shard's heap. The caller must own the session exclusively or
// hold its t.mu — add reads t.boundary and t.done.
func (sc *reoptScheduler) add(t *trackedSession) {
	if t.done {
		return
	}
	boundary := t.boundary
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return
	}
	if boundary <= sc.s.market.MinDurationFor(t.keys)+1e-9 {
		sc.pendLocked(t, time.Now())
		return
	}
	key := sc.bindShard(t)
	heap.Push(sc.heaps[key], &boundaryItem{t: t, boundary: boundary})
}

// pendLocked queues a session for a worker. eligibleAt is when its
// boundary became crossable — the scheduler-lag histogram measures from
// there. Caller holds sc.mu.
func (sc *reoptScheduler) pendLocked(t *trackedSession, eligibleAt time.Time) {
	sc.pending = append(sc.pending, pendingItem{t: t, eligibleAt: eligibleAt})
	sc.workCond.Signal()
}

// shardAdvanced is the ingest wake: the named shard's frontier moved.
// It only marks the shard dirty — O(1), no heap access, no sched.mu —
// so the tick batch that crossed a boundary never pays for the sessions
// the crossing released; the dispatcher drains the heap behind it.
func (sc *reoptScheduler) shardAdvanced(key cloud.MarketKey) {
	sc.noteMu.Lock()
	if !sc.noteClosed {
		if _, ok := sc.dirty[key]; !ok {
			sc.dirty[key] = time.Now()
		}
		sc.noteCond.Signal()
	}
	sc.noteMu.Unlock()
}

// dispatcher turns dirty-shard notifications into pending work. It
// takes noteMu only to pick up a shard and sc.mu only to drain it, so
// neither appliers (noteMu) nor workers (sc.mu) wait on the other's
// long holds. inflight stays true from pick-up until the drained
// sessions are visibly pending, which is what lets drain() conclude
// "note side idle implies my sessions reached the pending queue".
func (sc *reoptScheduler) dispatcher() {
	defer sc.wg.Done()
	for {
		sc.noteMu.Lock()
		for !sc.noteClosed && len(sc.dirty) == 0 {
			sc.noteCond.Wait()
		}
		if sc.noteClosed {
			sc.noteMu.Unlock()
			return
		}
		var key cloud.MarketKey
		var at time.Time
		for k, t := range sc.dirty {
			key, at = k, t
			break
		}
		delete(sc.dirty, key)
		sc.inflight = true
		sc.noteMu.Unlock()

		sc.mu.Lock()
		if !sc.closed {
			sc.drainShardLocked(key, at)
		}
		sc.mu.Unlock()

		sc.noteMu.Lock()
		sc.inflight = false
		if len(sc.dirty) == 0 {
			sc.noteIdle.Broadcast()
		}
		sc.noteMu.Unlock()
	}
}

// drainShardLocked pops every session in the named shard's heap whose
// pinned boundary the shard's frontier now reaches. A popped session
// whose full candidate frontier still lags (another of its shards is
// behind) is not eligible — it re-binds to that lagging shard's heap
// instead, which cannot be this shard again (the lagging shard's
// frontier is below the boundary this one just passed), so the loop
// terminates. Caller holds sc.mu.
func (sc *reoptScheduler) drainShardLocked(key cloud.MarketKey, advancedAt time.Time) {
	h, ok := sc.heaps[key]
	if !ok || h.Len() == 0 {
		return
	}
	keyDur := sc.s.market.MinDurationFor([]cloud.MarketKey{key})
	for h.Len() > 0 && (*h)[0].boundary <= keyDur+1e-9 {
		it := heap.Pop(h).(*boundaryItem)
		if it.boundary <= sc.s.market.MinDurationFor(it.t.keys)+1e-9 {
			sc.pendLocked(it.t, advancedAt)
			continue
		}
		heap.Push(sc.heaps[sc.bindShard(it.t)], it)
	}
}

// worker pulls eligible sessions and drives their windows. The session
// is owned exclusively between the pending pop and the re-add, so its
// boundary and done flag are stable for scheduling reads.
func (sc *reoptScheduler) worker() {
	defer sc.wg.Done()
	sc.mu.Lock()
	for {
		for !sc.closed && len(sc.pending) == 0 {
			sc.workCond.Wait()
		}
		if sc.closed {
			sc.mu.Unlock()
			return
		}
		it := sc.pending[0]
		sc.pending = sc.pending[1:]
		sc.running++
		sc.mu.Unlock()

		sc.s.advanceSession(sc.s.runCtx, it.t)
		sc.s.met.schedulerLag.Observe(time.Since(it.eligibleAt).Seconds())
		sc.s.maybeSnapshot()

		sc.mu.Lock()
		// During shutdown (runCtx cancelled, stop not yet observed) the
		// advance aborts without moving the boundary; re-queueing would
		// spin — the WAL already holds the boundary for recovery.
		if sc.s.runCtx.Err() == nil {
			sc.readdLocked(it.t)
		}
		sc.running--
		if len(sc.pending) == 0 && sc.running == 0 {
			sc.idleCond.Broadcast()
		}
	}
}

// readdLocked re-schedules a session after a worker drove it: still
// eligible (the frontier crossed the next boundary while it ran) goes
// back to pending, otherwise into its gating shard's heap. Caller
// holds sc.mu and owns the session.
func (sc *reoptScheduler) readdLocked(t *trackedSession) {
	if t.done || sc.closed {
		return
	}
	if t.boundary <= sc.s.market.MinDurationFor(t.keys)+1e-9 {
		sc.pendLocked(t, time.Now())
		return
	}
	heap.Push(sc.heaps[sc.bindShard(t)], &boundaryItem{t: t, boundary: t.boundary})
}

// drain blocks until the caller's prior shardAdvanced notifications
// have been dispatched and no session is pending or running — the
// ?sync=1 barrier. Two stages: first the note side goes idle (dirty
// empty, no dispatch in flight), which guarantees the caller's released
// sessions reached the pending queue (the dispatcher clears inflight
// only after its heap drain committed under sc.mu); then the worker
// side goes idle. Concurrent ingest can extend the wait, never shorten
// it. Returns immediately on a stopped scheduler.
func (sc *reoptScheduler) drain() {
	sc.noteMu.Lock()
	for !sc.noteClosed && (len(sc.dirty) > 0 || sc.inflight) {
		sc.noteIdle.Wait()
	}
	sc.noteMu.Unlock()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for !sc.closed && (len(sc.pending) > 0 || sc.running > 0) {
		sc.idleCond.Wait()
	}
}

// stop shuts the pool down. Workers abandon pending sessions — their
// boundaries are already durable in the WAL, so a restart reschedules
// them through recovery. Idempotent.
func (sc *reoptScheduler) stop() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.workCond.Broadcast()
	sc.idleCond.Broadcast()
	sc.mu.Unlock()
	sc.noteMu.Lock()
	sc.noteClosed = true
	sc.noteCond.Broadcast()
	sc.noteIdle.Broadcast()
	sc.noteMu.Unlock()
	sc.wg.Wait()
}
