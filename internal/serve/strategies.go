package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sompi/internal/app"
	"sompi/internal/opt"
	"sompi/internal/strategy"
)

// handleStrategies serves the strategy registry with parameter schemas
// and the scenario catalog. The set is fixed at init time — it doubles
// as the bound on every strategy-labeled metric family.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	resp := StrategiesResponse{Default: strategy.Names()[0]}
	for _, d := range strategy.List() {
		resp.Strategies = append(resp.Strategies, StrategyInfo{
			Name:    d.Name,
			Summary: d.Summary,
			Params:  d.Params,
			Default: d.Name == resp.Default,
		})
	}
	for _, sc := range strategy.Scenarios() {
		resp.Scenarios = append(resp.Scenarios, ScenarioInfo{Name: sc.Name, Summary: sc.Summary})
	}
	writeJSON(w, http.StatusOK, resp)
}

// effectiveStrategyParams merges a plan request into one strategy
// parameter map. For "sompi" the top-level optimizer knobs seed the map
// — the request shapes that always worked keep working — and
// strategy_params overlay them; every other strategy reads
// strategy_params alone.
func effectiveStrategyParams(req PlanRequest) map[string]float64 {
	if req.Strategy != "sompi" {
		return req.StrategyParams
	}
	p := make(map[string]float64, 8+len(req.StrategyParams))
	if req.Kappa != 0 {
		p["kappa"] = float64(req.Kappa)
	}
	if req.GridLevels != 0 {
		p["grid_levels"] = float64(req.GridLevels)
	}
	if req.MaxGroups != 0 {
		p["max_groups"] = float64(req.MaxGroups)
	}
	if req.Workers != 0 {
		p["workers"] = float64(req.Workers)
	}
	if req.Slack != 0 {
		p["slack"] = req.Slack
	}
	if req.MaxAllFail != 0 {
		p["max_all_fail"] = req.MaxAllFail
	}
	if req.DisableCheckpoints {
		p["disable_checkpoints"] = 1
	}
	if req.DisablePruning {
		p["disable_pruning"] = 1
	}
	for k, v := range req.StrategyParams {
		p[k] = v
	}
	return p
}

// sessionStrategy resolves a request's strategy for session re-planning.
// A nil strategy means the default Algorithm-1 loop; a "sompi" selection
// folds its effective knobs into base and then uses that same loop, so
// named-sompi sessions keep the warm-start and committed-window
// machinery (and its bit-identity guarantees) of untagged ones.
func sessionStrategy(req PlanRequest, base *opt.Config) (strategy.Strategy, error) {
	if req.Strategy == "" {
		return nil, nil
	}
	st, err := strategy.New(req.Strategy, effectiveStrategyParams(req))
	if err != nil {
		return nil, err
	}
	if so, ok := st.(*strategy.SOMPI); ok {
		base.Kappa = so.Params.Kappa
		base.GridLevels = so.Params.GridLevels
		base.MaxGroups = so.Params.MaxGroups
		base.Workers = so.Params.Workers
		base.Slack = so.Params.Slack
		base.MaxAllFail = so.Params.MaxAllFail
		base.DisableCheckpoints = so.Params.DisableCheckpoints
		base.DisablePruning = so.Params.DisablePruning
		return nil, nil
	}
	return st, nil
}

// servePlanStrategy is handlePlan's named-strategy branch: the same
// snapshot/cache/track pipeline, planning through the registry instead
// of calling the optimizer directly. It never runs for an empty
// strategy field, so the default path's bytes stay untouched.
func (s *Server) servePlanStrategy(w http.ResponseWriter, r *http.Request, req PlanRequest, profile app.Profile) {
	st, err := strategy.New(req.Strategy, effectiveStrategyParams(req))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	snap, keys, frontier, train := s.trainSnapshot(req, s.historyOr(req.HistoryHours))
	if len(req.Types)+len(req.Zones) > 0 && len(keys) == 0 {
		err := fmt.Errorf("%w: types/zones filter matches no market", opt.ErrNoCandidates)
		writeError(w, statusOf(err), err)
		return
	}
	version := snap.Version()

	explain := r.URL.Query().Get("explain") == "1"
	key := planKey(req, snap.VersionVector(), keys)
	if !req.Track && !explain {
		if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			s.met.strategyCache(req.Strategy, true)
			w.Header().Set("X-Sompid-Cache", "hit")
			writeBody(w, http.StatusOK, body)
			return
		}
		s.met.cacheMisses.Add(1)
		s.met.strategyCache(req.Strategy, false)
		w.Header().Set("X-Sompid-Cache", "miss")
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	strategy.Configure(st, keys, s.reuse)
	if so, ok := st.(*strategy.SOMPI); ok {
		so.Explain = explain
	}
	p, ex, err := st.Plan(ctx, train, strategy.Workload{Profile: profile}, strategy.Deadline{Hours: req.DeadlineHours})
	s.met.evals.Add(int64(p.Evals))
	s.met.pruned.Add(int64(p.Pruned))
	s.met.evalsSaved.Add(int64(p.SavedEvals))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		writeError(w, statusOf(err), err)
		return
	}

	res := opt.Result{Plan: p.Model, Est: p.Est, Evals: p.Evals, Pruned: p.Pruned, SavedEvals: p.SavedEvals}
	if explain && ex != nil {
		res.Explain = ex.Opt
	}
	resp := BuildPlanResponse(version, res)
	resp.Strategy = req.Strategy
	if explain && ex != nil {
		resp.StrategyNotes = ex.Notes
	}
	if req.Track {
		id, rerr := s.registerSession(profile, req, res, version, frontier, keys)
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr)
			return
		}
		resp.SessionID = id
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, merr)
		return
	}
	if !req.Track && !explain {
		s.cache.put(key, body)
	}
	writeBody(w, http.StatusOK, body)
}
