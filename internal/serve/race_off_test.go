//go:build !race

package serve

// raceEnabled scales the stress tests down under -race; see
// race_on_test.go.
const raceEnabled = false
