package serve_test

import (
	"errors"
	"net/http"
	"testing"

	"sompi/internal/opt"
	"sompi/internal/serve"
)

// TestNewRejectsRetentionShorterThanTraining: a retention bound shorter
// than the training history plus the re-optimization window means
// tracked sessions would train on silently clamped prices — serve.New
// must refuse the configuration instead.
func TestNewRejectsRetentionShorterThanTraining(t *testing.T) {
	m := testMarket()
	m.SetRetention(50) // < default history (96) + window (15)
	if _, err := serve.New(serve.Config{Market: m}); !errors.Is(err, opt.ErrInvalidConfig) {
		t.Fatalf("serve.New accepted retention 50h < history+window, err = %v", err)
	}

	ok := testMarket()
	ok.SetRetention(120) // covers 96 + 15
	if _, err := serve.New(serve.Config{Market: ok}); err != nil {
		t.Fatalf("serve.New rejected a sufficient retention bound: %v", err)
	}
}

// TestMonteCarloOnRetainedMarket: Monte Carlo draws start points from
// History (96h) onward, so on a compacted market some training windows
// reach before the retained head. They must clamp to the head, not
// panic — regression for Trace.Window producing a negative slice bound
// on ranges entirely before the compaction head.
func TestMonteCarloOnRetainedMarket(t *testing.T) {
	m := testMarket() // 240h of history
	m.SetRetention(120)
	ts := newTestServer(t, serve.Config{Market: m})

	code, _, body := postJSON(t, ts.URL+"/v1/montecarlo", serve.MonteCarloRequest{
		App:           "BT",
		DeadlineHours: 10,
		Runs:          32,
		Seed:          1,
		Strategy:      "spot-avg",
	})
	if code != http.StatusOK {
		t.Fatalf("montecarlo on a retained market: %d %s", code, body)
	}
}
