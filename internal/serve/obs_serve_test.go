package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sompi/internal/serve"
)

// TestExplainQueryReturnsTrail: ?explain=1 must return the identical
// plan plus a populated decision trail, and must not poison the plan
// cache (cached bodies never carry a trail).
func TestExplainQueryReturnsTrail(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := smallPlan(60)

	status, _, plain := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, plain)
	}
	if bytes.Contains(plain, []byte(`"explain"`)) {
		t.Fatalf("unexplained plan carries an explain field: %s", plain)
	}

	status, _, explained := postJSON(t, ts.URL+"/v1/plan?explain=1", req)
	if status != http.StatusOK {
		t.Fatalf("explained plan: %d %s", status, explained)
	}
	var pr serve.PlanResponse
	if err := json.Unmarshal(explained, &pr); err != nil {
		t.Fatalf("unmarshal explained plan: %v", err)
	}
	ex := pr.Explain
	if ex == nil {
		t.Fatalf("?explain=1 returned no trail: %s", explained)
	}
	if len(ex.Candidates) == 0 || len(ex.Stages) == 0 || len(ex.Selected) == 0 {
		t.Fatalf("trail incomplete: %d candidates, %d stages, %d selected", len(ex.Candidates), len(ex.Stages), len(ex.Selected))
	}
	for _, d := range ex.Candidates {
		if d.Reason == "" {
			t.Fatalf("candidate %s has no decision reason", d.Market)
		}
		if d.Selected && !d.Kept {
			t.Fatalf("candidate %s selected but not kept", d.Market)
		}
	}

	// The trail is an observation, not a perturbation: stripping it (and
	// normalizing the search-effort counters, which legitimately shrink
	// as the server's reuse cache warms between the two requests) gives
	// back the exact bytes of the unexplained response.
	var plainPR serve.PlanResponse
	if err := json.Unmarshal(plain, &plainPR); err != nil {
		t.Fatalf("unmarshal plain plan: %v", err)
	}
	pr.Explain = nil
	pr.Evals, pr.Pruned, pr.SavedEvals = plainPR.Evals, plainPR.Pruned, plainPR.SavedEvals
	stripped, _ := json.Marshal(pr)
	if !bytes.Equal(stripped, plain) {
		t.Fatalf("explained plan differs:\nexplain %s\n  plain %s", stripped, plain)
	}

	// The cache was neither read nor written by the explained request: a
	// repeat of the plain request is a hit and is byte-identical.
	before := metricValue(t, getBody(t, ts.URL+"/metrics"), "sompid_plan_cache_hits_total")
	_, _, again := postJSON(t, ts.URL+"/v1/plan", req)
	if !bytes.Equal(again, plain) {
		t.Fatalf("cached plan changed after an explained request:\n before %s\n  after %s", plain, again)
	}
	if after := metricValue(t, getBody(t, ts.URL+"/metrics"), "sompid_plan_cache_hits_total"); after != before+1 {
		t.Fatalf("cache hits %v -> %v, want one hit for the repeated plain request", before, after)
	}
}

// TestDebugTraceEndpoint: the span ring must surface a plan request's
// full trace — HTTP root span plus the optimizer stage spans — filtered
// by its request ID.
func TestDebugTraceEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	payload, _ := json.Marshal(smallPlan(60))
	httpReq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(payload))
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-Id", "trace-test-1")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-test-1" {
		t.Fatalf("response echoed request id %q, want trace-test-1", got)
	}

	var tr serve.TraceResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/trace?request_id=trace-test-1"), &tr); err != nil {
		t.Fatalf("unmarshal trace: %v", err)
	}
	if tr.Total == 0 || len(tr.Spans) == 0 {
		t.Fatalf("no spans recorded: %+v", tr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.TraceID != "trace-test-1" {
			t.Fatalf("span %q leaked from trace %q", sp.Name, sp.TraceID)
		}
		if sp.SpanID == 0 {
			t.Fatalf("span %q has no id", sp.Name)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"http.plan", "opt.optimize", "opt.subset_search"} {
		if !names[want] {
			t.Fatalf("trace is missing span %q (got %v)", want, names)
		}
	}

	// The HTTP root span parents the optimizer spans.
	var rootID uint64
	for _, sp := range tr.Spans {
		if sp.Name == "http.plan" {
			rootID = sp.SpanID
		}
	}
	parented := false
	for _, sp := range tr.Spans {
		if sp.Name == "opt.optimize" && sp.ParentID == rootID {
			parented = true
		}
	}
	if !parented {
		t.Fatalf("opt.optimize is not parented under http.plan: %+v", tr.Spans)
	}

	// limit caps the returned slice; a malformed limit is a client error.
	var limited serve.TraceResponse
	json.Unmarshal(getBody(t, ts.URL+"/debug/trace?limit=1"), &limited)
	if len(limited.Spans) != 1 {
		t.Fatalf("limit=1 returned %d spans", len(limited.Spans))
	}
	if resp, err := http.Get(ts.URL + "/debug/trace?limit=bogus"); err != nil {
		t.Fatalf("bad-limit request: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=bogus: %d, want 400", resp.StatusCode)
		}
	}

	// Filtering on an unknown request ID is empty but well-formed.
	var empty serve.TraceResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/trace?request_id=nope"), &empty); err != nil {
		t.Fatalf("unmarshal empty trace: %v", err)
	}
	if len(empty.Spans) != 0 {
		t.Fatalf("unknown request id matched %d spans", len(empty.Spans))
	}
}

// TestSessionAuditTrail: a tracked session crossing a window boundary
// must append an audit record carrying the old and new plans, the cost
// delta and the market version vector the decision saw.
func TestSessionAuditTrail(t *testing.T) {
	const window = 2.0
	ts := newTestServer(t, serve.Config{WindowHours: window})

	req := smallPlan(60)
	req.Track = true
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("tracked plan: %d %s", status, body)
	}
	var plan serve.PlanResponse
	json.Unmarshal(body, &plan)

	// Fresh sessions have no decisions yet.
	var sessions []serve.SessionInfo
	json.Unmarshal(getBody(t, ts.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 1 || len(sessions[0].Audit) != 0 {
		t.Fatalf("fresh session audit: %+v, want 1 session with no records", sessions)
	}

	// Cross one window boundary on every shard (flat cheap prices keep the
	// groups alive, so the session re-optimizes rather than dying).
	samples := make([]float64, int(window*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []serve.PriceTick
	for _, key := range testMarket().Keys() {
		ticks = append(ticks, serve.PriceTick{Type: key.Type, Zone: key.Zone, Prices: samples})
	}
	if status, _, body := postJSON(t, ts.URL+"/v1/prices?sync=1", ticks); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}

	json.Unmarshal(getBody(t, ts.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 1 || len(sessions[0].Audit) == 0 {
		t.Fatalf("session has no audit records after a window boundary: %+v", sessions)
	}
	got := sessions[0]
	if len(got.Audit) != got.Reoptimized+boolToInt(got.Done) {
		// Each re-optimization appends one record; a terminal transition
		// appends one more ("completed"/"recovered_on_demand"/...).
		t.Logf("audit %d records, reoptimized %d, done %v", len(got.Audit), got.Reoptimized, got.Done)
	}
	rec := got.Audit[0]
	if rec.Trigger != "reoptimized" && rec.Trigger != "ran_out_on_demand" {
		t.Fatalf("first audit trigger %q, want a re-planning trigger", rec.Trigger)
	}
	if rec.NewPlan == nil || rec.NewPlanCost <= 0 {
		t.Fatalf("re-planning record has no adopted plan: %+v", rec)
	}
	if rec.OldPlanCost != plan.Estimate.Cost {
		t.Fatalf("old plan cost %v, want the tracked plan's estimate %v", rec.OldPlanCost, plan.Estimate.Cost)
	}
	if rec.CostDelta != rec.NewPlanCost-rec.OldPlanCost {
		t.Fatalf("cost delta %v, want %v", rec.CostDelta, rec.NewPlanCost-rec.OldPlanCost)
	}
	if len(rec.MarketVersions) == 0 {
		t.Fatalf("audit record carries no market version vector: %+v", rec)
	}
	for market, v := range rec.MarketVersions {
		if v < 2 {
			t.Fatalf("market %s version %d at decision time, want the post-ingest version", market, v)
		}
	}
	if rec.Window < 1 || rec.BoundaryHours <= testHours {
		t.Fatalf("audit record window/boundary %d/%v not past the start frontier", rec.Window, rec.BoundaryHours)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestCancelledRequestRecordsLatency is the regression gate for the
// abandoned-request accounting bug: a request the client walks away from
// must still land one observation in the endpoint latency histogram and
// must still end its HTTP span in the trace ring.
func TestCancelledRequestRecordsLatency(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	countSeries := `sompid_request_seconds_count{endpoint="plan"}`
	before := metricValue(t, getBody(t, ts.URL+"/metrics"), countSeries)

	req := serve.PlanRequest{App: "BT", DeadlineHours: 200, Workers: 1, DisablePruning: true}
	payload, _ := json.Marshal(req)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	httpReq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(payload))
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-Id", "cancel-test-1")
	if resp, err := http.DefaultClient.Do(httpReq); err == nil {
		resp.Body.Close()
		t.Fatalf("expected the client to abandon the request, got %d", resp.StatusCode)
	}

	// The handler unwinds at its next cancellation check; the deferred
	// middleware must then observe the latency and end the span.
	var after float64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		after = metricValue(t, getBody(t, ts.URL+"/metrics"), countSeries)
		if after > before {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if after != before+1 {
		t.Fatalf("plan latency count %v -> %v: the cancelled request was not observed", before, after)
	}

	var tr serve.TraceResponse
	json.Unmarshal(getBody(t, ts.URL+"/debug/trace?request_id=cancel-test-1"), &tr)
	var root *int
	for i, sp := range tr.Spans {
		if sp.Name == "http.plan" {
			root = &i
		}
	}
	if root == nil {
		t.Fatalf("cancelled request left no ended http.plan span: %+v", tr.Spans)
	}
	status := 0
	for _, a := range tr.Spans[*root].Attrs {
		if a.Key == "status" {
			status, _ = strconv.Atoi(a.Value)
		}
	}
	if status != serve.StatusClientClosedRequest && status != http.StatusGatewayTimeout {
		t.Fatalf("cancelled request span recorded status %d, want %d or %d",
			status, serve.StatusClientClosedRequest, http.StatusGatewayTimeout)
	}
}

// sampleLine matches one Prometheus exposition sample.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)

// parseExposition returns series -> value and family -> declared type,
// failing on structural violations (duplicate series, samples without a
// TYPE header, HELP/TYPE disagreement).
func parseExposition(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	series := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name, labels := m[1], m[2]
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
		key := name + labels
		if _, dup := series[key]; dup {
			t.Fatalf("duplicate series %s", key)
		}
		series[key] = v
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suffix); f != name && types[f] == "histogram" {
				family = f
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("series %s has no # TYPE header", key)
		}
		// Label values must be well-formed: every quote balanced.
		if labels != "" && strings.Count(strings.ReplaceAll(strings.ReplaceAll(labels, `\\`, ``), `\"`, ``), `"`)%2 != 0 {
			t.Fatalf("series %s has unbalanced label quoting", key)
		}
	}
	return series, types
}

// TestExpositionFormat is the satellite conformance gate: /metrics must
// parse as Prometheus text exposition with no duplicate series, every
// sample under a TYPE header, paired histogram _sum/_count with
// cumulative buckets, and counters that only move up between scrapes.
func TestExpositionFormat(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	// Generate some traffic so histograms and counters are non-trivial.
	postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	tick := []serve.PriceTick{{Type: "m1.medium", Zone: "us-east-1a", Prices: []float64{0.05}}}
	postJSON(t, ts.URL+"/v1/prices", tick)

	first, types := parseExposition(t, string(getBody(t, ts.URL+"/metrics")))

	// Histogram families: _count and _sum present, +Inf bucket == _count,
	// buckets cumulative in exposition order.
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		found := false
		for key := range first {
			if !strings.HasPrefix(key, family+"_count") {
				continue
			}
			found = true
			labels := strings.TrimPrefix(key, family+"_count")
			sumKey := family + "_sum" + labels
			if _, ok := first[sumKey]; !ok {
				t.Fatalf("histogram %s has %s but no %s", family, key, sumKey)
			}
			infKey := family + "_bucket" + strings.Replace(labels, "}", `,le="+Inf"}`, 1)
			if labels == "" {
				infKey = family + `_bucket{le="+Inf"}`
			}
			if first[infKey] != first[key] {
				t.Fatalf("histogram %s: +Inf bucket %v != count %v", key, first[infKey], first[key])
			}
		}
		if !found {
			t.Fatalf("histogram family %s exposes no _count series", family)
		}
	}

	// Counters are monotone: more traffic, then re-scrape and compare.
	postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	postJSON(t, ts.URL+"/v1/prices", tick)
	second, _ := parseExposition(t, string(getBody(t, ts.URL+"/metrics")))
	for key, v1 := range first {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		isCounter := types[name] == "counter" ||
			(strings.HasSuffix(name, "_count") || strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_sum"))
		if !isCounter {
			continue
		}
		v2, ok := second[key]
		if !ok {
			t.Fatalf("series %s disappeared between scrapes", key)
		}
		if v2 < v1 {
			t.Fatalf("counter %s went backwards: %v -> %v", key, v1, v2)
		}
	}

	// Spot checks the conformance details the satellites name.
	text := string(getBody(t, ts.URL+"/metrics"))
	for _, want := range []string{
		"# HELP sompid_request_seconds ",
		"# TYPE sompid_request_seconds histogram",
		`sompid_ingest_seconds_count{market="m1.medium/us-east-1a"}`,
		"# TYPE sompid_reopt_warm_starts_total counter",
		"# TYPE sompid_reopt_evals_saved_total counter",
		"# TYPE sompid_ingest_queue_depth gauge",
		`sompid_ingest_queue_depth{market="m1.medium/us-east-1a"}`,
		"# TYPE sompid_ingest_queue_peak_depth gauge",
		"# TYPE sompid_ingest_batch_size histogram",
		"# TYPE sompid_scheduler_lag_seconds histogram",
		"# TYPE sompid_reopt_deduped_total counter",
		"# TYPE sompid_build_info gauge",
		"# TYPE sompid_uptime_seconds gauge",
		"# TYPE sompid_capture_records_total counter",
		"# TYPE sompid_capture_append_errors_total counter",
		"# TYPE sompid_capture_skipped_total counter",
		"# TYPE sompid_capture_append_seconds histogram",
		"# TYPE sompid_capture_active_segment gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Build identity: exactly one sompid_build_info series, value 1, with
	// non-empty version and go_version labels; uptime moves.
	info := regexp.MustCompile(`(?m)^sompid_build_info\{version="([^"]+)",go_version="([^"]+)"\} 1$`).FindStringSubmatch(text)
	if info == nil {
		t.Fatalf("sompid_build_info series malformed in:\n%s", text)
	}
	if info[1] == "" || !strings.HasPrefix(info[2], "go") {
		t.Fatalf("sompid_build_info labels version=%q go_version=%q", info[1], info[2])
	}
	if up := metricValue(t, []byte(text), "sompid_uptime_seconds"); up <= 0 {
		t.Fatalf("sompid_uptime_seconds = %v, want > 0", up)
	}
}
