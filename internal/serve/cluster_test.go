package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sompi/internal/cluster"
	"sompi/internal/store"
)

// These tests run a real 2-node cluster in-process: two Servers over
// their own WAL stores, fronted by real TCP listeners (followers and
// forwards dial fixed URLs, so httptest's lazy URL is not enough), plus
// single-node reference servers fed the identical tick sequence. The
// parity assertions are byte-level: a cluster must be observationally
// indistinguishable from one node, no matter which member answers.

// clusterHarness is one in-process cluster node with a real TCP front.
type clusterHarness struct {
	s   *Server
	srv *http.Server
	url string
}

// startClusterPair boots nodes "a" and "b" over ephemeral listeners.
// The listeners are bound before either server starts, so each node's
// follower can dial its peer from the first retry.
func startClusterPair(t *testing.T, probe time.Duration, failAfter int) (a, b *clusterHarness) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []cluster.Node{
		{Name: "a", URL: "http://" + lnA.Addr().String()},
		{Name: "b", URL: "http://" + lnB.Addr().String()},
	}
	mk := func(self string, ln net.Listener) *clusterHarness {
		dir := t.TempDir()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatalf("store.Open(%s): %v", self, err)
		}
		s, err := New(Config{
			Market:      durableMarket(),
			WindowHours: 2,
			Store:       st,
			Cluster: &ClusterConfig{
				Self:          self,
				Nodes:         nodes,
				StandbyDir:    filepath.Join(dir, "standby"),
				ProbeInterval: probe,
				FailoverAfter: failAfter,
			},
		})
		if err != nil {
			t.Fatalf("serve.New(%s): %v", self, err)
		}
		h := &clusterHarness{s: s, srv: &http.Server{Handler: s.Handler()}, url: "http://" + ln.Addr().String()}
		go h.srv.Serve(ln)
		return h
	}
	a = mk("a", lnA)
	b = mk("b", lnB)
	t.Cleanup(func() {
		a.srv.Close()
		b.srv.Close()
		// Server.Close stops the prober and followers before anything
		// else, so tearing the pair down in sequence never looks like a
		// failover to the survivor.
		if err := a.s.Close(); err != nil {
			t.Errorf("closing a: %v", err)
		}
		if err := b.s.Close(); err != nil {
			t.Errorf("closing b: %v", err)
		}
	})
	return a, b
}

// ingestFlat posts hours of flat 0.05 ticks for every market shard as
// one mixed ?sync=1 feed — the same deterministic sequence whichever
// target receives it — and returns the response body.
func ingestFlat(t *testing.T, url string, hours float64) []byte {
	t.Helper()
	samples := make([]float64, int(hours*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []PriceTick
	for _, k := range durableMarket().Keys() {
		ticks = append(ticks, PriceTick{Type: k.Type, Zone: k.Zone, Prices: samples})
	}
	return durablePost(t, url+"/v1/prices?sync=1", ticks)
}

// clusterPlan is the deterministic untracked plan the parity tests
// compare byte-for-byte, optionally restricted to one shard.
func clusterPlan(types, zones []string) PlanRequest {
	return PlanRequest{
		App: "BT", DeadlineHours: 200,
		Workers: 1, DisablePruning: true,
		Types: types, Zones: zones,
	}
}

// stripSearchEffort removes the search-effort counters (evals, pruned,
// saved_evals) that legitimately vary with the serving node's
// reuse-cache history. Everything else — the plan, the estimate, the
// market version — must still match exactly: equal maps re-marshal to
// equal bytes (JSON object keys sort).
func stripSearchEffort(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decoding plan response %s: %v", raw, err)
	}
	delete(m, "evals")
	delete(m, "pruned")
	delete(m, "saved_evals")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestClusterForwardingAndPlanParity drives the happy path: disjoint
// covering ownership, mixed ingest splitting and forwarding by owner,
// and plans — proxied and local — byte-identical to single-node
// references fed the same traffic in the same per-server order.
func TestClusterForwardingAndPlanParity(t *testing.T) {
	a, b := startClusterPair(t, 50*time.Millisecond, 1000) // failover effectively off
	// Two references, because byte identity needs matching optimizer
	// histories per serving node: ref1 mirrors b's sequence (small, un),
	// ref2 mirrors a's (large, un).
	_, ref1 := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})
	_, ref2 := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})

	// Ownership: every shard exactly one owner, both nodes non-empty,
	// and the pinned assignments from the cluster package hold end-to-end.
	var stA, stB ClusterStatus
	if err := json.Unmarshal(durableGet(t, a.url+"/cluster/status"), &stA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(durableGet(t, b.url+"/cluster/status"), &stB); err != nil {
		t.Fatal(err)
	}
	owned := map[string]string{}
	for _, sh := range stA.OwnedShards {
		owned[sh] = "a"
	}
	for _, sh := range stB.OwnedShards {
		if owned[sh] != "" {
			t.Fatalf("shard %s owned by both nodes", sh)
		}
		owned[sh] = "b"
	}
	keys := durableMarket().Keys()
	if len(owned) != len(keys) {
		t.Fatalf("ownership covers %d shards, want %d", len(owned), len(keys))
	}
	if len(stA.OwnedShards) == 0 || len(stB.OwnedShards) == 0 {
		t.Fatalf("degenerate split: a=%d b=%d", len(stA.OwnedShards), len(stB.OwnedShards))
	}
	if owned["m1.small/us-east-1a"] != "a" || owned["c3.xlarge/us-east-1a"] != "b" {
		t.Fatalf("pinned ownership drifted: %v", owned)
	}

	// A mixed feed through a forwards b's shards and barriers both ways:
	// afterwards every server — both members and both references — sits
	// at the same composite market version.
	fwdBefore := a.s.met.clusterForwardedPrices.Load()
	var pr PricesResponse
	if err := json.Unmarshal(ingestFlat(t, a.url, 2.5), &pr); err != nil {
		t.Fatal(err)
	}
	ingestFlat(t, ref1.URL, 2.5)
	ingestFlat(t, ref2.URL, 2.5)
	if a.s.met.clusterForwardedPrices.Load() == fwdBefore {
		t.Fatal("mixed feed through a never forwarded to b")
	}
	if pr.Ticks != len(keys) {
		t.Fatalf("mixed feed applied %d ticks, want %d (local + forwarded)", pr.Ticks, len(keys))
	}
	if va, vb := a.s.market.Version(), b.s.market.Version(); va != vb || va != pr.MarketVersion {
		t.Fatalf("post-barrier versions diverged: a=%d b=%d response=%d", va, vb, pr.MarketVersion)
	}

	c3x := clusterPlan([]string{"c3.xlarge"}, []string{"us-east-1a"})  // owner b
	small := clusterPlan([]string{"m1.small"}, []string{"us-east-1a"}) // owner a
	un := clusterPlan(nil, nil)

	// Restricted plan for a b-owned shard through a: proxied, and
	// byte-identical to a single node's answer.
	if got, want := durablePost(t, a.url+"/v1/plan", c3x), durablePost(t, ref1.URL+"/v1/plan", c3x); !bytes.Equal(got, want) {
		t.Fatalf("proxied plan diverged from the single node:\ncluster: %s\nsingle:  %s", got, want)
	}
	if a.s.met.clusterForwardedPlans.Load() == 0 {
		t.Fatal("plan for a b-owned shard was served locally, want proxied")
	}
	// And the mirror image through b.
	if got, want := durablePost(t, b.url+"/v1/plan", small), durablePost(t, ref2.URL+"/v1/plan", small); !bytes.Equal(got, want) {
		t.Fatalf("proxied plan through b diverged:\ncluster: %s\nsingle:  %s", got, want)
	}
	if b.s.met.clusterForwardedPlans.Load() == 0 {
		t.Fatal("plan for an a-owned shard was served locally on b, want proxied")
	}

	// Unrestricted plans serve locally on either node — the market is
	// fully replicated — and still match the references byte-for-byte.
	fwdA, fwdB := a.s.met.clusterForwardedPlans.Load(), b.s.met.clusterForwardedPlans.Load()
	if got, want := durablePost(t, a.url+"/v1/plan", un), durablePost(t, ref2.URL+"/v1/plan", un); !bytes.Equal(got, want) {
		t.Fatalf("unrestricted plan on a diverged:\ncluster: %s\nsingle:  %s", got, want)
	}
	if got, want := durablePost(t, b.url+"/v1/plan", un), durablePost(t, ref1.URL+"/v1/plan", un); !bytes.Equal(got, want) {
		t.Fatalf("unrestricted plan on b diverged:\ncluster: %s\nsingle:  %s", got, want)
	}
	if a.s.met.clusterForwardedPlans.Load() != fwdA || b.s.met.clusterForwardedPlans.Load() != fwdB {
		t.Fatal("unrestricted plans were proxied, want local (full replication)")
	}

	// A session tracked on b appears in the cluster-wide listing served
	// by a, under b's node-prefixed id.
	var plan PlanResponse
	if err := json.Unmarshal(durablePost(t, b.url+"/v1/plan", trackedPlan()), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.SessionID != "b/s1" {
		t.Fatalf("session id on b = %q, want b/s1", plan.SessionID)
	}
	var infos []SessionInfo
	if err := json.Unmarshal(durableGet(t, a.url+"/v1/sessions"), &infos); err != nil {
		t.Fatal(err)
	}
	foundMerged := false
	for _, si := range infos {
		foundMerged = foundMerged || si.ID == "b/s1"
	}
	if !foundMerged {
		t.Fatalf("merged session listing through a misses b/s1: %+v", infos)
	}

	// Merged health: both nodes ok, the shard vector covers the market.
	var ch ClusterHealthResponse
	if err := json.Unmarshal(durableGet(t, a.url+"/cluster/healthz"), &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Status != "ok" || len(ch.Nodes) != 2 {
		t.Fatalf("cluster health = %+v, want ok with 2 nodes", ch)
	}
	for _, n := range ch.Nodes {
		if n.Status != "ok" {
			t.Fatalf("node %s health = %s, want ok", n.Name, n.Status)
		}
	}
	if len(ch.Shards) != len(keys) {
		t.Fatalf("merged shard vector has %d entries, want %d", len(ch.Shards), len(keys))
	}

	// Merged metrics: one sample per node per gauge, node-labelled, with
	// family headers deduplicated.
	mb := string(durableGet(t, a.url+"/cluster/metrics"))
	if !strings.Contains(mb, `node="a"`) || !strings.Contains(mb, `node="b"`) {
		t.Fatal("merged metrics miss a node label")
	}
	if got := strings.Count(mb, "# HELP sompid_market_version "); got != 1 {
		t.Fatalf("family header repeated %d times, want deduplicated to 1", got)
	}
	if got := strings.Count(mb, "sompid_market_version{node="); got != 2 {
		t.Fatalf("market version sampled %d times, want once per node", got)
	}
}

// TestClusterFailoverPromotesShardsAndSessions is the kill-one-node
// acceptance: b dies, a promotes b's shards and its replicated session,
// and the promoted shard's plans stay byte-identical to a single node
// at the same market state.
func TestClusterFailoverPromotesShardsAndSessions(t *testing.T) {
	a, b := startClusterPair(t, 25*time.Millisecond, 3)
	_, ref := newMemServer(t, Config{Market: durableMarket(), WindowHours: 2})

	// A tracked session restricted to a b-owned shard, created through
	// a: the proxy lands it on b under b's node-prefixed id.
	tr := trackedPlan()
	tr.Types, tr.Zones = []string{"c3.xlarge"}, []string{"us-east-1a"}
	var plan PlanResponse
	if err := json.Unmarshal(durablePost(t, a.url+"/v1/plan", tr), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.SessionID != "b/s1" {
		t.Fatalf("proxied tracked session id = %q, want b/s1", plan.SessionID)
	}

	// One window boundary through a: the session re-optimizes on b and
	// the peer drain carries the count back.
	var pr PricesResponse
	if err := json.Unmarshal(ingestFlat(t, a.url, 2.5), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Reoptimized < 1 {
		t.Fatalf("sync ingest reported %d re-optimizations, want >=1 (the session lives on b)", pr.Reoptimized)
	}
	// The re-opt's session record landed on b during the peer drain,
	// after that request's barrier; one empty flush replicates it, so
	// the state a adopts below is the post-re-opt one.
	durablePost(t, a.url+"/v1/prices?sync=1", []PriceTick{})

	// Failover only arms once a's detector has seen b healthy (a peer
	// that never came up is an operator problem, not a failover) — wait
	// for that before pulling the plug, or a kill inside the first probe
	// interval would never promote.
	waitFor(t, 10*time.Second, func() bool {
		var st ClusterStatus
		if err := json.Unmarshal(durableGet(t, a.url+"/cluster/status"), &st); err != nil {
			return false
		}
		for _, p := range st.PeersUp {
			if p == "b" {
				return true
			}
		}
		return false
	}, "a's failure detector never saw b healthy")

	// Kill b's front. Its probes stop answering; a must declare it dead
	// and promote.
	b.srv.Close()
	waitFor(t, 10*time.Second, func() bool {
		var st ClusterStatus
		if err := json.Unmarshal(durableGet(t, a.url+"/cluster/status"), &st); err != nil {
			return false
		}
		for _, p := range st.Promoted {
			if p == "b" {
				return true
			}
		}
		return false
	}, "a never promoted b after its HTTP front died")

	// The promoted shard now serves locally on a, byte-identical to a
	// fresh single node fed the same ticks (both answering their first
	// optimization, so even the effort counters agree).
	ingestFlat(t, ref.URL, 2.5)
	fwdPlans := a.s.met.clusterForwardedPlans.Load()
	c3x := clusterPlan([]string{"c3.xlarge"}, []string{"us-east-1a"})
	if got, want := durablePost(t, a.url+"/v1/plan", c3x), durablePost(t, ref.URL+"/v1/plan", c3x); !bytes.Equal(got, want) {
		t.Fatalf("promoted-shard plan diverged from the single node:\ncluster: %s\nsingle:  %s", got, want)
	}
	if a.s.met.clusterForwardedPlans.Load() != fwdPlans {
		t.Fatal("post-promotion plan was proxied, want local")
	}

	// The replicated session was adopted with its re-optimized state.
	var infos []SessionInfo
	if err := json.Unmarshal(durableGet(t, a.url+"/v1/sessions"), &infos); err != nil {
		t.Fatal(err)
	}
	adopted := false
	for _, si := range infos {
		if si.ID == "b/s1" {
			adopted = true
			if si.Reoptimized < 1 {
				t.Fatalf("adopted session lost its re-optimization history: %+v", si)
			}
		}
	}
	if !adopted {
		t.Fatalf("promoted node does not list the adopted session b/s1: %+v", infos)
	}

	// Post-failover ingest is all-local (no forwarding, dead peer
	// skipped by the barrier) and keeps the adopted session advancing
	// on a across the next window boundary.
	fwdPrices := a.s.met.clusterForwardedPrices.Load()
	var pr2 PricesResponse
	if err := json.Unmarshal(ingestFlat(t, a.url, 2.5), &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Reoptimized < 1 {
		t.Fatalf("adopted session never re-optimized on a (got %d)", pr2.Reoptimized)
	}
	if a.s.met.clusterForwardedPrices.Load() != fwdPrices {
		t.Fatal("post-promotion ingest forwarded ticks to a dead peer")
	}

	// And the market keeps matching the single node after more ticks —
	// modulo the effort counters, which now reflect a's extra session
	// re-opt against ref's colder reuse cache.
	ingestFlat(t, ref.URL, 2.5)
	un := clusterPlan(nil, nil)
	got := stripSearchEffort(t, durablePost(t, a.url+"/v1/plan", un))
	want := stripSearchEffort(t, durablePost(t, ref.URL+"/v1/plan", un))
	if !bytes.Equal(got, want) {
		t.Fatalf("post-failover unrestricted plan diverged:\ncluster: %s\nsingle:  %s", got, want)
	}
}
