package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sompi/internal/cloud"
	"sompi/internal/serve"
	"sompi/internal/trace"
)

// fuzzMarket is the smallest market the ingest handler accepts: one
// (type, zone) shard with a short flat trace. Built per iteration so
// version arithmetic starts from a known base.
func fuzzMarket() *cloud.Market {
	prices := make([]float64, 12)
	for i := range prices {
		prices[i] = 0.01
	}
	traces := map[cloud.MarketKey]*trace.Trace{
		{Type: cloud.M1Small.Name, Zone: cloud.ZoneA}: trace.New(trace.DefaultStep, prices),
	}
	return cloud.NewMarket(cloud.Catalog{cloud.M1Small}, []string{cloud.ZoneA}, traces)
}

// FuzzIngestPrices drives the /v1/prices tick-stream parser with
// arbitrary bodies. Invariants: the handler never panics; every response
// is a JSON object; a 200 reports exactly as many ticks as the market
// version advanced (no silent drops, no phantom applies); a non-200
// carries a non-empty error envelope.
func FuzzIngestPrices(f *testing.F) {
	seeds := []string{
		`{"type":"m1.small","zone":"us-east-1a","prices":[0.01,0.02]}`,
		`{"type":"m1.small","zone":"us-east-1a","prices":[0.01]}` + "\n" +
			`{"type":"m1.small","zone":"us-east-1a","prices":[0.02]}`,
		`[{"type":"m1.small","zone":"us-east-1a","prices":[0.01]},` +
			`{"type":"m1.small","zone":"us-east-1a","prices":[0.03]}]`,
		`[]`,
		`null`,
		`[null]`,
		`[42,"x",true]`,
		`"tick"`,
		`{"type":"m1.small","zone":"us-east-1a","prices":[-1]}`,
		`{"type":"m1.small","zone":"us-east-1a","prices":[1e999]}`,
		`{"type":"nope","zone":"us-east-1a","prices":[0.01]}`,
		`{"type":"m1.small","zone":"us-east-1a","prices":[0.01]}garbage`,
		`[{"type":"m1.small","zone":"us-east-1a","prices":[0.01]},null]`,
		`{`,
		``,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		m := fuzzMarket()
		s, err := serve.New(serve.Config{Market: m})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		defer s.Close()
		before := m.Version()

		req := httptest.NewRequest(http.MethodPost, "/v1/prices", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		applied := m.Version() - before
		if rec.Code == http.StatusOK {
			var pr serve.PricesResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
				t.Fatalf("200 body is not a PricesResponse: %v\n%s", err, rec.Body.Bytes())
			}
			if uint64(pr.Ticks) != applied {
				t.Fatalf("reported %d ticks but version advanced by %d (body %q)",
					pr.Ticks, applied, body)
			}
			if pr.MarketVersion != m.Version() {
				t.Fatalf("reported version %d, market at %d", pr.MarketVersion, m.Version())
			}
		} else {
			// Partial application before the error is allowed (the stream
			// is applied tick-by-tick; an omitted "prices" key is a valid
			// zero-sample heartbeat), but the failure must still carry an
			// error envelope.
			var er serve.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without an error envelope: %s", rec.Code, rec.Body.Bytes())
			}
		}
	})
}
