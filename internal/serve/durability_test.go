package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"testing"

	"sompi/internal/cloud"
	"sompi/internal/store"
)

// durableMarket regenerates the deterministic test market: recovery
// replays the WAL over a fresh generation of it, exactly as a restarted
// sompid regenerates (or reloads) its market before recovering.
func durableMarket() *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 240, 7)
}

// newDurable builds a durable server over dir and a test HTTP front.
func newDurable(t *testing.T, dir string, opts store.Options, snapshotEvery int) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	s, err := New(Config{Market: durableMarket(), WindowHours: 2, Store: st, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func durablePost(t *testing.T, url string, v any) []byte {
	t.Helper()
	body, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, out)
	}
	return out
}

func durableGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, out)
	}
	return out
}

func promValue(t *testing.T, metrics []byte, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// trackedPlan is the deterministic tracked request the recovery tests
// drive: serial search so every re-optimization is reproducible.
func trackedPlan() PlanRequest {
	return PlanRequest{
		App: "BT", DeadlineHours: 60,
		Workers: 1, Kappa: 2, GridLevels: 3, MaxGroups: 3,
		Track: true,
	}
}

// ingestHours advances every market by the given hours of flat prices —
// below every plausible bid, so tracked sessions survive their windows.
func ingestHours(t *testing.T, url string, hours float64) {
	t.Helper()
	samples := make([]float64, int(hours*12))
	for i := range samples {
		samples[i] = 0.05
	}
	var ticks []PriceTick
	for _, key := range durableMarket().Keys() {
		ticks = append(ticks, PriceTick{Type: key.Type, Zone: key.Zone, Prices: samples})
	}
	// ?sync=1: the durability tests assert post-re-optimization state
	// (audit records, WAL session transitions), so drain the scheduler
	// before returning.
	durablePost(t, url+"/v1/prices?sync=1", ticks)
}

// assertRecoveredExactly is the tentpole's exactness proof: version
// vector, retained prices, session listing bytes and every live
// session's plan bytes identical between the pre-crash server and the
// recovered one.
func assertRecoveredExactly(t *testing.T, s1, s2 *Server, url1, url2 string) {
	t.Helper()
	if vv1, vv2 := s1.market.VersionVector(), s2.market.VersionVector(); !reflect.DeepEqual(vv1, vv2) {
		t.Fatalf("version vector diverged:\npre:  %v\npost: %v", vv1, vv2)
	}
	if v1, v2 := s1.market.Version(), s2.market.Version(); v1 != v2 {
		t.Fatalf("composite version %d != %d", v1, v2)
	}
	for _, k := range s1.market.Keys() {
		tr1, tr2 := s1.market.Trace(k.Type, k.Zone), s2.market.Trace(k.Type, k.Zone)
		if tr1.Step != tr2.Step || tr1.Head != tr2.Head || !reflect.DeepEqual(tr1.Prices, tr2.Prices) {
			t.Fatalf("retained prices diverged for %v: %d/%d samples, head %d/%d",
				k, tr1.Len(), tr2.Len(), tr1.Head, tr2.Head)
		}
	}

	sessions1 := durableGet(t, url1+"/v1/sessions")
	sessions2 := durableGet(t, url2+"/v1/sessions")
	if !bytes.Equal(sessions1, sessions2) {
		t.Fatalf("/v1/sessions diverged:\npre:  %s\npost: %s", sessions1, sessions2)
	}
	health1 := durableGet(t, url1+"/healthz")
	health2 := durableGet(t, url2+"/healthz")
	if !bytes.Equal(health1, health2) {
		t.Fatalf("/healthz diverged:\npre:  %s\npost: %s", health1, health2)
	}

	s1.mu.RLock()
	defer s1.mu.RUnlock()
	s2.mu.RLock()
	defer s2.mu.RUnlock()
	if len(s1.sessions) == 0 || len(s1.sessions) != len(s2.sessions) {
		t.Fatalf("session registry size %d vs %d", len(s1.sessions), len(s2.sessions))
	}
	for id, t1 := range s1.sessions {
		t2, ok := s2.sessions[id]
		if !ok {
			t.Fatalf("session %s missing after recovery", id)
		}
		p1, _ := json.Marshal(EncodePlan(t1.plan))
		p2, _ := json.Marshal(EncodePlan(t2.plan))
		if !bytes.Equal(p1, p2) {
			t.Fatalf("session %s plan diverged:\npre:  %s\npost: %s", id, p1, p2)
		}
		if t1.boundary != t2.boundary || t1.planVersion != t2.planVersion ||
			t1.planCost != t2.planCost || t1.done != t2.done || t1.seq != t2.seq {
			t.Fatalf("session %s state diverged: boundary %v/%v version %d/%d cost %v/%v done %v/%v seq %d/%d",
				id, t1.boundary, t2.boundary, t1.planVersion, t2.planVersion,
				t1.planCost, t2.planCost, t1.done, t2.done, t1.seq, t2.seq)
		}
	}
	if s1.nextID != s2.nextID {
		t.Fatalf("nextID %d != %d: recovered server would reuse session ids", s1.nextID, s2.nextID)
	}
}

// TestCrashRecoveryExactness kills the server mid-stream — no Close, no
// shutdown snapshot, exactly what SIGKILL leaves behind — and proves
// the WAL alone restores the full state byte-identically.
func TestCrashRecoveryExactness(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery is set beyond the test's appends: recovery must work
	// from pure WAL replay.
	s1, ts1 := newDurable(t, dir, store.Options{}, 1<<20)

	durablePost(t, ts1.URL+"/v1/plan", trackedPlan())
	ingestHours(t, ts1.URL, 2) // crosses the first window boundary: re-optimization
	ingestHours(t, ts1.URL, 1) // more ticks after the last session transition

	var sessions []SessionInfo
	json.Unmarshal(durableGet(t, ts1.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 1 || sessions[0].Reoptimized < 1 {
		t.Fatalf("precondition: session did not re-optimize: %+v", sessions)
	}

	// "SIGKILL": the server and its store are simply abandoned.
	s2, ts2 := newDurable(t, dir, store.Options{}, 1<<20)
	assertRecoveredExactly(t, s1, s2, ts1.URL, ts2.URL)

	// The recovered server is live, not read-only: further ingestion
	// advances sessions from exactly where the crash left them.
	ingestHours(t, ts2.URL, 2)
	var after []SessionInfo
	json.Unmarshal(durableGet(t, ts2.URL+"/v1/sessions"), &after)
	if after[0].Windows <= sessions[0].Windows {
		t.Fatalf("recovered session did not keep advancing: %+v", after[0])
	}
}

// TestCrashRecoveryWithSnapshots is the same proof through the other
// path: snapshots cut during operation, covered segments compacted,
// recovery = snapshot + tail replay.
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurable(t, dir, store.Options{}, 1) // snapshot after every ingest request

	durablePost(t, ts1.URL+"/v1/plan", trackedPlan())
	ingestHours(t, ts1.URL, 2)
	ingestHours(t, ts1.URL, 1)
	// Snapshot cuts run on a background goroutine; drain before probing
	// stats (the Add happens before the ingest response is written, so
	// the Wait reliably covers every cut these requests armed).
	s1.snapWG.Wait()
	if s1.store.Stats().Snapshots == 0 {
		t.Fatal("precondition: no snapshot was cut")
	}
	// Records appended after the last snapshot force mixed recovery.
	ingestHours(t, ts1.URL, 0.5)
	// Quiesce the abandoned server's background cut before a second
	// store opens the same directory.
	s1.snapWG.Wait()

	s2, ts2 := newDurable(t, dir, store.Options{}, 1)
	if s2.store.Stats().SnapshotSeq == 0 {
		t.Fatal("recovery did not start from a snapshot")
	}
	assertRecoveredExactly(t, s1, s2, ts1.URL, ts2.URL)
}

// TestDurableTwinMatchesInMemory: with no store the service must behave
// exactly as before durability existed, and with a store the served
// bytes must not change — the same requests against a durable server
// and a pure in-memory twin produce identical plans and sessions.
func TestDurableTwinMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	_, durableTS := newDurable(t, dir, store.Options{}, 1<<20)
	mem, err := New(Config{Market: durableMarket(), WindowHours: 2})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	memTS := httptest.NewServer(mem.Handler())
	defer memTS.Close()

	p1 := durablePost(t, durableTS.URL+"/v1/plan", trackedPlan())
	p2 := durablePost(t, memTS.URL+"/v1/plan", trackedPlan())
	if !bytes.Equal(p1, p2) {
		t.Fatalf("plan bytes diverged with a store:\ndurable: %s\nmemory:  %s", p1, p2)
	}
	ingestHours(t, durableTS.URL, 2)
	ingestHours(t, memTS.URL, 2)
	sd := durableGet(t, durableTS.URL+"/v1/sessions")
	sm := durableGet(t, memTS.URL+"/v1/sessions")
	if !bytes.Equal(sd, sm) {
		t.Fatalf("sessions diverged with a store:\ndurable: %s\nmemory:  %s", sd, sm)
	}
}

// TestCloseFlushesWAL is the graceful-shutdown regression: Close must
// cut a final snapshot, fsync and close the active segment, and leave a
// store a fresh process recovers completely — even when per-append
// fsync is off.
func TestCloseFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurable(t, dir, store.Options{Fsync: false}, 1<<20)
	durablePost(t, ts1.URL+"/v1/plan", trackedPlan())
	ingestHours(t, ts1.URL, 2)

	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	// The WAL is closed: nothing can append past shutdown.
	if err := s1.store.Append(store.Record{Type: store.RecordTick}); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("append after Close: got %v, want ErrClosed", err)
	}
	// Close cut a clean shutdown snapshot.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("Close left no snapshot")
	}

	s2, ts2 := newDurable(t, dir, store.Options{Fsync: false}, 1<<20)
	assertRecoveredExactly(t, s1, s2, ts1.URL, ts2.URL)
}

// TestWALMetricsAndRecoverySpan covers the observability satellite: the
// durability families carry real values on a durable server, recovery
// publishes its duration, and the recovery span lands in /debug/trace.
func TestWALMetricsAndRecoverySpan(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newDurable(t, dir, store.Options{Fsync: true}, 1<<20)
	durablePost(t, ts1.URL+"/v1/prices", []PriceTick{{Type: "m1.medium", Zone: "us-east-1a", Prices: []float64{0.05}}})

	mx := durableGet(t, ts1.URL+"/metrics")
	if v := promValue(t, mx, "sompid_wal_appended_records_total"); v < 1 {
		t.Fatalf("sompid_wal_appended_records_total = %v, want >= 1", v)
	}
	if v := promValue(t, mx, "sompid_wal_fsync_seconds_count"); v < 1 {
		t.Fatalf("sompid_wal_fsync_seconds_count = %v, want >= 1 with Fsync on", v)
	}
	if v := promValue(t, mx, "sompid_wal_active_segment"); v < 1 {
		t.Fatalf("sompid_wal_active_segment = %v, want >= 1", v)
	}

	// Restart: recovery replays the tick and publishes its duration.
	s2, ts2 := newDurable(t, dir, store.Options{Fsync: true}, 1<<20)
	mx = durableGet(t, ts2.URL+"/metrics")
	if v := promValue(t, mx, "sompid_recovery_seconds"); v <= 0 {
		t.Fatalf("sompid_recovery_seconds = %v, want > 0 after a recovery", v)
	}
	found := false
	for _, sp := range s2.col.Spans("", 0) {
		if sp.Name == "store.recover" {
			found = true
		}
	}
	if !found {
		t.Fatal("no store.recover span in the flight recorder after recovery")
	}

	// A pure in-memory server still renders the families, as zeros.
	mem, err := New(Config{Market: durableMarket()})
	if err != nil {
		t.Fatal(err)
	}
	memTS := httptest.NewServer(mem.Handler())
	defer memTS.Close()
	mx = durableGet(t, memTS.URL+"/metrics")
	if v := promValue(t, mx, "sompid_wal_appended_records_total"); v != 0 {
		t.Fatalf("in-memory server reports %v appended WAL records", v)
	}
	if v := promValue(t, mx, "sompid_recovery_seconds"); v != 0 {
		t.Fatalf("in-memory server reports recovery_seconds %v", v)
	}
}

// TestRecoveryRejectsCorruptMiddle: corruption that torn-tail handling
// cannot explain must keep the server from starting at all.
func TestRecoveryFailsClosedOnCorruptStore(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurable(t, dir, store.Options{}, 1)
	durablePost(t, ts1.URL+"/v1/plan", trackedPlan())
	ingestHours(t, ts1.URL, 2)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot on disk")
	}
	corruptFile(t, snaps[len(snaps)-1])

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	if _, err := New(Config{Market: durableMarket(), WindowHours: 2, Store: st}); !errors.Is(err, store.ErrCorruptSnapshot) {
		t.Fatalf("New over a corrupt snapshot: got %v, want ErrCorruptSnapshot", err)
	}
}

// TestRegistrationFailClosed: a tracked plan whose registration record
// cannot reach the WAL must not hand out a session id — the client
// would otherwise hold an id that a restart silently forgets. The
// failure also surfaces as a degraded /healthz, not just a counter.
func TestRegistrationFailClosed(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurable(t, dir, store.Options{}, 1<<20)
	// Close the store out from under the server: every append now fails.
	if err := s.store.Close(); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(trackedPlan())
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tracked plan with a dead WAL: %d %s, want 500", resp.StatusCode, out)
	}

	var sessions []SessionInfo
	json.Unmarshal(durableGet(t, ts.URL+"/v1/sessions"), &sessions)
	if len(sessions) != 0 {
		t.Fatalf("session registered despite failed persistence: %+v", sessions)
	}
	mx := durableGet(t, ts.URL+"/metrics")
	if v := promValue(t, mx, "sompid_wal_append_errors_total"); v < 1 {
		t.Fatalf("sompid_wal_append_errors_total = %v, want >= 1", v)
	}
	var hz HealthResponse
	json.Unmarshal(durableGet(t, ts.URL+"/healthz"), &hz)
	if hz.Status != "degraded" || hz.WALAppendErrors < 1 {
		t.Fatalf("healthz after WAL failure: status %q wal_append_errors %d, want degraded/>=1", hz.Status, hz.WALAppendErrors)
	}

	// An untracked plan still serves: the WAL is not on its path.
	untracked := trackedPlan()
	untracked.Track = false
	durablePost(t, ts.URL+"/v1/plan", untracked)
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
