//go:build race

package serve

// raceEnabled scales the stress tests down under -race: the detector
// multiplies memory and time per goroutine, and the scaled run still
// exercises every interleaving class the full-size run does.
const raceEnabled = true
