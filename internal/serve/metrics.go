package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/cloud"
	"sompi/internal/obs"
	"sompi/internal/store"
	"sompi/internal/strategy"
)

// endpoint indexes the per-endpoint counters.
type endpoint int

const (
	epPlan endpoint = iota
	epEvaluate
	epMonteCarlo
	epPrices
	epSessions
	epStrategies
	numEndpoints
)

var endpointNames = [numEndpoints]string{"plan", "evaluate", "montecarlo", "prices", "sessions", "strategies"}

// metrics is the service's observable state, all lock-free counters and
// histograms so the hot paths never contend. Rendering is Prometheus text
// exposition format — with # HELP/# TYPE headers and paired _sum/_count
// series, so a conformant scraper parses it — without a client library.
type metrics struct {
	requests [numEndpoints]atomic.Int64
	errors   [numEndpoints]atomic.Int64
	// latency replaces the old lossy per-endpoint nanosecond sums: a full
	// fixed-bucket histogram per endpoint, rendered as
	// sompid_request_seconds{endpoint=...}.
	latency [numEndpoints]*obs.Histogram

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Per-strategy planning families, keyed by registry name. The label
	// set is fixed at init from the strategy registry — never from
	// request input — so cardinality is bounded and unknown names are
	// simply never observed. The default ("" strategy) path records
	// under "sompi", which is what it runs.
	strategies map[string]*strategyMetrics

	evals     atomic.Int64
	pruned    atomic.Int64
	cancelled atomic.Int64

	ingestTicks   atomic.Int64
	ingestSamples atomic.Int64
	// ingestLatency times each batch's enqueue→apply cycle per target
	// shard (sompid_ingest_seconds{market=...}). The key set is fixed at
	// market construction, so the map is read-only after init.
	ingestLatency map[string]*obs.Histogram
	// batchSize is the applied-batch tick-count distribution; the bounds
	// are powers of two up to maxBatchTicksCap, so the top bucket isolates
	// full (flush-forced) batches. ingestQueuePeak is a high-water mark
	// of per-shard queue depth observed at enqueue, maintained by
	// noteQueueDepth (instantaneous depths are sampled at render).
	batchSize       *obs.Histogram
	ingestQueuePeak atomic.Int64

	reoptimizations   atomic.Int64
	activeSessions    atomic.Int64
	completedSessions atomic.Int64

	// schedulerLag times eligibility→worker-pickup for session
	// re-optimizations; reoptDeduped counts re-opts answered by another
	// session's coalesced optimizer run instead of a fresh search.
	schedulerLag *obs.Histogram
	reoptDeduped atomic.Int64

	// warmStarts counts session re-optimizations whose previous plan
	// re-priced into an admissible incumbent seed; evalsSaved counts
	// cost-model evaluations the reuse cache answered from memo across
	// all optimizations (plan requests and re-opts).
	warmStarts atomic.Int64
	evalsSaved atomic.Int64

	// Durability: walFsync times every WAL fsync, walAppendErrors counts
	// records that failed to land (ticks aborted, session transitions
	// lost), recoverySecondsBits holds the startup recovery duration as
	// math.Float64bits (0 = no recovery ran). Appended-record and
	// snapshot counters live in the store itself (store.Stats), sampled
	// at render time.
	walFsync            *obs.Histogram
	walAppendErrors     atomic.Int64
	recoverySecondsBits atomic.Uint64
	// windowTruncations counts session windows whose replay or training
	// range reached before the retained head and was clamped — each one
	// is a re-optimization that saw less (or wrong) history than asked.
	windowTruncations atomic.Int64

	// Cluster: forwarded-request and failover counters. Rendered
	// unconditionally (zeros single-node) like the durability families.
	clusterForwardedPrices atomic.Int64
	clusterForwardedPlans  atomic.Int64
	clusterPromotions      atomic.Int64
	clusterAdoptedSessions atomic.Int64

	// Capture: captureRecords counts requests appended to the capture
	// log, captureErrors appends that failed (the request still served),
	// captureSkipped requests whose body exceeded the capture bound,
	// captureAppend the per-append latency. All render unconditionally —
	// zeros with capture off — so the family set is deployment-stable.
	captureRecords atomic.Int64
	captureErrors  atomic.Int64
	captureSkipped atomic.Int64
	captureAppend  *obs.Histogram

	// start anchors sompid_uptime_seconds.
	start time.Time
}

// strategyMetrics is one strategy's planning counters.
type strategyMetrics struct {
	requests    atomic.Int64
	latency     *obs.Histogram
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// init allocates the histograms. keys is the market's fixed shard set.
func (m *metrics) init(keys []cloud.MarketKey) {
	for ep := range m.latency {
		m.latency[ep] = obs.NewHistogram(nil)
	}
	m.ingestLatency = make(map[string]*obs.Histogram, len(keys))
	for _, k := range keys {
		m.ingestLatency[k.String()] = obs.NewHistogram(nil)
	}
	m.strategies = make(map[string]*strategyMetrics, len(strategy.Names()))
	for _, name := range strategy.Names() {
		m.strategies[name] = &strategyMetrics{latency: obs.NewHistogram(nil)}
	}
	m.walFsync = obs.NewHistogram(nil)
	m.batchSize = obs.NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048})
	m.schedulerLag = obs.NewHistogram(nil)
	m.captureAppend = obs.NewHistogram(nil)
	m.start = time.Now()
}

// buildVersion resolves the binary's module version once: the main
// module's version when the build carries one, else the VCS revision,
// else "devel". Dashboards join it with sompid_build_info to attribute
// a latency or plan-diff regression to the build that introduced it.
var buildVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	if v == "" || v == "(devel)" {
		return "devel"
	}
	return v
})

// noteQueueDepth folds one observed per-shard queue depth into the
// high-water mark.
func (m *metrics) noteQueueDepth(d int64) {
	for {
		cur := m.ingestQueuePeak.Load()
		if d <= cur || m.ingestQueuePeak.CompareAndSwap(cur, d) {
			return
		}
	}
}

// observeStrategy records one plan request's latency under its
// (registry-validated) strategy label.
func (m *metrics) observeStrategy(name string, seconds float64) {
	if sm, ok := m.strategies[name]; ok {
		sm.requests.Add(1)
		sm.latency.Observe(seconds)
	}
}

// strategyCache records one plan-cache lookup under its strategy label.
func (m *metrics) strategyCache(name string, hit bool) {
	sm, ok := m.strategies[name]
	if !ok {
		return
	}
	if hit {
		sm.cacheHits.Add(1)
	} else {
		sm.cacheMisses.Add(1)
	}
}

// observe records one request's latency and error outcome.
func (m *metrics) observe(ep endpoint, seconds float64, failed bool) {
	m.requests[ep].Add(1)
	m.latency[ep].Observe(seconds)
	if failed {
		m.errors[ep].Add(1)
	}
}

// observeIngest records one tick's ingest→invalidate latency for a shard.
func (m *metrics) observeIngest(market string, seconds float64) {
	if h, ok := m.ingestLatency[market]; ok {
		h.Observe(seconds)
	}
}

// escapeLabel escapes a Prometheus label value: backslash, double quote
// and newline get backslash escapes, everything else passes through
// verbatim (the exposition format is UTF-8; Go's %q would emit \uXXXX
// escapes Prometheus parsers reject).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	// Byte-wise so arbitrary (even invalid-UTF-8) values pass through
	// unmangled; the escaped characters are all ASCII.
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// header writes one family's # HELP/# TYPE preamble.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// renderSample carries everything render needs that lives outside the
// metrics struct — sampled by the caller from the market, cache,
// ingester, store and cluster at scrape time.
type renderSample struct {
	marketVersion uint64
	frontier      float64
	cacheLen      int
	shards        []cloud.ShardStat
	wal           store.Stats
	queueDepths   map[string]int
	batchTargets  map[string]int
	captureSeg    uint64
	cluster       clusterMetricsSample
}

// clusterMetricsSample is the cluster subsystem's scrape-time gauges;
// the zero value renders zeros (single-node mode).
type clusterMetricsSample struct {
	enabled             bool
	ownedShards         int
	peersConnected      int
	replicatedRecords   int64
	replicatedSnapshots int64
	resyncs             int64
	replicationErrors   int64
}

// render writes the exposition text.
func (m *metrics) render(w io.Writer, s renderSample) {
	marketVersion, frontier, cacheLen := s.marketVersion, s.frontier, s.cacheLen
	shards, wal, queueDepths, captureSeg := s.shards, s.wal, s.queueDepths, s.captureSeg
	// Build identity first: replay reports and dashboards join on it to
	// attribute a regression to the binary that served the traffic.
	header(w, "sompid_build_info", "gauge", "Build identity of the serving binary; always 1.")
	fmt.Fprintf(w, "sompid_build_info{version=\"%s\",go_version=\"%s\"} 1\n",
		escapeLabel(buildVersion()), escapeLabel(runtime.Version()))
	header(w, "sompid_uptime_seconds", "gauge", "Seconds since this process initialized its metrics.")
	fmt.Fprintf(w, "sompid_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	header(w, "sompid_requests_total", "counter", "Requests served, by endpoint.")
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		fmt.Fprintf(w, "sompid_requests_total{endpoint=\"%s\"} %d\n", escapeLabel(endpointNames[ep]), m.requests[ep].Load())
	}
	header(w, "sompid_request_errors_total", "counter", "Requests answered with status >= 400, by endpoint.")
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		fmt.Fprintf(w, "sompid_request_errors_total{endpoint=\"%s\"} %d\n", escapeLabel(endpointNames[ep]), m.errors[ep].Load())
	}
	header(w, "sompid_request_seconds", "histogram", "Request latency in seconds, by endpoint.")
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		m.latency[ep].WriteProm(w, "sompid_request_seconds", fmt.Sprintf("endpoint=\"%s\"", escapeLabel(endpointNames[ep])))
	}

	// Per-strategy planning families. sompid_plan_request_seconds is its
	// own family rather than a strategy label on sompid_request_seconds:
	// labeling one endpoint's histogram twice would double-count every
	// plan request under sum-over-labels aggregation.
	header(w, "sompid_plan_requests_total", "counter", "Plan requests served, by planning strategy.")
	for _, name := range strategy.Names() {
		fmt.Fprintf(w, "sompid_plan_requests_total{strategy=\"%s\"} %d\n", escapeLabel(name), m.strategies[name].requests.Load())
	}
	header(w, "sompid_plan_request_seconds", "histogram", "Plan request latency in seconds, by planning strategy.")
	for _, name := range strategy.Names() {
		m.strategies[name].latency.WriteProm(w, "sompid_plan_request_seconds", fmt.Sprintf("strategy=\"%s\"", escapeLabel(name)))
	}
	header(w, "sompid_strategy_cache_hits_total", "counter", "Plan cache hits, by planning strategy.")
	for _, name := range strategy.Names() {
		fmt.Fprintf(w, "sompid_strategy_cache_hits_total{strategy=\"%s\"} %d\n", escapeLabel(name), m.strategies[name].cacheHits.Load())
	}
	header(w, "sompid_strategy_cache_misses_total", "counter", "Plan cache misses, by planning strategy.")
	for _, name := range strategy.Names() {
		fmt.Fprintf(w, "sompid_strategy_cache_misses_total{strategy=\"%s\"} %d\n", escapeLabel(name), m.strategies[name].cacheMisses.Load())
	}

	header(w, "sompid_plan_cache_hits_total", "counter", "Plan cache hits.")
	fmt.Fprintf(w, "sompid_plan_cache_hits_total %d\n", m.cacheHits.Load())
	header(w, "sompid_plan_cache_misses_total", "counter", "Plan cache misses.")
	fmt.Fprintf(w, "sompid_plan_cache_misses_total %d\n", m.cacheMisses.Load())
	header(w, "sompid_plan_cache_entries", "gauge", "Plan cache resident entries.")
	fmt.Fprintf(w, "sompid_plan_cache_entries %d\n", cacheLen)
	header(w, "sompid_optimizer_evals_total", "counter", "Cost-model evaluations across all optimizations.")
	fmt.Fprintf(w, "sompid_optimizer_evals_total %d\n", m.evals.Load())
	header(w, "sompid_optimizer_pruned_total", "counter", "Evaluations skipped by branch-and-bound pruning.")
	fmt.Fprintf(w, "sompid_optimizer_pruned_total %d\n", m.pruned.Load())
	header(w, "sompid_requests_cancelled_total", "counter", "Requests abandoned by the client or timed out mid-work.")
	fmt.Fprintf(w, "sompid_requests_cancelled_total %d\n", m.cancelled.Load())
	header(w, "sompid_ingest_ticks_total", "counter", "Price ticks ingested.")
	fmt.Fprintf(w, "sompid_ingest_ticks_total %d\n", m.ingestTicks.Load())
	header(w, "sompid_ingest_samples_total", "counter", "Price samples ingested.")
	fmt.Fprintf(w, "sompid_ingest_samples_total %d\n", m.ingestSamples.Load())

	header(w, "sompid_ingest_seconds", "histogram", "Per-shard tick latency in seconds: append through session invalidation.")
	// Deterministic label order: sorted market keys.
	names := make([]string, 0, len(m.ingestLatency))
	for name := range m.ingestLatency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.ingestLatency[name].WriteProm(w, "sompid_ingest_seconds", fmt.Sprintf("market=\"%s\"", escapeLabel(name)))
	}

	header(w, "sompid_ingest_queue_depth", "gauge", "Per-shard ingest queue depth (batches waiting for the applier).")
	depthNames := make([]string, 0, len(queueDepths))
	for name := range queueDepths {
		depthNames = append(depthNames, name)
	}
	sort.Strings(depthNames)
	for _, name := range depthNames {
		fmt.Fprintf(w, "sompid_ingest_queue_depth{market=\"%s\"} %d\n", escapeLabel(name), queueDepths[name])
	}
	header(w, "sompid_ingest_queue_peak_depth", "gauge", "High-water mark of per-shard ingest queue depth since start.")
	fmt.Fprintf(w, "sompid_ingest_queue_peak_depth %d\n", m.ingestQueuePeak.Load())
	header(w, "sompid_ingest_batch_size", "histogram", "Ticks per applied ingest batch.")
	m.batchSize.WriteProm(w, "sompid_ingest_batch_size", "")
	header(w, "sompid_ingest_batch_target", "gauge", "Per-shard adaptive flush threshold: ticks staged before a batch is handed to the applier.")
	targetNames := make([]string, 0, len(s.batchTargets))
	for name := range s.batchTargets {
		targetNames = append(targetNames, name)
	}
	sort.Strings(targetNames)
	for _, name := range targetNames {
		fmt.Fprintf(w, "sompid_ingest_batch_target{market=\"%s\"} %d\n", escapeLabel(name), s.batchTargets[name])
	}

	header(w, "sompid_market_version", "gauge", "Composite market mutation version.")
	fmt.Fprintf(w, "sompid_market_version %d\n", marketVersion)
	header(w, "sompid_market_frontier_hours", "gauge", "Shortest price frontier across all shards, in hours.")
	fmt.Fprintf(w, "sompid_market_frontier_hours %.6f\n", frontier)

	header(w, "sompid_shard_version", "gauge", "Per-shard mutation version.")
	for _, st := range shards {
		fmt.Fprintf(w, "sompid_shard_version{market=\"%s\"} %d\n", escapeLabel(st.Key.String()), st.Version)
	}
	header(w, "sompid_shard_ticks_total", "counter", "Per-shard ingestion appends applied.")
	for _, st := range shards {
		fmt.Fprintf(w, "sompid_shard_ticks_total{market=\"%s\"} %d\n", escapeLabel(st.Key.String()), st.Ticks)
	}
	header(w, "sompid_shard_samples", "gauge", "Per-shard retained price samples.")
	for _, st := range shards {
		fmt.Fprintf(w, "sompid_shard_samples{market=\"%s\"} %d\n", escapeLabel(st.Key.String()), st.Samples)
	}
	header(w, "sompid_shard_compacted_samples_total", "counter", "Per-shard samples dropped by ring-buffer retention.")
	for _, st := range shards {
		fmt.Fprintf(w, "sompid_shard_compacted_samples_total{market=\"%s\"} %d\n", escapeLabel(st.Key.String()), st.Compacted)
	}

	// Durability families render unconditionally — zeros without a
	// configured store — so scrapers and the conformance test see a
	// stable family set regardless of deployment mode.
	header(w, "sompid_wal_appended_records_total", "counter", "WAL records appended (ticks + session transitions).")
	fmt.Fprintf(w, "sompid_wal_appended_records_total %d\n", wal.AppendedRecords)
	header(w, "sompid_wal_append_errors_total", "counter", "WAL appends that failed (aborted ticks, lost session transitions).")
	fmt.Fprintf(w, "sompid_wal_append_errors_total %d\n", m.walAppendErrors.Load())
	header(w, "sompid_wal_fsync_seconds", "histogram", "WAL fsync latency in seconds.")
	m.walFsync.WriteProm(w, "sompid_wal_fsync_seconds", "")
	header(w, "sompid_wal_active_segment", "gauge", "Sequence number of the WAL segment appends currently go to.")
	fmt.Fprintf(w, "sompid_wal_active_segment %d\n", wal.ActiveSegment)
	header(w, "sompid_snapshots_total", "counter", "Durability snapshots cut since start.")
	fmt.Fprintf(w, "sompid_snapshots_total %d\n", wal.Snapshots)
	header(w, "sompid_recovery_seconds", "gauge", "Startup crash-recovery duration in seconds (0 = no recovery ran).")
	fmt.Fprintf(w, "sompid_recovery_seconds %.6f\n", math.Float64frombits(m.recoverySecondsBits.Load()))

	header(w, "sompid_reoptimizations_total", "counter", "Tracked-session window re-optimizations.")
	fmt.Fprintf(w, "sompid_reoptimizations_total %d\n", m.reoptimizations.Load())
	header(w, "sompid_reopt_warm_starts_total", "counter", "Re-optimizations seeded with the previous plan's re-priced cost as the branch-and-bound incumbent.")
	fmt.Fprintf(w, "sompid_reopt_warm_starts_total %d\n", m.warmStarts.Load())
	header(w, "sompid_reopt_evals_saved_total", "counter", "Cost-model evaluations skipped via the cross-optimization reuse cache.")
	fmt.Fprintf(w, "sompid_reopt_evals_saved_total %d\n", m.evalsSaved.Load())
	header(w, "sompid_reopt_deduped_total", "counter", "Session re-optimizations answered by a coalesced identical optimizer run.")
	fmt.Fprintf(w, "sompid_reopt_deduped_total %d\n", m.reoptDeduped.Load())
	header(w, "sompid_scheduler_lag_seconds", "histogram", "Delay from boundary eligibility to worker pickup for session re-optimizations.")
	m.schedulerLag.WriteProm(w, "sompid_scheduler_lag_seconds", "")
	header(w, "sompid_session_window_truncations_total", "counter", "Session windows clamped by ring-buffer retention.")
	fmt.Fprintf(w, "sompid_session_window_truncations_total %d\n", m.windowTruncations.Load())
	header(w, "sompid_active_sessions", "gauge", "Live tracked sessions.")
	fmt.Fprintf(w, "sompid_active_sessions %d\n", m.activeSessions.Load())
	header(w, "sompid_sessions_completed_total", "counter", "Tracked sessions that reached a terminal state.")
	fmt.Fprintf(w, "sompid_sessions_completed_total %d\n", m.completedSessions.Load())

	header(w, "sompid_capture_records_total", "counter", "Requests appended to the traffic capture log.")
	fmt.Fprintf(w, "sompid_capture_records_total %d\n", m.captureRecords.Load())
	header(w, "sompid_capture_append_errors_total", "counter", "Capture appends that failed (the request still served).")
	fmt.Fprintf(w, "sompid_capture_append_errors_total %d\n", m.captureErrors.Load())
	header(w, "sompid_capture_skipped_total", "counter", "Requests not captured because the body exceeded the capture bound.")
	fmt.Fprintf(w, "sompid_capture_skipped_total %d\n", m.captureSkipped.Load())
	header(w, "sompid_capture_append_seconds", "histogram", "Capture-log append latency in seconds.")
	m.captureAppend.WriteProm(w, "sompid_capture_append_seconds", "")
	header(w, "sompid_capture_active_segment", "gauge", "Sequence number of the capture segment appends currently go to (0 with capture off).")
	fmt.Fprintf(w, "sompid_capture_active_segment %d\n", captureSeg)

	// Cluster families render unconditionally — zeros single-node — so
	// the family set is deployment-stable, like the durability families.
	cl := s.cluster
	header(w, "sompid_cluster_owned_shards", "gauge", "Market shards this node currently owns (0 single-node).")
	fmt.Fprintf(w, "sompid_cluster_owned_shards %d\n", cl.ownedShards)
	header(w, "sompid_cluster_peers_connected", "gauge", "Peers this node holds a live WAL replication stream from.")
	fmt.Fprintf(w, "sompid_cluster_peers_connected %d\n", cl.peersConnected)
	header(w, "sompid_cluster_replicated_records_total", "counter", "Peer WAL records replicated and applied locally.")
	fmt.Fprintf(w, "sompid_cluster_replicated_records_total %d\n", cl.replicatedRecords)
	header(w, "sompid_cluster_replicated_snapshots_total", "counter", "Peer snapshots installed into the standby mirror.")
	fmt.Fprintf(w, "sompid_cluster_replicated_snapshots_total %d\n", cl.replicatedSnapshots)
	header(w, "sompid_cluster_resyncs_total", "counter", "Standby mirrors wiped and rebuilt from scratch after divergence.")
	fmt.Fprintf(w, "sompid_cluster_resyncs_total %d\n", cl.resyncs)
	header(w, "sompid_cluster_replication_errors_total", "counter", "Replication stream failures (each one is retried).")
	fmt.Fprintf(w, "sompid_cluster_replication_errors_total %d\n", cl.replicationErrors)
	header(w, "sompid_cluster_forwarded_total", "counter", "Requests forwarded to the owning node, by endpoint.")
	fmt.Fprintf(w, "sompid_cluster_forwarded_total{endpoint=\"prices\"} %d\n", m.clusterForwardedPrices.Load())
	fmt.Fprintf(w, "sompid_cluster_forwarded_total{endpoint=\"plan\"} %d\n", m.clusterForwardedPlans.Load())
	header(w, "sompid_cluster_promotions_total", "counter", "Dead peers whose shards this node promoted.")
	fmt.Fprintf(w, "sompid_cluster_promotions_total %d\n", m.clusterPromotions.Load())
	header(w, "sompid_cluster_adopted_sessions_total", "counter", "Replicated sessions registered locally by promotions.")
	fmt.Fprintf(w, "sompid_cluster_adopted_sessions_total %d\n", m.clusterAdoptedSessions.Load())
}
