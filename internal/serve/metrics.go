package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"sompi/internal/cloud"
)

// endpoint indexes the per-endpoint counters.
type endpoint int

const (
	epPlan endpoint = iota
	epEvaluate
	epMonteCarlo
	epPrices
	epSessions
	numEndpoints
)

var endpointNames = [numEndpoints]string{"plan", "evaluate", "montecarlo", "prices", "sessions"}

// metrics is the service's observable state, all lock-free counters so
// the hot paths never contend. Rendering is Prometheus text exposition
// format — gauges and counters only, no client library needed.
type metrics struct {
	requests  [numEndpoints]atomic.Int64
	errors    [numEndpoints]atomic.Int64
	latencyNs [numEndpoints]atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	evals     atomic.Int64
	pruned    atomic.Int64
	cancelled atomic.Int64

	ingestTicks   atomic.Int64
	ingestSamples atomic.Int64

	reoptimizations   atomic.Int64
	activeSessions    atomic.Int64
	completedSessions atomic.Int64
	// windowTruncations counts session windows whose replay or training
	// range reached before the retained head and was clamped — each one
	// is a re-optimization that saw less (or wrong) history than asked.
	windowTruncations atomic.Int64
}

// observe records one request's latency and error outcome.
func (m *metrics) observe(ep endpoint, ns int64, failed bool) {
	m.requests[ep].Add(1)
	m.latencyNs[ep].Add(ns)
	if failed {
		m.errors[ep].Add(1)
	}
}

// render writes the exposition text. marketVersion, cacheLen and the
// shard stats are sampled by the caller (they live in the market and
// cache, not here).
func (m *metrics) render(w io.Writer, marketVersion uint64, frontier float64, cacheLen int, shards []cloud.ShardStat) {
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		name := endpointNames[ep]
		fmt.Fprintf(w, "sompid_requests_total{endpoint=%q} %d\n", name, m.requests[ep].Load())
		fmt.Fprintf(w, "sompid_request_errors_total{endpoint=%q} %d\n", name, m.errors[ep].Load())
		fmt.Fprintf(w, "sompid_request_seconds_sum{endpoint=%q} %.6f\n", name, float64(m.latencyNs[ep].Load())/1e9)
	}
	fmt.Fprintf(w, "sompid_plan_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "sompid_plan_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "sompid_plan_cache_entries %d\n", cacheLen)
	fmt.Fprintf(w, "sompid_optimizer_evals_total %d\n", m.evals.Load())
	fmt.Fprintf(w, "sompid_optimizer_pruned_total %d\n", m.pruned.Load())
	fmt.Fprintf(w, "sompid_requests_cancelled_total %d\n", m.cancelled.Load())
	fmt.Fprintf(w, "sompid_ingest_ticks_total %d\n", m.ingestTicks.Load())
	fmt.Fprintf(w, "sompid_ingest_samples_total %d\n", m.ingestSamples.Load())
	fmt.Fprintf(w, "sompid_market_version %d\n", marketVersion)
	fmt.Fprintf(w, "sompid_market_frontier_hours %.6f\n", frontier)
	for _, st := range shards {
		fmt.Fprintf(w, "sompid_shard_version{market=%q} %d\n", st.Key.String(), st.Version)
		fmt.Fprintf(w, "sompid_shard_ticks_total{market=%q} %d\n", st.Key.String(), st.Ticks)
		fmt.Fprintf(w, "sompid_shard_samples{market=%q} %d\n", st.Key.String(), st.Samples)
		fmt.Fprintf(w, "sompid_shard_compacted_samples_total{market=%q} %d\n", st.Key.String(), st.Compacted)
	}
	fmt.Fprintf(w, "sompid_reoptimizations_total %d\n", m.reoptimizations.Load())
	fmt.Fprintf(w, "sompid_session_window_truncations_total %d\n", m.windowTruncations.Load())
	fmt.Fprintf(w, "sompid_active_sessions %d\n", m.activeSessions.Load())
	fmt.Fprintf(w, "sompid_sessions_completed_total %d\n", m.completedSessions.Load())
}
