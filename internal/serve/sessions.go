package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/strategy"
)

// trackedSession is one live application run the service manages per
// Algorithm 1: launched at the market's price frontier, it is replayed
// forward — against the actually ingested prices — every time the
// frontier crosses its next T_m window boundary, then re-optimized on
// the trailing history for the residual work.
//
// The live loop deliberately differs from opt.Adaptive's replay of a
// recorded trace in one place: Adaptive can commit a final window and
// replay it through to completion because the future prices are already
// on disk, while the service has no future — when the deadline gets too
// close for exploration it instead keeps re-planning window by window
// under the same MaxAllFail survival constraint the committed window
// would have used.
type trackedSession struct {
	id      string
	profile app.Profile
	history float64
	// mu guards every mutable field below: session state moved off the
	// global s.mu so scheduler workers advancing different sessions
	// never contend. Lock ordering: t.mu may be taken under s.mu
	// (listing, snapshot capture) and may be held while taking shard
	// read locks or the store mutex (advance + persist), but never
	// while taking sched.mu — workers re-schedule a session only after
	// releasing it.
	mu sync.Mutex
	// base carries the request's optimizer knobs; Market, Profile and
	// Deadline are refilled at every re-optimization. base.Candidates
	// pins the request's Types/Zones restriction across re-plans.
	base opt.Config
	// keys is the session's market universe (nil = every shard): its
	// window boundaries are measured against the frontier of these
	// shards only, so ticks on markets outside its plan's candidate set
	// never trigger a re-optimization.
	keys []cloud.MarketKey
	// sess threads progress/cost/clock between windows — the same
	// vehicle opt.Adaptive uses.
	sess *replay.Session
	// plan is the currently executing plan; boundary is the absolute
	// market hour of the next re-optimization; planVersion the market
	// version the plan was optimized at.
	plan        model.Plan
	boundary    float64
	planVersion uint64
	// planCost is the current plan's estimated cost at its optimization
	// time — the "old" side of the next audit record's cost delta.
	planCost float64
	// planScale, trainStart and trainDur record the inputs the current
	// plan was optimized with — the residual profile fraction and the
	// training window in absolute market hours — so recovery can rebuild
	// the exact model.Plan through DecodePlan without re-optimizing.
	planScale  float64
	trainStart float64
	trainDur   float64
	// strat, when non-nil, re-plans each window through a registry
	// strategy instead of the default Algorithm-1 optimizer call. It is
	// rebuilt from req on recovery (never persisted itself): sessions
	// planned by "" or "sompi" keep strat nil so the default loop — warm
	// starts, committed-window MaxAllFail — runs exactly as before.
	strat strategy.Strategy
	// req is the original plan request; seq the session's durable
	// transition counter (see sessionState).
	req    PlanRequest
	seq    uint64
	reopts int
	done   bool
	// audit is the session's append-only decision log, oldest first,
	// bounded at maxAuditRecords (oldest dropped beyond it).
	audit []AuditRecord
}

// maxAuditRecords bounds a session's audit log; a session re-optimizing
// every window for its whole deadline stays far below it, so a full log
// signals a runaway trigger loop rather than normal operation.
const maxAuditRecords = 256

// recordAudit appends one decision record. Caller holds t.mu; newPlan is
// nil when the session went terminal without adopting a fresh plan.
func (s *Server) recordAudit(t *trackedSession, trigger string, newPlan *model.Plan, newCost float64, optErr error) {
	rec := AuditRecord{
		Window:        t.sess.Windows,
		BoundaryHours: t.boundary,
		Trigger:       trigger,
		OldPlan:       EncodePlan(t.plan),
		OldPlanCost:   t.planCost,
		NewPlanCost:   newCost,
	}
	if newPlan != nil {
		p := EncodePlan(*newPlan)
		rec.NewPlan = &p
		rec.CostDelta = newCost - t.planCost
	}
	if optErr != nil {
		rec.Error = optErr.Error()
	}
	vv := s.market.VersionVector().Subset(t.keys)
	rec.MarketVersions = make(map[string]uint64, len(vv))
	for k, v := range vv {
		rec.MarketVersions[k.String()] = v
	}
	if len(t.audit) >= maxAuditRecords {
		t.audit = t.audit[1:]
	}
	t.audit = append(t.audit, rec)
}

// info renders the session's observable state under the session's own
// lock. The audit log is copied so the caller can marshal it after the
// lock is released while re-optimizations keep appending.
func (t *trackedSession) info() SessionInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	var audit []AuditRecord
	if len(t.audit) > 0 {
		audit = make([]AuditRecord, len(t.audit))
		copy(audit, t.audit)
	}
	return SessionInfo{
		Audit:         audit,
		ID:            t.id,
		App:           t.profile.Name,
		DeadlineHours: t.sess.Deadline,
		StartHours:    t.sess.Start,
		Progress:      t.sess.Progress,
		ElapsedHours:  t.sess.Elapsed,
		Cost:          t.sess.Cost,
		Windows:       t.sess.Windows,
		Reoptimized:   t.reopts,
		PlanVersion:   t.planVersion,
		Done:          t.done,
		Completed:     t.sess.Completed,
	}
}

// advanceSession drives one session up to the price frontier of its own
// candidate shards, one T_m window at a time, under the session's lock.
// Scheduler workers call it off the request path; the loop holds t.mu
// across each window's replay, re-optimization and WAL append so a
// snapshot capture (which takes the same lock) always sees a state the
// log reaches exactly.
func (s *Server) advanceSession(ctx context.Context, t *trackedSession) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for !t.done && t.boundary <= s.market.MinDurationFor(t.keys)+1e-9 {
		aborted := s.advanceWindow(ctx, t)
		if aborted {
			// Shutdown cancelled the optimization mid-window; the session
			// was restored to its pre-window state and its boundary stays
			// in the WAL for the next boot to reschedule.
			return
		}
		// Every window transition is durable: the session either
		// advanced, re-optimized or went terminal, and a crash right
		// after this line restores exactly that state.
		s.persistSession(t)
	}
}

// advanceWindow replays one window of the session's current plan (up to
// its boundary) and re-optimizes the residual. Caller holds t.mu. It
// reports whether the window was aborted by server shutdown — the only
// outcome that leaves the session unchanged.
func (s *Server) advanceWindow(ctx context.Context, t *trackedSession) (aborted bool) {
	// Capture the replay state first: a shutdown that cancels the
	// optimizer mid-window must not strand the session half-advanced
	// with no adopted plan (it would be misrecorded as a terminal
	// opt_error), so the abort path restores this and retries after
	// restart.
	saved := *t.sess
	// Retention guard: New rejects retain < history + window for the
	// server defaults, but a request can ask for a longer history and a
	// lagging session can fall behind compaction. If this window's
	// replay start or training window reaches before the retained head
	// of the session's shards, the market clamps those reads to the
	// oldest survivor — count it so operators see the wrong-price replay
	// instead of it staying silent.
	if head := s.market.RetainedStartFor(t.keys); head-1e-9 > math.Min(t.sess.Now(), math.Max(0, t.boundary-t.history)) {
		s.met.windowTruncations.Add(1)
	}
	if dur := t.boundary - t.sess.Now(); dur > 0 {
		t.sess.Advance(t.plan, dur)
	}
	if t.sess.Completed {
		s.recordAudit(t, "completed", nil, 0, nil)
		s.finishSession(t)
		return false
	}

	leftover := t.sess.Remaining()
	if t.sess.AllGroupsDead || leftover <= 0 || t.sess.Progress >= 1 {
		// Every group died inside the window (recover on-demand from the
		// best checkpoint) or the deadline has passed (nothing left to
		// optimize for): finish on the fastest fleet. On-demand execution
		// is price-independent, so replaying it past the frontier peeks
		// at nothing.
		s.recordAudit(t, "recovered_on_demand", nil, 0, nil)
		s.recoverOnDemand(t)
		s.finishSession(t)
		return false
	}

	// Algorithm 1's window boundary: train on the trailing history,
	// re-optimize the residual work against the deadline's leftover.
	resid := t.profile.Scale(1 - t.sess.Progress)
	cfg := t.base
	cfg.Profile = resid
	trainStart := math.Max(0, t.boundary-t.history)
	cfg.Deadline = leftover
	if fastest := opt.FastestOnDemand(t.base.OnDemandTypes, resid); leftover-fastest.T*1.02 < 2 {
		// Too close to the deadline for exploration: only plans that are
		// very unlikely to lose every group qualify (the live-service
		// analogue of Adaptive's committed window).
		cfg.MaxAllFail = 0.1
	}

	// Re-optimization is incremental: unchanged shards reuse their
	// prepared state and memoized subset costs from the server's cache,
	// and the session's previous plan — re-priced under the current
	// market — seeds the branch-and-bound incumbent so pruning starts
	// tight. Neither changes the plan (see opt.Config.InitialIncumbent
	// and opt.ReuseCache for the bit-identity argument).
	cfg.Reuse = s.reuse
	var res opt.Result
	var err error
	if t.strat != nil {
		// Registry strategy: re-plan the residual through the strategy's
		// own policy. The committed-window MaxAllFail tightening above is
		// an optimizer knob; strategies carry their own risk posture.
		// Strategies skip the single-flight dedup — their planning may be
		// stateful (adaptive-ckpt's cadence pass), so two sessions are
		// only provably identical on the default path.
		cfg.Market = s.market.Window(trainStart, t.boundary-trainStart)
		strategy.Configure(t.strat, t.keys, s.reuse)
		var p strategy.Plan
		p, _, err = t.strat.Plan(ctx, cfg.Market,
			strategy.Workload{Profile: resid}, strategy.Deadline{Hours: leftover})
		res = opt.Result{Plan: p.Model, Est: p.Est, Evals: p.Evals, Pruned: p.Pruned, SavedEvals: p.SavedEvals}
		s.met.evalsSaved.Add(int64(res.SavedEvals))
	} else {
		// Identical sessions hitting the same boundary coalesce onto one
		// optimizer run. The search-effort counters live inside the
		// leader's closure so a deduplicated re-opt counts its shared run
		// once, not k times.
		var shared bool
		res, shared, err = s.reopts.do(ctx, s.reoptKey(t, cfg, leftover, trainStart), func() (opt.Result, error) {
			// The training-window snapshot is built inside the leader's
			// closure: it copies every candidate shard's history under
			// read locks, and followers sharing the leader's result never
			// need it — k coalesced sessions pay for one copy, not k.
			run := cfg
			run.Market = s.market.Window(trainStart, t.boundary-trainStart)
			if len(t.plan.Groups) > 0 {
				if hint, ok := opt.WarmBound(run, t.plan); ok {
					run.InitialIncumbent = hint
					s.met.warmStarts.Add(1)
				}
			}
			r, e := opt.OptimizeContext(ctx, run)
			s.met.evalsSaved.Add(int64(r.SavedEvals))
			if e == nil {
				s.met.evals.Add(int64(r.Evals))
				s.met.pruned.Add(int64(r.Pruned))
			}
			return r, e
		})
		if shared {
			s.met.reoptDeduped.Add(1)
		}
	}
	switch {
	case err != nil:
		if ctx.Err() != nil {
			// Server shutdown, not an optimizer failure: undo the window's
			// replay and leave the session exactly where the WAL has it.
			*t.sess = saved
			return true
		}
		s.recordAudit(t, "opt_error", nil, 0, err)
		s.recoverOnDemand(t)
		s.finishSession(t)
		return false
	case len(res.Plan.Groups) == 0:
		// The optimizer's best feasible plan is pure on-demand: run it
		// out (price-independent, so no peeking).
		s.recordAudit(t, "ran_out_on_demand", &res.Plan, res.Est.Cost, nil)
		t.sess.Advance(res.Plan, math.Inf(1))
		t.reopts++
		s.met.reoptimizations.Add(1)
		s.finishSession(t)
		return false
	default:
		s.recordAudit(t, "reoptimized", &res.Plan, res.Est.Cost, nil)
		t.plan = res.Plan
		t.planVersion = s.market.Version()
		t.planCost = res.Est.Cost
		// Record the rebuild inputs before the boundary moves: the plan
		// was optimized for the residual at current progress, trained on
		// [trainStart, boundary).
		t.planScale = 1 - t.sess.Progress
		t.trainStart = trainStart
		t.trainDur = t.boundary - trainStart
		t.boundary += s.window
		t.reopts++
		s.met.reoptimizations.Add(1)
		return false
	}
}

// reoptKey is the dedup key for a session re-optimization: every knob
// that determines the optimizer's inputs at this boundary. The market
// content is pinned not by a version vector (which moves with every
// heartbeat tick while workers run) but by the training window itself:
// once the frontier of the session's shards has crossed the boundary,
// the samples inside [trainStart, boundary) are immutable — appends
// only extend past the frontier — except for retention truncation,
// which the effective retained start pins. Two sessions with equal keys
// therefore hand the optimizer bit-identical inputs, and the warm-start
// incumbent (deliberately excluded) provably never changes the result
// (see opt.Config.InitialIncumbent).
func (s *Server) reoptKey(t *trackedSession, cfg opt.Config, leftover, trainStart float64) string {
	effStart := math.Max(trainStart, s.market.RetainedStartFor(t.keys))
	return fmt.Sprintf("reopt|%s|%g|%d|%d|%d|%d|%g|%g|%t|%t|t:%s|z:%s|s:%s|sp{%s}|sc:%v|lo:%v|ts:%v|b:%v|es:%v|maf:%v",
		t.profile.Name, t.history, cfg.Workers, cfg.Kappa, cfg.GridLevels, cfg.MaxGroups,
		cfg.Slack, t.base.MaxAllFail, cfg.DisableCheckpoints, cfg.DisablePruning,
		strings.Join(t.req.Types, ","), strings.Join(t.req.Zones, ","),
		t.req.Strategy, canonicalParams(t.req.StrategyParams),
		1-t.sess.Progress, leftover, trainStart, t.boundary, effStart, cfg.MaxAllFail)
}

// recoverOnDemand runs the session's remaining work to completion on
// the fastest on-demand fleet for the residual profile — the same
// fallback opt.Adaptive takes when a window leaves no feasible plan.
// Caller holds t.mu.
func (s *Server) recoverOnDemand(t *trackedSession) {
	if t.sess.Progress >= 1 {
		return
	}
	resid := t.profile.Scale(1 - t.sess.Progress)
	fastest := opt.FastestOnDemand(t.base.OnDemandTypes, resid)
	t.sess.Advance(model.Plan{Recovery: fastest}, math.Inf(1))
}

// finishSession marks the session terminal and moves the gauges. Caller
// holds t.mu.
func (s *Server) finishSession(t *trackedSession) {
	t.done = true
	s.met.activeSessions.Add(-1)
	s.met.completedSessions.Add(1)
}
