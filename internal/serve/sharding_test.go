package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/serve"
	"sompi/internal/trace"
)

// shardTick is one deterministic ingestion event for the equivalence
// test: a few fresh samples appended to a single (type, zone) shard.
type shardTick struct {
	key     cloud.MarketKey
	samples []float64
}

// equivalenceTicks spreads appends unevenly across shards — some keys
// get several ticks, most get none — so the sharded store's per-shard
// logs genuinely diverge in length before the comparison.
func equivalenceTicks() []shardTick {
	keys := []cloud.MarketKey{
		{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA},
		{Type: cloud.M1Small.Name, Zone: cloud.ZoneB},
		{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneC},
		{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA}, // second tick, same shard
	}
	var ticks []shardTick
	for i, k := range keys {
		n := 2 + i%3
		s := make([]float64, n)
		for j := range s {
			s[j] = 0.02 + 0.001*float64(i*7+j)
		}
		ticks = append(ticks, shardTick{key: k, samples: s})
	}
	return ticks
}

// TestShardedPlanEquivalence is the refactor's acceptance bar: after an
// identical tick sequence, the sharded store and a monolithic-semantics
// reference market (traces concatenated by hand, then frozen into a new
// market) must produce byte-identical plans through the same optimizer
// config and response encoding.
func TestShardedPlanEquivalence(t *testing.T) {
	sharded := testMarket()

	// Reference path: capture the pre-tick traces, concatenate appends
	// manually, and build a fresh single-shot market from the result.
	refTraces := map[cloud.MarketKey]*trace.Trace{}
	for _, k := range sharded.Keys() {
		refTraces[k], _ = sharded.TraceFor(k)
	}
	for _, tk := range equivalenceTicks() {
		if _, err := sharded.Append(tk.key, tk.samples); err != nil {
			t.Fatalf("sharded append %v: %v", tk.key, err)
		}
		old := refTraces[tk.key]
		refTraces[tk.key] = old.Append(trace.New(old.Step, tk.samples))
	}
	ref := cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), refTraces)

	profile, _ := app.ByName("BT")
	req := smallPlan(60)
	plan := func(m cloud.MarketView) []byte {
		frontier := m.MinDuration()
		lo := math.Max(0, frontier-baselines.History)
		res, err := opt.OptimizeContext(context.Background(), req.Config(profile, m.Window(lo, frontier-lo)))
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		// Same version constant on both sides: the comparison is about
		// prices and plan bytes, not the stores' version counters.
		b, _ := json.Marshal(serve.BuildPlanResponse(1, res))
		return b
	}

	got, want := plan(sharded), plan(ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded plan differs from monolithic reference:\n got %s\nwant %s", got, want)
	}

	// The stores also agree on the raw substrate: every shard's trace is
	// sample-identical to the hand-concatenated reference.
	for _, k := range sharded.Keys() {
		a, _ := sharded.TraceFor(k)
		b, _ := ref.TraceFor(k)
		if a.Len() != b.Len() || a.Duration() != b.Duration() {
			t.Fatalf("%v: sharded %d samples / %vh, reference %d samples / %vh",
				k, a.Len(), a.Duration(), b.Len(), b.Duration())
		}
		for i := range a.Prices {
			if a.Prices[i] != b.Prices[i] {
				t.Fatalf("%v sample %d: %v vs %v", k, i, a.Prices[i], b.Prices[i])
			}
		}
	}
}

// TestShardedPlanEquivalenceOverHTTP repeats the equivalence check
// through the full service path: ticks ingested via /v1/prices, plan
// served via /v1/plan, compared against a library run on the
// hand-concatenated reference market.
func TestShardedPlanEquivalenceOverHTTP(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	refTraces := map[cloud.MarketKey]*trace.Trace{}
	base := testMarket()
	for _, k := range base.Keys() {
		refTraces[k], _ = base.TraceFor(k)
	}
	ticks := equivalenceTicks()
	for _, tk := range ticks {
		status, _, body := postJSON(t, ts.URL+"/v1/prices",
			serve.PriceTick{Type: tk.key.Type, Zone: tk.key.Zone, Prices: tk.samples})
		if status != http.StatusOK {
			t.Fatalf("ingest %v: %d %s", tk.key, status, body)
		}
		old := refTraces[tk.key]
		refTraces[tk.key] = old.Append(trace.New(old.Step, tk.samples))
	}
	ref := cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), refTraces)

	req := smallPlan(60)
	status, _, got := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, got)
	}

	profile, _ := app.ByName("BT")
	frontier := ref.MinDuration()
	lo := math.Max(0, frontier-baselines.History)
	res, err := opt.OptimizeContext(context.Background(), req.Config(profile, ref.Window(lo, frontier-lo)))
	if err != nil {
		t.Fatalf("library optimize: %v", err)
	}
	// The served market has seen len(ticks) appends past its base version.
	want, _ := json.Marshal(serve.BuildPlanResponse(uint64(1+len(ticks)), res))
	if !bytes.Equal(got, want) {
		t.Fatalf("served plan differs from monolithic-reference library plan:\n got %s\nwant %s", got, want)
	}
}

// TestCacheSurvivesUnrelatedShardTick is the fine-grained invalidation
// guarantee: a cached plan keyed to a restricted candidate set stays a
// byte-identical hit across ticks on shards outside its version vector,
// and is evicted the moment one of its own shards advances.
func TestCacheSurvivesUnrelatedShardTick(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := smallPlan(60)
	req.Types = []string{cloud.M1Medium.Name}
	req.Zones = []string{cloud.ZoneA}

	status, hdr, first := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "miss" {
		t.Fatalf("first restricted plan: %d, cache %q, want 200 miss", status, hdr.Get("X-Sompid-Cache"))
	}
	var resp serve.PlanResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, g := range resp.Plan.Groups {
		if g.Type != cloud.M1Medium.Name || g.Zone != cloud.ZoneA {
			t.Fatalf("restricted plan used group %s/%s outside types/zones filter", g.Type, g.Zone)
		}
	}

	// Tick a shard the request never touches: the plan's version vector
	// is unchanged, so the entry must remain a hit — this is the whole
	// point of vector cache keys over a global version.
	tick := serve.PriceTick{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneC, Prices: []float64{0.4, 0.41}}
	if status, _, body := postJSON(t, ts.URL+"/v1/prices", tick); status != http.StatusOK {
		t.Fatalf("unrelated ingest: %d %s", status, body)
	}
	status, hdr, second := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "hit" {
		t.Fatalf("plan after unrelated tick: %d, cache %q, want 200 hit", status, hdr.Get("X-Sompid-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("post-unrelated-tick hit is not byte-identical:\n%s\n%s", first, second)
	}

	// Tick the request's own shard: its vector entry advances, the key
	// changes, and the next request recomputes.
	tick = serve.PriceTick{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05, 0.05}}
	if status, _, body := postJSON(t, ts.URL+"/v1/prices", tick); status != http.StatusOK {
		t.Fatalf("own-shard ingest: %d %s", status, body)
	}
	status, hdr, _ = postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "miss" {
		t.Fatalf("plan after own-shard tick: %d, cache %q, want 200 miss", status, hdr.Get("X-Sompid-Cache"))
	}

	// An unrestricted request reads every shard, so both ticks are in its
	// vector and the pre-tick global cache state never applied to it.
	status, hdr, _ = postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "miss" {
		t.Fatalf("unrestricted plan: %d, cache %q, want 200 miss", status, hdr.Get("X-Sompid-Cache"))
	}
}

// TestPlanRequestFilterValidation: filters that match no shard are a 422
// planning failure (no candidates), not a panic or an empty plan.
func TestPlanRequestFilterValidation(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	req := smallPlan(60)
	req.Types = []string{"no-such-type"}
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status == http.StatusOK {
		t.Fatalf("plan with unmatched type filter succeeded: %s", body)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("filter failure is not an error envelope: %d %s", status, body)
	}
}

// TestHealthzReportsShards covers the per-shard health surface: one
// entry per (type, zone) with its version and tick count, plus the
// composite market version.
func TestHealthzReportsShards(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	tick := serve.PriceTick{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA, Prices: []float64{0.05}}
	if status, _, body := postJSON(t, ts.URL+"/v1/prices", tick); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}

	var hz serve.HealthResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/healthz"), &hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	wantShards := len(cloud.DefaultCatalog()) * len(cloud.DefaultZones())
	if hz.Status != "ok" || hz.MarketVersion != 2 || len(hz.Shards) != wantShards {
		t.Fatalf("healthz: status %q version %d shards %d, want ok/2/%d",
			hz.Status, hz.MarketVersion, len(hz.Shards), wantShards)
	}
	ticked := fmt.Sprintf("%s/%s", cloud.M1Medium.Name, cloud.ZoneA)
	for _, sh := range hz.Shards {
		wantVersion, wantTicks := uint64(1), uint64(0)
		if sh.Market == ticked {
			wantVersion, wantTicks = 2, 1
		}
		if sh.Version != wantVersion || sh.Ticks != wantTicks {
			t.Errorf("shard %s: version %d ticks %d, want %d/%d",
				sh.Market, sh.Version, sh.Ticks, wantVersion, wantTicks)
		}
		if sh.Samples <= 0 || sh.DurationHours <= 0 {
			t.Errorf("shard %s: implausible samples %d / duration %v", sh.Market, sh.Samples, sh.DurationHours)
		}
	}
}
