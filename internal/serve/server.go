package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
)

// StatusClientClosedRequest is reported when the client abandoned the
// request before the work finished (nginx's 499 convention — the client
// never sees it, but logs and metrics do).
const StatusClientClosedRequest = 499

// Config parameterizes a planner service.
type Config struct {
	// Market is the service's live market; ingestion appends to it.
	Market *cloud.Market
	// WindowHours is T_m, the re-optimization window for tracked
	// sessions; zero means opt.DefaultWindow.
	WindowHours float64
	// HistoryHours is the default training history for requests that do
	// not set their own; zero means baselines.History.
	HistoryHours float64
	// CacheSize bounds the plan LRU; zero means 256 entries.
	CacheSize int
	// RequestTimeout bounds each plan/evaluate/montecarlo request; zero
	// means 60s. Ingestion is not bounded by it.
	RequestTimeout time.Duration
}

// Server is the sompid planner service. One RWMutex fences the live
// market and the session registry: reads (plan, evaluate, montecarlo)
// take cheap snapshots under RLock and do their heavy work unlocked on
// immutable trace views, while ingestion mutates and advances sessions
// under the write lock.
type Server struct {
	window  float64
	history float64
	timeout time.Duration

	mu       sync.RWMutex
	market   *cloud.Market
	sessions map[string]*trackedSession
	order    []string // session iteration in creation order
	nextID   int

	cache *planCache
	met   metrics
}

// New builds a Server over the given live market.
func New(cfg Config) (*Server, error) {
	if cfg.Market == nil {
		return nil, fmt.Errorf("%w: nil market", opt.ErrInvalidConfig)
	}
	if cfg.WindowHours < 0 || cfg.HistoryHours < 0 {
		return nil, fmt.Errorf("%w: negative window or history", opt.ErrInvalidConfig)
	}
	s := &Server{
		window:   cfg.WindowHours,
		history:  cfg.HistoryHours,
		timeout:  cfg.RequestTimeout,
		market:   cfg.Market,
		sessions: make(map[string]*trackedSession),
		cache:    newPlanCache(cfg.CacheSize),
	}
	if s.window == 0 {
		s.window = opt.DefaultWindow
	}
	if s.history == 0 {
		s.history = baselines.History
	}
	if s.timeout == 0 {
		s.timeout = 60 * time.Second
	}
	if cfg.CacheSize == 0 {
		s.cache = newPlanCache(256)
	}
	return s, nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.instrument(epPlan, s.handlePlan))
	mux.HandleFunc("POST /v1/evaluate", s.instrument(epEvaluate, s.handleEvaluate))
	mux.HandleFunc("POST /v1/montecarlo", s.instrument(epMonteCarlo, s.handleMonteCarlo))
	mux.HandleFunc("POST /v1/prices", s.instrument(epPrices, s.handlePrices))
	mux.HandleFunc("GET /v1/sessions", s.instrument(epSessions, s.handleSessions))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusRecorder captures the response code for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint request, latency and
// error counters.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		s.met.observe(ep, time.Since(start).Nanoseconds(), rec.status >= 400)
	}
}

// statusOf maps the library's typed errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, opt.ErrInvalidConfig),
		errors.Is(err, replay.ErrInvalidConfig),
		errors.Is(err, cloud.ErrBadSample):
		return http.StatusBadRequest
	case errors.Is(err, opt.ErrDeadlineInfeasible),
		errors.Is(err, opt.ErrNoCandidates),
		errors.Is(err, replay.ErrMarketTooShort),
		errors.Is(err, cloud.ErrUnknownMarket):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, code, body)
}

// writeBody sends pre-marshaled JSON verbatim — the cache stores these
// exact bytes, which is what makes hits byte-identical to misses.
func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes one JSON object request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", opt.ErrInvalidConfig, err)
	}
	return nil
}

// historyOr returns the request's training history or the server default.
func (s *Server) historyOr(h float64) float64 {
	if h > 0 {
		return h
	}
	return s.history
}

// trainSnapshot captures, under the read lock, everything a planning
// request needs: the market version, the price frontier and the trailing
// training window (an immutable view later Appends cannot disturb).
func (s *Server) trainSnapshot(history float64) (version uint64, frontier float64, train *cloud.Market) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	version = s.market.Version()
	frontier = s.market.MinDuration()
	lo := math.Max(0, frontier-history)
	return version, frontier, s.market.Window(lo, frontier-lo)
}

// planKey is the cache key: every optimizer knob plus the market version.
func planKey(req PlanRequest, version uint64) string {
	return fmt.Sprintf("%s|%g|%g|%d|%d|%d|%d|%g|%g|%t|%t|v%d",
		req.App, req.DeadlineHours, req.HistoryHours, req.Workers, req.Kappa,
		req.GridLevels, req.MaxGroups, req.Slack, req.MaxAllFail,
		req.DisableCheckpoints, req.DisablePruning, version)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}
	version, frontier, train := s.trainSnapshot(s.historyOr(req.HistoryHours))

	key := planKey(req, version)
	if !req.Track {
		if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			w.Header().Set("X-Sompid-Cache", "hit")
			writeBody(w, http.StatusOK, body)
			return
		}
		s.met.cacheMisses.Add(1)
		w.Header().Set("X-Sompid-Cache", "miss")
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	res, err := opt.OptimizeContext(ctx, req.Config(profile, train))
	s.met.evals.Add(int64(res.Evals))
	s.met.pruned.Add(int64(res.Pruned))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		writeError(w, statusOf(err), err)
		return
	}

	resp := BuildPlanResponse(version, res)
	if req.Track {
		resp.SessionID = s.registerSession(profile, req, res, version, frontier)
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, merr)
		return
	}
	if !req.Track {
		s.cache.put(key, body)
	}
	writeBody(w, http.StatusOK, body)
}

// registerSession creates a tracked session for a freshly served plan,
// starting at the price frontier the plan was optimized at.
func (s *Server) registerSession(profile app.Profile, req PlanRequest, res opt.Result, version uint64, frontier float64) string {
	base := req.Config(profile, nil)
	base.Market = nil // refilled per re-optimization
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	t := &trackedSession{
		id:      id,
		profile: profile,
		history: s.historyOr(req.HistoryHours),
		base:    base,
		sess: replay.NewSession(&replay.Runner{Market: s.market, Profile: profile},
			req.DeadlineHours, frontier),
		plan:        res.Plan,
		boundary:    frontier + s.window,
		planVersion: version,
	}
	s.sessions[id] = t
	s.order = append(s.order, id)
	s.met.activeSessions.Add(1)
	return id
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}
	version, _, train := s.trainSnapshot(s.historyOr(req.HistoryHours))
	plan, err := DecodePlan(req.Plan, profile, train)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	if err := plan.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{
		MarketVersion: version,
		Estimate:      EncodeEstimate(model.Evaluate(plan)),
	})
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req MonteCarloRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}

	// Long replays work on a snapshot: ingestion appending mid-run must
	// not race the replay's market reads (traces are immutable, so the
	// shallow copy is a consistent view).
	s.mu.RLock()
	snap := s.market.Snapshot()
	s.mu.RUnlock()

	strat, err := strategyFor(req, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	st, err := replay.MonteCarloContext(ctx, strat, &replay.Runner{Market: snap, Profile: profile}, replay.MCConfig{
		Deadline: req.DeadlineHours,
		Runs:     req.Runs,
		History:  req.HistoryHours,
		Seed:     req.Seed,
		Workers:  req.Workers,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, MonteCarloResponse{
		MarketVersion:  snap.Version(),
		Strategy:       st.Name,
		Runs:           st.Runs,
		Failures:       st.Failures,
		CostMean:       st.Cost.Mean(),
		CostStd:        st.Cost.Std(),
		HoursMean:      st.Hours.Mean(),
		HoursStd:       st.Hours.Std(),
		DeadlineMisses: st.DeadlineMisses,
		MissRate:       st.MissRate(),
	})
}

// strategyFor resolves the request's strategy name against the snapshot.
func strategyFor(req MonteCarloRequest, m *cloud.Market) (replay.Strategy, error) {
	switch strings.ToLower(req.Strategy) {
	case "", "sompi":
		if req.WindowHours > 0 {
			return baselines.SOMPIWindow(m, req.WindowHours), nil
		}
		return baselines.SOMPI(m), nil
	case "baseline":
		return baselines.Baseline(), nil
	case "on-demand":
		return baselines.OnDemandOnly(), nil
	case "marathe":
		return baselines.Marathe(m), nil
	case "marathe-opt":
		return baselines.MaratheOpt(m), nil
	case "spot-inf":
		return baselines.SpotInf(m), nil
	case "spot-avg":
		return baselines.SpotAvg(m), nil
	default:
		return nil, fmt.Errorf("%w: unknown strategy %q", opt.ErrInvalidConfig, req.Strategy)
	}
}

// handlePrices ingests spot-price ticks. The body is a stream: either a
// single JSON array of ticks or whitespace/newline-separated tick
// objects (NDJSON). Each tick is applied — and tracked sessions advanced
// across any crossed window boundaries — before the next one is read, so
// an arbitrarily long feed ingests in constant memory.
func (s *Server) handlePrices(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var resp PricesResponse
	apply := func(tick PriceTick) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		version, err := s.market.Append(cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}, tick.Prices)
		if err != nil {
			return err
		}
		reopted, completed := s.advanceSessionsLocked(r.Context())
		resp.MarketVersion = version
		resp.Ticks++
		resp.Samples += len(tick.Prices)
		resp.Reoptimized += reopted
		resp.Completed += completed
		resp.FrontierHours = s.market.MinDuration()
		s.met.ingestTicks.Add(1)
		s.met.ingestSamples.Add(int64(len(tick.Prices)))
		return nil
	}

	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, resp.Ticks, err))
			return
		}
		trimmed := strings.TrimSpace(string(raw))
		if strings.HasPrefix(trimmed, "[") {
			var ticks []PriceTick
			if err := json.Unmarshal(raw, &ticks); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, resp.Ticks, err))
				return
			}
			for _, tick := range ticks {
				if err := apply(tick); err != nil {
					writeError(w, statusOf(err), fmt.Errorf("after %d ticks: %w", resp.Ticks, err))
					return
				}
			}
			continue
		}
		var tick PriceTick
		if err := json.Unmarshal(raw, &tick); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, resp.Ticks, err))
			return
		}
		if err := apply(tick); err != nil {
			writeError(w, statusOf(err), fmt.Errorf("after %d ticks: %w", resp.Ticks, err))
			return
		}
	}
	if resp.MarketVersion == 0 { // empty feed: report current state
		s.mu.RLock()
		resp.MarketVersion = s.market.Version()
		resp.FrontierHours = s.market.MinDuration()
		s.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]SessionInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id].info())
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	version := s.market.Version()
	frontier := s.market.MinDuration()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, version, frontier, s.cache.len())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	version := s.market.Version()
	frontier := s.market.MinDuration()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"market_version":  version,
		"frontier_hours":  frontier,
		"active_sessions": s.met.activeSessions.Load(),
	})
}
