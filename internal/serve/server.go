package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/harness"
	"sompi/internal/model"
	"sompi/internal/obs"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/store"
	"sompi/internal/strategy"
)

// StatusClientClosedRequest is reported when the client abandoned the
// request before the work finished (nginx's 499 convention — the client
// never sees it, but logs and metrics do).
const StatusClientClosedRequest = 499

// Config parameterizes a planner service.
type Config struct {
	// Market is the service's live market; ingestion appends to it.
	Market *cloud.Market
	// WindowHours is T_m, the re-optimization window for tracked
	// sessions; zero means opt.DefaultWindow.
	WindowHours float64
	// HistoryHours is the default training history for requests that do
	// not set their own; zero means baselines.History.
	HistoryHours float64
	// CacheSize bounds the plan LRU; zero means 256 entries.
	CacheSize int
	// RequestTimeout bounds each plan/evaluate/montecarlo request; zero
	// means 60s. Ingestion is not bounded by it.
	RequestTimeout time.Duration
	// Collector receives every request's span tree (and the market's
	// append spans); nil means a fresh collector sized by TraceRing, so
	// /debug/trace always works.
	Collector *obs.Collector
	// TraceRing sizes the collector's span ring when Collector is nil;
	// zero means obs.DefaultRing.
	TraceRing int
	// Logger receives the service's structured log lines; nil disables
	// logging (every method on a nil *obs.Logger is a no-op).
	Logger *obs.Logger
	// Store, when set, makes the service durable: New recovers the exact
	// pre-crash market and session state from it before accepting
	// traffic, every tick and session transition is WAL-logged, and
	// Close cuts a clean snapshot. The store must be freshly opened and
	// not yet recovered; the server owns it from here (Close closes it).
	// Nil keeps the service pure in-memory.
	Store *store.Store
	// SnapshotEvery cuts a snapshot after that many WAL records since
	// the previous one; zero means 4096. Ignored without Store.
	SnapshotEvery int
	// IngestQueue bounds each shard's pending tick-batch queue; a full
	// queue surfaces as 429 + Retry-After backpressure. Zero means 1024
	// batches per shard; negative means 1.
	IngestQueue int
	// ReoptWorkers sizes the scheduler's re-optimization worker pool —
	// the goroutines that drive tracked sessions across their T_m
	// boundaries off the ingest path. Zero means 4; negative starts
	// none (boundaries accumulate durably but never run — a test and
	// maintenance hook).
	ReoptWorkers int
	// CaptureLog, when set, records every v1 request to a segmented
	// NDJSON capture log under this directory — one harness.Record per
	// request (endpoint, method, body, relative timestamp, request id,
	// response status and body hash) for cmd/sompi-replay to replay and
	// twin-diff. Empty disables capture.
	CaptureLog string
	// CaptureSegmentRecords bounds records per capture segment before
	// it is sealed; zero means harness.DefaultSegmentRecords.
	CaptureSegmentRecords int
	// Cluster, when set, runs this server as one node of a static
	// multi-node cluster: market shards are owned by rendezvous hash,
	// mis-routed requests forward to their owner, every peer's WAL is
	// replicated into a local standby, and a dead peer's shards are
	// promoted. Requires Store. Nil keeps the server single-node.
	Cluster *ClusterConfig
}

// Server is the sompid planner service. The market synchronizes itself
// per shard — ingestion locks only the target (type, zone) shard and
// readers take lock-free snapshots — and each tracked session carries
// its own t.mu, so the server's RWMutex fences just the session
// registry (the map, ordering and id counter). Lock ordering (see
// DESIGN.md §13): s.mu → t.mu → {shard locks, store mutex}; s.mu →
// sched.mu → shard read locks; never t.mu → sched.mu and never the
// reverse of any edge — shard and store locks are leaves.
type Server struct {
	window  float64
	history float64
	timeout time.Duration

	mu       sync.RWMutex
	market   *cloud.Market
	sessions map[string]*trackedSession
	order    []string // session iteration in creation order
	nextID   int

	// runCtx is the server-lifecycle context every asynchronous
	// re-optimization runs under: a client disconnecting mid-feed must
	// not cancel other sessions' replanning, only Close may. runCancel
	// aborts in-flight work at shutdown.
	runCtx    context.Context
	runCancel context.CancelFunc

	// ing is the batched ingest pipeline (per-shard queues + appliers);
	// sched the central re-optimization scheduler; reopts the
	// single-flight cache that coalesces identical optimizer runs.
	ing    *ingester
	sched  *reoptScheduler
	reopts *reoptCache

	cache *planCache
	// reuse carries prepared-group state and evaluated subset costs
	// across every optimization the server runs — plan requests and
	// session re-opts alike. Hits are keyed on the shard version vector,
	// so a tick invalidates exactly the shards it touched.
	reuse *opt.ReuseCache
	met   metrics
	col   *obs.Collector
	log   *obs.Logger

	// capture is the request capture log (nil = capture off).
	capture *harness.Writer

	// store is the durability subsystem (nil = pure in-memory);
	// snapshotEvery its snapshot cadence in WAL records. snapping gates
	// one background snapshot cut in flight, snapWG tracks it so Close
	// can drain it. closed guards Close idempotency (under mu).
	store         *store.Store
	snapshotEvery int
	snapping      atomic.Bool
	snapWG        sync.WaitGroup
	closed        bool

	// cluster is the multi-node subsystem (nil = single-node).
	cluster *clusterNode
}

// New builds a Server over the given live market.
func New(cfg Config) (*Server, error) {
	if cfg.Market == nil {
		return nil, fmt.Errorf("%w: nil market", opt.ErrInvalidConfig)
	}
	if cfg.WindowHours < 0 || cfg.HistoryHours < 0 {
		return nil, fmt.Errorf("%w: negative window or history", opt.ErrInvalidConfig)
	}
	s := &Server{
		window:   cfg.WindowHours,
		history:  cfg.HistoryHours,
		timeout:  cfg.RequestTimeout,
		market:   cfg.Market,
		sessions: make(map[string]*trackedSession),
		cache:    newPlanCache(cfg.CacheSize),
		reuse:    opt.NewReuseCache(),
		col:      cfg.Collector,
		log:      cfg.Logger,
	}
	if s.col == nil {
		s.col = obs.NewCollector(cfg.TraceRing)
	}
	s.market.SetCollector(s.col)
	s.met.init(cfg.Market.Keys())
	if s.window == 0 {
		s.window = opt.DefaultWindow
	}
	if s.history == 0 {
		s.history = baselines.History
	}
	if s.timeout == 0 {
		s.timeout = 60 * time.Second
	}
	if cfg.CacheSize == 0 {
		s.cache = newPlanCache(256)
	}
	// With ring-buffer retention, a tracked session trains on the
	// trailing HistoryHours behind each T_m boundary; a bound shorter
	// than history + window means reads before the retained head get
	// silently clamped to the oldest surviving sample. Refuse the
	// misconfiguration instead of planning on wrong prices.
	if r := cfg.Market.Retention(); r > 0 && r < s.history+s.window {
		return nil, fmt.Errorf("%w: retention %gh < history %gh + window %gh: tracked sessions would train on silently truncated prices (raise -retain or lower -history/-window)",
			opt.ErrInvalidConfig, r, s.history, s.window)
	}
	if cfg.Store != nil {
		s.store = cfg.Store
		s.snapshotEvery = cfg.SnapshotEvery
		if s.snapshotEvery == 0 {
			s.snapshotEvery = 4096
		}
		// Recovery runs before the persist hook is installed — replaying
		// the WAL must not re-log it — and before New returns, so no
		// traffic ever sees a partially restored market.
		if err := s.recoverFromStore(); err != nil {
			return nil, fmt.Errorf("serve: recovering from %s: %w", s.store.Dir(), err)
		}
		s.store.SetFsyncObserver(func(seconds float64) { s.met.walFsync.Observe(seconds) })
		s.market.SetPersist(s.persistTick)
		s.market.SetPersistBatch(s.persistTickBatch)
	}

	if cfg.CaptureLog != "" {
		w, err := harness.OpenWriter(cfg.CaptureLog, cfg.CaptureSegmentRecords)
		if err != nil {
			return nil, fmt.Errorf("serve: opening capture log: %w", err)
		}
		w.SetAppendObserver(func(seconds float64) { s.met.captureAppend.Observe(seconds) })
		s.capture = w
	}

	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.reopts = newReoptCache(s.cache.cap)
	workers := cfg.ReoptWorkers
	switch {
	case workers == 0:
		workers = 4
	case workers < 0:
		workers = 0
	}
	s.sched = newReoptScheduler(s, workers)
	queue := cfg.IngestQueue
	switch {
	case queue == 0:
		queue = 1024
	case queue < 0:
		queue = 1
	}
	s.ing = newIngester(s, queue)
	// Recovered live sessions re-enter the scheduler: a boundary the
	// pre-crash server never got to re-optimize is eligible immediately
	// and runs as soon as a worker picks it up — no re-opt is lost to a
	// SIGKILL.
	for _, id := range s.order {
		if t := s.sessions[id]; !t.done {
			s.sched.add(t)
		}
	}
	if cfg.Cluster != nil {
		if err := s.initCluster(*cfg.Cluster); err != nil {
			s.runCancel()
			s.ing.stop()
			s.sched.stop()
			return nil, fmt.Errorf("serve: cluster init: %w", err)
		}
	}
	return s, nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.instrument(epPlan, s.handlePlan))
	mux.HandleFunc("POST /v1/evaluate", s.instrument(epEvaluate, s.handleEvaluate))
	mux.HandleFunc("POST /v1/montecarlo", s.instrument(epMonteCarlo, s.handleMonteCarlo))
	mux.HandleFunc("POST /v1/prices", s.instrument(epPrices, s.handlePrices))
	mux.HandleFunc("GET /v1/sessions", s.instrument(epSessions, s.handleSessions))
	mux.HandleFunc("GET /v1/strategies", s.instrument(epStrategies, s.handleStrategies))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cluster != nil {
		mux.HandleFunc("GET /cluster/wal", s.handleClusterWAL)
		mux.HandleFunc("GET /cluster/status", s.handleClusterStatus)
		mux.HandleFunc("GET /cluster/healthz", s.handleClusterHealthz)
		mux.HandleFunc("GET /cluster/metrics", s.handleClusterMetrics)
	}
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusRecorder captures the response code for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) code() int { return r.status }

// instrument wraps a handler with request-ID propagation, a root span and
// the per-endpoint request, latency and error counters. The observation
// is deferred, so a handler that unwinds early on context cancellation
// (the 499/504 path) — or panics — still lands in the latency histogram
// and still gets its span ended.
//
// With capture enabled, the request body is buffered (up to
// maxCaptureBody) and the response hashed, and one capture record —
// carrying the echoed X-Request-Id, so twin-diff replays re-send the
// same identity — is appended after the handler finishes.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx, sp := obs.StartRoot(r.Context(), s.col, "http."+endpointNames[ep], reqID)

		var rec interface {
			http.ResponseWriter
			code() int
		}
		var capBody []byte
		var capSum hash.Hash
		capturing := false
		if s.capture != nil {
			body, rd, ok, err := captureBody(r)
			if err != nil {
				// The body never arrived; serve the error, capture nothing.
				writeError(w, http.StatusBadRequest, fmt.Errorf("%w: reading body: %v", opt.ErrInvalidConfig, err))
				sp.End()
				return
			}
			r.Body = rd
			if ok {
				capturing = true
				capBody = body
				capSum = newCaptureSum()
				rec = &captureRecorder{statusRecorder{ResponseWriter: w, status: http.StatusOK}, capSum}
			} else {
				s.met.captureSkipped.Add(1)
			}
		}
		if rec == nil {
			rec = &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		}
		start := time.Now()
		defer func() {
			seconds := time.Since(start).Seconds()
			s.met.observe(ep, seconds, rec.code() >= 400)
			sp.AttrInt("status", int64(rec.code()))
			sp.End()
			if capturing {
				s.captureRequest(ep, r, reqID, capBody, rec.code(), capSum)
			}
			s.log.Debug("request", "endpoint", endpointNames[ep], "request_id", reqID,
				"status", rec.code(), "seconds", seconds)
		}()
		h(rec, r.WithContext(ctx))
	}
}

// statusOf maps the library's typed errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, opt.ErrInvalidConfig),
		errors.Is(err, replay.ErrInvalidConfig),
		errors.Is(err, strategy.ErrUnknownStrategy),
		errors.Is(err, strategy.ErrUnknownScenario),
		errors.Is(err, cloud.ErrBadSample):
		return http.StatusBadRequest
	case errors.Is(err, opt.ErrDeadlineInfeasible),
		errors.Is(err, opt.ErrNoCandidates),
		errors.Is(err, replay.ErrMarketTooShort),
		errors.Is(err, cloud.ErrUnknownMarket):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, code, body)
}

// writeBody sends pre-marshaled JSON verbatim — the cache stores these
// exact bytes, which is what makes hits byte-identical to misses.
func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes one JSON object request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", opt.ErrInvalidConfig, err)
	}
	return nil
}

// historyOr returns the request's training history or the server default.
func (s *Server) historyOr(h float64) float64 {
	if h > 0 {
		return h
	}
	return s.history
}

// trainSnapshot captures everything a planning request needs: a
// consistent market snapshot, the price frontier of the request's
// candidate shards and the trailing training window (immutable views
// later Appends cannot disturb). The frontier is computed over the
// candidate shards only, so a restricted request's training window — and
// therefore its cache key's inputs — move only when its own markets do.
func (s *Server) trainSnapshot(req PlanRequest, history float64) (snap *cloud.MarketSnapshot, keys []cloud.MarketKey, frontier float64, train cloud.MarketView) {
	snap = s.market.Capture()
	keys = req.CandidateKeys(snap)
	frontier = snap.MinDurationFor(keys)
	lo := math.Max(0, frontier-history)
	return snap, keys, frontier, snap.Window(lo, frontier-lo)
}

// planKey is the cache key: every optimizer knob, the candidate filters,
// the strategy selection, and the version vector of the shards the
// request actually touches. A tick on a shard outside the vector leaves
// the key — and the cached entry — valid, so invalidation is O(affected
// plans), not O(cache). The strategy literal gives every strategy its
// own cache namespace: "" and "sompi" plan identically but never
// cross-evict, and parameterized requests key on their exact params.
func planKey(req PlanRequest, vv cloud.VersionVector, keys []cloud.MarketKey) string {
	return fmt.Sprintf("%s|%g|%g|%d|%d|%d|%d|%g|%g|%t|%t|t:%s|z:%s|s:%s|sp{%s}|vv{%s}",
		req.App, req.DeadlineHours, req.HistoryHours, req.Workers, req.Kappa,
		req.GridLevels, req.MaxGroups, req.Slack, req.MaxAllFail,
		req.DisableCheckpoints, req.DisablePruning,
		strings.Join(req.Types, ","), strings.Join(req.Zones, ","),
		req.Strategy, canonicalParams(req.StrategyParams),
		vv.Subset(keys).String())
}

// canonicalParams renders a parameter map in sorted-key order so equal
// maps always produce equal cache keys.
func canonicalParams(params map[string]float64) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, params[k])
	}
	return b.String()
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	// In cluster mode the raw body is buffered before decoding: if the
	// request's gating shards belong to a peer it is proxied there
	// verbatim, so the owner decodes exactly the bytes the client sent.
	var rawBody []byte
	if s.cluster != nil && r.Header.Get(forwardedHeader) == "" {
		b, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: reading body: %v", opt.ErrInvalidConfig, err))
			return
		}
		rawBody = b
		r.Body = io.NopCloser(bytes.NewReader(b))
	}
	var req PlanRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}
	// Strategy dispatch. The name is validated before anything is
	// recorded under it — the per-strategy metric label set stays
	// bounded by the registry, never by user input.
	d, ok := strategy.Lookup(req.Strategy)
	if !ok {
		err := fmt.Errorf("%w: %q (have %v)", strategy.ErrUnknownStrategy, req.Strategy, strategy.Names())
		writeError(w, statusOf(err), err)
		return
	}
	// Route after validation, before any work: a plan restricted to
	// shards another node owns is served by that node (its plan cache
	// and session scheduler live with the shards), transparently to the
	// client. Forwarded requests never re-forward.
	if rawBody != nil {
		if owner, ok := s.cluster.planOwner(req); ok {
			s.cluster.proxyPlan(w, r, owner, rawBody)
			return
		}
	}
	planStart := time.Now()
	defer func() { s.met.observeStrategy(d.Name, time.Since(planStart).Seconds()) }()
	if req.Strategy != "" {
		s.servePlanStrategy(w, r, req, profile)
		return
	}
	snap, keys, frontier, train := s.trainSnapshot(req, s.historyOr(req.HistoryHours))
	if len(req.Types)+len(req.Zones) > 0 && len(keys) == 0 {
		err := fmt.Errorf("%w: types/zones filter matches no market", opt.ErrNoCandidates)
		writeError(w, statusOf(err), err)
		return
	}
	version := snap.Version()

	// ?explain=1 rides the decision trail onto the response. Explained
	// responses bypass the cache entirely — both lookup and fill — so the
	// byte-identical hit/miss guarantee of the unexplained path is
	// untouched and cached bodies never grow a trail.
	explain := r.URL.Query().Get("explain") == "1"
	key := planKey(req, snap.VersionVector(), keys)
	if !req.Track && !explain {
		if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			s.met.strategyCache(d.Name, true)
			w.Header().Set("X-Sompid-Cache", "hit")
			writeBody(w, http.StatusOK, body)
			return
		}
		s.met.cacheMisses.Add(1)
		s.met.strategyCache(d.Name, false)
		w.Header().Set("X-Sompid-Cache", "miss")
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	cfg := req.Config(profile, train)
	cfg.Explain = explain
	cfg.Reuse = s.reuse
	// Identical concurrent plan requests — the byte cache only answers
	// after a leader finishes — coalesce onto one optimizer run. The key
	// includes the version vector (same content pin the byte cache uses),
	// so a share is byte-identical work, and Track requests share too:
	// k tracked registrations of the same workload need one search, not
	// k. Explained runs stay solo — their trail is per-request.
	var res opt.Result
	var shared bool
	var err error
	run := func() (opt.Result, error) {
		r, e := opt.OptimizeContext(ctx, cfg)
		s.met.evals.Add(int64(r.Evals))
		s.met.pruned.Add(int64(r.Pruned))
		s.met.evalsSaved.Add(int64(r.SavedEvals))
		return r, e
	}
	if explain {
		res, err = run()
	} else {
		res, shared, err = s.reopts.do(ctx, "plan|"+key, run)
		if shared {
			s.met.reoptDeduped.Add(1)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		writeError(w, statusOf(err), err)
		return
	}

	resp := BuildPlanResponse(version, res)
	if req.Track {
		id, rerr := s.registerSession(profile, req, res, version, frontier, keys)
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr)
			return
		}
		resp.SessionID = id
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, merr)
		return
	}
	if !req.Track && !explain {
		s.cache.put(key, body)
	}
	writeBody(w, http.StatusOK, body)
}

// registerSession creates a tracked session for a freshly served plan,
// starting at the price frontier the plan was optimized at. The
// request's candidate keys are pinned into the session so every
// re-optimization keeps the restriction and the session's boundary
// clock follows only the shards in its universe. Registration is
// fail-closed on a durable server: the record is persisted before the
// session enters the registry, so no id ever reaches a client that a
// restart would silently forget.
func (s *Server) registerSession(profile app.Profile, req PlanRequest, res opt.Result, version uint64, frontier float64, keys []cloud.MarketKey) (string, error) {
	base := req.Config(profile, nil)
	base.Market = nil // refilled per re-optimization
	base.Candidates = keys
	strat, serr := sessionStrategy(req, &base)
	if serr != nil {
		return "", serr
	}
	history := s.historyOr(req.HistoryHours)
	trainStart := math.Max(0, frontier-history)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	// Cluster nodes namespace their ids so the merged session listing —
	// and a promotion adopting a peer's sessions — never collides.
	if s.cluster != nil {
		id = s.cluster.selfName() + "/" + id
	}
	t := &trackedSession{
		id:      id,
		profile: profile,
		history: history,
		base:    base,
		keys:    keys,
		req:     req,
		strat:   strat,
		sess: replay.NewSession(&replay.Runner{Market: s.market, Profile: profile},
			req.DeadlineHours, frontier),
		plan:        res.Plan,
		boundary:    frontier + s.window,
		planVersion: version,
		planCost:    res.Est.Cost,
		// The initial plan is the full profile trained on the trailing
		// history behind the frontier — the rebuild inputs for recovery.
		planScale:  1,
		trainStart: trainStart,
		trainDur:   frontier - trainStart,
	}
	if err := s.persistSession(t); err != nil {
		s.nextID--
		return "", fmt.Errorf("persisting session registration: %w", err)
	}
	s.sessions[id] = t
	s.order = append(s.order, id)
	s.met.activeSessions.Add(1)
	// Into the scheduler last: t is fully built and published, and
	// s.mu → sched.mu is the sanctioned lock order.
	s.sched.add(t)
	return id, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}
	snap, _, _, train := s.trainSnapshot(PlanRequest{}, s.historyOr(req.HistoryHours))
	version := snap.Version()
	plan, err := DecodePlan(req.Plan, profile, train)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	if err := plan.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{
		MarketVersion: version,
		Estimate:      EncodeEstimate(model.Evaluate(plan)),
	})
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req MonteCarloRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	profile, ok := app.ByName(req.App)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, req.App))
		return
	}

	// Long replays work on a snapshot: ingestion appending mid-run must
	// not race the replay's market reads (traces are immutable, so the
	// per-shard capture is a consistent view).
	snap := s.market.Capture()

	strat, err := strategyFor(req, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	st, err := replay.MonteCarloContext(ctx, strat, &replay.Runner{Market: snap, Profile: profile}, replay.MCConfig{
		Deadline: req.DeadlineHours,
		Runs:     req.Runs,
		History:  req.HistoryHours,
		Seed:     req.Seed,
		Workers:  req.Workers,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, MonteCarloResponse{
		MarketVersion:  snap.Version(),
		Strategy:       st.Name,
		Runs:           st.Runs,
		Failures:       st.Failures,
		CostMean:       st.Cost.Mean(),
		CostStd:        st.Cost.Std(),
		HoursMean:      st.Hours.Mean(),
		HoursStd:       st.Hours.Std(),
		DeadlineMisses: st.DeadlineMisses,
		MissRate:       st.MissRate(),
	})
}

// strategyFor resolves the request's strategy name against the snapshot.
func strategyFor(req MonteCarloRequest, m cloud.MarketView) (replay.Strategy, error) {
	switch strings.ToLower(req.Strategy) {
	case "", "sompi":
		if req.WindowHours > 0 {
			return baselines.SOMPIWindow(m, req.WindowHours), nil
		}
		return baselines.SOMPI(m), nil
	case "baseline":
		return baselines.Baseline(), nil
	case "on-demand":
		return baselines.OnDemandOnly(), nil
	case "marathe":
		return baselines.Marathe(m), nil
	case "marathe-opt":
		return baselines.MaratheOpt(m), nil
	case "spot-inf":
		return baselines.SpotInf(m), nil
	case "spot-avg":
		return baselines.SpotAvg(m), nil
	default:
		// Registry strategies (portfolio, noft, adaptive-ckpt, ...) replay
		// through the same adapter the tournament uses. Names absent from
		// both vocabularies report the typed unknown-strategy error.
		st, err := strategy.New(req.Strategy, req.StrategyParams)
		if err != nil {
			return nil, err
		}
		return strategy.Replay(st, m, req.HistoryHours), nil
	}
}

// handlePrices ingests spot-price ticks. The body is a stream: either a
// single JSON array of ticks or whitespace/newline-separated tick
// objects (NDJSON). Ticks are validated eagerly, staged per (type,
// zone) shard and applied as batches — one shard lock acquisition and
// one WAL group commit per batch — by the shard's applier goroutine, so
// an arbitrarily long feed ingests in bounded memory, feeds for
// different markets never contend, and the request path never runs a
// session re-optimization: ingest latency is independent of how many
// sessions the ticks invalidate. A shard whose applier queue stays full
// answers 429 with Retry-After — the backpressure signal.
//
// The response is written after every staged batch has applied, so
// MarketVersion/Ticks/Samples reflect exactly this request's feed.
// Session re-optimization runs asynchronously: the default response
// reports Reoptimized/Completed as 0; ?sync=1 drains the scheduler
// before answering and reports how many re-optimizations and
// completions landed server-wide while the request waited (an empty
// ?sync=1 feed is therefore an operational flush).
func (s *Server) handlePrices(w http.ResponseWriter, r *http.Request) {
	syncMode := r.URL.Query().Get("sync") == "1"

	// In cluster mode a feed may interleave ticks for shards this node
	// owns with ticks for a peer's shards: the former stage locally, the
	// latter collect per owner and forward in one batch each. Forwarded
	// requests (the loop guard) always ingest locally.
	cl := s.cluster
	routing := cl != nil && r.Header.Get(forwardedHeader) == ""
	remote := make(map[string][]PriceTick)

	var reoptBase, doneBase int64
	var peerBase map[string]peerCounts
	if syncMode {
		reoptBase = s.met.reoptimizations.Load()
		doneBase = s.met.completedSessions.Load()
		if routing {
			// Peer re-opts run off the request path as replication lands,
			// so their contribution to this flush is measured as cumulative
			// counter movement from here to after the drain.
			peerBase = cl.peerCounters(r.Context())
		}
	}

	var resp PricesResponse
	staged := make(map[cloud.MarketKey][][]float64)
	var batches []*tickBatch
	ticksSeen := 0

	flush := func(key cloud.MarketKey) error {
		ticks := staged[key]
		if len(ticks) == 0 {
			return nil
		}
		delete(staged, key)
		b := &tickBatch{key: key, ticks: ticks, start: time.Now(), done: make(chan batchResult, 1)}
		if err := s.ing.enqueue(b); err != nil {
			return err
		}
		batches = append(batches, b)
		return nil
	}
	stage := func(tick PriceTick) error {
		key := cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}
		// Validation is eager — before staging — so a malformed tick is
		// rejected at its position in the stream, exactly as the
		// tick-at-a-time path did.
		if err := s.market.ValidateTick(key, tick.Prices); err != nil {
			return err
		}
		if routing {
			if owner := cl.ownerOf(key.String()); owner.Name != "" && owner.Name != cl.selfName() {
				remote[owner.Name] = append(remote[owner.Name], tick)
				ticksSeen++
				return nil
			}
		}
		staged[key] = append(staged[key], tick.Prices)
		ticksSeen++
		if len(staged[key]) >= s.ing.batchTarget(key) {
			return flush(key)
		}
		return nil
	}
	// wait settles every enqueued batch and folds its outcome into the
	// response. The max composite version across this request's batches
	// is the version after its last applied tick: versions are allotted
	// atomically per applied tick, and all of this request's ticks have
	// applied by the time wait returns.
	wait := func() error {
		var firstErr error
		for _, b := range batches {
			res := <-b.done
			resp.Ticks += res.applied
			for _, t := range b.ticks[:res.applied] {
				resp.Samples += len(t)
			}
			if res.version > resp.MarketVersion {
				resp.MarketVersion = res.version
			}
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
		}
		return firstErr
	}
	flushAll := func() error {
		var firstErr error
		for key := range staged {
			if err := flush(key); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	if err := forEachTick(json.NewDecoder(r.Body), func() int { return ticksSeen }, stage); err != nil {
		// Ticks staged (or batched) before the error still apply — the
		// old path had applied them already — so settle them before
		// answering, keeping the partial-apply semantics observable.
		flushAll()
		wait()
		switch {
		case errors.Is(err, errIngestBacklog):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, errIngestClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, statusOf(err), err)
		}
		return
	}
	err := flushAll()
	if werr := wait(); err == nil {
		err = werr
	}
	if err != nil {
		switch {
		case errors.Is(err, errIngestBacklog):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, errIngestClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, statusOf(fmt.Errorf("after %d ticks: %w", resp.Ticks, err)),
				fmt.Errorf("after %d ticks: %w", resp.Ticks, err))
		}
		return
	}
	// Forward each peer's collected ticks as one sub-request; the peer
	// answers after its batches applied, so its counts fold in directly.
	if len(remote) > 0 {
		owners := make([]string, 0, len(remote))
		for name := range remote {
			owners = append(owners, name)
		}
		sort.Strings(owners)
		for _, name := range owners {
			pr, ferr := cl.forwardPrices(r.Context(), name, remote[name], false)
			if ferr != nil {
				writeError(w, http.StatusBadGateway, fmt.Errorf("after %d ticks: %w", resp.Ticks, ferr))
				return
			}
			resp.Ticks += pr.Ticks
			resp.Samples += pr.Samples
			if pr.MarketVersion > resp.MarketVersion {
				resp.MarketVersion = pr.MarketVersion
			}
		}
	}
	if resp.Ticks == 0 { // empty feed: report current state
		resp.MarketVersion = s.market.Version()
	}
	resp.FrontierHours = s.market.MinDuration()
	if syncMode {
		if routing {
			// Cluster flush: wait for replication to converge in both
			// directions, settle local re-opts (replicated ticks have landed
			// and woken the scheduler by now), then flush each peer so its
			// re-opts settle too. The post-barrier market version is the
			// converged one every node agrees on.
			cl.syncBarrier(r.Context())
			s.sched.drain()
			cl.drainPeers(r.Context())
			re, co := cl.peerDelta(r.Context(), peerBase)
			resp.Reoptimized = int(s.met.reoptimizations.Load()-reoptBase) + re
			resp.Completed = int(s.met.completedSessions.Load()-doneBase) + co
			resp.MarketVersion = s.market.Version()
			// The pre-barrier frontier lags on forwarded shards whose
			// replicated ticks had not landed locally yet; the converged
			// value is the one a single node would report.
			resp.FrontierHours = s.market.MinDuration()
		} else {
			s.sched.drain()
			resp.Reoptimized = int(s.met.reoptimizations.Load() - reoptBase)
			resp.Completed = int(s.met.completedSessions.Load() - doneBase)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// forEachTick decodes the tick stream — any whitespace-separated mix of
// tick objects and arrays of tick objects — applying each tick in order.
// applied reports how many ticks have been applied so far, for error
// positioning. Every element must be a JSON object: the stricter check
// exists because json.Unmarshal happily decodes null (and array
// elements like it) into a zero PriceTick, which the fuzz harness
// surfaced as misleading unknown-market errors for feeds that were
// malformed, not mistargeted.
func forEachTick(dec *json.Decoder, applied func() int, apply func(PriceTick) error) error {
	applyOne := func(raw json.RawMessage) error {
		tick, err := decodeTick(raw)
		if err != nil {
			return fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, applied(), err)
		}
		if err := apply(tick); err != nil {
			return fmt.Errorf("after %d ticks: %w", applied(), err)
		}
		return nil
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, applied(), err)
		}
		if strings.HasPrefix(strings.TrimSpace(string(raw)), "[") {
			var elems []json.RawMessage
			if err := json.Unmarshal(raw, &elems); err != nil {
				return fmt.Errorf("%w: after %d ticks: %v", opt.ErrInvalidConfig, applied(), err)
			}
			for _, el := range elems {
				if err := applyOne(el); err != nil {
					return err
				}
			}
			continue
		}
		if err := applyOne(raw); err != nil {
			return err
		}
	}
}

// decodeTick decodes one stream element, insisting it is a JSON object.
func decodeTick(raw json.RawMessage) (PriceTick, error) {
	trimmed := strings.TrimSpace(string(raw))
	if !strings.HasPrefix(trimmed, "{") {
		return PriceTick{}, fmt.Errorf("tick must be a JSON object, got %q", clip(trimmed, 32))
	}
	var tick PriceTick
	if err := json.Unmarshal(raw, &tick); err != nil {
		return PriceTick{}, err
	}
	return tick, nil
}

// clip bounds an untrusted string for error messages.
func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]SessionInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id].info())
	}
	s.mu.RUnlock()
	// The unforwarded cluster listing is cluster-wide: every live node's
	// sessions in topology order, fetched with the loop guard set.
	if s.cluster != nil && r.Header.Get(forwardedHeader) == "" {
		out = s.cluster.mergeSessions(r.Context(), out)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetricsTo(w)
}

// writeMetricsTo renders this node's full exposition — shared by
// /metrics and the cluster-wide merge, which renders into a buffer.
func (s *Server) writeMetricsTo(w io.Writer) {
	var wal store.Stats
	if s.store != nil {
		wal = s.store.Stats()
	}
	var captureSeg uint64
	if s.capture != nil {
		captureSeg = s.capture.ActiveSegment()
	}
	sample := renderSample{
		marketVersion: s.market.Version(),
		frontier:      s.market.MinDuration(),
		cacheLen:      s.cache.len(),
		shards:        s.market.ShardStats(),
		wal:           wal,
		queueDepths:   s.ing.depths(),
		batchTargets:  s.ing.targetsSnapshot(),
		captureSeg:    captureSeg,
	}
	if s.cluster != nil {
		sample.cluster = s.cluster.sample()
	}
	s.met.render(w, sample)
}

// handleDebugTrace serves the flight recorder: the most recent completed
// spans, optionally filtered to one request's trace (?request_id=...) and
// bounded by ?limit=N.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &limit); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: bad limit %q", opt.ErrInvalidConfig, v))
			return
		}
	}
	spans := s.col.Spans(q.Get("request_id"), limit)
	if spans == nil {
		spans = []obs.SpanData{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		Total: s.col.Total(),
		Spans: spans,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthResponse())
}

// healthResponse assembles this node's health view — shared by /healthz
// and the cluster-wide merge.
func (s *Server) healthResponse() HealthResponse {
	stats := s.market.ShardStats()
	shards := make([]ShardHealth, 0, len(stats))
	for _, st := range stats {
		shards = append(shards, ShardHealth{
			Market:        st.Key.String(),
			Version:       st.Version,
			Ticks:         st.Ticks,
			Samples:       st.Samples,
			Compacted:     st.Compacted,
			DurationHours: st.DurationHours,
		})
	}
	// Failed WAL appends surface as a degraded status: the service is
	// up, but some acknowledged state exists only in memory.
	status := "ok"
	walErrs := s.met.walAppendErrors.Load()
	if walErrs > 0 {
		status = "degraded"
	}
	return HealthResponse{
		Status:          status,
		MarketVersion:   s.market.Version(),
		FrontierHours:   s.market.MinDuration(),
		ActiveSessions:  s.met.activeSessions.Load(),
		WALAppendErrors: walErrs,
		Shards:          shards,
	}
}
