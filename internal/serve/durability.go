package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/obs"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/store"
)

// This file threads the durability subsystem (internal/store) through
// the service: price ticks and session transitions are event-sourced
// into the WAL, snapshots capture the full market + session state at a
// segment boundary, and New replays the store back into an exact
// pre-crash server before traffic is accepted. Without a configured
// Store every path here is a no-op and the service is pure in-memory,
// exactly as before durability existed.

// sessionState is one tracked session's full durable state: the
// RecordSession WAL payload and the per-session unit of a snapshot.
// Transitions are logged as full state, not deltas — a session mutates
// only at window boundaries and the audit log is bounded, so the record
// stays small, and recovery becomes "apply the highest Seq per ID"
// with no re-optimization (replaying the optimizer would have to
// reproduce its exact inputs; replaying its recorded outputs is exact
// by construction).
type sessionState struct {
	// Seq is the session's transition counter: 1 at registration, +1 per
	// persisted transition. Replay applies a record only when its Seq
	// exceeds the state already held, which makes WAL records that
	// straddle a snapshot boundary idempotent.
	Seq uint64 `json:"seq"`
	ID  string `json:"id"`
	App string `json:"app"`
	// Req is the original plan request: it rebuilds the optimizer config
	// (base) and the candidate-key restriction on recovery.
	Req     PlanRequest `json:"req"`
	History float64     `json:"history_hours"`

	// replay.Session carried state.
	Deadline      float64 `json:"deadline_hours"`
	Start         float64 `json:"start_hours"`
	Progress      float64 `json:"progress"`
	Elapsed       float64 `json:"elapsed_hours"`
	Cost          float64 `json:"cost"`
	Windows       int     `json:"windows"`
	Completed     bool    `json:"completed"`
	AllGroupsDead bool    `json:"all_groups_dead"`

	// Current plan and the inputs that rebuild it exactly: the residual
	// profile scale and the training window the plan was optimized
	// against (DecodePlan derives instance counts and recovery hours
	// from profile + market, so these three pin the rebuild).
	Plan       PlanPayload `json:"plan"`
	PlanScale  float64     `json:"plan_scale"`
	TrainStart float64     `json:"train_start_hours"`
	TrainDur   float64     `json:"train_dur_hours"`

	Boundary    float64       `json:"boundary_hours"`
	PlanVersion uint64        `json:"plan_version"`
	PlanCost    float64       `json:"plan_cost"`
	Reopts      int           `json:"reoptimized"`
	Done        bool          `json:"done"`
	Audit       []AuditRecord `json:"audit,omitempty"`
}

// snapshotPayload is the full service state materialized into one
// snapshot: every market shard and every session, in creation order.
type snapshotPayload struct {
	Market   []cloud.ShardState `json:"market"`
	Sessions []sessionState     `json:"sessions"`
}

// state renders the session's durable state. Caller holds t.mu (or owns
// the session exclusively, as registration and recovery do).
func (t *trackedSession) state() sessionState {
	var audit []AuditRecord
	if len(t.audit) > 0 {
		audit = make([]AuditRecord, len(t.audit))
		copy(audit, t.audit)
	}
	return sessionState{
		Seq:           t.seq,
		ID:            t.id,
		App:           t.profile.Name,
		Req:           t.req,
		History:       t.history,
		Deadline:      t.sess.Deadline,
		Start:         t.sess.Start,
		Progress:      t.sess.Progress,
		Elapsed:       t.sess.Elapsed,
		Cost:          t.sess.Cost,
		Windows:       t.sess.Windows,
		Completed:     t.sess.Completed,
		AllGroupsDead: t.sess.AllGroupsDead,
		Plan:          EncodePlan(t.plan),
		PlanScale:     t.planScale,
		TrainStart:    t.trainStart,
		TrainDur:      t.trainDur,
		Boundary:      t.boundary,
		PlanVersion:   t.planVersion,
		PlanCost:      t.planCost,
		Reopts:        t.reopts,
		Done:          t.done,
		Audit:         audit,
	}
}

// persistTick is the cloud.PersistFunc the server installs: it logs one
// tick WAL-first. It runs under the target shard's write lock, so a
// failure here aborts the append before any in-memory state moved.
func (s *Server) persistTick(key cloud.MarketKey, samples []float64, version uint64) error {
	payload, err := store.EncodeTick(store.Tick{Type: key.Type, Zone: key.Zone, Version: version, Prices: samples})
	if err != nil {
		return err
	}
	if err := s.store.Append(store.Record{Type: store.RecordTick, Payload: payload}); err != nil {
		s.met.walAppendErrors.Add(1)
		return err
	}
	return nil
}

// persistTickBatch is the cloud.PersistBatchFunc behind batched ingest:
// one shard's whole run of ticks logged under one store mutex hold with
// one trailing fsync. It runs under the target shard's write lock and
// honors the prefix contract (see cloud.PersistBatchFunc): the returned
// count is exactly what WAL replay will reconstruct, so the market
// applies exactly that.
func (s *Server) persistTickBatch(key cloud.MarketKey, ticks [][]float64, firstVersion uint64) (int, error) {
	recs := make([]store.Record, len(ticks))
	for i, samples := range ticks {
		payload, err := store.EncodeTick(store.Tick{Type: key.Type, Zone: key.Zone, Version: firstVersion + uint64(i), Prices: samples})
		if err != nil {
			s.met.walAppendErrors.Add(int64(len(ticks) - i))
			return i, err
		}
		recs[i] = store.Record{Type: store.RecordTick, Payload: payload}
	}
	n, err := s.store.AppendBatch(recs)
	if err != nil {
		failed := int64(len(recs) - n)
		if failed == 0 {
			failed = 1 // trailing fsync failure: the unsynced tail is at risk
		}
		s.met.walAppendErrors.Add(failed)
	}
	return n, err
}

// persistSession logs one session transition and reports whether the
// record reached the WAL. Caller holds t.mu (or owns the session
// exclusively, as registration does) — which is the snapshot barrier: a
// snapshot cut after this record's WAL write cannot capture this
// session until the caller releases the lock, so the capture always
// includes the transition the record describes (and replaying the
// record over it is a Seq-skipped no-op). Registration is fail-closed
// on the returned error (no id leaves the server without a durable
// record); window transitions cannot be — the in-memory transition has
// already happened and an append failure cannot unwind it — so their
// callers rely on the logging and error counter here.
func (s *Server) persistSession(t *trackedSession) error {
	if s.store == nil {
		return nil
	}
	t.seq++
	body, err := json.Marshal(t.state())
	if err == nil {
		err = s.store.Append(store.Record{Type: store.RecordSession, Payload: body})
	}
	if err != nil {
		s.met.walAppendErrors.Add(1)
		s.log.Error("session transition not persisted", "session", t.id, "seq", t.seq, "error", err.Error())
	}
	return err
}

// maybeSnapshot arms a snapshot cut when enough records accumulated
// since the last one. The cut itself runs on a background goroutine —
// one in flight at a time, re-armed when it lands — so no ingest
// request ever pays for the WAL rotation fsyncs and the full-state
// marshal in its response latency. Close drains snapWG before cutting
// its own shutdown snapshot.
func (s *Server) maybeSnapshot() {
	if s.store == nil || s.snapshotEvery <= 0 {
		return
	}
	if s.store.AppendsSinceSnapshot() < uint64(s.snapshotEvery) {
		return
	}
	if !s.snapping.CompareAndSwap(false, true) {
		return
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapping.Store(false)
		// ErrClosed is the shutdown race — Close already cut (or is
		// cutting) the final snapshot — not a failure worth logging.
		if err := s.cutSnapshot(); err != nil && !errors.Is(err, store.ErrClosed) {
			s.log.Error("snapshot failed", "error", err.Error())
		}
	}()
}

// cutSnapshot materializes the full service state into a snapshot at a
// fresh WAL segment boundary. The store rotates first and invokes the
// capture with no store lock held; the capture's shard read locks and
// per-session t.mu acquisitions are the barrier that makes the snapshot
// cover every record below the boundary (see store.Snapshot): a tick or
// transition logged before the rotation was written under the same lock
// the capture takes, so the capture cannot see a state the log has not
// reached.
func (s *Server) cutSnapshot() error {
	start := time.Now()
	err := s.store.Snapshot(func() ([]byte, error) {
		payload := snapshotPayload{Market: s.market.ExportShards()}
		s.mu.RLock()
		payload.Sessions = make([]sessionState, 0, len(s.order))
		for _, id := range s.order {
			t := s.sessions[id]
			t.mu.Lock()
			payload.Sessions = append(payload.Sessions, t.state())
			t.mu.Unlock()
		}
		s.mu.RUnlock()
		return json.Marshal(payload)
	})
	if s.col != nil {
		stats := s.store.Stats()
		s.col.RecordSpan("store.snapshot", start,
			obs.Attr{Key: "boundary_segment", Value: fmt.Sprint(stats.SnapshotSeq)},
			obs.Attr{Key: "ok", Value: fmt.Sprint(err == nil)})
	}
	return err
}

// recoverFromStore replays the data directory into the server: market
// shards and session registry land byte-identical to the pre-crash
// state. Runs inside New, before the persist hooks are installed (the
// replay itself must not be re-logged) and before any traffic.
func (s *Server) recoverFromStore() error {
	start := time.Now()
	states := make(map[string]*sessionState)
	var order []string
	applySession := func(st sessionState) {
		prev, ok := states[st.ID]
		if ok && prev.Seq >= st.Seq {
			return
		}
		if !ok {
			order = append(order, st.ID)
		}
		states[st.ID] = &st
	}

	err := s.store.Recover(
		func(payload []byte) error {
			var snap snapshotPayload
			if err := json.Unmarshal(payload, &snap); err != nil {
				return fmt.Errorf("decoding snapshot: %w", err)
			}
			if err := s.market.RestoreShards(snap.Market); err != nil {
				return err
			}
			for _, st := range snap.Sessions {
				applySession(st)
			}
			return nil
		},
		func(rec store.Record) error {
			switch rec.Type {
			case store.RecordTick:
				tick, err := store.DecodeTick(rec.Payload)
				if err != nil {
					return err
				}
				return s.market.ApplyTick(cloud.MarketKey{Type: tick.Type, Zone: tick.Zone}, tick.Prices, tick.Version)
			case store.RecordSession:
				var st sessionState
				if err := json.Unmarshal(rec.Payload, &st); err != nil {
					return fmt.Errorf("decoding session record: %w", err)
				}
				applySession(st)
				return nil
			default:
				// Unknown record types are skipped: a newer binary may add
				// kinds this one does not know.
				return nil
			}
		})
	if err != nil {
		return err
	}

	for _, id := range order {
		t, err := s.materializeSession(*states[id])
		if err != nil {
			return fmt.Errorf("restoring session %s: %w", id, err)
		}
		s.sessions[id] = t
		s.order = append(s.order, id)
		if !t.done {
			s.met.activeSessions.Add(1)
		} else {
			s.met.completedSessions.Add(1)
		}
		// Cluster ids are node-prefixed ("a/s3"); the counter tail is
		// always the last '/'-separated segment.
		tail := id
		if i := strings.LastIndex(id, "/"); i >= 0 {
			tail = id[i+1:]
		}
		var n int
		if _, serr := fmt.Sscanf(tail, "s%d", &n); serr == nil && n > s.nextID {
			s.nextID = n
		}
	}

	seconds := time.Since(start).Seconds()
	s.met.recoverySecondsBits.Store(math.Float64bits(seconds))
	if s.col != nil {
		s.col.RecordSpan("store.recover", start,
			obs.Attr{Key: "sessions", Value: fmt.Sprint(len(order))},
			obs.Attr{Key: "market_version", Value: fmt.Sprint(s.market.Version())},
			obs.Attr{Key: "truncated_tail_bytes", Value: fmt.Sprint(s.store.Stats().TruncatedTailBytes)})
	}
	s.log.Info("recovered", "data_dir", s.store.Dir(), "sessions", len(order),
		"market_version", s.market.Version(), "seconds", seconds)
	return nil
}

// materializeSession rebuilds one tracked session from its recorded
// state — as data, with no re-optimization. The plan of a live session
// is rebuilt through DecodePlan against the recorded residual scale and
// training window over the already-restored market, which reproduces
// the exact model.Plan (instance counts, recovery fleet, failure
// distributions) the pre-crash server held.
func (s *Server) materializeSession(st sessionState) (*trackedSession, error) {
	profile, ok := app.ByName(st.App)
	if !ok {
		return nil, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, st.App)
	}
	base := st.Req.Config(profile, nil)
	base.Market = nil
	keys := st.Req.CandidateKeys(s.market)
	base.Candidates = keys
	// The strategy rides the persisted request — rebuilding it here
	// restores exactly the re-planning policy the pre-crash server ran.
	strat, err := sessionStrategy(st.Req, &base)
	if err != nil {
		return nil, err
	}

	sess := replay.NewSession(&replay.Runner{Market: s.market, Profile: profile}, st.Deadline, st.Start)
	sess.Progress = st.Progress
	sess.Elapsed = st.Elapsed
	sess.Cost = st.Cost
	sess.Windows = st.Windows
	sess.Completed = st.Completed
	sess.AllGroupsDead = st.AllGroupsDead

	t := &trackedSession{
		id:          st.ID,
		profile:     profile,
		history:     st.History,
		base:        base,
		keys:        keys,
		req:         st.Req,
		strat:       strat,
		sess:        sess,
		boundary:    st.Boundary,
		planVersion: st.PlanVersion,
		planCost:    st.PlanCost,
		planScale:   st.PlanScale,
		trainStart:  st.TrainStart,
		trainDur:    st.TrainDur,
		reopts:      st.Reopts,
		done:        st.Done,
		seq:         st.Seq,
		audit:       st.Audit,
	}
	if !st.Done {
		prof := profile
		if st.PlanScale > 0 && st.PlanScale < 1 {
			prof = profile.Scale(st.PlanScale)
		}
		plan, err := DecodePlan(st.Plan, prof, s.market.Window(st.TrainStart, st.TrainDur))
		if err != nil {
			return nil, err
		}
		t.plan = plan
	}
	return t, nil
}

// Close shuts the service's background machinery down and, on a durable
// server, flushes its state: in-flight re-optimizations are cancelled
// (their boundaries stay in the WAL for the next boot), the ingest
// appliers and scheduler workers drain, then a final snapshot lands at
// a clean segment boundary and the active WAL segment is fsync-closed.
// Graceful shutdown must call it after the HTTP server has drained; an
// in-memory server stops its goroutines and keeps serving reads.
// Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Cancel first so a worker stuck in a long optimization aborts
	// instead of stalling shutdown; then stop ingest (no new frontier
	// movement) and the workers.
	s.runCancel()
	// Cluster machinery first: probers must not promote a peer that is
	// merely shutting down alongside us, and followers must stop driving
	// the market before ingest does.
	if s.cluster != nil {
		s.cluster.stop()
	}
	s.ing.stop()
	s.sched.stop()
	// Seal the capture log: traffic is drained, so the active segment is
	// complete and earns its final (sealed) name.
	if s.capture != nil {
		if err := s.capture.Close(); err != nil {
			s.log.Error("sealing capture log failed", "error", err.Error())
		}
	}
	if s.store == nil {
		return nil
	}
	// Wait out any background cut: its boundary would otherwise race
	// the shutdown snapshot's (the store serializes the cuts, but the
	// final snapshot must be the newest one on disk).
	s.snapWG.Wait()
	if err := s.cutSnapshot(); err != nil {
		// The WAL still holds everything the snapshot would have covered;
		// recovery replays it. Closing cleanly matters more than the
		// snapshot, so log and continue.
		s.log.Error("shutdown snapshot failed", "error", err.Error())
	}
	s.market.SetPersist(nil)
	s.market.SetPersistBatch(nil)
	return s.store.Close()
}
