package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
	"net/http"

	"sompi/internal/harness"
)

// maxCaptureBody bounds a request body the capture log will record.
// Bigger requests (a firehose NDJSON price feed) are still served
// normally — the body is streamed through untouched — but the request
// is not captured, and sompid_capture_skipped_total counts it. The
// bound keeps capture from buffering unbounded feeds in memory.
const maxCaptureBody = 4 << 20

// captureRecorder wraps statusRecorder with a running SHA-256 of the
// response body, so the capture record can carry the response identity
// without storing the bytes.
type captureRecorder struct {
	statusRecorder
	sum hash.Hash
}

func (r *captureRecorder) Write(b []byte) (int, error) {
	r.sum.Write(b)
	return r.statusRecorder.ResponseWriter.Write(b)
}

// captureBody swallows the request body for capture, handing the
// handler an equivalent reader. ok is false when the body exceeds the
// capture bound — the returned reader then replays what was buffered
// followed by the rest of the original stream, so serving is unaffected.
func captureBody(r *http.Request) (body []byte, rd io.ReadCloser, ok bool, err error) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, r.Body, true, nil
	}
	buf, err := io.ReadAll(io.LimitReader(r.Body, maxCaptureBody+1))
	if err != nil {
		return nil, nil, false, err
	}
	if len(buf) > maxCaptureBody {
		rest := r.Body
		return nil, readCloser{io.MultiReader(bytes.NewReader(buf), rest), rest}, false, nil
	}
	r.Body.Close()
	return buf, readCloser{bytes.NewReader(buf), nil}, true, nil
}

type readCloser struct {
	io.Reader
	orig io.Closer
}

func (rc readCloser) Close() error {
	if rc.orig != nil {
		return rc.orig.Close()
	}
	return nil
}

// captureRequest appends one capture record for a finished request.
// Failures degrade to a counter — capture is observability, it must
// never fail a request that already served.
func (s *Server) captureRequest(ep endpoint, r *http.Request, reqID string, body []byte, status int, sum hash.Hash) {
	rec := harness.Record{
		Endpoint:   endpointNames[ep],
		Method:     r.Method,
		Path:       r.URL.RequestURI(),
		RequestID:  reqID,
		Body:       string(body),
		Status:     status,
		BodySHA256: hex.EncodeToString(sum.Sum(nil)),
	}
	if err := s.capture.Append(rec); err != nil {
		s.met.captureErrors.Add(1)
		s.log.Error("capture append failed", "error", err.Error())
		return
	}
	s.met.captureRecords.Add(1)
}

// newCaptureSum returns the response-body hash state for one request.
func newCaptureSum() hash.Hash { return sha256.New() }
