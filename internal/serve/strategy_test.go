package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"sompi/internal/serve"
	"sompi/internal/strategy"
)

// TestPlanDefaultCompatFixture pins the pre-strategy wire format: a plan
// request that does not name a strategy must serve byte-for-byte the same
// body as before the strategy catalog existed (testdata fixture captured
// at the seed commit), with the same miss-then-hit cache headers.
func TestPlanDefaultCompatFixture(t *testing.T) {
	want, err := os.ReadFile("testdata/seed_plan_default.json")
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	want = bytes.TrimRight(want, "\n")

	ts := newTestServer(t, serve.Config{})
	status, hdr, body := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	if status != http.StatusOK {
		t.Fatalf("plan: %d %s", status, body)
	}
	if got := hdr.Get("X-Sompid-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	if got := bytes.TrimRight(body, "\n"); !bytes.Equal(got, want) {
		t.Fatalf("default plan body drifted from seed fixture:\n got: %s\nwant: %s", got, want)
	}

	status, hdr, body2 := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	if status != http.StatusOK {
		t.Fatalf("repeat plan: %d %s", status, body2)
	}
	if got := hdr.Get("X-Sompid-Cache"); got != "hit" {
		t.Fatalf("repeat request cache header %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cache hit served different bytes")
	}
}

// TestPlanUnknownStrategy asserts the typed 400 for unknown or malformed
// strategy names and parameters.
func TestPlanUnknownStrategy(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	req := smallPlan(60)
	req.Strategy = "definitely-not-registered"
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d %s, want 400", status, body)
	}
	if !strings.Contains(string(body), "unknown strategy") {
		t.Fatalf("unknown strategy error body %s", body)
	}

	// Malformed parameters on a known strategy are a 400 too.
	req = smallPlan(60)
	req.Strategy = "portfolio"
	req.StrategyParams = map[string]float64{"no-such-knob": 1}
	status, _, body = postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusBadRequest {
		t.Fatalf("bad params: status %d %s, want 400", status, body)
	}
}

// TestPlanStrategyRoundTrip drives every registered strategy through
// /v1/plan and checks each gets its own cache namespace: the default
// (unset) entry and the explicit "sompi" entry coexist without evicting
// one another, and each named strategy hits its own cached bytes.
func TestPlanStrategyRoundTrip(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	// Seed the default-path cache entry first.
	status, hdr, defBody := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "miss" {
		t.Fatalf("default plan: %d cache=%q", status, hdr.Get("X-Sompid-Cache"))
	}

	for _, name := range strategy.Names() {
		req := smallPlan(60)
		req.Strategy = name
		status, hdr, body := postJSON(t, ts.URL+"/v1/plan", req)
		if status != http.StatusOK {
			t.Fatalf("%s: %d %s", name, status, body)
		}
		if got := hdr.Get("X-Sompid-Cache"); got != "miss" {
			t.Fatalf("%s first request cache header %q, want miss", name, got)
		}
		var resp serve.PlanResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: decoding response: %v", name, err)
		}
		if resp.Strategy != name {
			t.Fatalf("%s: response strategy %q", name, resp.Strategy)
		}
		if resp.Estimate.Cost <= 0 {
			t.Fatalf("%s: served estimate %+v", name, resp.Estimate)
		}

		status, hdr, body2 := postJSON(t, ts.URL+"/v1/plan", req)
		if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "hit" {
			t.Fatalf("%s repeat: %d cache=%q", name, status, hdr.Get("X-Sompid-Cache"))
		}
		if !bytes.Equal(body, body2) {
			t.Fatalf("%s: cache hit served different bytes", name)
		}
	}

	// The named-strategy traffic must not have evicted the default entry.
	status, hdr, body := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	if status != http.StatusOK || hdr.Get("X-Sompid-Cache") != "hit" {
		t.Fatalf("default after strategies: %d cache=%q", status, hdr.Get("X-Sompid-Cache"))
	}
	if !bytes.Equal(body, defBody) {
		t.Fatalf("default entry changed after strategy traffic")
	}
}

// TestPlanSompiStrategyMatchesDefault checks the explicit "sompi" strategy
// serves a plan identical to the default path (only the echo field and
// cache namespace differ).
func TestPlanSompiStrategyMatchesDefault(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	_, _, defBody := postJSON(t, ts.URL+"/v1/plan", smallPlan(60))
	req := smallPlan(60)
	req.Strategy = "sompi"
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("sompi strategy: %d %s", status, body)
	}

	var def, st serve.PlanResponse
	if err := json.Unmarshal(defBody, &def); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "sompi" {
		t.Fatalf("strategy echo %q", st.Strategy)
	}
	a, _ := json.Marshal(def.Plan)
	b, _ := json.Marshal(st.Plan)
	if !bytes.Equal(a, b) {
		t.Fatalf("sompi strategy plan diverged from default path:\n default: %s\nstrategy: %s", a, b)
	}
	if def.Estimate != st.Estimate {
		t.Fatalf("estimates diverged: %+v vs %+v", def.Estimate, st.Estimate)
	}
}

// TestStrategiesEndpoint checks GET /v1/strategies lists the registry
// with parameter schemas and the scenario catalog.
func TestStrategiesEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.Config{})
	body := getBody(t, ts.URL+"/v1/strategies")

	var resp serve.StrategiesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	if resp.Default != "sompi" {
		t.Fatalf("default strategy %q, want sompi", resp.Default)
	}
	if len(resp.Strategies) < 4 {
		t.Fatalf("only %d strategies listed", len(resp.Strategies))
	}
	if resp.Strategies[0].Name != "sompi" || !resp.Strategies[0].Default {
		t.Fatalf("first strategy %+v, want default sompi", resp.Strategies[0])
	}
	byName := map[string]serve.StrategyInfo{}
	for _, si := range resp.Strategies {
		byName[si.Name] = si
	}
	pf, ok := byName["portfolio"]
	if !ok {
		t.Fatalf("portfolio missing from %v", resp.Strategies)
	}
	var hasContracts bool
	for _, p := range pf.Params {
		if p.Name == "contracts" {
			hasContracts = true
		}
	}
	if !hasContracts {
		t.Fatalf("portfolio param schema missing contracts: %+v", pf.Params)
	}
	if len(resp.Scenarios) < 4 {
		t.Fatalf("only %d scenarios listed", len(resp.Scenarios))
	}
}

// TestStrategyMetrics checks the per-strategy metric families: bounded
// label sets from the registry, request counts and cache hit/miss counts
// that move with traffic.
func TestStrategyMetrics(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	postJSON(t, ts.URL+"/v1/plan", smallPlan(60)) // default → sompi label, miss
	postJSON(t, ts.URL+"/v1/plan", smallPlan(60)) // hit
	req := smallPlan(60)
	req.Strategy = "noft"
	postJSON(t, ts.URL+"/v1/plan", req) // noft miss

	metrics := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, metrics, `sompid_plan_requests_total{strategy="sompi"}`); got != 2 {
		t.Fatalf("sompi plan requests = %v, want 2", got)
	}
	if got := metricValue(t, metrics, `sompid_plan_requests_total{strategy="noft"}`); got != 1 {
		t.Fatalf("noft plan requests = %v, want 1", got)
	}
	if got := metricValue(t, metrics, `sompid_strategy_cache_hits_total{strategy="sompi"}`); got != 1 {
		t.Fatalf("sompi cache hits = %v, want 1", got)
	}
	if got := metricValue(t, metrics, `sompid_strategy_cache_misses_total{strategy="sompi"}`); got != 1 {
		t.Fatalf("sompi cache misses = %v, want 1", got)
	}
	if got := metricValue(t, metrics, `sompid_strategy_cache_misses_total{strategy="noft"}`); got != 1 {
		t.Fatalf("noft cache misses = %v, want 1", got)
	}
	// Every registered strategy appears, even with zero traffic.
	for _, name := range strategy.Names() {
		metricValue(t, metrics, `sompid_plan_requests_total{strategy="`+name+`"}`)
	}
}

// TestMonteCarloRegistryStrategy drives /v1/montecarlo with a registry
// strategy name (and rejects unknown names with a 400).
func TestMonteCarloRegistryStrategy(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	req := serve.MonteCarloRequest{
		App: "BT", DeadlineHours: 60, Runs: 2, Seed: 1, Workers: 1,
		Strategy: "noft",
	}
	status, _, body := postJSON(t, ts.URL+"/v1/montecarlo", req)
	if status != http.StatusOK {
		t.Fatalf("montecarlo noft: %d %s", status, body)
	}
	var resp serve.MonteCarloResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "noft" || resp.Runs != 2 {
		t.Fatalf("montecarlo response %+v", resp)
	}

	req.Strategy = "nope"
	status, _, body = postJSON(t, ts.URL+"/v1/montecarlo", req)
	if status != http.StatusBadRequest {
		t.Fatalf("montecarlo unknown strategy: %d %s, want 400", status, body)
	}
}

// TestSessionWithStrategy registers a session pinned to a non-default
// strategy and advances it one window: the session must survive the
// re-optimization driven by the pinned strategy.
func TestSessionWithStrategy(t *testing.T) {
	ts := newTestServer(t, serve.Config{})

	req := smallPlan(120)
	req.Strategy = "noft"
	req.Track = true
	status, _, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("tracked plan: %d %s", status, body)
	}
	var resp serve.PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SessionID == "" {
		t.Fatalf("no session id in %s", body)
	}

	sessions := getBody(t, ts.URL+"/v1/sessions")
	if !strings.Contains(string(sessions), resp.SessionID) {
		t.Fatalf("session %s not listed in %s", resp.SessionID, sessions)
	}
}
