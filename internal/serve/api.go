// Package serve implements sompid, the long-running SOMPI planner
// service: an HTTP/JSON v1 API over the optimizer (POST /v1/plan), the
// cost model (POST /v1/evaluate), the Monte Carlo harness
// (POST /v1/montecarlo) and streaming spot-price ingestion
// (POST /v1/prices). Ingestion appends to the sharded cloud.Market —
// locking only the target (type, zone) shard — and tracked plan sessions
// are re-optimized Algorithm-1 style whenever the price frontier of the
// shards in their plan crosses their next T_m window boundary.
//
// Plan responses are deduplicated through an LRU cache keyed on the full
// request plus the version vector of the shards the request actually
// touches, so a cache hit is byte-identical to the miss that populated
// it, ingestion into a touched shard invalidates exactly the plans that
// read it, and a tick on any other shard evicts nothing.
package serve

import (
	"fmt"
	"math"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/obs"
	"sompi/internal/opt"
	"sompi/internal/strategy"
)

// PlanRequest asks the service for a SOMPI plan. Zero-valued knobs take
// the paper's defaults, exactly as the library's opt.Config does.
type PlanRequest struct {
	// App names a workload preset (BT, SP, LU, FT, IS, BTIO, LAMMPS-32,
	// LAMMPS-128).
	App string `json:"app"`
	// DeadlineHours is the absolute completion deadline in hours.
	DeadlineHours float64 `json:"deadline_hours"`
	// HistoryHours is how much trailing price history the optimization
	// trains on; zero means the service default.
	HistoryHours float64 `json:"history_hours,omitempty"`

	// Optimizer knobs, mirroring opt.Config field for field.
	Workers            int     `json:"workers,omitempty"`
	Kappa              int     `json:"kappa,omitempty"`
	GridLevels         int     `json:"grid_levels,omitempty"`
	MaxGroups          int     `json:"max_groups,omitempty"`
	Slack              float64 `json:"slack,omitempty"`
	MaxAllFail         float64 `json:"max_all_fail,omitempty"`
	DisableCheckpoints bool    `json:"disable_checkpoints,omitempty"`
	DisablePruning     bool    `json:"disable_pruning,omitempty"`

	// Types and Zones restrict the candidate circle-group markets to the
	// named instance types and/or availability zones (empty means no
	// restriction on that axis). A restricted request reads — and is
	// cached against — only the matching shards: ticks on every other
	// (type, zone) market neither invalidate its cache entry nor move
	// its training frontier. The on-demand recovery fleet still draws
	// from the whole catalog.
	Types []string `json:"types,omitempty"`
	Zones []string `json:"zones,omitempty"`

	// Track registers the plan as a live session: every time ingested
	// prices cross the session's next T_m window boundary, the service
	// replays the elapsed window against the actual prices and
	// re-optimizes the residual work (Algorithm 1). Tracked requests
	// bypass the plan cache — each one creates a distinct session.
	Track bool `json:"track,omitempty"`

	// Strategy selects a registered planning strategy by name (see
	// GET /v1/strategies). Empty keeps the default sompi optimizer path,
	// whose responses are byte-identical to the pre-strategy API; an
	// unknown name is a 400. Each strategy caches under its own
	// namespace, so "sompi" and "" never cross-evict even though their
	// plans agree.
	Strategy string `json:"strategy,omitempty"`
	// StrategyParams are the strategy's typed parameters (schema in
	// GET /v1/strategies); omitted keys take their defaults. For
	// strategy "sompi" they overlay the top-level optimizer knobs.
	StrategyParams map[string]float64 `json:"strategy_params,omitempty"`
}

// CandidateKeys reports the market keys the request's Types/Zones
// filters select from view, in view's deterministic key order. It
// returns nil when no filter is set: nil means "every key" both to
// opt.Config.Candidates and to the view's MinDurationFor, so an
// unrestricted request behaves exactly as before filters existed.
func (pr PlanRequest) CandidateKeys(view cloud.MarketView) []cloud.MarketKey {
	if len(pr.Types) == 0 && len(pr.Zones) == 0 {
		return nil
	}
	match := func(want []string, got string) bool {
		if len(want) == 0 {
			return true
		}
		for _, w := range want {
			if w == got {
				return true
			}
		}
		return false
	}
	keys := make([]cloud.MarketKey, 0)
	for _, k := range view.Keys() {
		if match(pr.Types, k.Type) && match(pr.Zones, k.Zone) {
			keys = append(keys, k)
		}
	}
	return keys
}

// Config builds the optimizer configuration for the request against the
// given training market. The mapping is total: every optimizer knob the
// request carries lands in the config — including the Types/Zones
// filters, which become opt Candidates — which is what keeps served
// plans byte-identical to library-path OptimizeContext calls.
func (pr PlanRequest) Config(profile app.Profile, train cloud.MarketView) opt.Config {
	var candidates []cloud.MarketKey
	if train != nil {
		candidates = pr.CandidateKeys(train)
	}
	return opt.Config{
		Candidates:         candidates,
		Profile:            profile,
		Market:             train,
		Deadline:           pr.DeadlineHours,
		Slack:              pr.Slack,
		Kappa:              pr.Kappa,
		GridLevels:         pr.GridLevels,
		MaxGroups:          pr.MaxGroups,
		MaxAllFail:         pr.MaxAllFail,
		Workers:            pr.Workers,
		DisableCheckpoints: pr.DisableCheckpoints,
		DisablePruning:     pr.DisablePruning,
	}
}

// GroupPayload is one circle group of a plan on the wire.
type GroupPayload struct {
	Type          string  `json:"type"`
	Zone          string  `json:"zone"`
	Instances     int     `json:"instances"`
	Bid           float64 `json:"bid"`
	IntervalHours float64 `json:"interval_hours"`
}

// RecoveryPayload is the on-demand recovery fleet on the wire.
type RecoveryPayload struct {
	Type      string  `json:"type"`
	Instances int     `json:"instances"`
	Hours     float64 `json:"hours"`
}

// PlanPayload is a hybrid plan on the wire.
type PlanPayload struct {
	Groups   []GroupPayload  `json:"groups"`
	Recovery RecoveryPayload `json:"recovery"`
}

// EstimatePayload mirrors model.Estimate on the wire.
type EstimatePayload struct {
	Cost      float64 `json:"cost"`
	TimeHours float64 `json:"time_hours"`
	CostSpot  float64 `json:"cost_spot"`
	CostOD    float64 `json:"cost_ondemand"`
	TimeSpot  float64 `json:"time_spot_hours"`
	TimeOD    float64 `json:"time_ondemand_hours"`
	PAllFail  float64 `json:"p_all_fail"`
	EMinRatio float64 `json:"e_min_ratio"`
}

// PlanResponse is the service's answer to a plan request.
type PlanResponse struct {
	// MarketVersion is the market version the plan was optimized at.
	MarketVersion uint64          `json:"market_version"`
	Plan          PlanPayload     `json:"plan"`
	Estimate      EstimatePayload `json:"estimate"`
	// Evals and Pruned report the optimizer's search effort; SavedEvals
	// counts evaluations answered by the server's cross-optimization
	// reuse cache instead. Evals is only reproducible with workers=1
	// against a fixed cache state (see opt.Result) — identical requests
	// can legitimately report fewer Evals (and more SavedEvals) as the
	// cache warms. The plan itself never varies.
	Evals      int `json:"evals"`
	Pruned     int `json:"pruned"`
	SavedEvals int `json:"saved_evals,omitempty"`
	// SessionID names the tracked session when the request set track.
	SessionID string `json:"session_id,omitempty"`
	// Explain is the optimizer's decision trail, present only when the
	// request asked for it (?explain=1). Explained responses bypass the
	// plan cache, so cached bodies never carry a trail.
	Explain *opt.Explain `json:"explain,omitempty"`
	// Strategy echoes the request's named strategy. Absent on the
	// default path, which keeps those responses byte-identical to the
	// pre-strategy API.
	Strategy string `json:"strategy,omitempty"`
	// StrategyNotes is the named strategy's decision trail (?explain=1
	// only; like Explain, never cached).
	StrategyNotes []string `json:"strategy_notes,omitempty"`
}

// EncodePlan renders a plan for the wire.
func EncodePlan(p model.Plan) PlanPayload {
	out := PlanPayload{
		Recovery: RecoveryPayload{
			Type:      p.Recovery.Instance.Name,
			Instances: p.Recovery.M,
			Hours:     p.Recovery.T,
		},
	}
	for _, gp := range p.Groups {
		out.Groups = append(out.Groups, GroupPayload{
			Type:          gp.Group.Key.Type,
			Zone:          gp.Group.Key.Zone,
			Instances:     gp.Group.M,
			Bid:           gp.Bid,
			IntervalHours: gp.Interval,
		})
	}
	return out
}

// EncodeEstimate renders an estimate for the wire.
func EncodeEstimate(e model.Estimate) EstimatePayload {
	return EstimatePayload{
		Cost:      e.Cost,
		TimeHours: e.Time,
		CostSpot:  e.CostSpot,
		CostOD:    e.CostOD,
		TimeSpot:  e.TimeSpot,
		TimeOD:    e.TimeOD,
		PAllFail:  e.PAllFail,
		EMinRatio: e.EMinRatio,
	}
}

// BuildPlanResponse renders an optimizer result for the wire. It is the
// single encoding path for both the service handler and out-of-process
// comparisons (cmd/serve-smoke byte-diffs a served plan against a
// library-path result rendered through this same function).
func BuildPlanResponse(marketVersion uint64, res opt.Result) PlanResponse {
	return PlanResponse{
		MarketVersion: marketVersion,
		Plan:          EncodePlan(res.Plan),
		Estimate:      EncodeEstimate(res.Est),
		Evals:         res.Evals,
		Pruned:        res.Pruned,
		SavedEvals:    res.SavedEvals,
		Explain:       res.Explain,
	}
}

// DecodePlan reconstructs an evaluable plan from its wire form: groups
// and the recovery fleet are rebuilt from the profile against the given
// (training) market, so the failure distributions behind the estimate
// come from the same histories a fresh optimization would use. The
// payload's instance counts and recovery hours are derived quantities
// and are ignored on input.
func DecodePlan(p PlanPayload, profile app.Profile, train cloud.MarketView) (model.Plan, error) {
	rec, ok := train.Catalog().ByName(p.Recovery.Type)
	if !ok {
		return model.Plan{}, fmt.Errorf("%w: recovery type %q not in catalog", opt.ErrNoCandidates, p.Recovery.Type)
	}
	out := model.Plan{Recovery: model.NewOnDemand(profile, rec)}
	for i, g := range p.Groups {
		it, ok := train.Catalog().ByName(g.Type)
		if !ok {
			return model.Plan{}, fmt.Errorf("%w: group %d type %q not in catalog", opt.ErrNoCandidates, i, g.Type)
		}
		tr, ok := train.TraceFor(cloud.MarketKey{Type: g.Type, Zone: g.Zone})
		if !ok {
			return model.Plan{}, fmt.Errorf("%w: group %d market %s/%s has no price history", opt.ErrNoCandidates, i, g.Type, g.Zone)
		}
		if g.Bid <= 0 || math.IsNaN(g.Bid) {
			return model.Plan{}, fmt.Errorf("%w: group %d bid %v is not a price", opt.ErrInvalidConfig, i, g.Bid)
		}
		grp := model.NewGroup(profile, it, g.Zone, tr)
		interval := g.IntervalHours
		if interval <= 0 {
			interval = float64(grp.T) // the "no checkpoints" convention
		}
		out.Groups = append(out.Groups, model.GroupPlan{Group: grp, Bid: g.Bid, Interval: interval})
	}
	return out, nil
}

// EvaluateRequest asks for a cost-model evaluation of an explicit plan.
type EvaluateRequest struct {
	App          string      `json:"app"`
	HistoryHours float64     `json:"history_hours,omitempty"`
	Plan         PlanPayload `json:"plan"`
}

// EvaluateResponse is the answer to an evaluate request.
type EvaluateResponse struct {
	MarketVersion uint64          `json:"market_version"`
	Estimate      EstimatePayload `json:"estimate"`
}

// MonteCarloRequest asks for a Monte Carlo replay of a strategy over the
// market ingested so far.
type MonteCarloRequest struct {
	App           string  `json:"app"`
	DeadlineHours float64 `json:"deadline_hours"`
	Runs          int     `json:"runs"`
	Seed          uint64  `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	HistoryHours  float64 `json:"history_hours,omitempty"`
	// Strategy selects the replayed policy: sompi (default), baseline,
	// on-demand, marathe, marathe-opt, spot-inf, spot-avg, or any name
	// from GET /v1/strategies (portfolio, noft, adaptive-ckpt, ...).
	Strategy string `json:"strategy,omitempty"`
	// StrategyParams parameterize a registry strategy (ignored for the
	// classic baseline names).
	StrategyParams map[string]float64 `json:"strategy_params,omitempty"`
	// WindowHours overrides T_m for the sompi strategy.
	WindowHours float64 `json:"window_hours,omitempty"`
}

// MonteCarloResponse summarizes the replications.
type MonteCarloResponse struct {
	MarketVersion  uint64  `json:"market_version"`
	Strategy       string  `json:"strategy"`
	Runs           int     `json:"runs"`
	Failures       int     `json:"failures"`
	CostMean       float64 `json:"cost_mean"`
	CostStd        float64 `json:"cost_std"`
	HoursMean      float64 `json:"hours_mean"`
	HoursStd       float64 `json:"hours_std"`
	DeadlineMisses int     `json:"deadline_misses"`
	MissRate       float64 `json:"miss_rate"`
}

// PriceTick is one ingestion unit: new trailing samples for one market.
// Prices are $/instance-hour, one per trace step.
type PriceTick struct {
	Type   string    `json:"type"`
	Zone   string    `json:"zone"`
	Prices []float64 `json:"prices"`
}

// PricesResponse reports what an ingestion request changed.
type PricesResponse struct {
	// MarketVersion is the version after the last applied tick.
	MarketVersion uint64 `json:"market_version"`
	// Ticks and Samples count what was applied.
	Ticks   int `json:"ticks"`
	Samples int `json:"samples"`
	// FrontierHours is the consistent price frontier (every market has
	// samples up to at least this hour) after ingestion.
	FrontierHours float64 `json:"frontier_hours"`
	// Reoptimized counts tracked-session window re-optimizations and
	// Completed counts session completions that landed server-wide while
	// the request waited on the ?sync=1 scheduler drain. Session
	// advancement is asynchronous: without ?sync=1 both report 0 even
	// when the feed crossed boundaries — the scheduler runs them off the
	// request path.
	Reoptimized int `json:"reoptimized"`
	Completed   int `json:"completed"`
}

// SessionInfo is the observable state of one tracked session.
type SessionInfo struct {
	ID            string  `json:"id"`
	App           string  `json:"app"`
	DeadlineHours float64 `json:"deadline_hours"`
	StartHours    float64 `json:"start_hours"`
	Progress      float64 `json:"progress"`
	ElapsedHours  float64 `json:"elapsed_hours"`
	Cost          float64 `json:"cost"`
	Windows       int     `json:"windows"`
	Reoptimized   int     `json:"reoptimized"`
	PlanVersion   uint64  `json:"plan_version"`
	Done          bool    `json:"done"`
	Completed     bool    `json:"completed"`
	// Audit is the session's append-only decision log: one record per
	// window-boundary decision, oldest first (bounded — the oldest records
	// are dropped past maxAuditRecords).
	Audit []AuditRecord `json:"audit,omitempty"`
}

// AuditRecord is one window-boundary decision in a tracked session's
// append-only audit log: what the session was running, what it switched
// to, at which market state, and why.
type AuditRecord struct {
	// Window is the session's window counter after the decision;
	// BoundaryHours the absolute market hour of the boundary that
	// triggered it.
	Window        int     `json:"window"`
	BoundaryHours float64 `json:"boundary_hours"`
	// Trigger names the decision branch: "reoptimized", "ran_out_on_demand",
	// "completed", "recovered_on_demand" or "opt_error".
	Trigger string `json:"trigger"`
	// OldPlan is the plan that just finished its window; NewPlan the plan
	// adopted for the next one (nil when the session went terminal).
	OldPlan PlanPayload  `json:"old_plan"`
	NewPlan *PlanPayload `json:"new_plan,omitempty"`
	// MarketVersions is the version vector of the session's candidate
	// shards at decision time — the exact market state the decision saw.
	MarketVersions map[string]uint64 `json:"market_versions"`
	// OldPlanCost is the previous plan's estimated cost at its own
	// optimization time; NewPlanCost the adopted plan's estimate;
	// CostDelta their difference (new − old).
	OldPlanCost float64 `json:"old_plan_cost"`
	NewPlanCost float64 `json:"new_plan_cost,omitempty"`
	CostDelta   float64 `json:"cost_delta,omitempty"`
	// Error carries the optimizer error on the "opt_error" trigger.
	Error string `json:"error,omitempty"`
}

// TraceResponse is the GET /debug/trace payload.
type TraceResponse struct {
	// Total counts spans ever recorded; the ring retains only the most
	// recent ones.
	Total uint64 `json:"total"`
	// Spans are the retained (optionally filtered) spans, oldest first.
	Spans []obs.SpanData `json:"spans"`
}

// ShardHealth is one (type, zone) shard's entry in the health payload.
type ShardHealth struct {
	// Market is the shard key rendered as "type/zone".
	Market string `json:"market"`
	// Version is the shard's own mutation counter (1 = never appended).
	Version uint64 `json:"version"`
	// Ticks counts ingestion appends applied to this shard; skew between
	// shards means some feeds are stale.
	Ticks uint64 `json:"ticks"`
	// Samples is the retained price-sample count; Compacted counts
	// samples dropped by ring-buffer retention.
	Samples   int    `json:"samples"`
	Compacted uint64 `json:"compacted_samples"`
	// DurationHours is the shard's absolute price frontier.
	DurationHours float64 `json:"duration_hours"`
}

// HealthResponse is the /healthz payload: composite market state plus
// per-shard ingestion counters so operators can see ingestion skew.
type HealthResponse struct {
	// Status is "ok", or "degraded" when WAL appends have failed — the
	// service is still serving but its durability guarantee is weakened
	// (WALAppendErrors counts the records that never reached disk).
	Status          string        `json:"status"`
	MarketVersion   uint64        `json:"market_version"`
	FrontierHours   float64       `json:"frontier_hours"`
	ActiveSessions  int64         `json:"active_sessions"`
	WALAppendErrors int64         `json:"wal_append_errors"`
	Shards          []ShardHealth `json:"shards"`
}

// StrategyInfo is one registry entry in the GET /v1/strategies payload.
type StrategyInfo struct {
	Name    string               `json:"name"`
	Summary string               `json:"summary"`
	Params  []strategy.ParamSpec `json:"params"`
	// Default marks the strategy an empty request field resolves to.
	Default bool `json:"default,omitempty"`
}

// ScenarioInfo is one scenario-catalog entry in the strategies payload.
type ScenarioInfo struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// StrategiesResponse is the GET /v1/strategies payload: the bounded
// strategy registry with parameter schemas, plus the scenario catalog
// the tournament runner evaluates against.
type StrategiesResponse struct {
	Default    string         `json:"default"`
	Strategies []StrategyInfo `json:"strategies"`
	Scenarios  []ScenarioInfo `json:"scenarios"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
