package replay

import "errors"

// Sentinel errors of the v1 replay API; branch on them with errors.Is.
var (
	// ErrInvalidConfig reports an MCConfig whose numeric fields make no
	// sense: a non-positive deadline or replication count, a negative
	// history or worker count.
	ErrInvalidConfig = errors.New("replay: invalid config")

	// ErrMarketTooShort reports that the runner's market carries too
	// little price history to replay against — no traces at all, or a
	// trace with zero samples, so no start point can be drawn.
	ErrMarketTooShort = errors.New("replay: market history too short")
)
