// Package replay executes hybrid spot/on-demand plans against recorded
// (or synthesized) spot-price traces — the paper's simulation methodology
// (Section 5.1): "we use the method of replaying the trace from the spot
// market, and calculate the monetary cost given the spot price in the
// trace. We randomly choose a start point in the trace and compare our
// bid price with the spot price along the time."
//
// Unlike the analytic model, the replayer terminates losing circle groups
// the moment a winner completes and pays the actual (not expected) spot
// price sample by sample; the gap between the two is exactly the model
// error the paper quantifies in §5.4.1.
package replay

import (
	"fmt"
	"math"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
)

// SpotBilling selects how spot instance-hours convert into dollars.
type SpotBilling int

const (
	// BillingContinuous integrates the spot price over exact running
	// time — the accounting the paper's cost model and simulation use.
	BillingContinuous SpotBilling = iota
	// BillingHourly reproduces EC2's 2014 rule: each instance-hour is
	// charged upfront at the spot price in effect when the hour starts,
	// and a partial hour is free when Amazon terminates the instance
	// (out-of-bid) but billed when the user terminates it (the winner
	// completed). This softens brief spikes for high-bid strategies —
	// one reason Spot-Inf looked better on real EC2 than under
	// continuous integration.
	BillingHourly
)

// Runner replays plans for one application against one market view.
// Callers holding a live *cloud.Market should pass a Snapshot so
// ingestion cannot shift prices mid-replay.
type Runner struct {
	Market  cloud.MarketView
	Profile app.Profile
	// Billing selects the spot accounting rule; the zero value is the
	// paper's continuous integration.
	Billing SpotBilling
	// NoticeHours models an advance interruption warning (EC2's modern
	// 2-minute notice is 1.0/30 hours): on an out-of-bid event a group
	// whose checkpoint overhead fits inside the notice saves an emergency
	// checkpoint before dying, paying its bid for the notice window under
	// continuous billing. Zero (the 2014 rule) keeps terminations
	// warningless and reproduces the old replays bit-for-bit.
	NoticeHours float64
}

// Outcome reports one window (or full run) of execution.
type Outcome struct {
	// Cost is the money spent in this window, in dollars.
	Cost float64
	// Hours is the wall-clock time consumed.
	Hours float64
	// Progress is the fraction of the application completed by the end of
	// the window, measured in checkpoint-durable terms when groups died
	// and live terms otherwise.
	Progress float64
	// Completed reports whether the application finished.
	Completed bool
	// AllGroupsDead reports that every spot group hit an out-of-bid event
	// before the window (and the application) ended.
	AllGroupsDead bool
}

// groupState tracks one circle group mid-replay.
type groupState struct {
	gp    model.GroupPlan
	alive bool
	// productive is the work completed, in the group's own hours scale.
	productive float64
	// saved is the checkpoint-durable productive progress.
	saved float64
	// sinceCk is productive time since the last checkpoint.
	sinceCk float64
	// ckLeft is the wall time remaining on an in-progress checkpoint.
	ckLeft float64
	// billedHours counts instance-hours already charged upfront (hourly
	// billing only) and lastHourCharge remembers the most recent upfront
	// charge so an out-of-bid termination can refund its partial hour.
	billedHours    int
	lastHourCharge float64
	// runWall is the wall time the group has been running.
	runWall float64
}

// accrue charges the group for dt hours of running time under the
// runner's billing policy and returns the dollars charged now.
func (r *Runner) accrue(st *groupState, price, dt float64) float64 {
	if r.Billing == BillingContinuous {
		st.runWall += dt
		return price * float64(st.gp.Group.M) * dt
	}
	// Hourly: each instance-hour is charged upfront, at the price in
	// effect when the hour starts.
	cost := 0.0
	st.runWall += dt
	for float64(st.billedHours) < st.runWall {
		st.lastHourCharge = price * float64(st.gp.Group.M)
		cost += st.lastHourCharge
		st.billedHours++
	}
	return cost
}

// outOfBidRefund reports the refund due when Amazon terminates the group
// mid-hour: under the 2014 rule the interrupted partial hour is free.
func (r *Runner) outOfBidRefund(st *groupState) float64 {
	if r.Billing != BillingHourly {
		return 0
	}
	if float64(st.billedHours) > st.runWall+1e-12 {
		return st.lastHourCharge
	}
	return 0
}

// ExecuteWindow replays plan from absolute market hour start for at most
// windowHours of wall-clock time, starting the application from
// startProgress (fraction already completed, checkpoint-durable).
//
// The window ends when the application completes, when the window budget
// runs out, or when every spot group has died (the caller — the adaptive
// loop or RunToCompletion — decides between re-planning and on-demand
// recovery). Live progress is checkpointed at the window boundary, which
// is how Algorithm 1 carries state between optimization windows.
func (r *Runner) ExecuteWindow(plan model.Plan, start, windowHours, startProgress float64) Outcome {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if startProgress < 0 || startProgress >= 1 {
		panic(fmt.Sprintf("replay: start progress %v outside [0,1)", startProgress))
	}
	// A zero-length (or negative) window is a degenerate boundary the
	// adaptive loop can legitimately produce when the deadline leaves no
	// exploration room: nothing runs, nothing is charged — in particular
	// no boundary checkpoint, which the group path below would otherwise
	// bill for zero hours of work.
	if windowHours <= 0 {
		return Outcome{Progress: startProgress}
	}
	if len(plan.Groups) == 0 {
		return r.runOnDemand(plan.Recovery, windowHours, startProgress, true)
	}

	k := plan.Groups[0].Group.Key
	step := r.Market.Trace(k.Type, k.Zone).Step
	states := make([]*groupState, len(plan.Groups))
	for i, gp := range plan.Groups {
		states[i] = &groupState{gp: gp, alive: true}
	}

	out := Outcome{Progress: startProgress}
	for wall := 0.0; wall < windowHours; wall += step {
		dt := math.Min(step, windowHours-wall)
		anyAlive := false
		for _, st := range states {
			if !st.alive {
				continue
			}
			price := r.Market.Trace(st.gp.Group.Key.Type, st.gp.Group.Key.Zone).At(start + wall)
			if price > st.gp.Bid {
				st.alive = false // out-of-bid event: Amazon kills the group
				// With an advance notice wide enough for one checkpoint,
				// the group saves its progress on the way out instead of
				// rolling back to the last scheduled checkpoint. The
				// notice window bills at the bid (never above it) under
				// continuous accounting; under the 2014 hourly rule the
				// interrupted hour is refunded anyway.
				if r.NoticeHours > 0 && st.gp.Group.O <= r.NoticeHours && st.productive > st.saved {
					st.saved = st.productive
					st.sinceCk = 0
					if r.Billing == BillingContinuous {
						out.Cost += st.gp.Bid * float64(st.gp.Group.M) * r.NoticeHours
					}
				}
				out.Cost -= r.outOfBidRefund(st)
				continue
			}
			anyAlive = true
			out.Cost += r.accrue(st, price, dt)

			T := float64(st.gp.Group.T)
			remaining := (1 - startProgress) * T
			switch {
			case st.ckLeft > 0: // mid-checkpoint: no productive progress
				st.ckLeft -= dt
				if st.ckLeft <= 0 {
					st.ckLeft = 0
					st.saved = st.productive
					st.sinceCk = 0
				}
			default:
				st.productive += dt
				st.sinceCk += dt
				ckEnabled := st.gp.Interval < T
				if ckEnabled && st.sinceCk >= st.gp.Interval && st.productive < remaining {
					st.ckLeft = st.gp.Group.O
				}
			}
			// The completion test tolerates the float drift of summing
			// ~step-sized increments: a window sized exactly to the
			// remaining work must complete inside it, not fall one
			// ulp-short step past the boundary.
			if st.productive >= remaining-1e-9 {
				// Winner: the application is done; losers are terminated
				// right now, having been billed up to this instant.
				out.Hours = wall + dt
				out.Progress = 1
				out.Completed = true
				return out
			}
		}
		if !anyAlive {
			out.Hours = wall + dt
			out.AllGroupsDead = true
			out.Progress = r.bestProgress(states, startProgress, false)
			return out
		}
	}
	out.Hours = windowHours
	// Window boundary: live groups checkpoint their final state
	// (Algorithm 1 line "checkpointing the final state of the application
	// as the next start point"); pay one checkpoint on the best group.
	out.Progress = r.bestProgress(states, startProgress, true)
	for _, st := range states {
		if st.alive {
			price := r.Market.Trace(st.gp.Group.Key.Type, st.gp.Group.Key.Zone).At(start + windowHours)
			out.Cost += price * float64(st.gp.Group.M) * st.gp.Group.O
			break
		}
	}
	return out
}

// bestProgress reports the most advanced recoverable progress across
// groups: checkpoint-durable progress for dead groups, live (about to be
// checkpointed) progress for alive ones when liveCounts is set.
func (r *Runner) bestProgress(states []*groupState, startProgress float64, liveCounts bool) float64 {
	best := startProgress
	for _, st := range states {
		avail := st.saved
		if liveCounts && st.alive {
			avail = st.productive
		}
		// avail productive hours on this group advance the whole
		// application by avail/T of its span.
		frac := startProgress + avail/float64(st.gp.Group.T)
		if frac > best {
			best = frac
		}
	}
	if best > 1 {
		best = 1
	}
	return best
}

// runOnDemand executes the remaining work on the recovery fleet. When
// fromCheckpoint is set, the fleet first pays the recovery overhead.
func (r *Runner) runOnDemand(od model.OnDemand, windowHours, startProgress float64, fromCheckpoint bool) Outcome {
	need := (1 - startProgress) * od.T
	if fromCheckpoint && startProgress > 0 {
		need += app.RecoveryHours(r.Profile, od.Instance)
	}
	hours := math.Min(need, windowHours)
	out := Outcome{
		Cost:  od.Rate() * hours,
		Hours: hours,
	}
	if hours >= need {
		out.Progress = 1
		out.Completed = true
	} else {
		// Partial on-demand windows make progress linearly; recovery
		// overhead is counted against progress conservatively.
		out.Progress = startProgress + (1-startProgress)*(hours/need)
	}
	return out
}

// RunToCompletion replays plan from absolute hour start until the
// application finishes: spot groups first and, if they all die, on-demand
// recovery from the best checkpoint (the paper's hybrid execution,
// Section 3.1.1). The returned outcome always has Completed set.
func (r *Runner) RunToCompletion(plan model.Plan, start float64) Outcome {
	total := Outcome{}
	progress := 0.0
	if len(plan.Groups) > 0 {
		// The spot phase runs at most until the trace would wrap far past
		// its end; a generous bound keeps pathological plans from looping
		// forever.
		k := plan.Groups[0].Group.Key
		bound := r.Market.Trace(k.Type, k.Zone).Duration() * 4
		o := r.ExecuteWindow(plan, start, bound, 0)
		total.Cost += o.Cost
		total.Hours += o.Hours
		progress = o.Progress
		if o.Completed {
			total.Completed = true
			total.Progress = 1
			return total
		}
		total.AllGroupsDead = o.AllGroupsDead
	}
	rec := r.runOnDemand(plan.Recovery, math.Inf(1), progress, len(plan.Groups) > 0)
	total.Cost += rec.Cost
	total.Hours += rec.Hours
	total.Progress = rec.Progress
	total.Completed = rec.Completed
	return total
}
