package replay

import (
	"sync"
	"testing"

	"sompi/internal/cloud"
	"sompi/internal/model"
)

// mcFingerprint captures every statistic the harness reports, at full
// float precision, so worker-count independence can be asserted exactly.
func mcFingerprint(t *testing.T, st MCStats) [12]float64 {
	t.Helper()
	return [12]float64{
		float64(st.Runs), float64(st.Failures), float64(st.DeadlineMisses),
		st.Cost.Mean(), st.Cost.Var(), st.Cost.Min(), st.Cost.Max(), st.Cost.Median(),
		st.Hours.Mean(), st.Hours.Var(), st.Hours.Quantile(0.9), st.MissRate(),
	}
}

// TestMonteCarloWorkerCountIndependent is the parallel-replay guarantee:
// for a fixed seed, every reported statistic is bit-identical whether the
// replications run serially or on any number of workers.
func TestMonteCarloWorkerCountIndependent(t *testing.T) {
	r := runner(spikeMarket(0.02, 2.0, 300, 4, 2000))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	strat := FixedPlan{
		Label: "fixed",
		Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
			return model.Plan{
				Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
				Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
			}, nil
		},
	}
	cfg := MCConfig{Deadline: 50, Runs: 25, Seed: 7, Workers: 1}
	want := mcFingerprint(t, MonteCarlo(strat, r, cfg))
	// 3 does not divide 25 (uneven chunks) and 8 exceeds GOMAXPROCS on
	// small machines (oversubscription) — both must still match serial.
	for _, workers := range []int{1, 3, 8, 64} {
		cfg.Workers = workers
		if got := mcFingerprint(t, MonteCarlo(strat, r, cfg)); got != want {
			t.Errorf("workers=%d: stats diverged from serial\ngot  %v\nwant %v", workers, got, want)
		}
	}
}

// TestMonteCarloStartsBoundedByShortestTrace covers the min-duration fix:
// start points must leave room before the end of the *shortest* trace in
// the market, not whatever trace an arbitrary map key happens to pick.
func TestMonteCarloStartsBoundedByShortestTrace(t *testing.T) {
	traces := flatTraces(0.02, 2000)
	// Truncate a single market to 500h; every other trace keeps 2000h.
	short := cloud.MarketKey{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneB}
	tr := traces[short]
	tr.Prices = tr.Prices[:int(500/tr.Step)]
	r := runner(cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), traces))

	const deadline = 50.0
	var mu sync.Mutex
	var starts []float64
	strat := FixedPlan{
		Label: "record",
		Provider: func(r *Runner, _, start float64) (model.Plan, error) {
			mu.Lock()
			starts = append(starts, start)
			mu.Unlock()
			return model.Plan{Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge)}, nil
		},
	}
	MonteCarlo(strat, r, MCConfig{Deadline: deadline, Runs: 40, Seed: 3})

	hi := 500 - 3*deadline // bound imposed by the truncated trace
	if len(starts) != 40 {
		t.Fatalf("recorded %d starts, want 40", len(starts))
	}
	for _, s := range starts {
		if s > hi {
			t.Errorf("start %.1fh ignores the shortest trace (must be ≤ %.1fh)", s, hi)
		}
	}
}
