package replay

import (
	"math"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/trace"
)

// flatTraces builds a trace per (type, zone) where every sample holds a
// constant price, making replay outcomes exactly predictable.
func flatTraces(price float64, hours int) map[cloud.MarketKey]*trace.Trace {
	traces := map[cloud.MarketKey]*trace.Trace{}
	n := hours * 12
	for _, it := range cloud.DefaultCatalog() {
		for _, z := range cloud.DefaultZones() {
			p := make([]float64, n)
			for i := range p {
				p[i] = price
			}
			traces[cloud.MarketKey{Type: it.Name, Zone: z}] = trace.New(trace.DefaultStep, p)
		}
	}
	return traces
}

// flatMarket wraps flatTraces in a market.
func flatMarket(price float64, hours int) *cloud.Market {
	return cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), flatTraces(price, hours))
}

// spikeMarket is flat at low except for a high plateau in [spikeAt,
// spikeAt+spikeDur) on every trace.
func spikeMarket(low, high, spikeAt, spikeDur float64, hours int) *cloud.Market {
	traces := flatTraces(low, hours)
	for _, tr := range traces {
		for i := range tr.Prices {
			h := float64(i) * tr.Step
			if h >= spikeAt && h < spikeAt+spikeDur {
				tr.Prices[i] = high
			}
		}
	}
	return cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), traces)
}

func runner(m *cloud.Market) *Runner {
	return &Runner{Market: m, Profile: app.BT()}
}

func groupFor(r *Runner, it cloud.InstanceType, zone string) *model.Group {
	return model.NewGroup(r.Profile, it, zone, r.Market.Trace(it.Name, zone))
}

func TestCompletesOnQuietMarket(t *testing.T) {
	r := runner(flatMarket(0.02, 400))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.RunToCompletion(plan, 0)
	if !o.Completed {
		t.Fatal("run did not complete on a quiet market")
	}
	if math.Abs(o.Hours-float64(g.T)) > 0.2 {
		t.Errorf("Hours = %v, want ~%d", o.Hours, g.T)
	}
	wantCost := 0.02 * float64(g.M) * o.Hours
	if math.Abs(o.Cost-wantCost) > wantCost*0.01 {
		t.Errorf("Cost = %v, want ~%v", o.Cost, wantCost)
	}
}

func TestCheckpointOverheadExtendsWallClock(t *testing.T) {
	r := runner(flatMarket(0.02, 500))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	with := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: 2}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	without := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	ow := r.RunToCompletion(with, 0)
	oo := r.RunToCompletion(without, 0)
	if !ow.Completed || !oo.Completed {
		t.Fatal("runs did not complete")
	}
	if ow.Hours <= oo.Hours {
		t.Errorf("checkpointing run (%vh) not longer than bare run (%vh)", ow.Hours, oo.Hours)
	}
}

func TestOutOfBidKillsGroupAndRecoversOnDemand(t *testing.T) {
	// Price spikes above the bid at hour 5 and stays up long enough to
	// kill the single group; recovery must finish the app on-demand.
	r := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: 2}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.RunToCompletion(plan, 0)
	if !o.Completed {
		t.Fatal("run did not complete")
	}
	// Two checkpoints by hour 5 (at ~2 and ~4): saved 4 of T hours; the
	// recovery fleet runs (1 - 4/T) of its own time plus overhead.
	frac := 1 - 4/float64(g.T)
	wantRecovery := frac*plan.Recovery.T + app.RecoveryHours(r.Profile, cloud.CC28XLarge)
	wantHours := 5.0 + wantRecovery
	if math.Abs(o.Hours-wantHours) > 1.0 {
		t.Errorf("Hours = %v, want ~%v", o.Hours, wantHours)
	}
	wantODCost := plan.Recovery.Rate() * wantRecovery
	if o.Cost < wantODCost {
		t.Errorf("Cost = %v below the on-demand recovery cost %v", o.Cost, wantODCost)
	}
}

func TestNoCheckpointMeansFullRestart(t *testing.T) {
	r := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.RunToCompletion(plan, 0)
	if !o.Completed {
		t.Fatal("run did not complete")
	}
	// All progress lost: on-demand runs its full time from scratch.
	wantHours := 5 + plan.Recovery.T
	if math.Abs(o.Hours-wantHours) > 0.5 {
		t.Errorf("Hours = %v, want ~%v (full restart)", o.Hours, wantHours)
	}
}

func TestReplicaSurvivesWhereSingleDies(t *testing.T) {
	// Zone A spikes at hour 5; zone B never does. A two-group plan must
	// complete on spot without on-demand recovery.
	m := flatMarket(0.02, 500)
	trA := m.Trace(cloud.M1Medium.Name, cloud.ZoneA)
	for i := range trA.Prices {
		if h := float64(i) * trA.Step; h >= 5 && h < 9 {
			trA.Prices[i] = 1.0
		}
	}
	r := runner(m)
	gA := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	gB := groupFor(r, cloud.M1Medium, cloud.ZoneB)
	plan := model.Plan{
		Groups: []model.GroupPlan{
			{Group: gA, Bid: 0.05, Interval: 2},
			{Group: gB, Bid: 0.05, Interval: 2},
		},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.RunToCompletion(plan, 0)
	if !o.Completed {
		t.Fatal("run did not complete")
	}
	if o.AllGroupsDead {
		t.Error("zone B group should have survived")
	}
	// Wall clock tracks the surviving group, not an on-demand recovery.
	if o.Hours > float64(gB.T)+3 {
		t.Errorf("Hours = %v, want about the surviving group's %d", o.Hours, gB.T)
	}
}

func TestLosersBilledOnlyUntilWinnerFinishes(t *testing.T) {
	// Two identical groups: total cost should be ~2x a single group's,
	// both terminated at the winner's completion.
	r := runner(flatMarket(0.02, 500))
	gA := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	gB := groupFor(r, cloud.M1Medium, cloud.ZoneB)
	mk := func(groups ...model.GroupPlan) model.Plan {
		return model.Plan{Groups: groups, Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge)}
	}
	single := r.RunToCompletion(mk(model.GroupPlan{Group: gA, Bid: 0.05, Interval: float64(gA.T)}), 0)
	double := r.RunToCompletion(mk(
		model.GroupPlan{Group: gA, Bid: 0.05, Interval: float64(gA.T)},
		model.GroupPlan{Group: gB, Bid: 0.05, Interval: float64(gB.T)},
	), 0)
	if math.Abs(double.Cost-2*single.Cost) > single.Cost*0.05 {
		t.Errorf("double cost %v, want ~2x single %v", double.Cost, single.Cost)
	}
}

func TestExecuteWindowBoundaryCheckpoints(t *testing.T) {
	r := runner(flatMarket(0.02, 500))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: 4}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.ExecuteWindow(plan, 0, 10, 0)
	if o.Completed {
		t.Fatal("10h window should not complete a ~29h run")
	}
	if o.Hours != 10 {
		t.Errorf("Hours = %v, want 10", o.Hours)
	}
	want := 10.0 / float64(g.T)
	if math.Abs(o.Progress-want) > 0.05 {
		t.Errorf("Progress = %v, want ~%v", o.Progress, want)
	}
}

func TestExecuteWindowResumesFromProgress(t *testing.T) {
	r := runner(flatMarket(0.02, 500))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	// 60% done: the rest takes ~0.4*T hours.
	o := r.ExecuteWindow(plan, 0, 1000, 0.6)
	if !o.Completed {
		t.Fatal("did not complete")
	}
	want := 0.4 * float64(g.T)
	if math.Abs(o.Hours-want) > 0.5 {
		t.Errorf("Hours = %v, want ~%v", o.Hours, want)
	}
}

func TestPureOnDemandWindow(t *testing.T) {
	r := runner(flatMarket(0.02, 500))
	od := model.NewOnDemand(r.Profile, cloud.C3XLarge)
	plan := model.Plan{Recovery: od}
	o := r.ExecuteWindow(plan, 0, math.Inf(1), 0)
	if !o.Completed {
		t.Fatal("on-demand run did not complete")
	}
	if math.Abs(o.Hours-od.T) > 1e-9 {
		t.Errorf("Hours = %v, want %v", o.Hours, od.T)
	}
	if math.Abs(o.Cost-od.FullCost()) > 1e-6 {
		t.Errorf("Cost = %v, want %v", o.Cost, od.FullCost())
	}
}

func TestExecuteWindowPanicsOnBadProgress(t *testing.T) {
	r := runner(flatMarket(0.02, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("bad progress did not panic")
		}
	}()
	r.ExecuteWindow(model.Plan{Recovery: model.NewOnDemand(r.Profile, cloud.C3XLarge)}, 0, 1, 1.5)
}

func TestMonteCarloAggregates(t *testing.T) {
	r := runner(flatMarket(0.02, 2000))
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	strat := FixedPlan{
		Label: "fixed",
		Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
			return model.Plan{
				Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
				Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
			}, nil
		},
	}
	st := MonteCarlo(strat, r, MCConfig{Deadline: 50, Runs: 20, Seed: 1})
	if st.Runs != 20 || st.Failures != 0 {
		t.Fatalf("Runs=%d Failures=%d", st.Runs, st.Failures)
	}
	if st.Cost.Std() > st.Cost.Mean()*0.01 {
		t.Errorf("flat market should give near-constant cost, got std %v", st.Cost.Std())
	}
	if st.MissRate() != 0 {
		t.Errorf("deadline 50h missed on a flat market: %v", st.MissRate())
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	r := runner(flatMarket(0.02, 2000))
	strat := FixedPlan{
		Label: "od",
		Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
			return model.Plan{Recovery: model.NewOnDemand(r.Profile, cloud.C3XLarge)}, nil
		},
	}
	a := MonteCarlo(strat, r, MCConfig{Deadline: 40, Runs: 10, Seed: 7})
	b := MonteCarlo(strat, r, MCConfig{Deadline: 40, Runs: 10, Seed: 7})
	if a.Cost.Mean() != b.Cost.Mean() {
		t.Error("MonteCarlo is not deterministic for a fixed seed")
	}
}

func TestMonteCarloPanicsOnZeroRuns(t *testing.T) {
	r := runner(flatMarket(0.02, 100))
	defer func() {
		if recover() == nil {
			t.Fatal("zero runs did not panic")
		}
	}()
	MonteCarlo(FixedPlan{}, r, MCConfig{Deadline: 10, Runs: 0})
}

func TestHourlyBillingQuietMarket(t *testing.T) {
	// On a flat market a completing group pays for each started hour at
	// the flat price; the wall clock is ~T hours, so the hourly total is
	// ceil(T) hours' worth.
	m := flatMarket(0.02, 500)
	r := &Runner{Market: m, Profile: app.BT(), Billing: BillingHourly}
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	plan := model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
	o := r.RunToCompletion(plan, 0)
	if !o.Completed {
		t.Fatal("did not complete")
	}
	hours := math.Ceil(o.Hours - 1e-9)
	want := 0.02 * float64(g.M) * hours
	if math.Abs(o.Cost-want) > 1e-6 {
		t.Fatalf("hourly cost %v, want %v (%v started hours)", o.Cost, want, hours)
	}
}

func TestHourlyBillingRefundsInterruptedHour(t *testing.T) {
	// The group dies mid-hour at the spike: under hourly billing the
	// interrupted partial hour is free, so the spot spend equals the
	// whole hours completed before the spike.
	m := spikeMarket(0.02, 1.0, 5.5, 4, 400)
	cont := &Runner{Market: m, Profile: app.BT(), Billing: BillingContinuous}
	hourly := &Runner{Market: m, Profile: app.BT(), Billing: BillingHourly}
	mkPlan := func(r *Runner) model.Plan {
		g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
		return model.Plan{
			Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
			Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
		}
	}
	// Run only the spot window so on-demand recovery does not mix in.
	oc := cont.ExecuteWindow(mkPlan(cont), 0, 20, 0)
	oh := hourly.ExecuteWindow(mkPlan(hourly), 0, 20, 0)
	if !oc.AllGroupsDead || !oh.AllGroupsDead {
		t.Fatal("groups should die at the spike")
	}
	gm := float64(groupFor(cont, cloud.M1Medium, cloud.ZoneA).M)
	// Continuous: ~5.5 hours at $0.02 (one replay step of slack);
	// hourly: exactly 5 whole hours — the 6th, started at 5.0, is
	// refunded on interruption.
	if math.Abs(oc.Cost-0.02*gm*5.5) > 0.02*gm*0.1 {
		t.Fatalf("continuous cost %v, want ~%v", oc.Cost, 0.02*gm*5.5)
	}
	if math.Abs(oh.Cost-0.02*gm*5) > 1e-6 {
		t.Fatalf("hourly cost %v, want %v", oh.Cost, 0.02*gm*5)
	}
}

func TestHourlyBillingSoftensSpikesForHighBids(t *testing.T) {
	// A high-bid group rides through a 30-minute spike: continuous
	// billing pays the spike price for the half hour; hourly billing
	// paid the hour upfront at the calm price and charges nothing extra.
	m := spikeMarket(0.02, 0.5, 5.25, 0.5, 400)
	cont := &Runner{Market: m, Profile: app.BT(), Billing: BillingContinuous}
	hourly := &Runner{Market: m, Profile: app.BT(), Billing: BillingHourly}
	mkPlan := func(r *Runner) model.Plan {
		g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
		return model.Plan{
			Groups:   []model.GroupPlan{{Group: g, Bid: 2.0, Interval: float64(g.T)}},
			Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
		}
	}
	oc := cont.ExecuteWindow(mkPlan(cont), 0, 10, 0)
	oh := hourly.ExecuteWindow(mkPlan(hourly), 0, 10, 0)
	if oh.Cost >= oc.Cost {
		t.Fatalf("hourly %v should undercut continuous %v through a brief spike",
			oh.Cost, oc.Cost)
	}
}
