package replay

import (
	"math"
	"testing"

	"sompi/internal/cloud"
	"sompi/internal/model"
)

// noticePlan is a single-group plan with scheduled checkpoints disabled
// (Interval = T), so the only way progress survives an out-of-bid kill is
// the interruption-notice emergency checkpoint.
func noticePlan(r *Runner) model.Plan {
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	return model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: 0.05, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
}

// TestNoticeSavesProgressOnOutOfBid: with an interruption notice wide
// enough for one checkpoint, the ~5h of pre-spike work survives the kill
// instead of being lost to a full restart.
func TestNoticeSavesProgressOnOutOfBid(t *testing.T) {
	base := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	plan := noticePlan(base)
	g := plan.Groups[0].Group
	without := base.ExecuteWindow(plan, 0, 20, 0)

	notice := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	notice.NoticeHours = g.O + 0.05
	with := notice.ExecuteWindow(plan, 0, 20, 0)

	if !without.AllGroupsDead || !with.AllGroupsDead {
		t.Fatalf("expected the spike to kill the group: %+v / %+v", without, with)
	}
	if without.Progress != 0 {
		t.Fatalf("without notice progress = %v, want 0 (no checkpoints)", without.Progress)
	}
	want := 5 / float64(g.T)
	if math.Abs(with.Progress-want) > 0.01 {
		t.Fatalf("with notice progress = %v, want ~%v", with.Progress, want)
	}
}

// TestNoticeNarrowerThanCheckpointIsIgnored: a notice too short to fit
// the group's checkpoint overhead changes nothing — outcome identical to
// the zero-notice runner.
func TestNoticeNarrowerThanCheckpointIsIgnored(t *testing.T) {
	base := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	plan := noticePlan(base)
	g := plan.Groups[0].Group
	without := base.ExecuteWindow(plan, 0, 20, 0)

	narrow := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
	narrow.NoticeHours = g.O / 2
	with := narrow.ExecuteWindow(plan, 0, 20, 0)

	if with != without {
		t.Fatalf("narrow notice changed the outcome:\n with: %+v\n base: %+v", with, without)
	}
}

// TestNoticeBilling: the notice window bills bid x M x notice under
// continuous accounting and nothing under the 2014 hourly rule (the
// interrupted hour is refunded either way).
func TestNoticeBilling(t *testing.T) {
	mk := func(billing SpotBilling, noticeHours float64) Outcome {
		r := runner(spikeMarket(0.02, 1.0, 5, 4, 400))
		r.Billing = billing
		r.NoticeHours = noticeHours
		return r.ExecuteWindow(noticePlan(r), 0, 20, 0)
	}
	probe := runner(flatMarket(0.02, 10))
	g := groupFor(probe, cloud.M1Medium, cloud.ZoneA)
	notice := g.O + 0.05

	contWithout := mk(BillingContinuous, 0)
	contWith := mk(BillingContinuous, notice)
	extra := contWith.Cost - contWithout.Cost
	want := 0.05 * float64(g.M) * notice
	if math.Abs(extra-want) > 1e-9 {
		t.Fatalf("continuous notice charge = %v, want %v", extra, want)
	}

	hourlyWithout := mk(BillingHourly, 0)
	hourlyWith := mk(BillingHourly, notice)
	if hourlyWith.Cost != hourlyWithout.Cost {
		t.Fatalf("hourly billing charged for the notice: %v vs %v", hourlyWith.Cost, hourlyWithout.Cost)
	}
	if hourlyWith.Progress <= hourlyWithout.Progress {
		t.Fatalf("hourly notice did not save progress: %v vs %v", hourlyWith.Progress, hourlyWithout.Progress)
	}
}
