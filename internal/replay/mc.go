package replay

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"sompi/internal/model"
	"sompi/internal/obs"
	"sompi/internal/stats"
)

// Strategy is anything that can execute the runner's application against
// the market starting at a given absolute trace hour: the SOMPI adaptive
// loop, the paper's baselines, or a fixed plan.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Run executes the application with the given deadline, starting at
	// absolute market hour start. Implementations may consult history
	// strictly before start for training but must not peek forward.
	Run(r *Runner, deadline, start float64) (Outcome, error)
}

// MCStats aggregates the Monte Carlo replications of one strategy — the
// paper repeats each configuration over random trace start points and
// reports expected cost (Section 5.1).
type MCStats struct {
	Name string
	// Cost and Hours summarize the per-run totals.
	Cost, Hours stats.Summary
	// DeadlineMisses counts runs whose wall time exceeded the deadline.
	DeadlineMisses int
	// Runs is the number of successful replications; Failures counts
	// strategy errors (e.g. no feasible plan).
	Runs, Failures int
}

// MissRate reports the fraction of runs that missed the deadline.
func (s *MCStats) MissRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Runs)
}

// merge folds another worker's replications into s. Merging worker
// chunks in run order reproduces the serial accumulation exactly.
func (s *MCStats) merge(other *MCStats) {
	s.Cost.Merge(&other.Cost)
	s.Hours.Merge(&other.Hours)
	s.DeadlineMisses += other.DeadlineMisses
	s.Runs += other.Runs
	s.Failures += other.Failures
}

// String renders a one-line summary.
func (s *MCStats) String() string {
	return fmt.Sprintf("%-14s cost $%.0f ±%.0f  time %.1fh  miss %.0f%%  (n=%d, errors=%d)",
		s.Name, s.Cost.Mean(), s.Cost.Std(), s.Hours.Mean(), 100*s.MissRate(), s.Runs, s.Failures)
}

// MCConfig controls a Monte Carlo evaluation.
type MCConfig struct {
	// Deadline in hours.
	Deadline float64
	// Runs is the number of replications (the paper uses 100+ on EC2 and
	// up to 10^6 in simulation).
	Runs int
	// History is how many hours of price history before each start point
	// strategies may train on.
	History float64
	// Seed drives start-point sampling.
	Seed uint64
	// Workers is the number of concurrent replay workers. Zero means
	// runtime.GOMAXPROCS(0); 1 forces serial replay. Results are
	// identical at every worker count: replication i draws its start
	// point from its own RNG stream derived from (Seed, i), so the
	// sampled starts — and therefore every statistic — depend only on
	// Seed and Runs.
	Workers int
}

// Validate reports ErrInvalidConfig-wrapped errors for numeric fields
// that make the evaluation meaningless.
func (c MCConfig) Validate() error {
	switch {
	case math.IsNaN(c.Deadline) || c.Deadline <= 0:
		return fmt.Errorf("%w: non-positive deadline %v", ErrInvalidConfig, c.Deadline)
	case c.Runs <= 0:
		return fmt.Errorf("%w: non-positive run count %d", ErrInvalidConfig, c.Runs)
	case c.History < 0:
		return fmt.Errorf("%w: negative history %v", ErrInvalidConfig, c.History)
	case c.Workers < 0:
		return fmt.Errorf("%w: negative worker count %d", ErrInvalidConfig, c.Workers)
	}
	return nil
}

// MonteCarlo replays the strategy Runs times from random start points and
// aggregates cost, time and deadline-miss statistics.
//
// Deprecated: use MonteCarloContext, which validates the config with
// typed errors and supports cancellation. MonteCarlo keeps the pre-v1
// contract for existing callers: it panics on an invalid config.
func MonteCarlo(st Strategy, r *Runner, cfg MCConfig) MCStats {
	stats, err := MonteCarloContext(context.Background(), st, r, cfg)
	if err != nil {
		panic(err)
	}
	return stats
}

// MonteCarloContext replays the strategy Runs times from random start
// points and aggregates cost, time and deadline-miss statistics.
// Replications run concurrently on Workers goroutines; each replication
// owns a splitmix-derived RNG stream (stats.StreamRNG(Seed, i)), making
// the aggregate reproducible for a fixed Seed regardless of worker count
// and identical to a serial run.
//
// An invalid config is reported as ErrInvalidConfig and a market with no
// usable price history as ErrMarketTooShort. Cancelling ctx stops
// launching new replications; the partial statistics accumulated so far
// are returned together with ctx.Err().
func MonteCarloContext(ctx context.Context, st Strategy, r *Runner, cfg MCConfig) (MCStats, error) {
	if err := cfg.Validate(); err != nil {
		return MCStats{}, err
	}
	if r.Market.NumMarkets() == 0 || r.Market.MinDuration() <= 0 {
		return MCStats{}, fmt.Errorf("%w: no price samples to draw start points from", ErrMarketTooShort)
	}
	if cfg.History == 0 {
		cfg.History = 96
	}

	// Leave room after the start point for the run itself (deadline
	// overruns included) so the replay doesn't spend most of its time
	// clamped at the trace's final sample. The shortest trace governs:
	// sampling past it would run a strategy off the end of that market.
	// A start point also needs History hours of retained prices behind
	// it: on a compacted market, starts must clear the retention head by
	// the full training window, or strategies would train on windows
	// silently clamped (possibly to empty) by the ring buffer.
	dur := r.Market.MinDuration()
	lo := r.Market.RetainedStartFor(nil) + cfg.History
	hi := dur - 3*cfg.Deadline
	if lo >= dur {
		return MCStats{}, fmt.Errorf("%w: retained history ends at %.1fh, but a start point needs %.1fh of training prices behind it", ErrMarketTooShort, dur, cfg.History)
	}
	if hi <= lo {
		hi = lo + 1
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	ctx, msp := obs.StartSpan(ctx, "replay.montecarlo")
	if msp != nil {
		msp.AttrStr("strategy", st.Name())
		msp.AttrInt("runs", int64(cfg.Runs))
		msp.AttrInt("workers", int64(workers))
		msp.AttrInt("seed", int64(cfg.Seed))
		defer msp.End()
	}

	// Contiguous chunks per worker, merged in chunk order, reproduce the
	// serial insertion order of every observation.
	chunk := func(w int) (int, int) {
		base, rem := cfg.Runs/workers, cfg.Runs%workers
		lo := w*base + min(w, rem)
		size := base
		if w < rem {
			size++
		}
		return lo, lo + size
	}
	parts := make([]MCStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &parts[w]
			first, last := chunk(w)
			// Each replication i draws from RNG stream (Seed, i); the chunk
			// span records the stream-ID range so a trace pins down exactly
			// which replications — and which random start points — it ran.
			_, csp := obs.StartSpan(ctx, "replay.mc.chunk")
			if csp != nil {
				csp.AttrInt("stream_first", int64(first))
				csp.AttrInt("stream_last", int64(last-1))
			}
			for i := first; i < last; i++ {
				if ctx.Err() != nil {
					break
				}
				rng := stats.StreamRNG(cfg.Seed, uint64(i))
				start := lo + rng.Float64()*(hi-lo)
				o, err := st.Run(r, cfg.Deadline, start)
				if err != nil {
					local.Failures++
					continue
				}
				local.Runs++
				local.Cost.Add(o.Cost)
				local.Hours.Add(o.Hours)
				if o.Hours > cfg.Deadline {
					local.DeadlineMisses++
				}
			}
			if csp != nil {
				csp.AttrInt("runs", int64(local.Runs))
				csp.AttrInt("failures", int64(local.Failures))
				csp.End()
			}
		}(w)
	}
	wg.Wait()

	out := MCStats{Name: st.Name()}
	for w := range parts {
		out.merge(&parts[w])
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// FixedPlan is the simplest strategy: build one plan from history at the
// start point, then replay it to completion (spot groups first, on-demand
// recovery if they all die). The paper's non-adaptive comparison
// algorithms are all FixedPlan strategies with different providers.
type FixedPlan struct {
	Label string
	// Provider builds the plan from the market history strictly before
	// start (no forward peeking).
	Provider func(r *Runner, deadline, start float64) (model.Plan, error)
}

// Name implements Strategy.
func (f FixedPlan) Name() string { return f.Label }

// Run implements Strategy.
func (f FixedPlan) Run(r *Runner, deadline, start float64) (Outcome, error) {
	plan, err := f.Provider(r, deadline, start)
	if err != nil {
		return Outcome{}, err
	}
	return r.RunToCompletion(plan, start), nil
}
