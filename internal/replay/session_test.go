package replay

import (
	"context"
	"errors"
	"math"
	"testing"

	"sompi/internal/cloud"
	"sompi/internal/model"
)

func singleGroupPlan(r *Runner, bid float64) model.Plan {
	g := groupFor(r, cloud.M1Medium, cloud.ZoneA)
	return model.Plan{
		Groups:   []model.GroupPlan{{Group: g, Bid: bid, Interval: float64(g.T)}},
		Recovery: model.NewOnDemand(r.Profile, cloud.CC28XLarge),
	}
}

// TestExecuteWindowZeroLength: a zero-length window runs nothing, charges
// nothing (in particular no boundary checkpoint), and preserves progress.
func TestExecuteWindowZeroLength(t *testing.T) {
	r := runner(flatMarket(0.02, 200))
	plan := singleGroupPlan(r, 0.05)
	for _, win := range []float64{0, -1} {
		o := r.ExecuteWindow(plan, 10, win, 0.25)
		if o.Cost != 0 || o.Hours != 0 {
			t.Fatalf("window %v charged $%v over %vh, want nothing", win, o.Cost, o.Hours)
		}
		if o.Progress != 0.25 || o.Completed || o.AllGroupsDead {
			t.Fatalf("window %v outcome %+v, want untouched progress 0.25", win, o)
		}
	}
}

// TestExecuteWindowEndsExactlyAtCompletion: a window sized exactly to the
// remaining work completes the application inside it — float drift from
// summing step-sized increments must not push completion one step past
// the boundary (where the boundary path would bill an extra checkpoint
// and report the run unfinished).
func TestExecuteWindowEndsExactlyAtCompletion(t *testing.T) {
	r := runner(flatMarket(0.02, 400))
	plan := singleGroupPlan(r, 0.05) // interval = T: no checkpoints
	T := float64(plan.Groups[0].Group.T)

	o := r.ExecuteWindow(plan, 0, T, 0)
	if !o.Completed {
		t.Fatalf("window of exactly %vh (the full run) did not complete: %+v", T, o)
	}
	if o.Progress != 1 {
		t.Fatalf("progress %v at completion, want 1", o.Progress)
	}
	if math.Abs(o.Hours-T) > 1e-6 {
		t.Fatalf("completion at %vh, want %vh", o.Hours, T)
	}
	// No checkpoints and no recovery ran: cost is price × M × T exactly.
	want := 0.02 * float64(plan.Groups[0].Group.M) * T
	if math.Abs(o.Cost-want) > 1e-6 {
		t.Fatalf("cost $%v, want $%v (pure running cost, no boundary checkpoint)", o.Cost, want)
	}

	// One step short of completion must NOT complete — the epsilon is an
	// ulp tolerance, not a semantic change.
	step := r.Market.Trace(plan.Groups[0].Group.Key.Type, plan.Groups[0].Group.Key.Zone).Step
	o = r.ExecuteWindow(plan, 0, T-step, 0)
	if o.Completed {
		t.Fatalf("window one step short of the work completed anyway: %+v", o)
	}
	if o.Progress >= 1 || o.Progress < 0.9 {
		t.Fatalf("one-step-short progress %v, want just under 1", o.Progress)
	}
}

// TestExecuteWindowPartialThenResume: the mid-run boundary checkpoint
// carries durable progress into the next window, the core of Algorithm
// 1's state hand-off.
func TestExecuteWindowPartialThenResume(t *testing.T) {
	r := runner(flatMarket(0.02, 400))
	plan := singleGroupPlan(r, 0.05)
	T := float64(plan.Groups[0].Group.T)

	half := r.ExecuteWindow(plan, 0, T/2, 0)
	if half.Completed || half.Progress <= 0.4 || half.Progress >= 0.6 {
		t.Fatalf("half window: %+v, want ~0.5 progress", half)
	}
	rest := r.ExecuteWindow(plan, T/2, T, half.Progress)
	if !rest.Completed {
		t.Fatalf("resumed window did not finish: %+v", rest)
	}
}

func TestSessionCarriesStateAcrossWindows(t *testing.T) {
	r := runner(flatMarket(0.02, 400))
	plan := singleGroupPlan(r, 0.05)
	T := float64(plan.Groups[0].Group.T)

	sess := NewSession(r, 2*T, 5)
	if sess.Now() != 5 || sess.Remaining() != 2*T {
		t.Fatalf("fresh session: now %v remaining %v", sess.Now(), sess.Remaining())
	}

	o1 := sess.Advance(plan, T/2)
	if sess.Windows != 1 || sess.Elapsed != o1.Hours || sess.Progress != o1.Progress {
		t.Fatalf("session did not absorb first window: %+v", sess)
	}
	if sess.Now() != 5+o1.Hours {
		t.Fatalf("session clock %v, want %v", sess.Now(), 5+o1.Hours)
	}

	o2 := sess.Advance(plan, 2*T)
	if !sess.Completed {
		t.Fatalf("session unfinished after full-length second window: %+v", sess)
	}
	total := sess.Outcome()
	if math.Abs(total.Cost-(o1.Cost+o2.Cost)) > 1e-9 || math.Abs(total.Hours-(o1.Hours+o2.Hours)) > 1e-9 {
		t.Fatalf("outcome %+v does not sum the windows (%+v, %+v)", total, o1, o2)
	}
	if !total.Completed || total.Progress != 1 {
		t.Fatalf("final outcome %+v, want completed", total)
	}
}

func TestMCConfigValidation(t *testing.T) {
	r := runner(flatMarket(0.02, 200))
	strat := FixedPlan{Label: "fixed", Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
		return singleGroupPlan(r, 0.05), nil
	}}
	cases := []MCConfig{
		{Deadline: -5, Runs: 3},
		{Deadline: 0, Runs: 3},
		{Deadline: 50, Runs: 0},
		{Deadline: 50, Runs: -2},
		{Deadline: 50, Runs: 3, History: -1},
		{Deadline: 50, Runs: 3, Workers: -1},
	}
	for _, cfg := range cases {
		if _, err := MonteCarloContext(context.Background(), strat, r, cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("config %+v returned %v, want ErrInvalidConfig", cfg, err)
		}
	}
	// A valid config still runs.
	st, err := MonteCarloContext(context.Background(), strat, r, MCConfig{Deadline: 50, Runs: 3, Seed: 1})
	if err != nil || st.Runs != 3 {
		t.Fatalf("valid config: %v (runs %d)", err, st.Runs)
	}
}

func TestMonteCarloContextEmptyMarket(t *testing.T) {
	empty := cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), nil)
	r := &Runner{Market: empty, Profile: runner(flatMarket(0.02, 10)).Profile}
	_, err := MonteCarloContext(context.Background(), FixedPlan{}, r, MCConfig{Deadline: 10, Runs: 1})
	if !errors.Is(err, ErrMarketTooShort) {
		t.Fatalf("empty market returned %v, want ErrMarketTooShort", err)
	}
}

// TestMonteCarloContextRetainedTooShort: when ring-buffer retention
// leaves less than History hours of prices before the frontier, no
// start point has a fully retained training window — the harness must
// report ErrMarketTooShort instead of replaying strategies trained on
// silently clamped (possibly empty) windows.
func TestMonteCarloContextRetainedTooShort(t *testing.T) {
	m := flatMarket(0.02, 200)
	m.SetRetention(50) // retained head at 150h; History 96 needs starts ≥ 246h > the 200h frontier
	r := runner(m)
	strat := FixedPlan{Label: "fixed", Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
		return singleGroupPlan(r, 0.05), nil
	}}
	_, err := MonteCarloContext(context.Background(), strat, r, MCConfig{Deadline: 10, Runs: 2})
	if !errors.Is(err, ErrMarketTooShort) {
		t.Fatalf("over-compacted market returned %v, want ErrMarketTooShort", err)
	}
	// With the training window inside the retained range, replays run.
	m2 := flatMarket(0.02, 200)
	m2.SetRetention(150) // head at 50h; starts in [146h, ...] are coverable
	st, err := MonteCarloContext(context.Background(), strat, &Runner{Market: m2, Profile: r.Profile}, MCConfig{Deadline: 10, Runs: 2, Seed: 1})
	if err != nil || st.Runs != 2 {
		t.Fatalf("retained-but-sufficient market: %v (runs %d)", err, st.Runs)
	}
}

func TestMonteCarloContextCancellation(t *testing.T) {
	r := runner(flatMarket(0.02, 2000))
	strat := FixedPlan{Label: "fixed", Provider: func(r *Runner, deadline, start float64) (model.Plan, error) {
		return singleGroupPlan(r, 0.05), nil
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := MonteCarloContext(ctx, strat, r, MCConfig{Deadline: 50, Runs: 100, Seed: 1, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if st.Runs >= 100 {
		t.Fatalf("cancelled run completed all %d replications", st.Runs)
	}
}
