package replay

import "sompi/internal/model"

// Session carries the state Algorithm 1 threads between optimization
// windows: how far the application has progressed (checkpoint-durable),
// how much wall clock and money it has consumed, and where "now" sits on
// the market's absolute clock. Both the in-process adaptive strategy
// (opt.Adaptive) and the long-running planner service (internal/serve)
// drive their window-by-window execution through a Session, which is what
// keeps the two paths behaviourally identical.
type Session struct {
	// Runner replays each window against the market.
	Runner *Runner
	// Deadline is the completion deadline in hours of wall clock since
	// Start.
	Deadline float64
	// Start is the absolute market hour the session launched at.
	Start float64

	// Progress is the fraction of the application completed
	// (checkpoint-durable at window boundaries). Elapsed is the wall
	// clock consumed and Cost the dollars spent so far.
	Progress float64
	Elapsed  float64
	Cost     float64
	// Windows counts Advance calls; Completed and AllGroupsDead mirror
	// the latest window's outcome.
	Windows       int
	Completed     bool
	AllGroupsDead bool
}

// NewSession starts a session for the runner's application at absolute
// market hour start.
func NewSession(r *Runner, deadline, start float64) *Session {
	return &Session{Runner: r, Deadline: deadline, Start: start}
}

// Now reports the absolute market hour the session has executed up to.
func (s *Session) Now() float64 { return s.Start + s.Elapsed }

// Remaining reports the wall-clock hours left before the deadline
// (negative once the deadline has passed).
func (s *Session) Remaining() float64 { return s.Deadline - s.Elapsed }

// Advance executes one window of the given plan from the session's
// current position and folds the outcome into the carried state. The
// returned outcome is the window's own (not the running total); the
// window ends early if the application completes or every spot group
// dies, exactly as ExecuteWindow reports.
func (s *Session) Advance(plan model.Plan, windowHours float64) Outcome {
	o := s.Runner.ExecuteWindow(plan, s.Now(), windowHours, s.Progress)
	s.Cost += o.Cost
	s.Elapsed += o.Hours
	s.Progress = o.Progress
	s.Completed = o.Completed
	s.AllGroupsDead = o.AllGroupsDead
	s.Windows++
	return o
}

// Outcome renders the session's accumulated state as a single outcome,
// the shape strategy Run implementations return.
func (s *Session) Outcome() Outcome {
	return Outcome{
		Cost:          s.Cost,
		Hours:         s.Elapsed,
		Progress:      s.Progress,
		Completed:     s.Completed,
		AllGroupsDead: s.AllGroupsDead,
	}
}
