package app

import (
	"math"
	"testing"
	"testing/quick"

	"sompi/internal/cloud"
)

// fleetRate is the on-demand $/hour of the fleet hosting p on type it.
func fleetRate(p Profile, it cloud.InstanceType) float64 {
	return it.OnDemand * float64(it.InstancesFor(p.Procs))
}

func onDemandCost(p Profile, it cloud.InstanceType) float64 {
	return EstimateHours(p, it) * fleetRate(p, it)
}

func TestProfileValidate(t *testing.T) {
	good := BT()
	if err := good.Validate(); err != nil {
		t.Fatalf("BT invalid: %v", err)
	}
	bad := []Profile{
		{Name: "p0", Procs: 0, InstrTera: 1, MemGB: 1},
		{Name: "neg", Procs: 1, InstrTera: -1, MemGB: 1},
		{Name: "nomem", Procs: 1, InstrTera: 1, MemGB: 0},
		{Name: "empty", Procs: 1, MemGB: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q validated but should not", p.Name)
		}
	}
}

func TestAllPresetsValidate(t *testing.T) {
	all := append(NPB(), LAMMPS(32), LAMMPS(128))
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BT", "SP", "LU", "FT", "IS", "BTIO", "LAMMPS-32", "LAMMPS-128"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("HPL"); ok {
		t.Error("ByName found a workload that should not exist")
	}
}

func TestIntraNodeFraction(t *testing.T) {
	cases := []struct {
		ppn, procs int
		want       float64
	}{
		{1, 128, 0},
		{32, 128, 31.0 / 127},
		{128, 128, 1},
		{256, 128, 1}, // clamped
		{4, 1, 1},     // single process: everything is local
	}
	for _, c := range cases {
		if got := intraNodeFraction(c.ppn, c.procs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("intraNodeFraction(%d,%d) = %v, want %v", c.ppn, c.procs, got, c.want)
		}
	}
}

func TestEstimateHoursPositive(t *testing.T) {
	for _, p := range NPB() {
		for _, it := range cloud.DefaultCatalog() {
			if h := EstimateHours(p, it); h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
				t.Errorf("%s on %s: EstimateHours = %v", p.Name, it.Name, h)
			}
		}
	}
}

func TestEstimateHoursIntCeil(t *testing.T) {
	p := BT()
	it := cloud.CC28XLarge
	h := EstimateHours(p, it)
	hi := EstimateHoursInt(p, it)
	if float64(hi) < h || float64(hi)-h >= 1 {
		t.Fatalf("EstimateHoursInt = %d does not ceil %v", hi, h)
	}
}

// TestComputeIntensiveParetoFrontier checks the load-bearing calibration:
// for BT/SP/LU the four types form a strict cost/time Pareto frontier
// (paper Figure 7: cheaper types are slower; arrows step down cc2.8xlarge
// → c3.xlarge → m1.medium → m1.small as the deadline loosens).
func TestComputeIntensiveParetoFrontier(t *testing.T) {
	order := []cloud.InstanceType{cloud.M1Small, cloud.M1Medium, cloud.C3XLarge, cloud.CC28XLarge}
	for _, p := range []Profile{BT(), SP(), LU()} {
		for i := 1; i < len(order); i++ {
			slow, fast := order[i-1], order[i]
			tSlow, tFast := EstimateHours(p, slow), EstimateHours(p, fast)
			cSlow, cFast := onDemandCost(p, slow), onDemandCost(p, fast)
			if tFast >= tSlow {
				t.Errorf("%s: %s (%.1fh) not faster than %s (%.1fh)",
					p.Name, fast.Name, tFast, slow.Name, tSlow)
			}
			if cFast <= cSlow {
				t.Errorf("%s: %s ($%.0f) not dearer than %s ($%.0f)",
					p.Name, fast.Name, cFast, slow.Name, cSlow)
			}
		}
	}
}

// TestCommIntensiveCC2Dominates checks the paper's Section 5.3.1 finding
// for FT/IS: cc2.8xlarge yields both the minimal monetary cost and the
// shortest execution time.
func TestCommIntensiveCC2Dominates(t *testing.T) {
	for _, p := range []Profile{FT(), IS()} {
		tCC2 := EstimateHours(p, cloud.CC28XLarge)
		cCC2 := onDemandCost(p, cloud.CC28XLarge)
		for _, it := range []cloud.InstanceType{cloud.M1Small, cloud.M1Medium, cloud.C3XLarge} {
			if th := EstimateHours(p, it); th <= tCC2 {
				t.Errorf("%s: %s (%.1fh) beats cc2.8xlarge (%.1fh) on time", p.Name, it.Name, th, tCC2)
			}
			if ch := onDemandCost(p, it); ch <= cCC2 {
				t.Errorf("%s: %s ($%.0f) beats cc2.8xlarge ($%.0f) on cost", p.Name, it.Name, ch, cCC2)
			}
		}
	}
}

// TestIOIntensiveSmallInstancesWin checks the paper's BTIO finding:
// m1.small and m1.medium have lower costs AND higher performance than
// cc2.8xlarge thanks to 32x the I/O parallelism.
func TestIOIntensiveSmallInstancesWin(t *testing.T) {
	p := BTIO()
	tCC2 := EstimateHours(p, cloud.CC28XLarge)
	cCC2 := onDemandCost(p, cloud.CC28XLarge)
	for _, it := range []cloud.InstanceType{cloud.M1Small, cloud.M1Medium} {
		if th := EstimateHours(p, it); th >= tCC2 {
			t.Errorf("BTIO: %s (%.1fh) slower than cc2.8xlarge (%.1fh)", it.Name, th, tCC2)
		}
		if ch := onDemandCost(p, it); ch >= cCC2 {
			t.Errorf("BTIO: %s ($%.0f) dearer than cc2.8xlarge ($%.0f)", it.Name, ch, cCC2)
		}
	}
	// m1.small remains the cheapest option (Figure 7c's switch target).
	if onDemandCost(p, cloud.M1Small) >= onDemandCost(p, cloud.M1Medium) {
		t.Error("BTIO: m1.small should be cheaper than m1.medium")
	}
}

// TestLAMMPSClassShift checks the paper's LAMMPS observation: at 32
// processes small instances are cost-effective; at 128 processes the run
// is communication-bound and cc2.8xlarge becomes the best choice.
func TestLAMMPSClassShift(t *testing.T) {
	small := LAMMPS(32)
	if c := onDemandCost(small, cloud.M1Small); c >= onDemandCost(small, cloud.CC28XLarge) {
		t.Errorf("LAMMPS-32: m1.small ($%.0f) should be cheaper than cc2.8xlarge ($%.0f)",
			c, onDemandCost(small, cloud.CC28XLarge))
	}
	large := LAMMPS(128)
	cheapest := ""
	best := math.Inf(1)
	for _, it := range cloud.DefaultCatalog() {
		if c := onDemandCost(large, it); c < best {
			best, cheapest = c, it.Name
		}
	}
	if cheapest != cloud.CC28XLarge.Name {
		t.Errorf("LAMMPS-128: cheapest type is %s, want cc2.8xlarge", cheapest)
	}
}

func TestLAMMPSPanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LAMMPS(0) did not panic")
		}
	}()
	LAMMPS(0)
}

func TestCheckpointOverheadSmallVsRuntime(t *testing.T) {
	// Checkpoints must cost a small fraction of an hour; otherwise the
	// hour-discretized model and the Young/Daly interval break down.
	for _, p := range NPB() {
		for _, it := range cloud.DefaultCatalog() {
			o := CheckpointHours(p, it)
			if o <= 0 || o > 0.25 {
				t.Errorf("%s on %s: checkpoint overhead %vh out of range", p.Name, it.Name, o)
			}
			r := RecoveryHours(p, it)
			if r <= o {
				t.Errorf("%s on %s: recovery %vh not greater than checkpoint %vh", p.Name, it.Name, r, o)
			}
		}
	}
}

func TestEstimateMonotoneInWork(t *testing.T) {
	f := func(extraRaw float64) bool {
		extra := math.Mod(math.Abs(extraRaw), 10000)
		base := BT()
		more := base
		more.InstrTera += extra
		return EstimateHours(more, cloud.M1Small) >= EstimateHours(base, cloud.M1Small)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EstimateHours on invalid profile did not panic")
		}
	}()
	EstimateHours(Profile{Name: "bad", Procs: -1, MemGB: 1}, cloud.M1Small)
}

func TestBaselineIsCC2ForCompute(t *testing.T) {
	// The paper's Baseline runs on the type with minimal execution time;
	// for compute- and communication-intensive NPB kernels that must be
	// cc2.8xlarge, while BTIO's best performer is a small type.
	for _, p := range []Profile{BT(), SP(), LU(), FT(), IS()} {
		best, name := math.Inf(1), ""
		for _, it := range cloud.DefaultCatalog() {
			if h := EstimateHours(p, it); h < best {
				best, name = h, it.Name
			}
		}
		if name != cloud.CC28XLarge.Name {
			t.Errorf("%s: fastest type %s, want cc2.8xlarge", p.Name, name)
		}
	}
}
