package app

import "fmt"

// Preset workloads matching the paper's evaluation (Section 5.1): NPB 2.4
// kernels at 128 processes, CLASS B, each run 100–200 times back to back
// ("to extend to large scale computing"), plus LAMMPS. Volumes are
// synthetic campaign aggregates calibrated so that each kernel exhibits
// its paper-reported class behaviour on the DefaultCatalog fleet:
//
//   - BT/SP/LU (computation-intensive): the four types form a cost/time
//     Pareto frontier — m1.small cheapest and slowest, cc2.8xlarge fastest
//     and dearest (drives Figure 7's type-switch arrows).
//   - FT/IS (communication-intensive): cc2.8xlarge wins both cost and time
//     thanks to 10 GbE plus 32 intra-node ranks.
//   - BTIO (io-intensive): many small instances win on aggregate disk
//     parallelism; cc2.8xlarge is worst on both axes.

// BT is the NPB Block Tri-diagonal solver campaign (computation-intensive).
func BT() Profile {
	return Profile{
		Name: "BT", Class: Computation, Procs: 128,
		InstrTera: 18000, SendGB: 26000, RecvGB: 26000,
		IOSeqGB: 500, IORndGB: 0, MemGB: 120,
	}
}

// SP is the NPB Scalar Penta-diagonal solver campaign
// (computation-intensive, chattier than BT).
func SP() Profile {
	return Profile{
		Name: "SP", Class: Computation, Procs: 128,
		InstrTera: 16000, SendGB: 30000, RecvGB: 30000,
		IOSeqGB: 400, IORndGB: 0, MemGB: 100,
	}
}

// LU is the NPB Lower-Upper Gauss-Seidel solver campaign
// (computation-intensive, least communication of the three).
func LU() Profile {
	return Profile{
		Name: "LU", Class: Computation, Procs: 128,
		InstrTera: 19000, SendGB: 23000, RecvGB: 23000,
		IOSeqGB: 400, IORndGB: 0, MemGB: 90,
	}
}

// FT is the NPB 3-D Fast Fourier Transform campaign
// (communication-intensive: all-to-all transposes).
func FT() Profile {
	return Profile{
		Name: "FT", Class: Communication, Procs: 128,
		InstrTera: 2800, SendGB: 130000, RecvGB: 130000,
		IOSeqGB: 300, IORndGB: 0, MemGB: 180,
	}
}

// IS is the NPB Integer Sort campaign (communication-intensive: bucket
// redistribution).
func IS() Profile {
	return Profile{
		Name: "IS", Class: Communication, Procs: 128,
		InstrTera: 1200, SendGB: 70000, RecvGB: 70000,
		IOSeqGB: 200, IORndGB: 0, MemGB: 60,
	}
}

// BTIO is the NPB BT solver with the full MPI-IO output subtype
// (io-intensive).
func BTIO() Profile {
	return Profile{
		Name: "BTIO", Class: IO, Procs: 128,
		InstrTera: 6000, SendGB: 10000, RecvGB: 10000,
		IOSeqGB: 160000, IORndGB: 8000, MemGB: 150,
	}
}

// LAMMPS is the molecular-dynamics campaign with a fixed problem size and
// a configurable process count (the paper varies 32 and 128, Section
// 5.3.1). With few processes each rank owns many atoms and the run is
// computation-intensive; with many processes the halo-exchange volume
// grows and the run turns communication-intensive — reproducing the
// paper's observation that the best instance type shifts from small/cheap
// to cc2.8xlarge as the process count grows.
func LAMMPS(procs int) Profile {
	if procs <= 0 {
		panic(fmt.Sprintf("app: LAMMPS with non-positive procs %d", procs))
	}
	// Total computation is fixed by the atom count; communication grows
	// superlinearly with the process count as domains shrink and surface-
	// to-volume ratio rises.
	scale := float64(procs) / 128
	comm := 420000 * scale * scale
	class := Computation
	if procs >= 96 {
		class = Communication
	}
	return Profile{
		Name: fmt.Sprintf("LAMMPS-%d", procs), Class: class, Procs: procs,
		InstrTera: 6000, SendGB: comm / 2, RecvGB: comm / 2,
		IOSeqGB: 300, IORndGB: 0, MemGB: 140,
	}
}

// NPB returns the six NPB campaign profiles in the paper's order.
func NPB() []Profile {
	return []Profile{BT(), SP(), LU(), FT(), IS(), BTIO()}
}

// ByName returns the preset with the given name (NPB kernels plus
// "LAMMPS-32"/"LAMMPS-128") and true, or a zero profile and false.
func ByName(name string) (Profile, bool) {
	for _, p := range NPB() {
		if p.Name == name {
			return p, true
		}
	}
	switch name {
	case "LAMMPS-32":
		return LAMMPS(32), true
	case "LAMMPS-128":
		return LAMMPS(128), true
	}
	return Profile{}, false
}
