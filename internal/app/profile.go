// Package app models the MPI applications the paper evaluates: TAU-style
// resource profiles, the analytic execution-time estimator of Section 4.4
// (CPU + network + I/O time), checkpoint/recovery overhead models, and
// preset workloads for the NPB kernels and LAMMPS.
package app

import (
	"fmt"
	"math"

	"sompi/internal/cloud"
)

// Class labels the paper's three workload categories (Section 5.1).
type Class string

const (
	Computation   Class = "computation-intensive"
	Communication Class = "communication-intensive"
	IO            Class = "io-intensive"
)

// Profile is the paper's application profile
// ⟨#instr, Data_send, Data_recv, IO_seq, IO_rnd⟩ (Section 4.4,
// "Profiling"), plus the process count and memory footprint needed for the
// checkpoint model. The volumes are aggregates over the whole job — the
// paper runs each NPB kernel 100–200 times back to back "to extend to
// large scale computing", so a profile represents that full campaign.
type Profile struct {
	// Name identifies the application, e.g. "BT".
	Name string
	// Class is the paper's workload category, used only for reporting.
	Class Class
	// Procs is the number of MPI processes (the paper fixes 128 for NPB).
	Procs int
	// InstrTera is the total instruction count in units of 10^12.
	InstrTera float64
	// SendGB and RecvGB are the total MPI payload volumes in GB.
	SendGB, RecvGB float64
	// IOSeqGB and IORndGB are the sequential and random local-disk I/O
	// volumes in GB.
	IOSeqGB, IORndGB float64
	// MemGB is the aggregate resident footprint across all ranks in GB —
	// the size of one coordinated checkpoint.
	MemGB float64
}

// Validate reports an error when the profile is not executable.
func (p Profile) Validate() error {
	switch {
	case p.Procs <= 0:
		return fmt.Errorf("app %s: non-positive process count %d", p.Name, p.Procs)
	case p.InstrTera < 0 || p.SendGB < 0 || p.RecvGB < 0 || p.IOSeqGB < 0 || p.IORndGB < 0:
		return fmt.Errorf("app %s: negative resource volume", p.Name)
	case p.MemGB <= 0:
		return fmt.Errorf("app %s: non-positive memory footprint", p.Name)
	case p.InstrTera == 0 && p.SendGB+p.RecvGB == 0 && p.IOSeqGB+p.IORndGB == 0:
		return fmt.Errorf("app %s: profile has no work at all", p.Name)
	}
	return nil
}

// Scale returns a copy of the profile with frac of the work remaining:
// all resource volumes are scaled, the footprint (and hence checkpoint
// size) is not. The adaptive optimizer (Algorithm 1) re-plans each
// optimization window against the residual profile. frac must be in
// (0, 1].
func (p Profile) Scale(frac float64) Profile {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("app %s: scale fraction %v outside (0,1]", p.Name, frac))
	}
	p.InstrTera *= frac
	p.SendGB *= frac
	p.RecvGB *= frac
	p.IOSeqGB *= frac
	p.IORndGB *= frac
	return p
}

// intraNodeFraction estimates the fraction of MPI traffic that stays
// inside one instance and therefore moves through shared memory instead of
// the network: the probability that a uniformly chosen communication peer
// lives on the same node. This is the effect that makes cc2.8xlarge
// (32 ranks per node) excel on communication-intensive kernels (Section
// 5.3.1): "many processes in cc2.8xlarge are running in the same instance
// and they utilize shared memory instead of exchanging message through the
// network".
func intraNodeFraction(procsPerNode, procs int) float64 {
	if procs <= 1 {
		return 1
	}
	if procsPerNode > procs {
		procsPerNode = procs
	}
	return float64(procsPerNode-1) / float64(procs-1)
}

// EstimateHours predicts the productive execution time of the profile on a
// fleet of the given instance type, in hours — the paper's T_d / T_i.
// Per Section 4.4 the estimate is the sum of CPU, network and I/O time:
//
//	CPU  = #instr / (procs × per-core rate)
//	Net  = inter-node bytes / aggregate effective network bandwidth
//	I/O  = io bytes / aggregate disk bandwidth
func EstimateHours(p Profile, it cloud.InstanceType) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	instances := it.InstancesFor(p.Procs)

	// CPU: one rank per core at the type's effective per-core rate.
	cpuSec := p.InstrTera * 1000 / (float64(p.Procs) * it.GIPS)

	// Network: traffic that crosses node boundaries over the aggregate
	// effective bandwidth of all NICs.
	procsPerNode := it.Cores
	inter := 1 - intraNodeFraction(procsPerNode, p.Procs)
	aggGBps := float64(instances) * it.NetGbps * it.NetEff / 8
	netSec := 0.0
	if comm := (p.SendGB + p.RecvGB) * inter; comm > 0 {
		netSec = comm / aggGBps
	}

	// I/O: aggregate disk bandwidth scales with the instance count, which
	// is why 128 m1.small beat 4 cc2.8xlarge on BTIO.
	ioSec := 0.0
	if p.IOSeqGB > 0 {
		ioSec += p.IOSeqGB * 1024 / (float64(instances) * it.IOSeqMBps)
	}
	if p.IORndGB > 0 {
		ioSec += p.IORndGB * 1024 / (float64(instances) * it.IORndMBps)
	}

	return (cpuSec + netSec + ioSec) / 3600
}

// EstimateHoursInt returns EstimateHours rounded up to a whole hour, the
// discretization the paper's model applies to T_i (failure times are
// floored to integer hours, and T_i is the completion index).
func EstimateHoursInt(p Profile, it cloud.InstanceType) int {
	h := int(math.Ceil(EstimateHours(p, it)))
	if h < 1 {
		h = 1
	}
	return h
}

// CheckpointHours estimates the overhead O_i of one coordinated checkpoint
// on a fleet of the given type: every instance streams its share of the
// footprint to the object store in parallel, plus a fixed coordination
// barrier. BLCR-style system-level checkpointing adds no cost between
// checkpoints (Section 4.4), so this is the entire overhead.
func CheckpointHours(p Profile, it cloud.InstanceType) float64 {
	instances := it.InstancesFor(p.Procs)
	perInstGB := p.MemGB / float64(instances)
	upGBps := it.NetGbps * it.NetEff / 8
	const barrier = 30.0 / 3600 // coordination + quiesce, 30 s
	return perInstGB/upGBps/3600 + barrier
}

// RecoveryHours estimates the overhead R_i of restarting from the last
// checkpoint on a fleet of the given type: re-acquiring instances, pulling
// the checkpoint back from the store, and restarting the MPI job.
func RecoveryHours(p Profile, it cloud.InstanceType) float64 {
	const acquire = 180.0 / 3600 // instance provisioning, 3 min
	return CheckpointHours(p, it) + acquire
}
