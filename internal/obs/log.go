package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Format selects the log line encoding.
type Format int8

const (
	// FormatText renders "ts LEVEL msg key=value ...".
	FormatText Format = iota
	// FormatNDJSON renders one JSON object per line.
	FormatNDJSON
)

// ParseFormat resolves a format name (text, ndjson).
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text":
		return FormatText, nil
	case "ndjson", "json":
		return FormatNDJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q", s)
}

// Logger is a leveled structured logger. Methods take a message plus
// alternating key/value pairs; a nil *Logger discards everything, so
// optional logging never needs a call-site branch.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	format Format
}

// NewLogger builds a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{w: w, level: level, format: format}
}

// Enabled reports whether the logger would emit at the given level.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	var line []byte
	switch l.format {
	case FormatNDJSON:
		// Keys land in a flat object after the fixed ts/level/msg fields.
		// Marshal through a map is tempting but loses order; build the
		// object by hand, JSON-encoding each piece.
		var b strings.Builder
		b.WriteString(`{"ts":`)
		b.Write(jsonEnc(ts))
		b.WriteString(`,"level":`)
		b.Write(jsonEnc(level.String()))
		b.WriteString(`,"msg":`)
		b.Write(jsonEnc(msg))
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(',')
			b.Write(jsonEnc(fmt.Sprint(kv[i])))
			b.WriteByte(':')
			b.Write(jsonEnc(kv[i+1]))
		}
		if len(kv)%2 == 1 {
			b.WriteString(`,"!BADKEY":`)
			b.Write(jsonEnc(kv[len(kv)-1]))
		}
		b.WriteString("}\n")
		line = []byte(b.String())
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "%s %-5s %s", ts, strings.ToUpper(level.String()), msg)
		for i := 0; i+1 < len(kv); i += 2 {
			fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
		}
		if len(kv)%2 == 1 {
			fmt.Fprintf(&b, " !BADKEY=%v", kv[len(kv)-1])
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

// jsonEnc encodes one value as JSON, falling back to its fmt rendering
// when the value does not marshal (channels, funcs, NaN floats).
func jsonEnc(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return b
}
