package obs_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sompi/internal/obs"
)

// bucketOf returns the index of the bucket holding v: the first bound
// >= v, or len(bounds) for the overflow bucket. This mirrors
// Histogram.Observe's placement rule (upper bounds are inclusive).
func bucketOf(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// exactQuantile is the nearest-rank quantile of a sorted sample: the
// k-th smallest value with k = ceil(q*n), clamped to [1, n].
func exactQuantile(sorted []float64, q float64) float64 {
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// checkQuantileProperty asserts the histogram estimate for q lands in
// the same bucket as the exact nearest-rank sample quantile — i.e. the
// estimate is within one bucket boundary of the truth. For samples in
// the overflow bucket the documented contract is the largest finite
// bound.
func checkQuantileProperty(t *testing.T, samples []float64, q float64) {
	t.Helper()
	bounds := obs.DefaultLatencyBounds
	h := obs.NewHistogram(nil)
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	exact := exactQuantile(sorted, q)
	est := h.Quantile(q)
	b := bucketOf(bounds, exact)

	if b == len(bounds) { // overflow: estimate must be the largest finite bound
		if est != bounds[len(bounds)-1] {
			t.Fatalf("q=%.2f n=%d: exact %.6g is in overflow, estimate %.6g != last bound %.6g",
				q, len(samples), exact, est, bounds[len(bounds)-1])
		}
		return
	}
	lo := 0.0
	if b > 0 {
		lo = bounds[b-1]
	}
	hi := bounds[b]
	if est < lo || est > hi {
		t.Fatalf("q=%.2f n=%d: estimate %.6g outside exact quantile's bucket (%.6g, %.6g], exact %.6g",
			q, len(samples), est, lo, hi, exact)
	}
}

// TestQuantileWithinOneBucketOfExact is the property test the replay
// harness's latency gates rest on: for arbitrary latency samples, the
// histogram-derived p50/p90/p99 never strays further from the exact
// sorted-sample quantile than one bucket boundary.
func TestQuantileWithinOneBucketOfExact(t *testing.T) {
	quantiles := []float64{0.50, 0.90, 0.99}
	rng := rand.New(rand.NewSource(9))

	gens := map[string]func(n int) []float64{
		// Uniform over the full finite bucket range.
		"uniform": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.Float64() * 60
			}
			return out
		},
		// Log-uniform: every bucket of the ~2.5x ladder gets traffic.
		"loguniform": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = math.Exp(math.Log(0.0001) + rng.Float64()*(math.Log(80)-math.Log(0.0001)))
			}
			return out
		},
		// Exponential around a few ms — the realistic serve-latency shape.
		"exponential": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.ExpFloat64() * 0.004
			}
			return out
		},
		// Heavy tail past the 60s bound to exercise the overflow contract.
		"overflow": func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = 30 + rng.Float64()*120
			}
			return out
		},
	}

	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				n := 1 + rng.Intn(500)
				samples := gen(n)
				for _, q := range quantiles {
					checkQuantileProperty(t, samples, q)
				}
			}
		})
	}
}

// TestQuantileSingleObservation pins the degenerate cases the property
// loop can race past: one sample, and identical samples.
func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []float64{0.0001, 0.003, 0.7, 59, 1000} {
		samples := []float64{v, v, v}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			checkQuantileProperty(t, samples, q)
		}
	}
}
