// Package obs is the repo's dependency-free observability layer:
// context-propagated spans collected into a bounded in-memory ring (the
// flight recorder behind GET /debug/trace), fixed-bucket latency
// histograms with quantile estimation (internal/serve's /metrics), and
// leveled structured logging in text or NDJSON.
//
// The design constraint is that *uninstrumented* callers pay nothing: a
// context without a Collector makes StartSpan return a nil *Span, every
// method on a nil *Span is a no-op, and the fast path performs no
// allocations and no clock reads (cmd/bench -obscheck enforces a ≤2%
// overhead budget on the κ-subset search). Instrumented paths pay one
// small allocation per span plus a mutex-guarded ring push at End.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRing is the span ring capacity a zero Config gets: enough to
// hold the full span tree of a few hundred requests.
const DefaultRing = 4096

// idPrefix makes request and trace IDs unique across processes; the
// per-process counter makes them unique within one.
var (
	idPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// The clock is a fine fallback for an ID prefix; collisions
			// only blur trace grouping, they cannot corrupt state.
			return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// NewRequestID returns a process-unique request identifier, used as the
// trace ID for every span a request produces.
func NewRequestID() string {
	return fmt.Sprintf("r%s-%06d", idPrefix, idSeq.Add(1))
}

// Attr is one key/value annotation on a span. Values are strings on
// purpose: spans are a debugging trail, not a metrics pipeline, and a
// single concrete type keeps SpanData trivially JSON-encodable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is one completed span as stored in the ring and rendered by
// /debug/trace. SpanID/ParentID let a client rebuild the tree; TraceID
// groups every span of one request (or one offline optimization).
type SpanData struct {
	TraceID    string    `json:"trace_id"`
	SpanID     uint64    `json:"span_id"`
	ParentID   uint64    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Err        string    `json:"error,omitempty"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Span is one in-flight operation. A nil *Span is the disabled state:
// every method no-ops, so call sites never branch. A span belongs to the
// goroutine that started it — annotate and End from that goroutine only
// (children started elsewhere are their own spans).
type Span struct {
	c    *Collector
	data SpanData
	done bool
}

// AttrStr annotates the span with a string value.
func (s *Span) AttrStr(key, value string) {
	if s == nil || s.done {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{key, value})
}

// AttrInt annotates the span with an integer value.
func (s *Span) AttrInt(key string, value int64) {
	if s == nil || s.done {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{key, strconv.FormatInt(value, 10)})
}

// AttrFloat annotates the span with a float value.
func (s *Span) AttrFloat(key string, value float64) {
	if s == nil || s.done {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{key, strconv.FormatFloat(value, 'g', -1, 64)})
}

// Fail records the span's error.
func (s *Span) Fail(err error) {
	if s == nil || s.done || err == nil {
		return
	}
	s.data.Err = err.Error()
}

// End stamps the duration and pushes the span into the collector's ring.
// End is idempotent; a span that is never ended is simply never recorded.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.data.DurationNs = time.Since(s.data.Start).Nanoseconds()
	s.c.ring.push(s.data)
}

// TraceID reports the span's trace grouping ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// Collector owns the span ring. One collector serves a whole process;
// handing it to a context (WithCollector) turns span recording on for
// everything downstream of that context.
type Collector struct {
	ring    spanRing
	spanSeq atomic.Uint64
}

// NewCollector builds a collector whose ring retains the most recent
// capacity spans (capacity <= 0 means DefaultRing).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultRing
	}
	c := &Collector{}
	c.ring.buf = make([]SpanData, capacity)
	return c
}

// newSpan starts a span, inheriting trace and parent IDs from parent
// when present and minting a fresh trace ID otherwise.
func (c *Collector) newSpan(name string, parent *Span) *Span {
	sp := &Span{c: c}
	sp.data.SpanID = c.spanSeq.Add(1)
	sp.data.Name = name
	sp.data.Start = time.Now()
	if parent != nil {
		sp.data.TraceID = parent.data.TraceID
		sp.data.ParentID = parent.data.SpanID
	} else {
		sp.data.TraceID = NewRequestID()
	}
	return sp
}

// RecordSpan records an already-completed span directly — for
// instrumentation points that have a start time but no context to thread
// (e.g. cloud.Market.Append, which is called from the ingest hot path).
func (c *Collector) RecordSpan(name string, start time.Time, attrs ...Attr) {
	if c == nil {
		return
	}
	c.ring.push(SpanData{
		TraceID:    NewRequestID(),
		SpanID:     c.spanSeq.Add(1),
		Name:       name,
		Start:      start,
		DurationNs: time.Since(start).Nanoseconds(),
		Attrs:      attrs,
	})
}

// Total reports how many spans have ever been recorded (the ring keeps
// only the most recent capacity of them).
func (c *Collector) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.ring.total()
}

// Spans returns up to limit of the most recent completed spans, oldest
// first, optionally filtered to one trace ID (traceID == "" means all).
// limit <= 0 means the whole ring.
func (c *Collector) Spans(traceID string, limit int) []SpanData {
	if c == nil {
		return nil
	}
	all := c.ring.snapshot()
	if traceID != "" {
		kept := all[:0]
		for _, sd := range all {
			if sd.TraceID == traceID {
				kept = append(kept, sd)
			}
		}
		all = kept
	}
	if limit > 0 && len(all) > limit {
		all = all[len(all)-limit:]
	}
	return all
}

// spanRing is a fixed-capacity circular buffer of completed spans. Push
// is a mutex-guarded copy: spans are small and the lock is held for a
// few stores, so even ingest-rate recording does not contend measurably.
type spanRing struct {
	mu    sync.Mutex
	buf   []SpanData
	next  int
	count uint64 // total pushes ever
}

func (r *spanRing) push(sd SpanData) {
	r.mu.Lock()
	r.buf[r.next] = sd
	r.next = (r.next + 1) % len(r.buf)
	r.count++
	r.mu.Unlock()
}

func (r *spanRing) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// snapshot copies the retained spans, oldest first.
func (r *spanRing) snapshot() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if r.count < uint64(n) {
		n = int(r.count)
		out := make([]SpanData, n)
		copy(out, r.buf[:n])
		return out
	}
	out := make([]SpanData, 0, n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
