package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// DefaultLatencyBounds are the fixed histogram bucket upper bounds in
// seconds used for request latencies: sub-millisecond cache hits through
// the 60s request timeout, roughly 2.5x apart so neighbouring buckets
// stay distinguishable on a log axis. An implicit +Inf bucket follows.
var DefaultLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket, lock-free latency histogram: observation
// is two atomic adds plus a CAS loop for the sum, so the serve hot path
// never takes a lock. Bounds are immutable after construction.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit at the end
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil means DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank. Values in the overflow
// bucket are reported as the largest finite bound — an underestimate,
// which is the conservative direction for a latency SLO readout. Returns
// NaN with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			frac := (target - cum) / c
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// WriteProm writes the histogram as Prometheus exposition sample lines —
// cumulative _bucket series, then _sum and _count — under the given
// metric family name. labels is either empty or a pre-rendered
// `key="value"` list without braces; the caller writes the family's
// # HELP/# TYPE header (once per family, which may span label sets).
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		if labels == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		}
	}
	lb, rb := "{", "}"
	if labels == "" {
		lb, rb = "", ""
	}
	fmt.Fprintf(w, "%s_sum%s%s%s %.9g\n", name, lb, labels, rb, h.Sum())
	fmt.Fprintf(w, "%s_count%s%s%s %d\n", name, lb, labels, rb, h.Count())
}
