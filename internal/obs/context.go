package obs

import "context"

type ctxKey int

const (
	collectorKey ctxKey = iota
	spanKey
)

// WithCollector installs the collector into the context, turning span
// recording on for everything downstream.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey, c)
}

// CollectorFrom returns the context's collector, or nil when tracing is
// disabled. The nil answer is the disabled fast path: one allocation-free
// context lookup.
func CollectorFrom(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey).(*Collector)
	return c
}

// SpanFrom returns the context's active span (nil when none).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan starts a child of the context's active span (a fresh root
// when there is none) and returns a context carrying it. With no
// collector installed it returns (ctx, nil) untouched — no allocation,
// no clock read — and the nil span's methods all no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	c := CollectorFrom(ctx)
	if c == nil {
		return ctx, nil
	}
	sp := c.newSpan(name, SpanFrom(ctx))
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartRoot installs the collector and starts a root span whose trace ID
// is the given request ID — the serve middleware's entry point, which is
// what lets /debug/trace?request_id=... find a request's whole tree.
func StartRoot(ctx context.Context, c *Collector, name, traceID string) (context.Context, *Span) {
	if c == nil {
		return ctx, nil
	}
	ctx = WithCollector(ctx, c)
	sp := c.newSpan(name, nil)
	if traceID != "" {
		sp.data.TraceID = traceID
	}
	return context.WithValue(ctx, spanKey, sp), sp
}
