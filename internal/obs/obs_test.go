package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	c := NewCollector(16)
	ctx, root := StartRoot(context.Background(), c, "http.plan", "req-1")
	if root == nil {
		t.Fatal("root span is nil with a collector installed")
	}
	ctx2, child := StartSpan(ctx, "opt.optimize")
	child.AttrInt("evals", 42)
	child.AttrFloat("cost", 1.5)
	child.AttrStr("stage", "search")
	_, grand := StartSpan(ctx2, "opt.search.worker")
	grand.Fail(errors.New("boom"))
	grand.End()
	child.End()
	root.End()

	spans := c.Spans("req-1", 0)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	// Ring order is completion order: grand, child, root.
	g, ch, r := spans[0], spans[1], spans[2]
	if r.ParentID != 0 || ch.ParentID != r.SpanID || g.ParentID != ch.SpanID {
		t.Fatalf("parent chain broken: root=%+v child=%+v grand=%+v", r, ch, g)
	}
	for _, sd := range spans {
		if sd.TraceID != "req-1" {
			t.Fatalf("span %q trace %q, want req-1", sd.Name, sd.TraceID)
		}
		if sd.DurationNs < 0 {
			t.Fatalf("span %q negative duration", sd.Name)
		}
	}
	if g.Err != "boom" {
		t.Fatalf("grandchild error %q, want boom", g.Err)
	}
	if len(ch.Attrs) != 3 || ch.Attrs[0] != (Attr{"evals", "42"}) {
		t.Fatalf("child attrs %+v", ch.Attrs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	c := NewCollector(8)
	_, sp := StartRoot(context.Background(), c, "x", "")
	sp.End()
	sp.End()
	sp.AttrStr("after", "end") // must not land
	if got := c.Total(); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
	if spans := c.Spans("", 0); len(spans[0].Attrs) != 0 {
		t.Fatalf("attr after End landed: %+v", spans[0].Attrs)
	}
}

func TestRingBounds(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		_, sp := StartRoot(context.Background(), c, fmt.Sprintf("s%d", i), "t")
		sp.End()
	}
	if c.Total() != 10 {
		t.Fatalf("total %d, want 10", c.Total())
	}
	spans := c.Spans("", 0)
	if len(spans) != 4 {
		t.Fatalf("retained %d, want ring capacity 4", len(spans))
	}
	for i, sd := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sd.Name != want {
			t.Fatalf("ring order: span %d is %q, want %q", i, sd.Name, want)
		}
	}
	if got := c.Spans("", 2); len(got) != 2 || got[1].Name != "s9" {
		t.Fatalf("limit 2 returned %+v, want the 2 newest", got)
	}
}

func TestSpansFilterByTrace(t *testing.T) {
	c := NewCollector(16)
	for _, id := range []string{"a", "b", "a"} {
		_, sp := StartRoot(context.Background(), c, "op", id)
		sp.End()
	}
	if got := len(c.Spans("a", 0)); got != 2 {
		t.Fatalf("filter a: %d spans, want 2", got)
	}
	if got := len(c.Spans("nope", 0)); got != 0 {
		t.Fatalf("filter nope: %d spans, want 0", got)
	}
}

// TestDisabledPathZeroAlloc is the tentpole's overhead contract: with no
// collector in the context, starting spans and annotating them allocates
// nothing at all.
func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := StartSpan(ctx, "opt.optimize")
		sp.AttrInt("evals", 7)
		sp.AttrStr("k", "v")
		sp.Fail(nil)
		sp.End()
		_, sp2 := StartSpan(ctx2, "child")
		sp2.End()
		if CollectorFrom(ctx2) != nil {
			t.Fatal("collector appeared from nowhere")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestNilCollectorHelpers(t *testing.T) {
	var c *Collector
	if c.Spans("", 0) != nil || c.Total() != 0 {
		t.Fatal("nil collector must report nothing")
	}
	c.RecordSpan("x", time.Now()) // must not panic
	if ctx, sp := StartRoot(context.Background(), nil, "x", "t"); sp != nil || CollectorFrom(ctx) != nil {
		t.Fatal("StartRoot with nil collector must stay disabled")
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("sum %v, want 106.5", h.Sum())
	}

	var b bytes.Buffer
	h.WriteProm(&b, "m", `endpoint="plan"`)
	out := b.String()
	for _, want := range []string{
		`m_bucket{endpoint="plan",le="1"} 1`,
		`m_bucket{endpoint="plan",le="2"} 3`,
		`m_bucket{endpoint="plan",le="4"} 4`,
		`m_bucket{endpoint="plan",le="+Inf"} 5`,
		`m_sum{endpoint="plan"} 106.5`,
		`m_count{endpoint="plan"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	var nb bytes.Buffer
	h.WriteProm(&nb, "m", "")
	if !strings.Contains(nb.String(), "m_count 5\n") || !strings.Contains(nb.String(), `m_bucket{le="+Inf"} 5`) {
		t.Fatalf("unlabeled exposition wrong:\n%s", nb.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// 100 observations at 0.03s land in the (0.025, 0.05] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.03)
	}
	q := h.Quantile(0.5)
	if q <= 0.025 || q > 0.05 {
		t.Fatalf("median %v outside the observed bucket (0.025, 0.05]", q)
	}
	if q99 := h.Quantile(0.99); q99 < q {
		t.Fatalf("q99 %v below median %v", q99, q)
	}
	// Overflow observations report the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile %v, want clamped to 1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum %v, want 8.0", h.Sum())
	}
}

func TestLoggerNDJSON(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, LevelInfo, FormatNDJSON)
	l.Debug("dropped", "k", 1)
	l.Info("starting", "addr", ":8377", "retain", 96.5, "ok", true)
	l.Error("bad", "odd")

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (debug filtered):\n%s", len(lines), b.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	if rec["level"] != "info" || rec["msg"] != "starting" || rec["addr"] != ":8377" || rec["retain"] != 96.5 || rec["ok"] != true {
		t.Fatalf("ndjson record %+v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Fatalf("ts %v not RFC3339: %v", rec["ts"], err)
	}
	var rec2 map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec2); err != nil {
		t.Fatalf("odd-kv line is not JSON: %v\n%s", err, lines[1])
	}
	if rec2["!BADKEY"] != "odd" {
		t.Fatalf("odd trailing value lost: %+v", rec2)
	}
}

func TestLoggerText(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, LevelWarn, FormatText)
	l.Info("dropped")
	l.Warn("watch out", "market", "m1.small/us-east-1a", "n", 3)
	out := b.String()
	if !strings.Contains(out, "WARN") || !strings.Contains(out, "watch out") ||
		!strings.Contains(out, "market=m1.small/us-east-1a") || !strings.Contains(out, "n=3") {
		t.Fatalf("text line %q", out)
	}
	if strings.Contains(out, "dropped") {
		t.Fatalf("info line leaked past warn level: %q", out)
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info("nothing happens") // must not panic
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestParseLevelFormat(t *testing.T) {
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) must fail")
	}
	if f, err := ParseFormat("ndjson"); err != nil || f != FormatNDJSON {
		t.Fatalf("ParseFormat(ndjson) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat(xml) must fail")
	}
}

// BenchmarkSpanDisabled documents the nil fast path's cost; the real
// budget gate is cmd/bench -obscheck on the optimizer benchmark.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
}

// BenchmarkSpanEnabled is the instrumented path: one span allocation
// plus a ring push.
func BenchmarkSpanEnabled(b *testing.B) {
	c := NewCollector(1024)
	ctx := WithCollector(context.Background(), c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
}
