package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Sample",
		Header: []string{"name", "value"},
	}
	t.Add("alpha", 1.5)
	t.Add("beta", 42)
	t.AddNote("a note with %d arg", 1)
	return t
}

func TestStringLayout(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "== Sample ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Error("missing row content")
	}
	if !strings.Contains(out, "# a note with 1 arg") {
		t.Error("missing note")
	}
	// Columns aligned: every data line has the separator gap.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header row %q not padded", lines[1])
	}
}

func TestAddFormatsFloats(t *testing.T) {
	tab := &Table{Header: []string{"v"}}
	tab.Add(0.123456789)
	if tab.Rows[0][0] != "0.123" {
		t.Errorf("float cell %q, want 3 significant digits", tab.Rows[0][0])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,value\nalpha,1.5\nbeta,42\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Header: []string{"a"}}
	if out := tab.String(); !strings.Contains(out, "a") {
		t.Errorf("empty table render %q", out)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWideCellsExpandColumns(t *testing.T) {
	tab := &Table{Header: []string{"x", "y"}}
	tab.Add("a-very-long-cell-value", "b")
	out := tab.String()
	idx := strings.Index(out, "a-very-long-cell-value")
	if idx < 0 {
		t.Fatal("cell missing")
	}
	// The header underline must be at least as wide as the widest cell.
	lines := strings.Split(out, "\n")
	if len(lines[2]) < len("a-very-long-cell-value") {
		t.Errorf("separator %q narrower than widest cell", lines[2])
	}
}
