// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats cmd/experiments and the benchmark harness emit.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-form lines printed under the table (e.g. the paper's
	// expected shape for comparison).
	Notes []string
}

// Add appends one row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table (header + rows, no title or notes) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
