package mpirt

import (
	"math"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/s3"
)

func newJob(t *testing.T, interval float64) *Job {
	t.Helper()
	j, err := NewJob(app.BT(), cloud.CC28XLarge, interval)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJobValidates(t *testing.T) {
	if _, err := NewJob(app.Profile{Name: "bad"}, cloud.M1Small, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := NewJob(app.BT(), cloud.M1Small, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestRunsToCompletion(t *testing.T) {
	j := newJob(t, 1e9) // checkpoints disabled
	got := j.RunFor(j.TotalHours() + 1)
	if !j.Done() {
		t.Fatal("job not done")
	}
	if math.Abs(got-j.TotalHours()) > 1e-9 {
		t.Fatalf("productive hours %v, want %v", got, j.TotalHours())
	}
	if j.Checkpoints != 0 {
		t.Fatalf("disabled checkpointing still took %d checkpoints", j.Checkpoints)
	}
}

func TestCheckpointCadenceAndOverhead(t *testing.T) {
	j := newJob(t, 2)
	j.RunFor(j.TotalHours() * 2)
	if !j.Done() {
		t.Fatal("job not done")
	}
	wantCk := int(j.TotalHours() / 2)
	if j.Checkpoints < wantCk-1 || j.Checkpoints > wantCk+1 {
		t.Fatalf("Checkpoints = %d, want ~%d", j.Checkpoints, wantCk)
	}
	// Wall clock = productive + checkpoint overhead.
	wantWall := j.TotalHours() + j.CkOverhead
	if math.Abs(j.Now()-wantWall) > 0.01 {
		t.Fatalf("Now = %v, want %v", j.Now(), wantWall)
	}
	// The analytic overhead model must agree with the simulated runtime.
	analytic := app.CheckpointHours(app.BT(), cloud.CC28XLarge) * float64(j.Checkpoints)
	if math.Abs(j.CkOverhead-analytic) > 1e-6 {
		t.Fatalf("simulated overhead %v vs analytic %v", j.CkOverhead, analytic)
	}
}

func TestFailureLosesUnsavedWork(t *testing.T) {
	j := newJob(t, 4)
	j.RunFor(5) // one checkpoint at 4h, ~1h unsaved
	if j.Done() {
		t.Fatal("done too early")
	}
	before := j.Progress()
	j.Fail()
	if j.Progress() >= before {
		t.Fatalf("failure did not lose progress: %v -> %v", before, j.Progress())
	}
	if math.Abs(j.Progress()-j.SavedProgress()) > 1e-12 {
		t.Fatal("post-failure progress differs from saved progress")
	}
}

func TestRestartPaysRecovery(t *testing.T) {
	j := newJob(t, 4)
	j.RunFor(5)
	j.Fail()
	j.Restart()
	if j.Restarts != 1 {
		t.Fatalf("Restarts = %d", j.Restarts)
	}
	if j.ReOverhead <= 0 {
		t.Fatal("no recovery overhead recorded")
	}
	j.RunFor(1000)
	if !j.Done() {
		t.Fatal("job did not finish after restart")
	}
}

func TestFullFailureRestartCycleConservesWork(t *testing.T) {
	j := newJob(t, 2)
	total := 0.0
	for i := 0; i < 200 && !j.Done(); i++ {
		total += j.RunFor(3)
		if !j.Done() {
			j.Fail()
			j.Restart()
		}
	}
	if !j.Done() {
		t.Fatal("job never finished")
	}
	// Productive work re-done after failures means total >= TotalHours.
	if total < j.TotalHours()-1e-6 {
		t.Fatalf("counted %v productive hours, need >= %v", total, j.TotalHours())
	}
}

func TestCheckpointsLandInStore(t *testing.T) {
	var store s3.Store
	j := newJob(t, 2)
	j.Store = &store
	j.RunFor(7)
	if len(store.Keys()) != j.Checkpoints {
		t.Fatalf("store has %d objects, job took %d checkpoints",
			len(store.Keys()), j.Checkpoints)
	}
	if store.TotalGB() <= 0 {
		t.Fatal("checkpoints have no size")
	}
}

func TestRunForNegativePanics(t *testing.T) {
	j := newJob(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	j.RunFor(-1)
}

func TestDoneJobIsInert(t *testing.T) {
	j := newJob(t, 1e9)
	j.RunFor(1e6)
	if got := j.RunFor(10); got != 0 {
		t.Fatalf("done job made progress %v", got)
	}
	j.Fail()
	if !j.Done() {
		t.Fatal("Fail un-did completion")
	}
}
