// Package mpirt is a discrete-event simulated MPI runtime: ranks
// iterating through compute/communicate phases, BLCR-style coordinated
// checkpointing to a simulated S3 store, whole-job failure on any rank
// loss (the MPI fault model the paper assumes: "the failure of one MPI
// process usually causes the failure of the entire MPI application"), and
// restart from the last durable checkpoint.
//
// The analytic model (internal/app, internal/model) uses closed-form
// overheads; this runtime exists to validate those closed forms against
// an executable system and to give the examples a tangible substrate.
package mpirt

import (
	"fmt"
	"math"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/des"
	"sompi/internal/s3"
)

// Job runs one MPI application campaign on a fleet of one instance type.
type Job struct {
	Profile  app.Profile
	Instance cloud.InstanceType
	// Interval is the coordinated checkpoint interval in hours of
	// productive progress; >= the total runtime disables checkpointing.
	Interval float64
	// Store receives checkpoint images; nil means checkpoints are kept
	// but not billed.
	Store *s3.Store

	sim *des.Sim

	// state
	totalHours float64 // productive hours required
	progress   float64 // productive hours completed
	saved      float64 // checkpoint-durable productive hours
	running    bool
	done       bool

	// accounting
	Checkpoints int
	Restarts    int
	CkOverhead  float64 // wall hours spent checkpointing
	ReOverhead  float64 // wall hours spent recovering
}

// NewJob builds a job and validates its pieces.
func NewJob(p app.Profile, it cloud.InstanceType, interval float64) (*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("mpirt: non-positive checkpoint interval %v", interval)
	}
	return &Job{
		Profile:    p,
		Instance:   it,
		Interval:   interval,
		sim:        &des.Sim{},
		totalHours: app.EstimateHours(p, it),
	}, nil
}

// TotalHours reports the productive time the job needs.
func (j *Job) TotalHours() float64 { return j.totalHours }

// Progress reports the completed fraction.
func (j *Job) Progress() float64 { return j.progress / j.totalHours }

// SavedProgress reports the checkpoint-durable fraction.
func (j *Job) SavedProgress() float64 { return j.saved / j.totalHours }

// Done reports completion.
func (j *Job) Done() bool { return j.done }

// Now reports the job's wall clock in hours.
func (j *Job) Now() float64 { return j.sim.Now() }

// checkpointCost is the wall time of one coordinated checkpoint.
func (j *Job) checkpointCost() float64 {
	return app.CheckpointHours(j.Profile, j.Instance)
}

// RunFor advances the job by wall hours of execution: productive segments
// punctuated by coordinated checkpoints. It returns the productive hours
// gained. The job must not be mid-failure.
func (j *Job) RunFor(wall float64) float64 {
	if wall < 0 {
		panic(fmt.Sprintf("mpirt: negative run duration %v", wall))
	}
	if j.done {
		return 0
	}
	j.running = true
	startProgress := j.progress
	deadline := j.sim.Now() + wall

	// Schedule the work loop: alternate productive slices and checkpoint
	// barriers on the event queue.
	var step func()
	step = func() {
		if !j.running || j.done || j.sim.Now() >= deadline {
			return
		}
		sinceCk := j.progress - j.saved
		untilCk := math.Inf(1)
		if j.Interval < j.totalHours {
			untilCk = j.Interval - sinceCk
		}
		untilDone := j.totalHours - j.progress
		untilWindow := deadline - j.sim.Now()
		slice := math.Min(untilWindow, math.Min(untilCk, untilDone))
		if slice < 0 {
			slice = 0
		}
		j.sim.After(slice, func() {
			j.progress += slice
			switch {
			case j.progress >= j.totalHours-1e-12:
				j.done = true
				j.running = false
			case j.Interval < j.totalHours && j.progress-j.saved >= j.Interval-1e-12:
				// Coordinated checkpoint barrier: all ranks quiesce, dump
				// and upload in parallel.
				cost := j.checkpointCost()
				j.sim.After(cost, func() {
					j.CkOverhead += cost
					j.saved = j.progress
					j.Checkpoints++
					if j.Store != nil {
						key := fmt.Sprintf("%s/ck-%04d", j.Profile.Name, j.Checkpoints)
						_ = j.Store.Put(key, j.Profile.MemGB, j.sim.Now())
					}
					step()
				})
			default:
				step()
			}
		})
	}
	step()
	// Drain the queue instead of des.Sim.Run so the clock stops at the
	// completion instant rather than advancing to an unused window end.
	for j.sim.Pending() > 0 {
		j.sim.Step()
	}
	j.running = false
	return j.progress - startProgress
}

// Fail kills the whole job (any rank loss aborts an MPI application):
// unsaved progress is lost.
func (j *Job) Fail() {
	if j.done {
		return
	}
	j.running = false
	j.progress = j.saved
}

// Restart resumes the job from its last checkpoint, paying the recovery
// overhead (fleet re-acquisition plus checkpoint download and restore).
func (j *Job) Restart() {
	if j.done {
		return
	}
	cost := app.RecoveryHours(j.Profile, j.Instance)
	j.sim.After(cost, func() {
		j.ReOverhead += cost
		j.Restarts++
	})
	j.sim.Run(j.sim.Now() + cost)
}
