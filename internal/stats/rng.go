// Package stats provides the deterministic random-number generation,
// histogram and summary-statistics primitives used by every other package
// in the SOMPI reproduction.
//
// All randomness in the repository flows through RNG so that every
// experiment is reproducible given its seed; no package uses math/rand's
// global state.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator built on
// splitmix64. It is deliberately not safe for concurrent use; simulation
// code that fans out creates one RNG per goroutine via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams on every platform.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent's subsequent output, which lets concurrent
// simulation replicas share a single top-level seed.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// StreamRNG derives the stream-th generator from seed without any shared
// state, so concurrent workers can each own a stream chosen by index
// rather than by spawn order. The derivation advances the splitmix64
// state by stream golden-ratio increments: stream i's first output equals
// the (i+1)-th output of NewRNG(seed), which makes any computation that
// draws a bounded, known number of values per stream (e.g. one start
// point per Monte Carlo replication) identical to a single sequential
// generator — and therefore independent of how streams are distributed
// across workers. Streams at adjacent indices overlap after the first
// draw; callers that need many draws per stream should use Split instead.
func StreamRNG(seed, stream uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15*stream}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Simulation accuracy, not tail precision, is the goal here.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normal variate with the given location and scale
// parameters of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp returns an exponential variate with the given rate (events per unit
// time). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
