package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSummaryMergeEqualsWhole is the Merge property test: splitting a
// sample at any point, summarizing the pieces and merging them in order
// must reproduce the whole-sample summary bit-for-bit — Merge replays
// the Add sequence, so even the floating-point moments are exact.
func TestSummaryMergeEqualsWhole(t *testing.T) {
	prop := func(seed uint64, n uint8, cut uint8) bool {
		rng := NewRNG(seed)
		vals := make([]float64, int(n)+1)
		for i := range vals {
			vals[i] = rng.LogNormal(0, 1.5)
		}
		k := int(cut) % len(vals)

		var whole, left, right Summary
		for _, v := range vals {
			whole.Add(v)
		}
		for _, v := range vals[:k] {
			left.Add(v)
		}
		for _, v := range vals[k:] {
			right.Add(v)
		}
		left.Merge(&right)

		if left.N() != whole.N() || left.Mean() != whole.Mean() ||
			left.Var() != whole.Var() || left.Min() != whole.Min() ||
			left.Max() != whole.Max() {
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if left.Quantile(q) != whole.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSummaryMergeThreeWay checks associativity over several pieces and
// that merging empty summaries (in either direction) is a no-op.
func TestSummaryMergeThreeWay(t *testing.T) {
	rng := NewRNG(99)
	var whole Summary
	parts := make([]Summary, 3)
	for i := 0; i < 31; i++ {
		v := rng.Float64() * 100
		whole.Add(v)
		parts[i%3].Add(v)
	}
	// Out-of-order interleave above: only moments and order statistics
	// (not insertion order) are comparable.
	var acc Summary
	var empty Summary
	acc.Merge(&empty)
	for i := range parts {
		acc.Merge(&parts[i])
	}
	acc.Merge(&empty)
	acc.Merge(nil)
	if acc.N() != whole.N() || math.Abs(acc.Mean()-whole.Mean()) > 1e-9 ||
		math.Abs(acc.Var()-whole.Var()) > 1e-9 ||
		acc.Min() != whole.Min() || acc.Max() != whole.Max() ||
		acc.Median() != whole.Median() {
		t.Errorf("three-way merge diverged: %v vs %v", acc.String(), whole.String())
	}
}

// TestStreamRNGMatchesSequential pins the StreamRNG contract that
// parallel Monte Carlo relies on: stream i's first draw equals the
// (i+1)-th draw of a single sequential generator with the same seed.
func TestStreamRNGMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{0, 7, 1 << 40} {
		seq := NewRNG(seed)
		for i := 0; i < 50; i++ {
			want := seq.Float64()
			if got := StreamRNG(seed, uint64(i)).Float64(); got != want {
				t.Fatalf("seed %d stream %d: %v != sequential %v", seed, i, got, want)
			}
		}
	}
}
