package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports their moments and
// order statistics. The zero value is ready to use.
type Summary struct {
	values []float64
	sum    float64
	sumSq  float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// Merge folds every observation recorded in other into s, as if each had
// been Added individually in other's insertion order. Merging the pieces
// of a partitioned sample in partition order therefore reproduces the
// unpartitioned summary exactly, which is what lets parallel Monte Carlo
// workers accumulate locally and combine at the end.
func (s *Summary) Merge(other *Summary) {
	if other == nil || len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	// Re-accumulate value by value rather than adding other's partial
	// sums: float addition is not associative, and replaying the exact
	// sequence of Add operations keeps the merged moments bit-identical
	// to an unpartitioned summary (the worker-count-independence
	// guarantee of parallel Monte Carlo).
	for _, v := range other.values {
		s.sum += v
		s.sumSq += v * v
	}
	s.sorted = false
}

// N reports the number of observations recorded.
func (s *Summary) N() int { return len(s.values) }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Var reports the population variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/n - m*m
	if v < 0 { // guard against catastrophic cancellation
		return 0
	}
	return v
}

// Std reports the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation, or +Inf with none.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return math.Inf(1)
	}
	s.ensureSorted()
	return s.values[0]
}

// Max reports the largest observation, or -Inf with none.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return math.Inf(-1)
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Quantile reports the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It panics if q is outside [0,1] and returns 0
// with no observations.
func (s *Summary) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median reports the 0.5 quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g max=%.4g",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Median(), s.Max())
}
