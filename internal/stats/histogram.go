package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into equal-width bins over [Lo, Hi).
// Observations below Lo land in the first bin and observations at or above
// Hi land in the last bin, so total mass is never lost; the paper's spot
// price histograms (Figure 2) need exactly this clamping because spike
// prices exceed any fixed axis.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi).
// It panics on a non-positive bin count or an empty interval.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: histogram interval [%v,%v) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.Counts[h.binOf(v)]++
	h.total++
}

func (h *Histogram) binOf(v float64) int {
	if v < h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Counts) - 1
	}
	bin := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if bin >= len(h.Counts) { // float edge case at v just below Hi
		bin = len(h.Counts) - 1
	}
	return bin
}

// Total reports the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// BinWidth reports the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density reports the fraction of observations in bin i.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Densities returns the per-bin fractions as a slice.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Density(i)
	}
	return out
}

// Distance reports the L1 (total variation x2) distance between the
// densities of two histograms with identical geometry. It panics if the
// geometries differ. The paper's "stable spot price distribution" claim
// (Figure 2) is quantified with this metric.
func (h *Histogram) Distance(o *Histogram) float64 {
	if len(h.Counts) != len(o.Counts) || h.Lo != o.Lo || h.Hi != o.Hi {
		panic("stats: histogram geometries differ")
	}
	var d float64
	for i := range h.Counts {
		d += math.Abs(h.Density(i) - o.Density(i))
	}
	return d
}

// String renders the histogram as an ASCII bar chart, one bin per line.
func (h *Histogram) String() string {
	var b strings.Builder
	maxD := 0.0
	for i := range h.Counts {
		if d := h.Density(i); d > maxD {
			maxD = d
		}
	}
	for i := range h.Counts {
		d := h.Density(i)
		bar := 0
		if maxD > 0 {
			bar = int(40 * d / maxD)
		}
		fmt.Fprintf(&b, "%8.4f | %-40s %.3f\n", h.BinCenter(i), strings.Repeat("#", bar), d)
	}
	return b.String()
}
