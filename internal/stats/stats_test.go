package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently seeded streams collided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", m)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.NormFloat64())
	}
	if m := s.Mean(); math.Abs(m) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", m)
	}
	if sd := s.Std(); math.Abs(sd-1) > 0.02 {
		t.Fatalf("normal std %v too far from 1", sd)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Exp(2.0))
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v too far from 0.5", m)
	}
}

func TestRNGExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/1000 times", same)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v, want 3", s.Median())
	}
	if math.Abs(s.Var()-2) > 1e-12 {
		t.Fatalf("Var = %v, want 2", s.Var())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("empty summary should report zero moments")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty summary min/max should be infinities")
	}
}

func TestSummaryQuantileInterpolation(t *testing.T) {
	var s Summary
	s.Add(0)
	s.Add(10)
	if q := s.Quantile(0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", q)
	}
}

func TestSummaryQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	var s Summary
	s.Add(1)
	s.Quantile(1.5)
}

func TestSummaryAddAfterSort(t *testing.T) {
	var s Summary
	s.Add(5)
	_ = s.Min() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Fatalf("Min after post-sort Add = %v, want 1", s.Min())
	}
}

func TestSummaryQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := s.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryVarNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				s.Add(v)
			}
		}
		return s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(9.5)
	h.Add(5.0)
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("unexpected counts %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range values were not clamped: %v", h.Counts)
	}
}

func TestHistogramEdgeJustBelowHi(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("value just below Hi landed in %v", h.Counts)
	}
}

func TestHistogramDensitySumsToOne(t *testing.T) {
	f := func(vals []float64, seed uint64) bool {
		h := NewHistogram(-1, 1, 8)
		r := NewRNG(seed)
		n := len(vals) + 1
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64())
		}
		sum := 0.0
		for _, d := range h.Densities() {
			sum += d
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDistanceSelfZero(t *testing.T) {
	h := NewHistogram(0, 1, 5)
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		h.Add(r.Float64())
	}
	if d := h.Distance(h); d != 0 {
		t.Fatalf("self-distance = %v, want 0", d)
	}
}

func TestHistogramDistanceSymmetric(t *testing.T) {
	a := NewHistogram(0, 1, 5)
	b := NewHistogram(0, 1, 5)
	r := NewRNG(10)
	for i := 0; i < 200; i++ {
		a.Add(r.Float64())
		b.Add(r.Float64() * r.Float64())
	}
	if math.Abs(a.Distance(b)-b.Distance(a)) > 1e-12 {
		t.Fatal("distance is not symmetric")
	}
}

func TestHistogramDistanceGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched geometry did not panic")
		}
	}()
	NewHistogram(0, 1, 5).Distance(NewHistogram(0, 2, 5))
}

func TestHistogramConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		bins   int
	}{
		{0, 1, 0},
		{1, 1, 5},
		{2, 1, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.bins)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.bins)
		}()
	}
}
