// Package store is sompid's durability subsystem: a segmented,
// CRC32-checksummed append-only write-ahead log (WAL) plus point-in-time
// snapshots, dependency-free by construction (standard library only).
//
// The layers above event-source their state through it: price ticks and
// tracked-session transitions are appended to the WAL before they are
// applied in memory, periodic snapshots materialize the full in-memory
// state at a WAL segment boundary, and recovery replays the newest valid
// snapshot plus every WAL record after it. Records carry enough identity
// (per-shard versions, per-session sequence numbers) for replay to be
// idempotent, so a snapshot cut concurrently with ingestion never
// double-applies the records that straddle its boundary.
//
// On-disk layout of a data directory:
//
//	wal-%016d.seg    WAL segments, strictly increasing seq, append-only
//	snap-%016d.snap  snapshots; snap-B covers every segment with seq < B
//
// Recovery truncates a torn tail (a partially written record after a
// crash) from the newest segment; corruption anywhere else is a typed
// error, never a panic.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Record types. Unknown types are skipped on recovery so a newer binary
// can add record kinds without stranding older data directories.
const (
	// RecordTick is one market price append: the payload is the binary
	// tick codec below.
	RecordTick byte = 1
	// RecordSession is one tracked-session state transition: the payload
	// is an opaque (to this package) JSON document owned by the caller.
	RecordSession byte = 2
	// recordSnapshot frames a snapshot file's payload. It never appears
	// in a WAL segment.
	recordSnapshot byte = 3
)

// MaxRecordBytes bounds a single record's framed length (type byte plus
// payload). A length prefix beyond it is corruption, not a big record —
// the bound is what keeps a bit-flipped length from driving a giant
// allocation during recovery.
const MaxRecordBytes = 1 << 26

// frameHeader is the fixed per-record prefix: u32 length (type+payload),
// u32 CRC32-IEEE over the type byte and payload.
const frameHeader = 8

// Typed decode errors. The decoder returns these — never panics — so
// recovery can distinguish "torn tail, truncate here" from "refuse to
// start".
var (
	// ErrShortRecord reports a frame that needs more bytes than remain —
	// the torn-tail signature of a crash mid-append.
	ErrShortRecord = errors.New("store: truncated record")
	// ErrBadLength reports a length prefix outside (0, MaxRecordBytes].
	ErrBadLength = errors.New("store: record length out of bounds")
	// ErrChecksum reports a CRC mismatch: the frame is complete but its
	// bytes are not the ones that were written.
	ErrChecksum = errors.New("store: record checksum mismatch")
	// ErrBadTick reports a RecordTick payload that does not parse.
	ErrBadTick = errors.New("store: malformed tick payload")
)

// Record is one WAL entry: a type tag and an opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// EncodeRecord frames a record for the WAL: length, CRC, type, payload.
// The encoding is canonical — DecodeRecord of the result yields the
// record back and re-encoding yields identical bytes.
func EncodeRecord(rec Record) []byte {
	n := 1 + len(rec.Payload)
	buf := make([]byte, frameHeader+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[frameHeader] = rec.Type
	copy(buf[frameHeader+1:], rec.Payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[frameHeader:]))
	return buf
}

// DecodeRecord decodes the first record framed in b, returning the
// record, the number of bytes it occupied, and a typed error when b does
// not start with a complete, checksummed frame. The returned payload
// aliases b — callers that retain it past b's lifetime must copy.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("%w: %d bytes remain, frame header needs %d", ErrShortRecord, len(b), frameHeader)
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n < 1 || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: length %d", ErrBadLength, n)
	}
	total := frameHeader + int(n)
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: frame claims %d bytes, %d remain", ErrShortRecord, total, len(b))
	}
	frame := b[frameHeader:total]
	if got, want := crc32.ChecksumIEEE(frame), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	return Record{Type: frame[0], Payload: frame[1:]}, total, nil
}

// Tick is one market price append as persisted in the WAL: the target
// (type, zone) market, the samples, and the shard version the append
// produced. The version is what makes replay idempotent: recovery skips
// a tick the restored shard has already seen (it was materialized by a
// snapshot) and detects gaps (a tick whose version is more than one
// ahead means records are missing).
type Tick struct {
	Type    string
	Zone    string
	Version uint64
	Prices  []float64
}

// EncodeTick renders a tick as a RecordTick payload. Market identifiers
// longer than 64 KiB are rejected — no real instance type or zone comes
// close, and the bound keeps the u16 length prefixes honest.
func EncodeTick(t Tick) ([]byte, error) {
	if len(t.Type) > math.MaxUint16 || len(t.Zone) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: market identifier too long (%d/%d bytes)", ErrBadTick, len(t.Type), len(t.Zone))
	}
	buf := make([]byte, 0, 2+len(t.Type)+2+len(t.Zone)+8+4+8*len(t.Prices))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Type)))
	buf = append(buf, t.Type...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Zone)))
	buf = append(buf, t.Zone...)
	buf = binary.LittleEndian.AppendUint64(buf, t.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Prices)))
	for _, p := range t.Prices {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p))
	}
	return buf, nil
}

// DecodeTick parses a RecordTick payload. It never panics: every length
// is bounds-checked and the price count must account for exactly the
// remaining bytes. The decoded strings and prices are copies, safe to
// retain.
func DecodeTick(b []byte) (Tick, error) {
	var t Tick
	off := 0
	readStr := func(what string) (string, error) {
		if len(b)-off < 2 {
			return "", fmt.Errorf("%w: truncated %s length", ErrBadTick, what)
		}
		n := int(binary.LittleEndian.Uint16(b[off : off+2]))
		off += 2
		if len(b)-off < n {
			return "", fmt.Errorf("%w: %s needs %d bytes, %d remain", ErrBadTick, what, n, len(b)-off)
		}
		s := string(b[off : off+n])
		off += n
		return s, nil
	}
	var err error
	if t.Type, err = readStr("type"); err != nil {
		return Tick{}, err
	}
	if t.Zone, err = readStr("zone"); err != nil {
		return Tick{}, err
	}
	if len(b)-off < 8+4 {
		return Tick{}, fmt.Errorf("%w: truncated version/count", ErrBadTick)
	}
	t.Version = binary.LittleEndian.Uint64(b[off : off+8])
	off += 8
	count := binary.LittleEndian.Uint32(b[off : off+4])
	off += 4
	if rest := len(b) - off; rest != int(count)*8 || count > MaxRecordBytes/8 {
		return Tick{}, fmt.Errorf("%w: %d prices need %d bytes, %d remain", ErrBadTick, count, count*8, len(b)-off)
	}
	if count > 0 {
		t.Prices = make([]float64, count)
		for i := range t.Prices {
			t.Prices[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
			off += 8
		}
	}
	return t, nil
}
