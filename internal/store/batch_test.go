package store

import (
	"bytes"
	"fmt"
	"testing"
)

// A batch append must recover record-for-record identically to the same
// records appended one at a time — the group commit changes framing
// frequency, never content.
func TestAppendBatchRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: true})
	mustRecover(t, s)

	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{Type: RecordTick, Payload: []byte(fmt.Sprintf("batch-%d", i))}
	}
	n, err := s.AppendBatch(recs)
	if err != nil || n != len(recs) {
		t.Fatalf("AppendBatch: n %d err %v", n, err)
	}
	if got := s.Stats().AppendedRecords; got != uint64(len(recs)) {
		t.Fatalf("AppendedRecords %d, want %d", got, len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	_, got := mustRecover(t, s2)
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Type != recs[i].Type || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d mismatch: %+v != %+v", i, got[i], recs[i])
		}
	}
	s2.Close()
}

// A batch larger than a segment must rotate mid-batch and keep every
// record: the frames span segments but replay stitches them back in
// order.
func TestAppendBatchRotatesMidBatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	mustRecover(t, s)

	recs := make([]Record, 20)
	for i := range recs {
		recs[i] = Record{Type: RecordTick, Payload: bytes.Repeat([]byte{byte(i)}, 64)}
	}
	n, err := s.AppendBatch(recs)
	if err != nil || n != len(recs) {
		t.Fatalf("AppendBatch: n %d err %v", n, err)
	}
	if segs := s.Stats().Segments; segs < 2 {
		t.Fatalf("expected a mid-batch rotation, still %d segment(s)", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	_, got := mustRecover(t, s2)
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records across segments, want %d", len(got), len(recs))
	}
	for i := range got {
		if !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	s2.Close()
}

// Lifecycle guards mirror Append's: batches refuse before recovery and
// after close, reporting zero records durable.
func TestAppendBatchGuards(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	recs := []Record{{Type: RecordTick, Payload: []byte("x")}}
	if n, err := s.AppendBatch(recs); err != ErrNotRecovered || n != 0 {
		t.Fatalf("before recover: n %d err %v, want 0/ErrNotRecovered", n, err)
	}
	mustRecover(t, s)
	if n, err := s.AppendBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n %d err %v, want a 0/nil no-op", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n, err := s.AppendBatch(recs); err != ErrClosed || n != 0 {
		t.Fatalf("after close: n %d err %v, want 0/ErrClosed", n, err)
	}
}

// One batch, one fsync: the group commit must not sync per record.
func TestAppendBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: true})
	mustRecover(t, s)
	syncs := 0
	s.SetFsyncObserver(func(float64) { syncs++ })

	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = Record{Type: RecordTick, Payload: []byte{byte(i)}}
	}
	if n, err := s.AppendBatch(recs); err != nil || n != len(recs) {
		t.Fatalf("AppendBatch: n %d err %v", n, err)
	}
	if syncs != 1 {
		t.Fatalf("batch fsynced %d times, want 1 (group commit)", syncs)
	}
	s.Close()
}
