package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustRecover(t *testing.T, s *Store) (snap []byte, recs []Record) {
	t.Helper()
	err := s.Recover(
		func(p []byte) error { snap = append([]byte(nil), p...); return nil },
		func(r Record) error {
			recs = append(recs, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return snap, recs
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Type: RecordTick, Payload: []byte("hello")},
		{Type: RecordSession, Payload: nil},
		{Type: 200, Payload: bytes.Repeat([]byte{0xAB}, 10000)},
	}
	for _, rec := range cases {
		frame := EncodeRecord(rec)
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		if got.Type != rec.Type || !bytes.Equal(got.Payload, rec.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
		}
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	frame := EncodeRecord(Record{Type: RecordTick, Payload: []byte("payload")})

	if _, _, err := DecodeRecord(frame[:5]); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("short header: got %v, want ErrShortRecord", err)
	}
	if _, _, err := DecodeRecord(frame[:len(frame)-2]); !errors.Is(err, ErrShortRecord) {
		t.Fatalf("torn tail: got %v, want ErrShortRecord", err)
	}

	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x01
	if _, _, err := DecodeRecord(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit flip: got %v, want ErrChecksum", err)
	}

	zeroLen := append([]byte(nil), frame...)
	copy(zeroLen[0:4], []byte{0, 0, 0, 0})
	if _, _, err := DecodeRecord(zeroLen); !errors.Is(err, ErrBadLength) {
		t.Fatalf("zero length: got %v, want ErrBadLength", err)
	}
	hugeLen := append([]byte(nil), frame...)
	copy(hugeLen[0:4], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := DecodeRecord(hugeLen); !errors.Is(err, ErrBadLength) {
		t.Fatalf("huge length: got %v, want ErrBadLength", err)
	}
}

func TestTickRoundTrip(t *testing.T) {
	ticks := []Tick{
		{Type: "m1.small", Zone: "us-east-1a", Version: 7, Prices: []float64{0.1, 0.25, 3.5}},
		{Type: "", Zone: "", Version: 0, Prices: nil},
		{Type: "cc2.8xlarge", Zone: "us-east-1c", Version: 1 << 40, Prices: []float64{0}},
	}
	for _, tk := range ticks {
		payload, err := EncodeTick(tk)
		if err != nil {
			t.Fatalf("EncodeTick: %v", err)
		}
		got, err := DecodeTick(payload)
		if err != nil {
			t.Fatalf("DecodeTick: %v", err)
		}
		if got.Type != tk.Type || got.Zone != tk.Zone || got.Version != tk.Version || len(got.Prices) != len(tk.Prices) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, tk)
		}
		for i := range got.Prices {
			if got.Prices[i] != tk.Prices[i] {
				t.Fatalf("price %d: %v != %v", i, got.Prices[i], tk.Prices[i])
			}
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	want := make([]Record, 0, 10)
	for i := 0; i < 10; i++ {
		rec := Record{Type: RecordTick, Payload: []byte(fmt.Sprintf("record-%d", i))}
		want = append(want, rec)
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	snap, recs := mustRecover(t, s2)
	if snap != nil {
		t.Fatalf("unexpected snapshot payload %q", snap)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i].Type != want[i].Type || !bytes.Equal(recs[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: %+v != %+v", i, recs[i], want[i])
		}
	}
	s2.Close()
}

func TestAppendGuards(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Append(Record{Type: RecordTick}); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("append before recover: got %v, want ErrNotRecovered", err)
	}
	mustRecover(t, s)
	if err := s.Recover(nil, nil); err == nil {
		t.Fatal("second Recover should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	if err := s.Append(Record{Type: RecordTick}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: got %v, want ErrClosed", err)
	}
	if err := s.Snapshot(func() ([]byte, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: got %v, want ErrClosed", err)
	}
}

// TestTornTailTruncation simulates a crash mid-append: a valid segment
// with half a record at the end. Open must truncate the tail and keep
// the valid prefix; subsequent appends must land cleanly after it.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	if err := s.Append(Record{Type: RecordTick, Payload: []byte("intact")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	path := s.segPath(s.Stats().ActiveSegment)
	s.Close()

	// Append a torn frame: a full record minus its last 3 bytes.
	torn := EncodeRecord(Record{Type: RecordTick, Payload: []byte("torn-away")})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:len(torn)-3])
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	if got := s2.Stats().TruncatedTailBytes; got != int64(len(torn)-3) {
		t.Fatalf("TruncatedTailBytes = %d, want %d", got, len(torn)-3)
	}
	_, recs := mustRecover(t, s2)
	if len(recs) != 1 || string(recs[0].Payload) != "intact" {
		t.Fatalf("recovered %v, want the single intact record", recs)
	}
	if err := s2.Append(Record{Type: RecordTick, Payload: []byte("after")}); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	s2.Close()

	s3 := mustOpen(t, dir, Options{})
	_, recs = mustRecover(t, s3)
	if len(recs) != 2 || string(recs[1].Payload) != "after" {
		t.Fatalf("recovered %v, want [intact after]", recs)
	}
	s3.Close()
}

// TestHeaderlessActiveSegmentRebuilt: a crash during segment creation or
// rotation can leave the newest segment shorter than its 12-byte header.
// Open must rebuild it as a fresh empty segment — not merely truncate to
// zero, which would leave a headerless file whose appends succeed but
// whose NEXT restart fails the header check and refuses the whole store.
func TestHeaderlessActiveSegmentRebuilt(t *testing.T) {
	for _, tornLen := range []int{0, 5} {
		t.Run(fmt.Sprintf("torn-%d-bytes", tornLen), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			mustRecover(t, s)
			if err := s.Append(Record{Type: RecordTick, Payload: []byte("pre-crash")}); err != nil {
				t.Fatal(err)
			}
			active := s.Stats().ActiveSegment
			s.Close()

			// Simulate a crash mid-rotation: the next segment's header
			// write was torn after tornLen bytes.
			torn := s.segPath(active + 1)
			if err := os.WriteFile(torn, header(segMagic)[:tornLen], 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, Options{Fsync: true})
			if got := s2.Stats().TruncatedTailBytes; got != int64(tornLen) {
				t.Fatalf("TruncatedTailBytes = %d, want %d", got, tornLen)
			}
			_, recs := mustRecover(t, s2)
			if len(recs) != 1 || string(recs[0].Payload) != "pre-crash" {
				t.Fatalf("recovered %v, want the single pre-crash record", recs)
			}
			if err := s2.Append(Record{Type: RecordTick, Payload: []byte("post-rebuild")}); err != nil {
				t.Fatalf("Append into rebuilt segment: %v", err)
			}
			s2.Close()

			// The poison scenario: the restart after the restart must
			// still open and replay everything, including the appends
			// accepted by the rebuilt segment.
			s3 := mustOpen(t, dir, Options{})
			_, recs = mustRecover(t, s3)
			if len(recs) != 2 || string(recs[0].Payload) != "pre-crash" || string(recs[1].Payload) != "post-rebuild" {
				t.Fatalf("second reopen recovered %v, want [pre-crash post-rebuild]", recs)
			}
			s3.Close()
		})
	}
}

// TestCorruptedTailFixture: a bit flip inside the last record of the
// active segment is indistinguishable from a torn tail — the record is
// dropped, everything before it survives.
func TestCorruptedTailFixture(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Type: RecordTick, Payload: []byte(fmt.Sprintf("rec-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	path := s.segPath(s.Stats().ActiveSegment)
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // flip a bit in the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	_, recs := mustRecover(t, s2)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (corrupt tail record dropped)", len(recs))
	}
	s2.Close()
}

// A bad record in a non-final segment cannot be explained by a torn
// tail: the store must refuse to open rather than silently drop data.
func TestCorruptMiddleSegmentFailsHard(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 64}) // rotate nearly every append
	mustRecover(t, s)
	for i := 0; i < 6; i++ {
		if err := s.Append(Record{Type: RecordTick, Payload: bytes.Repeat([]byte{byte(i)}, 48)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if stats.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", stats.Segments)
	}
	first := s.segs[0]
	s.Close()

	data, err := os.ReadFile(s.segPath(first))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(s.segPath(first), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 64})
	err = s2.Recover(nil, nil)
	if !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("recover over corrupt middle segment: got %v, want ErrCorruptSegment", err)
	}
	s2.Close()
}

func TestSnapshotReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 128})
	mustRecover(t, s)
	for i := 0; i < 5; i++ {
		if err := s.Append(Record{Type: RecordTick, Payload: []byte(fmt.Sprintf("pre-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(func() ([]byte, error) { return []byte("state-at-5"), nil }); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := s.AppendsSinceSnapshot(); got != 0 {
		t.Fatalf("AppendsSinceSnapshot after cut = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Type: RecordSession, Payload: []byte(fmt.Sprintf("post-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.AppendsSinceSnapshot(); got != 3 {
		t.Fatalf("AppendsSinceSnapshot = %d, want 3", got)
	}
	stats := s.Stats()
	if stats.SnapshotSeq == 0 || stats.Snapshots != 1 {
		t.Fatalf("stats after snapshot: %+v", stats)
	}
	s.Close()

	// Compaction must have removed every segment below the boundary.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if m := segRe.FindStringSubmatch(e.Name()); m != nil {
			var seq uint64
			fmt.Sscanf(m[1], "%d", &seq)
			if seq < stats.SnapshotSeq {
				t.Fatalf("segment %s survived compaction (boundary %d)", e.Name(), stats.SnapshotSeq)
			}
		}
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 128})
	snap, recs := mustRecover(t, s2)
	if string(snap) != "state-at-5" {
		t.Fatalf("snapshot payload = %q, want state-at-5", snap)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d post-snapshot records, want 3", len(recs))
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("post-%d", i); string(rec.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, rec.Payload, want)
		}
	}
	s2.Close()
}

// A corrupt newest snapshot is fail-hard: the segments it covered may
// already be compacted away, so recovering without it would be silent
// data loss.
func TestCorruptSnapshotFailsHard(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	s.Append(Record{Type: RecordTick, Payload: []byte("x")})
	if err := s.Snapshot(func() ([]byte, error) { return []byte("precious"), nil }); err != nil {
		t.Fatal(err)
	}
	snapSeq := s.Stats().SnapshotSeq
	s.Close()

	path := s.snapPath(snapSeq)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if err := s2.Recover(nil, nil); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("recover with corrupt snapshot: got %v, want ErrCorruptSnapshot", err)
	}
	s2.Close()
}

// A crash between snapshot rename and compaction leaves covered
// segments behind; recovery must skip them (their records predate the
// snapshot) and the next snapshot sweeps them.
func TestRecoverySkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 64})
	mustRecover(t, s)
	for i := 0; i < 4; i++ {
		s.Append(Record{Type: RecordTick, Payload: bytes.Repeat([]byte{byte(i)}, 40)})
	}
	if err := s.Snapshot(func() ([]byte, error) { return []byte("covered"), nil }); err != nil {
		t.Fatal(err)
	}
	boundary := s.Stats().SnapshotSeq
	s.Append(Record{Type: RecordTick, Payload: []byte("live")})
	s.Close()

	// Resurrect a pre-boundary segment as if compaction never ran.
	ghost := s.segPath(boundary - 1)
	f, err := os.Create(ghost)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(header(segMagic))
	f.Write(EncodeRecord(Record{Type: RecordTick, Payload: []byte("stale")}))
	f.Close()

	s2 := mustOpen(t, dir, Options{SegmentBytes: 64})
	snap, recs := mustRecover(t, s2)
	if string(snap) != "covered" {
		t.Fatalf("snapshot = %q", snap)
	}
	for _, rec := range recs {
		if string(rec.Payload) == "stale" {
			t.Fatal("recovery replayed a snapshot-covered segment")
		}
	}
	if len(recs) != 1 || string(recs[0].Payload) != "live" {
		t.Fatalf("recovered %v, want just the live record", recs)
	}
	s2.Close()
}

// TestOpenSweepsOrphanSnapshots: a crash (or failed directory sync)
// between installing a snapshot and removing its predecessor leaves
// stale snapshots behind, and Snapshot itself only removes its own
// predecessor. Open must sweep everything below the newest so orphans
// cannot accumulate forever.
func TestOpenSweepsOrphanSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	s.Append(Record{Type: RecordTick, Payload: []byte("x")})
	if err := s.Snapshot(func() ([]byte, error) { return []byte("newest"), nil }); err != nil {
		t.Fatal(err)
	}
	newest := s.Stats().SnapshotSeq
	s.Close()

	// Fake two stale predecessors below the newest snapshot.
	for _, seq := range []uint64{newest - 1, newest - 2} {
		if err := os.WriteFile(s.snapPath(seq), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, Options{})
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != s.snapPath(newest) {
		t.Fatalf("snapshots on disk after Open: %v, want just %s", snaps, s.snapPath(newest))
	}
	snap, _ := mustRecover(t, s2)
	if string(snap) != "newest" {
		t.Fatalf("recovered snapshot %q, want the newest", snap)
	}
	s2.Close()
}

// A crash mid-snapshot leaves a .tmp file; Open must discard it and
// recovery must use the previous snapshot.
func TestOpenDiscardsTempSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustRecover(t, s)
	s.Append(Record{Type: RecordTick, Payload: []byte("x")})
	s.Close()

	tmp := filepath.Join(dir, "snap-0000000000000009.snap.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp snapshot survived Open: %v", err)
	}
	_, recs := mustRecover(t, s2)
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	s2.Close()
}

func TestFsyncObserver(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: true})
	mustRecover(t, s)
	var observed int
	s.SetFsyncObserver(func(seconds float64) {
		if seconds < 0 {
			t.Errorf("negative fsync duration %v", seconds)
		}
		observed++
	})
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Type: RecordTick, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if observed != 3 {
		t.Fatalf("fsync observer fired %d times, want 3", observed)
	}
	s.SetFsyncObserver(nil)
	s.Append(Record{Type: RecordTick, Payload: []byte("x")})
	if observed != 3 {
		t.Fatalf("observer fired after removal")
	}
	s.Close()
}

// Concurrent appends with rotation must neither lose nor reorder
// records from any single goroutine's perspective.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	mustRecover(t, s)
	const writers, perWriter = 4, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				if err := s.Append(Record{Type: RecordTick, Payload: []byte(fmt.Sprintf("w%d-%04d", w, i))}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
	_, recs := mustRecover(t, s2)
	if len(recs) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*perWriter)
	}
	// Per-writer order must be preserved even though writers interleave.
	next := make([]int, writers)
	for _, rec := range recs {
		var w, i int
		if _, err := fmt.Sscanf(string(rec.Payload), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad payload %q: %v", rec.Payload, err)
		}
		if i != next[w] {
			t.Fatalf("writer %d: got seq %d, want %d", w, i, next[w])
		}
		next[w]++
	}
	s2.Close()
}
