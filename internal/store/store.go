package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSegmentBytes is the rotation threshold for WAL segments. Small
// enough that a segment loads whole during recovery, large enough that
// rotation is rare on the ingest path.
const DefaultSegmentBytes = 4 << 20

// Segment and snapshot file headers: 8 magic bytes plus a u32 format
// version. A header mismatch means the file is not ours (or a future
// format) — recovery refuses rather than guessing.
var (
	segMagic  = []byte("SOMPIWL1")
	snapMagic = []byte("SOMPISN1")
)

const (
	formatVersion = 1
	headerLen     = 12
)

var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrNotRecovered reports an Append before Recover: appending to a
	// segment whose tail has not been replayed yet would interleave new
	// records with unapplied old ones.
	ErrNotRecovered = errors.New("store: Recover must run before Append")
	// ErrCorruptSegment reports corruption that torn-tail truncation
	// cannot explain: a bad record in a fully written (non-final)
	// segment, or a foreign file header.
	ErrCorruptSegment = errors.New("store: corrupt WAL segment")
	// ErrCorruptSnapshot reports an unreadable newest snapshot. The
	// segments it covered may already be compacted away, so the store
	// refuses to start rather than silently recovering a partial state.
	ErrCorruptSnapshot = errors.New("store: corrupt snapshot")
)

var (
	segRe  = regexp.MustCompile(`^wal-(\d{16})\.seg$`)
	snapRe = regexp.MustCompile(`^snap-(\d{16})\.snap$`)
)

// Options parameterizes a Store.
type Options struct {
	// Fsync syncs the active segment after every append. Off, appends
	// reach the OS page cache only — they survive a process crash but
	// not a machine crash — until Sync, rotation, or Close.
	Fsync bool
	// SegmentBytes is the rotation threshold; zero means
	// DefaultSegmentBytes.
	SegmentBytes int64
}

// Stats is the store's observable state, for /metrics.
type Stats struct {
	// AppendedRecords counts records appended by this process.
	AppendedRecords uint64
	// ActiveSegment is the seq of the segment appends currently go to.
	ActiveSegment uint64
	// Segments counts WAL segments on disk.
	Segments int
	// SnapshotSeq is the newest snapshot's boundary (0 = none): every
	// segment with a smaller seq is covered and compacted.
	SnapshotSeq uint64
	// Snapshots counts snapshots cut by this process.
	Snapshots uint64
	// TruncatedTailBytes counts bytes dropped by torn-tail truncation at
	// Open — non-zero exactly when the previous process died mid-append.
	TruncatedTailBytes int64
}

// Store is one data directory: the active WAL segment, the retained
// older segments, and the newest snapshot. All methods are safe for
// concurrent use. Lock ordering: the internal mutex is a leaf — Append
// is designed to be called with caller locks (market shard, session
// registry) held, and no Store method calls back into the caller while
// holding it (Snapshot invokes its capture callback with no lock held).
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	active    uint64   // seq of the open segment
	size      int64    // bytes written to the active segment
	segs      []uint64 // on-disk segment seqs, ascending (includes active)
	snapSeq   uint64
	appended  uint64
	snapshots uint64
	truncated int64
	appendsAt uint64 // appended count when the last snapshot was cut
	recovered bool
	closed    bool

	// notify, when non-nil, is closed (under mu) at the next append,
	// rotation, or snapshot — the wake-up for shipping streams. See
	// AppendSignal in ship.go.
	notify chan struct{}

	// snapMu serializes snapshot cuts without blocking appends.
	snapMu sync.Mutex

	// fsyncObs, when set, observes each fsync's duration in seconds.
	fsyncObs atomic.Pointer[func(float64)]
}

// Open opens (creating if needed) the data directory, truncates any torn
// tail off the newest segment, and readies the newest segment for
// appends. Call Recover before the first Append.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading data dir: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if m := segRe.FindStringSubmatch(name); m != nil {
			seq, _ := strconv.ParseUint(m[1], 10, 64)
			s.segs = append(s.segs, seq)
		} else if m := snapRe.FindStringSubmatch(name); m != nil {
			seq, _ := strconv.ParseUint(m[1], 10, 64)
			snaps = append(snaps, seq)
		} else if filepath.Ext(name) == ".tmp" {
			// A crash mid-snapshot leaves a .tmp behind; it was never
			// renamed, so it was never the snapshot of record.
			os.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i] < s.segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	if len(snaps) > 0 {
		s.snapSeq = snaps[len(snaps)-1]
		// Snapshots below the newest are orphans — a crash (or a failed
		// directory sync) between installing a snapshot and removing its
		// predecessor leaves them behind, and only the newest is ever
		// read. Sweep them here, mirroring how covered segments are
		// compacted.
		for _, old := range snaps[:len(snaps)-1] {
			os.Remove(s.snapPath(old))
		}
	}

	if len(s.segs) == 0 {
		seq := s.snapSeq
		if seq == 0 {
			seq = 1
		}
		if err := s.createSegmentLocked(seq); err != nil {
			return nil, err
		}
		s.segs = []uint64{seq}
		return s, nil
	}

	last := s.segs[len(s.segs)-1]
	if err := s.openActiveSegment(last); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) segPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d.snap", seq))
}

// createSegmentLocked creates and opens a fresh segment with just its
// header, fsyncing the file and the directory so the segment itself
// survives a crash.
func (s *Store) createSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(s.segPath(seq), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %d: %w", seq, err)
	}
	if _, err := f.Write(header(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment %d header: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing segment %d: %w", seq, err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.f, s.active, s.size = f, seq, headerLen
	return nil
}

// openActiveSegment opens the newest segment for appends, truncating a
// torn tail first so new records never follow a half-written one.
func (s *Store) openActiveSegment(seq uint64) error {
	path := s.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: reading segment %d: %w", seq, err)
	}
	good, err := scanSegment(data, true)
	if err != nil {
		return fmt.Errorf("segment %d: %w", seq, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment %d: %w", seq, err)
	}
	if good < headerLen {
		// Crash before the segment header finished: nothing in the file
		// is recoverable, but the file must become a well-formed empty
		// segment before accepting appends — truncating alone would
		// leave a headerless segment whose appends succeed and then the
		// next restart refuses as corrupt.
		s.truncated += int64(len(data))
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn header of segment %d: %w", seq, err)
		}
		if _, err := f.Write(header(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("store: rewriting segment %d header: %w", seq, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing rebuilt segment %d: %w", seq, err)
		}
		s.f, s.active, s.size = f, seq, headerLen
		return nil
	}
	if int64(good) < int64(len(data)) {
		s.truncated += int64(len(data)) - int64(good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail of segment %d: %w", seq, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing truncated segment %d: %w", seq, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking segment %d: %w", seq, err)
	}
	s.f, s.active, s.size = f, seq, int64(good)
	return nil
}

func header(magic []byte) []byte {
	h := make([]byte, headerLen)
	copy(h, magic)
	h[8] = formatVersion
	return h
}

// scanSegment walks a segment's records, returning the offset of the
// first byte past the last valid record. For the final (active) segment
// any decode failure is a torn tail — the scan stops there and the
// caller truncates. For fully written segments (tail=false) a decode
// failure is ErrCorruptSegment. A missing or foreign header is always
// ErrCorruptSegment, except a final segment shorter than the header,
// which is a crash mid-creation: the scan reports good=0 and
// openActiveSegment rebuilds the file as a fresh empty segment
// (truncate, rewrite header, fsync) — never leaving a headerless file
// for the next restart to choke on.
func scanSegment(data []byte, tail bool) (good int, err error) {
	if len(data) < headerLen {
		if tail {
			// Crash before the header finished: nothing recoverable in
			// this file; openActiveSegment rebuilds it from scratch.
			return 0, nil
		}
		return 0, fmt.Errorf("%w: file shorter than header", ErrCorruptSegment)
	}
	if string(data[:8]) != string(segMagic) || data[8] != formatVersion {
		return 0, fmt.Errorf("%w: bad header", ErrCorruptSegment)
	}
	off := headerLen
	for off < len(data) {
		_, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			if tail {
				return off, nil
			}
			return off, fmt.Errorf("%w: record at offset %d: %v", ErrCorruptSegment, off, derr)
		}
		off += n
	}
	return off, nil
}

// Recover replays the durable state: the newest snapshot's payload (if
// any) through onSnapshot, then every record in every retained segment,
// oldest first, through onRecord. Either callback may be nil. Recover
// must be called exactly once, before the first Append.
func (s *Store) Recover(onSnapshot func(payload []byte) error, onRecord func(rec Record) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.recovered {
		s.mu.Unlock()
		return errors.New("store: Recover called twice")
	}
	snapSeq := s.snapSeq
	segs := append([]uint64(nil), s.segs...)
	s.mu.Unlock()

	if snapSeq > 0 {
		payload, err := readSnapshot(s.snapPath(snapSeq))
		if err != nil {
			return err
		}
		if onSnapshot != nil {
			if err := onSnapshot(payload); err != nil {
				return fmt.Errorf("store: applying snapshot %d: %w", snapSeq, err)
			}
		}
	}
	for i, seq := range segs {
		if seq < snapSeq {
			// Covered by the snapshot but not yet compacted (a crash
			// between snapshot rename and compaction): skip, idempotent
			// replay would skip its records anyway, and the next
			// snapshot's compaction sweeps it.
			continue
		}
		data, err := os.ReadFile(s.segPath(seq))
		if err != nil {
			return fmt.Errorf("store: reading segment %d: %w", seq, err)
		}
		good, err := scanSegment(data, i == len(segs)-1)
		if err != nil {
			return fmt.Errorf("segment %d: %w", seq, err)
		}
		off := headerLen
		for off < good {
			rec, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				// scanSegment validated [headerLen, good); unreachable.
				return fmt.Errorf("segment %d: %w: %v", seq, ErrCorruptSegment, derr)
			}
			if onRecord != nil {
				if err := onRecord(rec); err != nil {
					return fmt.Errorf("store: applying record at segment %d offset %d: %w", seq, off, err)
				}
			}
			off += n
		}
	}

	s.mu.Lock()
	s.recovered = true
	s.mu.Unlock()
	return nil
}

// readSnapshot loads and verifies one snapshot file, returning its
// payload. Any failure — unreadable file, foreign header, checksum
// mismatch, trailing garbage — is ErrCorruptSnapshot.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	payload, err := DecodeSnapshotFile(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return payload, nil
}

// Append frames and appends one record to the active segment, rotating
// first when the segment is full and fsyncing after when Options.Fsync
// is set. Safe to call with caller locks held: the store's mutex is a
// leaf.
func (s *Store) Append(rec Record) error {
	frame := EncodeRecord(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case !s.recovered:
		return ErrNotRecovered
	}
	if s.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending to segment %d: %w", s.active, err)
	}
	s.size += int64(len(frame))
	s.appended++
	if s.opts.Fsync {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	s.notifyLocked()
	return nil
}

// AppendBatch frames and appends a run of records under one mutex hold
// with a single trailing fsync — the group commit the batched ingest
// path rides on. It returns how many leading records are durably in the
// log: a write failure at record i returns (i, err) and nothing from i
// onward was logged; a trailing fsync failure returns (len(recs), err)
// because every frame is in the log and will be seen by replay — the
// caller must treat the batch as logged (the exposure is the same
// tail-loss window as running with Options.Fsync off).
func (s *Store) AppendBatch(recs []Record) (int, error) {
	frames := make([][]byte, len(recs))
	for i, rec := range recs {
		frames[i] = EncodeRecord(rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return 0, ErrClosed
	case !s.recovered:
		return 0, ErrNotRecovered
	}
	for i, frame := range frames {
		if s.size >= s.opts.SegmentBytes {
			if err := s.rotateLocked(); err != nil {
				return i, err
			}
		}
		if _, err := s.f.Write(frame); err != nil {
			return i, fmt.Errorf("store: appending to segment %d: %w", s.active, err)
		}
		s.size += int64(len(frame))
		s.appended++
	}
	if s.opts.Fsync && len(recs) > 0 {
		if err := s.syncLocked(); err != nil {
			return len(recs), err
		}
	}
	if len(recs) > 0 {
		s.notifyLocked()
	}
	return len(recs), nil
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one.
func (s *Store) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing segment %d at rotation: %w", s.active, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: closing segment %d: %w", s.active, err)
	}
	next := s.active + 1
	if err := s.createSegmentLocked(next); err != nil {
		return err
	}
	s.segs = append(s.segs, next)
	return nil
}

func (s *Store) syncLocked() error {
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync segment %d: %w", s.active, err)
	}
	if obs := s.fsyncObs.Load(); obs != nil {
		(*obs)(time.Since(start).Seconds())
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

// Snapshot cuts a snapshot: it rotates the WAL (so the snapshot has a
// clean segment boundary B), invokes capture — with no store lock held —
// to materialize the caller's state, writes the payload to snap-B via
// temp-file-and-rename, then compacts every segment and snapshot below
// B.
//
// Correctness under concurrent appends rests on two properties the
// caller must provide: capture must acquire each data structure's lock
// after this call rotated (any append whose WAL write landed before the
// boundary still holds its structure's lock until the in-memory apply
// finishes, so capture observes it), and records must be idempotent on
// replay (appends that landed after the boundary are both in the capture
// and in segments >= B; recovery re-applies and skips them by version).
func (s *Store) Snapshot(capture func() ([]byte, error)) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case !s.recovered:
		s.mu.Unlock()
		return ErrNotRecovered
	}
	if err := s.rotateLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	boundary := s.active
	appendedAt := s.appended
	s.mu.Unlock()

	payload, err := capture()
	if err != nil {
		return fmt.Errorf("store: capturing snapshot state: %w", err)
	}

	tmp := s.snapPath(boundary) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	_, werr := f.Write(append(header(snapMagic), EncodeRecord(Record{Type: recordSnapshot, Payload: payload})...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot %d: %w", boundary, werr)
	}
	if err := os.Rename(tmp, s.snapPath(boundary)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot %d: %w", boundary, err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	s.mu.Lock()
	prevSnap := s.snapSeq
	s.snapSeq = boundary
	s.snapshots++
	s.appendsAt = appendedAt
	var keep []uint64
	for _, seq := range s.segs {
		if seq < boundary && seq != s.active {
			os.Remove(s.segPath(seq))
			continue
		}
		keep = append(keep, seq)
	}
	s.segs = keep
	s.notifyLocked()
	s.mu.Unlock()
	if prevSnap > 0 && prevSnap != boundary {
		os.Remove(s.snapPath(prevSnap))
	}
	return nil
}

// AppendsSinceSnapshot reports how many records were appended since the
// last snapshot cut (or Open) — the trigger input for snapshot cadence.
func (s *Store) AppendsSinceSnapshot() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended - s.appendsAt
}

// SetFsyncObserver installs (or with nil removes) a callback observing
// each fsync's duration in seconds — the feed for
// sompid_wal_fsync_seconds.
func (s *Store) SetFsyncObserver(fn func(seconds float64)) {
	if fn == nil {
		s.fsyncObs.Store(nil)
		return
	}
	s.fsyncObs.Store(&fn)
}

// Stats reports the store's observable state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		AppendedRecords:    s.appended,
		ActiveSegment:      s.active,
		Segments:           len(s.segs),
		SnapshotSeq:        s.snapSeq,
		Snapshots:          s.snapshots,
		TruncatedTailBytes: s.truncated,
	}
}

// Dir reports the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the active segment. Close is idempotent;
// every mutation after it fails with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.notifyLocked() // unblock any shipping stream waiting for appends
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: syncing segment %d at close: %w", s.active, err)
	}
	return s.f.Close()
}

// syncDir fsyncs the directory so entry creation/rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}
