package store

// Segment shipping: the read-side API the cluster replication stream is
// built on. A follower mirrors the store's directory byte-for-byte by
// polling ReadChunk from its last position; because appends are strictly
// sequential and segments are immutable once sealed, any prefix of the
// byte stream is a valid crash image of this store — exactly what
// Open+Recover already know how to replay. Compaction is the one
// discontinuity: when a snapshot retires the segment a follower is
// reading, ReadChunk fails with ErrSegmentCompacted and the caller ships
// the covering snapshot instead, resuming from its boundary segment.

import (
	"errors"
	"fmt"
	"os"
)

// SegmentHeaderLen is the length of the fixed header that starts every
// WAL segment file. Chunk offsets are raw file offsets, so a follower
// decoding records from mirrored bytes skips this many bytes per
// segment.
const SegmentHeaderLen = headerLen

var (
	// ErrSegmentCompacted reports a ReadChunk on a segment a snapshot has
	// retired; the reader must jump to the snapshot.
	ErrSegmentCompacted = errors.New("store: segment compacted by a snapshot")
	// ErrOutOfRange reports a ReadChunk position the store cannot serve:
	// an offset past the segment's committed end, or a segment seq the
	// store has never written. A follower seeing this has diverged and
	// must resync from scratch.
	ErrOutOfRange = errors.New("store: read position out of range")
	// ErrNoSnapshot reports ReadSnapshotFile on a store that has not cut
	// a snapshot.
	ErrNoSnapshot = errors.New("store: no snapshot")
)

// Position reports the append frontier: the active segment's seq and
// its committed size in bytes. A follower whose mirror has reached
// Position holds everything this store has logged.
func (s *Store) Position() (seq uint64, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active, s.size
}

// ShipStart reports where a fresh follower begins: the snapshot
// boundary to ship first (0 = none) and the first segment to stream.
func (s *Store) ShipStart() (snapSeq, firstSeg uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	firstSeg = s.active
	if len(s.segs) > 0 {
		firstSeg = s.segs[0]
	}
	if s.snapSeq > firstSeg {
		firstSeg = s.snapSeq
	}
	return s.snapSeq, firstSeg
}

// ReadChunk reads up to max bytes of segment seq from file offset off
// (offsets include the segment header). It returns the bytes read and
// whether that exhausted a sealed segment — in which case the reader
// advances to (seq+1, 0). An empty, non-sealed result means the reader
// is caught up with the active segment; wait on AppendSignal.
func (s *Store) ReadChunk(seq uint64, off int64, max int) (data []byte, sealed bool, err error) {
	if off < 0 || max <= 0 {
		return nil, false, fmt.Errorf("%w: off %d max %d", ErrOutOfRange, off, max)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	active, committed, snapSeq := s.active, s.size, s.snapSeq
	retained := false
	for _, have := range s.segs {
		if have == seq {
			retained = true
			break
		}
	}
	s.mu.Unlock()

	if !retained {
		if seq < snapSeq {
			return nil, false, ErrSegmentCompacted
		}
		return nil, false, fmt.Errorf("%w: segment %d does not exist", ErrOutOfRange, seq)
	}

	if seq == active {
		if off > committed {
			return nil, false, fmt.Errorf("%w: offset %d past committed %d in active segment %d", ErrOutOfRange, off, committed, seq)
		}
		if off == committed {
			return nil, false, nil
		}
		n := committed - off
		if int64(max) < n {
			n = int64(max)
		}
		data, err := readAt(s.segPath(seq), off, int(n))
		return data, false, err
	}

	// Sealed segment: immutable, its file size is its committed end. It
	// may be compacted between the membership check and the read — map
	// the vanished file back to the compaction signal.
	fi, err := os.Stat(s.segPath(seq))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, ErrSegmentCompacted
		}
		return nil, false, fmt.Errorf("store: stat segment %d: %w", seq, err)
	}
	end := fi.Size()
	if off > end {
		return nil, false, fmt.Errorf("%w: offset %d past end %d of sealed segment %d", ErrOutOfRange, off, end, seq)
	}
	if off == end {
		return nil, true, nil
	}
	n := end - off
	if int64(max) < n {
		n = int64(max)
	}
	data, err = readAt(s.segPath(seq), off, int(n))
	if err != nil {
		return nil, false, err
	}
	return data, off+int64(len(data)) == end, nil
}

// ReadSnapshotFile returns the newest snapshot's boundary seq and raw
// file bytes (header and framing included) for shipping verbatim.
func (s *Store) ReadSnapshotFile() (seq uint64, data []byte, err error) {
	s.mu.Lock()
	seq = s.snapSeq
	s.mu.Unlock()
	if seq == 0 {
		return 0, nil, ErrNoSnapshot
	}
	data, err = os.ReadFile(s.snapPath(seq))
	if err != nil {
		return 0, nil, fmt.Errorf("store: reading snapshot %d: %w", seq, err)
	}
	return seq, data, nil
}

// DecodeSnapshotFile verifies raw snapshot file bytes — as shipped by
// ReadSnapshotFile — and returns the embedded payload.
func DecodeSnapshotFile(data []byte) ([]byte, error) {
	if len(data) < headerLen || string(data[:8]) != string(snapMagic) || data[8] != formatVersion {
		return nil, fmt.Errorf("%w: bad header", ErrCorruptSnapshot)
	}
	rec, n, err := DecodeRecord(data[headerLen:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if rec.Type != recordSnapshot || headerLen+n != len(data) {
		return nil, fmt.Errorf("%w: unexpected framing", ErrCorruptSnapshot)
	}
	out := make([]byte, len(rec.Payload))
	copy(out, rec.Payload)
	return out, nil
}

// AppendSignal returns a channel closed at the next change to the
// shippable state (an append, a rotation, or a snapshot cut). Callers
// re-arm by calling it again; ReadChunk between the two calls misses
// nothing.
func (s *Store) AppendSignal() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.notify == nil {
		s.notify = make(chan struct{})
	}
	return s.notify
}

// notifyLocked wakes every AppendSignal waiter. Callers hold s.mu.
func (s *Store) notifyLocked() {
	if s.notify != nil {
		close(s.notify)
		s.notify = nil
	}
}

// readAt reads [off, off+n) of a file through its own descriptor, so
// shipping reads never disturb the append handle's file position.
func readAt(path string, off int64, n int) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s for shipping: %w", path, err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: reading %s at %d: %w", path, off, err)
	}
	return buf, nil
}
