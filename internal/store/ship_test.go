package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// mirrorAll walks ReadChunk from a fresh position and writes the bytes
// into dir, exactly as a cluster follower does, returning the segments
// it materialized.
func mirrorAll(t *testing.T, s *Store, dir string) {
	t.Helper()
	snapSeq, seg := s.ShipStart()
	if snapSeq > 0 {
		wantSeq, data, err := s.ReadSnapshotFile()
		if err != nil {
			t.Fatalf("ReadSnapshotFile: %v", err)
		}
		if wantSeq != snapSeq {
			t.Fatalf("snapshot seq %d, ShipStart said %d", wantSeq, snapSeq)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", wantSeq)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var off int64
	var buf []byte
	activeSeg, activeSize := s.Position()
	for {
		data, sealed, err := s.ReadChunk(seg, off, 1000)
		if err != nil {
			t.Fatalf("ReadChunk(%d, %d): %v", seg, off, err)
		}
		buf = append(buf, data...)
		off += int64(len(data))
		if sealed {
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seg)), buf, 0o644); err != nil {
				t.Fatal(err)
			}
			seg, off, buf = seg+1, 0, nil
			continue
		}
		if len(data) == 0 {
			if seg != activeSeg || off != activeSize {
				t.Fatalf("caught up at (%d, %d), Position says (%d, %d)", seg, off, activeSeg, activeSize)
			}
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seg)), buf, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
}

// recoverRecords replays a data dir and returns its session payloads in
// order (ticks are ignored; the caller appends sessions only).
func recoverRecords(t *testing.T, dir string) (snapshot []byte, payloads [][]byte) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("opening mirror: %v", err)
	}
	defer s.Close()
	err = s.Recover(
		func(p []byte) error { snapshot = append([]byte(nil), p...); return nil },
		func(rec Record) error {
			payloads = append(payloads, append([]byte(nil), rec.Payload...))
			return nil
		})
	if err != nil {
		t.Fatalf("recovering mirror: %v", err)
	}
	return snapshot, payloads
}

// TestShipMirrorRoundtrip is the shipping contract: a byte mirror built
// purely from ReadChunk walks recovers to exactly the records the owner
// appended, across a segment rotation.
func TestShipMirrorRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256}) // rotate often
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := s.Append(Record{Type: RecordSession, Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("test wants a rotation, got %d segment(s)", st.Segments)
	}

	mirror := t.TempDir()
	mirrorAll(t, s, mirror)
	_, got := recoverRecords(t, mirror)
	if len(got) != len(want) {
		t.Fatalf("mirror recovered %d records, owner appended %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: mirror %q, owner %q", i, got[i], want[i])
		}
	}
}

// TestShipCompactionJump: after a snapshot retires segments, reading a
// retired seq fails with ErrSegmentCompacted and the shipped snapshot
// carries the full payload; a mirror built from snapshot + remaining
// chunks recovers both.
func TestShipCompactionJump(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append(Record{Type: RecordSession, Payload: []byte(fmt.Sprintf("pre-%02d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(func() ([]byte, error) { return []byte("state-at-cut"), nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Type: RecordSession, Payload: []byte("post-snapshot")}); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.ReadChunk(1, 0, 100); !errors.Is(err, ErrSegmentCompacted) {
		t.Fatalf("ReadChunk on a compacted segment: %v, want ErrSegmentCompacted", err)
	}
	snapSeq, firstSeg := s.ShipStart()
	if snapSeq == 0 || firstSeg != snapSeq {
		t.Fatalf("ShipStart = (%d, %d), want snapshot boundary to lead", snapSeq, firstSeg)
	}
	raw, err := os.ReadFile(s.snapPath(snapSeq))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := DecodeSnapshotFile(raw)
	if err != nil {
		t.Fatalf("DecodeSnapshotFile: %v", err)
	}
	if string(payload) != "state-at-cut" {
		t.Fatalf("snapshot payload %q", payload)
	}

	mirror := t.TempDir()
	mirrorAll(t, s, mirror)
	snap, recs := recoverRecords(t, mirror)
	if string(snap) != "state-at-cut" {
		t.Fatalf("mirror snapshot payload %q", snap)
	}
	found := false
	for _, r := range recs {
		if string(r) == "post-snapshot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mirror lost the post-snapshot record: %q", recs)
	}
}

func TestShipOutOfRange(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadChunk(99, 0, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("future segment: %v, want ErrOutOfRange", err)
	}
	_, size := s.Position()
	if _, _, err := s.ReadChunk(1, size+1, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("offset past committed: %v, want ErrOutOfRange", err)
	}
	if _, _, err := s.ReadSnapshotFile(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("ReadSnapshotFile without a snapshot: %v, want ErrNoSnapshot", err)
	}
}

// TestAppendSignal: a waiter armed before an append is woken by it, and
// re-arming misses nothing (the chunk read between signals sees the
// record).
func TestAppendSignal(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	ch := s.AppendSignal()
	select {
	case <-ch:
		t.Fatal("signal fired before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Error("append never signalled the waiter")
		}
	}()
	if err := s.Append(Record{Type: RecordSession, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	<-done

	// Close must wake a parked waiter too, or shutdown would hang the
	// shipping handler.
	ch = s.AppendSignal()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never signalled the waiter")
	}
}
