package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord drives the WAL frame decoder with arbitrary bytes —
// including a seed corpus of torn and bit-flipped tails, the shapes a
// crash actually produces. The decoder must never panic and never
// allocate past MaxRecordBytes; any failure must be one of the typed
// errors so recovery can tell "truncate here" from "refuse to start".
func FuzzDecodeRecord(f *testing.F) {
	intact := EncodeRecord(Record{Type: RecordTick, Payload: []byte("price tick payload")})
	f.Add(intact)
	f.Add(intact[:len(intact)-1]) // torn tail: crash mid-append
	f.Add(intact[:frameHeader])   // torn tail: header only
	f.Add(intact[:3])             // torn tail: partial header
	flipped := append([]byte(nil), intact...)
	flipped[frameHeader+2] ^= 0x10 // bit rot in the payload
	f.Add(flipped)
	flipLen := append([]byte(nil), intact...)
	flipLen[3] ^= 0x80 // bit rot in the length prefix
	f.Add(flipLen)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 16)) // max length prefix
	f.Add(append([]byte{0, 0, 0, 0, 0, 0, 0, 0}, intact...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < frameHeader+1 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// A successful decode must re-encode to the exact frame bytes —
		// the canonical-encoding property recovery's offset math relies on.
		if got := EncodeRecord(Record{Type: rec.Type, Payload: rec.Payload}); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:n])
		}
	})
}

// FuzzDecodeTick drives the tick payload codec: length-prefixed strings
// and a price count that must account for exactly the remaining bytes.
func FuzzDecodeTick(f *testing.F) {
	intact, _ := EncodeTick(Tick{Type: "m1.small", Zone: "us-east-1a", Version: 42, Prices: []float64{0.1, 7.5}})
	f.Add(intact)
	f.Add(intact[:len(intact)-4]) // torn price
	f.Add(intact[:1])             // torn type length
	flipped := append([]byte(nil), intact...)
	flipped[0] ^= 0xFF // type length points past the buffer
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tk, err := DecodeTick(data)
		if err != nil {
			return
		}
		reenc, err := EncodeTick(tk)
		if err != nil {
			t.Fatalf("decoded tick does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("re-encode mismatch: %x != %x", reenc, data)
		}
	})
}
