// Package trace models spot-price histories: fixed-step time series with
// the window, scan and statistics operations the SOMPI cost model needs,
// plus a regime-switching synthetic generator calibrated to the market
// behaviour the paper reports for Amazon EC2 in 2014 (Section 2.1) and a
// CSV codec for importing real price histories.
package trace

import (
	"fmt"
	"math"

	"sompi/internal/stats"
)

// DefaultStep is the sampling interval of generated traces in hours.
// Amazon updated spot prices every few minutes in 2014; five minutes is the
// granularity the paper's replay simulation works at.
const DefaultStep = 1.0 / 12

// Trace is a spot-price history sampled at a fixed step.
//
// A trace has an absolute clock: sample i of a fresh trace covers hours
// [i*Step, (i+1)*Step). Ring-buffer retention (Compact) may drop the
// oldest samples without shifting that clock — Head records how many
// were dropped, so Prices[0] is the sample for hour Head*Step and
// Duration still reports the absolute frontier. Statistics (Max, Mean,
// MeanBelow, FractionBelow, FirstExceed, Histogram) operate on the
// retained samples only.
type Trace struct {
	// Step is the sampling interval in hours.
	Step float64
	// Prices holds one $/instance-hour sample per step.
	Prices []float64
	// Head counts samples compacted away from the front of the series.
	// Zero for every trace except the result of Compact (and views of
	// it), so pre-existing code that builds Trace literals is unaffected.
	Head int
}

// New returns a trace with the given step wrapping prices. It panics on a
// non-positive step.
func New(step float64, prices []float64) *Trace {
	if step <= 0 {
		panic("trace: non-positive step")
	}
	return &Trace{Step: step, Prices: prices}
}

// Len reports the number of retained samples.
func (t *Trace) Len() int { return len(t.Prices) }

// Duration reports the absolute time frontier in hours: the span the
// trace has observed, including any samples Compact dropped.
func (t *Trace) Duration() float64 { return float64(t.Head+len(t.Prices)) * t.Step }

// StartHour reports the absolute hour of the oldest retained sample —
// zero until Compact drops samples. Lookups and windows before this hour
// are clamped to the retained range.
func (t *Trace) StartHour() float64 { return float64(t.Head) * t.Step }

// IndexAt converts an absolute hour offset into an index into Prices,
// clamped to the retained range.
func (t *Trace) IndexAt(hour float64) int {
	i := int(hour/t.Step) - t.Head
	if i < 0 {
		i = 0
	}
	if i >= len(t.Prices) {
		i = len(t.Prices) - 1
	}
	return i
}

// At reports the price in effect at the given hour offset.
func (t *Trace) At(hour float64) float64 {
	if len(t.Prices) == 0 {
		return 0
	}
	return t.Prices[t.IndexAt(hour)]
}

// Window returns the sub-trace covering [startHour, startHour+durHours)
// in absolute hours. The window is clamped to the retained samples; the
// samples are shared, not copied, because windows are read-only views in
// this codebase. The result is detached from the absolute clock (Head 0):
// a training window is its own coordinate system, exactly as before
// compaction existed.
func (t *Trace) Window(startHour, durHours float64) *Trace {
	lo := int(startHour/t.Step) - t.Head
	hi := int(math.Ceil((startHour+durHours)/t.Step)) - t.Head
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		// The window lies entirely before the compaction head: clamp to
		// an empty window instead of slicing with a negative bound.
		hi = 0
	}
	if hi > len(t.Prices) {
		hi = len(t.Prices)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Step: t.Step, Prices: t.Prices[lo:hi]}
}

// Compact drops the n oldest retained samples and returns the compacted
// trace, advancing Head so the absolute clock (Duration, IndexAt, Window
// coordinates) is unchanged. The receiver is not mutated. n is clamped
// to [0, Len()].
func (t *Trace) Compact(n int) *Trace {
	if n <= 0 {
		return t
	}
	if n > len(t.Prices) {
		n = len(t.Prices)
	}
	return &Trace{Step: t.Step, Prices: t.Prices[n:], Head: t.Head + n}
}

// Max reports the highest price in the history — the paper's H_i, the upper
// bound of the bid search space for a circle group.
func (t *Trace) Max() float64 {
	m := 0.0
	for _, p := range t.Prices {
		if p > m {
			m = p
		}
	}
	return m
}

// Mean reports the average price, the bid used by the Spot-Avg heuristic.
func (t *Trace) Mean() float64 {
	if len(t.Prices) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t.Prices {
		s += p
	}
	return s / float64(len(t.Prices))
}

// MeanBelow reports the average of the samples at or below bid — the
// paper's expected spot price S_i(P): "we find the spot prices lower than
// the bid price P_i from the spot price history, and use their mean value".
// If no sample is at or below the bid (the instance would never launch) it
// returns bid itself, the most pessimistic admissible charge.
func (t *Trace) MeanBelow(bid float64) float64 {
	s, n := 0.0, 0
	for _, p := range t.Prices {
		if p <= bid {
			s += p
			n++
		}
	}
	if n == 0 {
		return bid
	}
	return s / float64(n)
}

// FractionBelow reports the fraction of samples at or below bid, a quick
// availability proxy used by tests and the market study example.
func (t *Trace) FractionBelow(bid float64) float64 {
	if len(t.Prices) == 0 {
		return 0
	}
	n := 0
	for _, p := range t.Prices {
		if p <= bid {
			n++
		}
	}
	return float64(n) / float64(len(t.Prices))
}

// FirstExceed scans forward from sample index start and returns the number
// of hours until the price first exceeds bid, together with true if that
// happens before the end of the trace. This is the first-passage scan at
// the heart of the paper's failure-rate estimation (Section 4.4: "we check
// whether the spot price firstly becomes larger than P at time t").
func (t *Trace) FirstExceed(start int, bid float64) (hours float64, exceeded bool) {
	for i := start; i < len(t.Prices); i++ {
		if t.Prices[i] > bid {
			return float64(i-start) * t.Step, true
		}
	}
	return float64(len(t.Prices)-start) * t.Step, false
}

// Histogram bins the prices of the trace into the given geometry.
func (t *Trace) Histogram(lo, hi float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, bins)
	for _, p := range t.Prices {
		h.Add(p)
	}
	return h
}

// Append concatenates other onto t and returns the combined trace. Both
// traces must share the same step. The adaptive optimizer (Algorithm 1)
// appends each optimization window's observed prices to its history.
func (t *Trace) Append(other *Trace) *Trace {
	if t.Step != other.Step {
		panic(fmt.Sprintf("trace: step mismatch %v vs %v", t.Step, other.Step))
	}
	combined := make([]float64, 0, len(t.Prices)+len(other.Prices))
	combined = append(combined, t.Prices...)
	combined = append(combined, other.Prices...)
	return &Trace{Step: t.Step, Prices: combined, Head: t.Head}
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	p := make([]float64, len(t.Prices))
	copy(p, t.Prices)
	return &Trace{Step: t.Step, Prices: p, Head: t.Head}
}
