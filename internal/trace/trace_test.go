package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sompi/internal/stats"
)

func linear(n int) *Trace {
	p := make([]float64, n)
	for i := range p {
		p[i] = float64(i)
	}
	return New(1.0, p)
}

func TestNewPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with step 0 did not panic")
		}
	}()
	New(0, nil)
}

func TestDuration(t *testing.T) {
	tr := New(0.5, make([]float64, 10))
	if tr.Duration() != 5 {
		t.Fatalf("Duration = %v, want 5", tr.Duration())
	}
}

func TestAtAndIndexClamping(t *testing.T) {
	tr := linear(10)
	if tr.At(-3) != 0 {
		t.Fatalf("At(-3) = %v, want 0", tr.At(-3))
	}
	if tr.At(100) != 9 {
		t.Fatalf("At(100) = %v, want 9", tr.At(100))
	}
	if tr.At(3.5) != 3 {
		t.Fatalf("At(3.5) = %v, want 3", tr.At(3.5))
	}
}

func TestWindow(t *testing.T) {
	tr := linear(24)
	w := tr.Window(6, 6)
	if w.Len() != 6 {
		t.Fatalf("window len = %d, want 6", w.Len())
	}
	if w.Prices[0] != 6 {
		t.Fatalf("window start = %v, want 6", w.Prices[0])
	}
}

func TestWindowClamps(t *testing.T) {
	tr := linear(10)
	if w := tr.Window(-5, 100); w.Len() != 10 {
		t.Fatalf("over-wide window len = %d, want 10", w.Len())
	}
	if w := tr.Window(50, 10); w.Len() != 0 {
		t.Fatalf("out-of-range window len = %d, want 0", w.Len())
	}
}

func TestMaxMean(t *testing.T) {
	tr := New(1, []float64{1, 2, 3, 10})
	if tr.Max() != 10 {
		t.Fatalf("Max = %v, want 10", tr.Max())
	}
	if tr.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", tr.Mean())
	}
}

func TestMeanBelow(t *testing.T) {
	tr := New(1, []float64{1, 2, 3, 10})
	if got := tr.MeanBelow(3); got != 2 {
		t.Fatalf("MeanBelow(3) = %v, want 2", got)
	}
	// No sample below the bid: fall back to the bid itself.
	if got := tr.MeanBelow(0.5); got != 0.5 {
		t.Fatalf("MeanBelow(0.5) = %v, want 0.5", got)
	}
}

func TestFractionBelow(t *testing.T) {
	tr := New(1, []float64{1, 2, 3, 4})
	if got := tr.FractionBelow(2); got != 0.5 {
		t.Fatalf("FractionBelow(2) = %v, want 0.5", got)
	}
}

func TestFirstExceed(t *testing.T) {
	tr := New(1, []float64{1, 1, 5, 1})
	h, ex := tr.FirstExceed(0, 2)
	if !ex || h != 2 {
		t.Fatalf("FirstExceed = (%v,%v), want (2,true)", h, ex)
	}
	h, ex = tr.FirstExceed(0, 10)
	if ex || h != 4 {
		t.Fatalf("FirstExceed high bid = (%v,%v), want (4,false)", h, ex)
	}
	h, ex = tr.FirstExceed(3, 2)
	if ex || h != 1 {
		t.Fatalf("FirstExceed from 3 = (%v,%v), want (1,false)", h, ex)
	}
}

func TestAppend(t *testing.T) {
	a := New(1, []float64{1, 2})
	b := New(1, []float64{3})
	c := a.Append(b)
	if c.Len() != 3 || c.Prices[2] != 3 {
		t.Fatalf("Append produced %v", c.Prices)
	}
	// Original must be untouched.
	if a.Len() != 2 {
		t.Fatal("Append mutated its receiver")
	}
}

func TestAppendStepMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with mismatched steps did not panic")
		}
	}()
	New(1, nil).Append(New(0.5, nil))
}

func TestClone(t *testing.T) {
	a := New(1, []float64{1, 2})
	b := a.Clone()
	b.Prices[0] = 99
	if a.Prices[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New(0.25, []float64{0.1, 0.2, 0.15, 3.5})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip len %d, want %d", back.Len(), tr.Len())
	}
	if math.Abs(back.Step-tr.Step) > 1e-9 {
		t.Fatalf("round trip step %v, want %v", back.Step, tr.Step)
	}
	for i := range tr.Prices {
		if math.Abs(back.Prices[i]-tr.Prices[i]) > 1e-6 {
			t.Fatalf("sample %d: %v != %v", i, back.Prices[i], tr.Prices[i])
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"hour,price\n",
		"hour,price\nabc,1\n",
		"hour,price\n0,xyz\n",
		"hour,price\n0,-1\n",
		"hour,price\n0,1\n0,2\n",
		"hour,price\n1,1\n0,2\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadCSV accepted %q", in)
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("0,0.5\n1,0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Step != 1 {
		t.Fatalf("got len=%d step=%v", tr.Len(), tr.Step)
	}
}

func quietModel() Model {
	return Model{
		Name: "test/quiet", Base: 0.05, Jitter: 0.02, CalmHoldHours: 4,
		VolatileRate: 0, SpikeCap: 1, Floor: 0.001,
	}
}

func volatileModel() Model {
	return Model{
		Name: "test/volatile", Base: 0.05, Jitter: 0.05, CalmHoldHours: 4,
		VolatileRate: 1.0 / 12, VolatileMeanHours: 2,
		SpikeMu: 2.0, SpikeSigma: 1.0, SpikeCap: 5, Floor: 0.001,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := volatileModel().Generate(stats.NewRNG(1), 72)
	b := volatileModel().Generate(stats.NewRNG(1), 72)
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatalf("generation is not deterministic at sample %d", i)
		}
	}
}

func TestGenerateLength(t *testing.T) {
	tr := quietModel().Generate(stats.NewRNG(2), 48)
	if got := tr.Duration(); math.Abs(got-48) > tr.Step {
		t.Fatalf("Duration = %v, want ~48", got)
	}
}

func TestGenerateBounds(t *testing.T) {
	m := volatileModel()
	tr := m.Generate(stats.NewRNG(3), 24*14)
	for i, p := range tr.Prices {
		if p < m.Floor || p > m.SpikeCap {
			t.Fatalf("sample %d = %v outside [%v,%v]", i, p, m.Floor, m.SpikeCap)
		}
	}
}

func TestQuietMarketStaysNearBase(t *testing.T) {
	m := quietModel()
	tr := m.Generate(stats.NewRNG(4), 24*7)
	if max := tr.Max(); max > m.Base*1.5 {
		t.Fatalf("quiet market spiked to %v (base %v)", max, m.Base)
	}
}

func TestVolatileMarketSpikes(t *testing.T) {
	m := volatileModel()
	tr := m.Generate(stats.NewRNG(5), 24*14)
	if max := tr.Max(); max < m.Base*5 {
		t.Fatalf("volatile market never spiked: max %v (base %v)", max, m.Base)
	}
}

func TestVolatileMarketMostlyCheap(t *testing.T) {
	// The paper's economics depend on the spot price sitting well below
	// on-demand most of the time even in volatile markets.
	m := volatileModel()
	tr := m.Generate(stats.NewRNG(6), 24*14)
	if frac := tr.FractionBelow(m.Base * 2); frac < 0.6 {
		t.Fatalf("only %v of samples below 2x base", frac)
	}
}

func TestGenerateHasPlateaus(t *testing.T) {
	// Section 2.1: "the spot price can be unchanged for some time".
	tr := quietModel().Generate(stats.NewRNG(7), 24*7)
	longest, run := 0, 1
	for i := 1; i < tr.Len(); i++ {
		if tr.Prices[i] == tr.Prices[i-1] {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
	}
	if plateau := float64(longest) * tr.Step; plateau < 1 {
		t.Fatalf("longest plateau only %v hours", plateau)
	}
}

func TestStableDailyDistribution(t *testing.T) {
	// Figure 2: consecutive-day histograms of the same market are close.
	m := volatileModel()
	tr := m.Generate(stats.NewRNG(8), 24*8)
	var prev *Trace
	for day := 0; day < 4; day++ {
		w := tr.Window(float64(day)*24, 24)
		if prev != nil {
			d := prev.Histogram(0, m.SpikeCap, 20).Distance(w.Histogram(0, m.SpikeCap, 20))
			if d > 1.2 { // L1 distance of densities is at most 2
				t.Fatalf("day %d distribution drifted: L1 distance %v", day, d)
			}
		}
		prev = w
	}
}

func TestFirstExceedWithinBounds(t *testing.T) {
	f := func(seed uint64, bidRaw float64) bool {
		m := volatileModel()
		tr := m.Generate(stats.NewRNG(seed), 48)
		bid := math.Mod(math.Abs(bidRaw), m.SpikeCap)
		h, _ := tr.FirstExceed(0, bid)
		return h >= 0 && h <= tr.Duration()+tr.Step
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBelowNeverExceedsBidOrMax(t *testing.T) {
	f := func(seed uint64, bidRaw float64) bool {
		m := volatileModel()
		tr := m.Generate(stats.NewRNG(seed), 24)
		bid := math.Mod(math.Abs(bidRaw), m.SpikeCap) + m.Floor
		got := tr.MeanBelow(bid)
		return got <= bid+1e-12 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
