package trace

import (
	"math"
	"testing"
)

// seqTrace builds a trace whose i-th sample equals i, so any index
// arithmetic error shows up as a wrong price.
func seqTrace(n int) *Trace {
	p := make([]float64, n)
	for i := range p {
		p[i] = float64(i)
	}
	return New(DefaultStep, p)
}

func TestCompactPreservesAbsoluteClock(t *testing.T) {
	full := seqTrace(240) // 20 hours at the default 5-minute step
	c := full.Compact(60) // drop the first 5 hours

	if c.Head != 60 || c.Len() != 180 {
		t.Fatalf("compacted head %d len %d, want 60/180", c.Head, c.Len())
	}
	if c.Duration() != full.Duration() {
		t.Fatalf("compaction moved the frontier: %v -> %v", full.Duration(), c.Duration())
	}
	// Absolute lookups in the retained range are untouched.
	for _, hour := range []float64{5, 7.25, 12, 19.9} {
		if got, want := c.At(hour), full.At(hour); got != want {
			t.Errorf("At(%v) = %v after compaction, want %v", hour, got, want)
		}
	}
	// Lookups before the retained range clamp to the oldest survivor
	// instead of indexing out of bounds.
	if got := c.At(0); got != 60 {
		t.Errorf("At(0) on compacted trace = %v, want clamp to sample 60", got)
	}
	// The receiver is untouched.
	if full.Head != 0 || full.Len() != 240 {
		t.Fatalf("Compact mutated its receiver: head %d len %d", full.Head, full.Len())
	}
}

func TestCompactClamps(t *testing.T) {
	tr := seqTrace(10)
	if got := tr.Compact(0); got != tr {
		t.Error("Compact(0) should be a no-op returning the receiver")
	}
	if got := tr.Compact(-3); got != tr {
		t.Error("negative n should be a no-op")
	}
	all := tr.Compact(99)
	if all.Len() != 0 || all.Head != 10 || all.Duration() != tr.Duration() {
		t.Errorf("over-compaction: len %d head %d duration %v", all.Len(), all.Head, all.Duration())
	}
	twice := tr.Compact(4).Compact(3)
	if twice.Head != 7 || twice.Len() != 3 || twice.Prices[0] != 7 {
		t.Errorf("stacked compaction: head %d len %d first %v", twice.Head, twice.Len(), twice.Prices)
	}
}

// TestCompactedWindowMatchesUncompacted: a window over any absolute
// range inside the retained samples is byte-identical to the same window
// of the uncompacted trace — the property replay and the optimizer rely
// on after ring-buffer trimming.
func TestCompactedWindowMatchesUncompacted(t *testing.T) {
	full := seqTrace(240)
	c := full.Compact(60)
	for _, win := range []struct{ start, dur float64 }{
		{5, 15}, {10, 5}, {19, 1}, {5, 0.5}, {7.3, 2.2},
	} {
		a, b := full.Window(win.start, win.dur), c.Window(win.start, win.dur)
		if a.Head != 0 || b.Head != 0 {
			t.Fatalf("windows must detach from the absolute clock: heads %d/%d", a.Head, b.Head)
		}
		if a.Len() != b.Len() {
			t.Fatalf("window [%v,+%v): %d vs %d samples", win.start, win.dur, a.Len(), b.Len())
		}
		for i := range a.Prices {
			if a.Prices[i] != b.Prices[i] {
				t.Fatalf("window [%v,+%v) sample %d: %v vs %v", win.start, win.dur, i, a.Prices[i], b.Prices[i])
			}
		}
	}
}

// TestWindowBeforeHead: windowing a range at or before the compaction
// head must clamp, never panic. Regression: a window lying entirely
// before the retained head left hi negative, and lo (clamped to hi)
// drove Prices[lo:hi] out of range ("slice bounds out of range [:-6]") —
// reachable via Monte Carlo baselines windowing [start-history, start)
// for starts before the head when retention is shorter than the market.
func TestWindowBeforeHead(t *testing.T) {
	c := seqTrace(240).Compact(120) // retained range starts at hour 10
	if got := c.StartHour(); got != 10 {
		t.Fatalf("StartHour() = %v, want 10", got)
	}
	for _, win := range []struct{ start, dur float64 }{
		{0, 5}, {0, 9.9}, {2, 3}, {9, 0.5},
	} {
		w := c.Window(win.start, win.dur)
		if w.Len() != 0 {
			t.Errorf("window [%v,+%v) before the head: %d samples, want empty", win.start, win.dur, w.Len())
		}
	}
	// A window straddling the head clamps its start to the head.
	w := c.Window(5, 10)
	if w.Len() != 60 || w.Prices[0] != 120 {
		t.Errorf("straddling window: len %d first %v, want 60 samples starting at 120", w.Len(), w.Prices[0])
	}
}

func TestAppendAndCloneCarryHead(t *testing.T) {
	c := seqTrace(120).Compact(20)
	grown := c.Append(New(DefaultStep, []float64{1000, 1001}))
	if grown.Head != 20 || grown.Len() != 102 {
		t.Fatalf("append after compaction: head %d len %d", grown.Head, grown.Len())
	}
	if want := float64(122) * DefaultStep; math.Abs(grown.Duration()-want) > 1e-12 {
		t.Fatalf("duration after append %v, want %v", grown.Duration(), want)
	}
	cl := c.Clone()
	if cl.Head != c.Head || cl.Len() != c.Len() {
		t.Fatalf("clone dropped compaction state: head %d len %d", cl.Head, cl.Len())
	}
}
