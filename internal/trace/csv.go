package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the trace as two-column CSV (hour offset, price). The
// header row is "hour,price". cmd/tracegen uses this to export synthetic
// markets; real EC2 price histories in the same shape can be re-imported
// with ReadCSV.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "price"}); err != nil {
		return err
	}
	for i, p := range t.Prices {
		rec := []string{
			strconv.FormatFloat(float64(i)*t.Step, 'f', 6, 64),
			strconv.FormatFloat(p, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV (or any two-column
// hour,price CSV with uniformly spaced rows). It infers the step from the
// first two rows and validates monotonically increasing hours.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) > 0 && rows[0][0] == "hour" {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: csv contains no samples")
	}
	hours := make([]float64, len(rows))
	prices := make([]float64, len(rows))
	for i, rec := range rows {
		if len(rec) < 2 {
			return nil, fmt.Errorf("trace: row %d has %d columns, want 2", i, len(rec))
		}
		h, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d hour: %w", i, err)
		}
		p, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d price: %w", i, err)
		}
		if p < 0 {
			return nil, fmt.Errorf("trace: row %d has negative price %v", i, p)
		}
		hours[i] = h
		prices[i] = p
	}
	step := DefaultStep
	if len(hours) > 1 {
		step = hours[1] - hours[0]
		if step <= 0 {
			return nil, fmt.Errorf("trace: hours not increasing at row 1")
		}
		for i := 2; i < len(hours); i++ {
			if hours[i] <= hours[i-1] {
				return nil, fmt.Errorf("trace: hours not increasing at row %d", i)
			}
		}
	}
	return New(step, prices), nil
}
