package trace

import (
	"math"

	"sompi/internal/stats"
)

// Model parameterizes the regime-switching synthetic spot-price generator.
//
// The generator reproduces the qualitative features the paper observes on
// 2014 EC2 traces (Section 2.1): long plateaus where the price does not
// move, abrupt volatile episodes where the price spikes to many multiples
// of the on-demand price (Figure 1 shows m1.medium in us-east-1a jumping
// from <$0.1 to ~$10), quiet zones where the price barely moves at all, and
// a short-term price distribution that is stable day over day (Figure 2).
//
// The process alternates between a calm regime — price holds a plateau near
// Base with small repricing noise — and a volatile regime — frequent
// repricing with log-normal multipliers that produce out-of-bid spikes.
type Model struct {
	// Name identifies the market (for reports), e.g. "m1.medium/us-east-1a".
	Name string
	// Base is the calm-market price in $/instance-hour, typically a
	// fraction of the on-demand price.
	Base float64
	// Jitter is the relative standard deviation of calm repricing.
	Jitter float64
	// CalmHoldHours is the mean plateau duration in the calm regime.
	CalmHoldHours float64
	// VolatileRate is the probability per hour of entering the volatile
	// regime. Zero yields a permanently quiet market (us-east-1b style).
	VolatileRate float64
	// VolatileMeanHours is the mean duration of a volatile episode.
	VolatileMeanHours float64
	// SpikeMu and SpikeSigma parameterize the log-normal multiplier applied
	// to Base on each volatile repricing.
	SpikeMu, SpikeSigma float64
	// SpikeCap bounds the generated price in $/h (EC2 capped spot prices at
	// a multiple of on-demand; also keeps H_i finite for the bid search).
	SpikeCap float64
	// Floor is the minimum price in $/h.
	Floor float64
}

// Generate produces hours of history at DefaultStep resolution using the
// deterministic generator rng.
func (m Model) Generate(rng *stats.RNG, hours float64) *Trace {
	return m.GenerateStep(rng, hours, DefaultStep)
}

// GenerateStep is Generate with an explicit sampling step.
func (m Model) GenerateStep(rng *stats.RNG, hours, step float64) *Trace {
	n := int(math.Ceil(hours / step))
	prices := make([]float64, n)

	volatile := false
	regimeLeft := m.sampleCalmSojourn(rng)
	price := m.calmPrice(rng)
	holdLeft := m.sampleHold(rng, volatile)

	for i := 0; i < n; i++ {
		if regimeLeft <= 0 {
			volatile = !volatile
			if volatile {
				regimeLeft = rng.Exp(1 / math.Max(m.VolatileMeanHours, step))
			} else {
				regimeLeft = m.sampleCalmSojourn(rng)
			}
			holdLeft = 0 // reprice immediately on regime change
		}
		if holdLeft <= 0 {
			if volatile {
				price = m.spikePrice(rng)
			} else {
				price = m.calmPrice(rng)
			}
			holdLeft = m.sampleHold(rng, volatile)
		}
		prices[i] = price
		regimeLeft -= step
		holdLeft -= step
	}
	return New(step, prices)
}

// sampleCalmSojourn draws the calm-regime duration. A zero VolatileRate
// means the market never turns volatile.
func (m Model) sampleCalmSojourn(rng *stats.RNG) float64 {
	if m.VolatileRate <= 0 {
		return math.Inf(1)
	}
	return rng.Exp(m.VolatileRate)
}

func (m Model) sampleHold(rng *stats.RNG, volatile bool) float64 {
	if volatile {
		return rng.Exp(1 / 0.25) // reprice roughly every 15 minutes
	}
	hold := m.CalmHoldHours
	if hold <= 0 {
		hold = 4
	}
	return rng.Exp(1 / hold)
}

func (m Model) calmPrice(rng *stats.RNG) float64 {
	p := m.Base * (1 + m.Jitter*rng.NormFloat64())
	return m.clamp(p)
}

func (m Model) spikePrice(rng *stats.RNG) float64 {
	p := m.Base * rng.LogNormal(m.SpikeMu, m.SpikeSigma)
	return m.clamp(p)
}

func (m Model) clamp(p float64) float64 {
	if p < m.Floor {
		p = m.Floor
	}
	if m.SpikeCap > 0 && p > m.SpikeCap {
		p = m.SpikeCap
	}
	return p
}
