package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// EndpointBench is one endpoint's throughput summary in a bench file.
type EndpointBench struct {
	QPS   float64 `json:"qps"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// BenchSummary is the replay throughput record AppendBench merges into
// a BENCH_serve.json-style document under the "replay" key.
type BenchSummary struct {
	Records     int                      `json:"records"`
	WallSeconds float64                  `json:"wall_seconds"`
	QPS         float64                  `json:"qps"`
	Endpoints   map[string]EndpointBench `json:"endpoints"`
	PlanDiffs   int                      `json:"plan_diffs"`
	FieldDiffs  int                      `json:"field_diffs"`
}

// Summarize folds a replay report into its bench summary. With twin
// targets the first (the baseline) is summarized.
func (rep *Report) Summarize() BenchSummary {
	s := BenchSummary{
		Records:     rep.Records,
		WallSeconds: benchRound(rep.WallSeconds),
		Endpoints:   map[string]EndpointBench{},
		PlanDiffs:   rep.PlanDiffs,
		FieldDiffs:  rep.FieldDiffs,
	}
	if rep.WallSeconds > 0 {
		s.QPS = benchRound(float64(rep.Records) / rep.WallSeconds)
	}
	if len(rep.Targets) > 0 {
		for name, ep := range rep.Targets[0].Endpoints {
			s.Endpoints[name] = EndpointBench{
				QPS: benchRound(ep.QPS), P50MS: benchRound(ep.P50MS), P99MS: benchRound(ep.P99MS),
			}
		}
	}
	return s
}

// AppendBench merges the replay's throughput summary into a
// BENCH_serve.json-style document (one JSON object) under "replay",
// preserving every other key. A missing file starts a fresh document.
func AppendBench(path string, rep *Report) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("harness: bench file %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rep.Summarize())
	if err != nil {
		return err
	}
	doc["replay"] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func benchRound(v float64) float64 { return math.Round(v*1000) / 1000 }
