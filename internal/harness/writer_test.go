package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriterRotatesAndLoadsInOrder(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 3)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	for i := 0; i < 8; i++ {
		rec := Record{Endpoint: "plan", Method: "POST", Path: "/v1/plan", Status: 200, Body: `{"i":1}`}
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := w.Records(); got != 8 {
		t.Fatalf("Records() = %d, want 8", got)
	}
	// 8 records at 3/segment: two sealed segments plus a 2-record active one.
	sealed, parts := listSegments(t, dir)
	if len(sealed) != 2 || len(parts) != 1 {
		t.Fatalf("before close: %d sealed, %d part segments; want 2 and 1", len(sealed), len(parts))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sealed, parts = listSegments(t, dir)
	if len(sealed) != 3 || len(parts) != 0 {
		t.Fatalf("after close: %d sealed, %d part segments; want 3 and 0", len(sealed), len(parts))
	}

	recs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(recs) != 8 {
		t.Fatalf("loaded %d records, want 8", len(recs))
	}
	last := -1.0
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d: capture order lost across segments", i, r.Seq)
		}
		if r.TimeMS < last {
			t.Fatalf("record %d: t_ms %v went backwards from %v", i, r.TimeMS, last)
		}
		last = r.TimeMS
	}
}

func TestWriterCloseRemovesEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 2)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	// Exactly segRecs appends: rotation seals segment 0 and opens an
	// empty segment 1, which Close must remove rather than seal.
	for i := 0; i < 2; i++ {
		if err := w.Append(Record{Method: "GET", Path: "/healthz", Status: 200}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sealed, parts := listSegments(t, dir)
	if len(sealed) != 1 || len(parts) != 0 {
		t.Fatalf("%d sealed, %d part segments; want exactly 1 sealed", len(sealed), len(parts))
	}
}

func TestWriterRestartNumbersAboveExisting(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 1)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	if err := w.Append(Record{Method: "GET", Path: "/healthz", Status: 200}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, err := OpenWriter(dir, 1)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := w2.Append(Record{Method: "GET", Path: "/healthz", Status: 200}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sealed, _ := listSegments(t, dir)
	if len(sealed) != 2 {
		t.Fatalf("restart overwrote a prior segment: %v", sealed)
	}
}

func TestLoadToleratesTornPartTail(t *testing.T) {
	dir := t.TempDir()
	good, err := EncodeRecord(Record{Seq: 0, Endpoint: "plan", Method: "POST", Path: "/v1/plan", Status: 200})
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	// An abandoned active segment whose final line was torn mid-record
	// by a crash: the intact prefix must load, the tail must be dropped.
	torn := string(good) + `{"seq":1,"endpoint":"plan","met`
	if err := os.WriteFile(filepath.Join(dir, "capture-000000.ndjson.part"), []byte(torn), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	recs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load with torn .part tail: %v", err)
	}
	if len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("loaded %+v, want just the intact record", recs)
	}

	// The same corruption in a sealed segment is an error: sealing
	// guarantees completeness, so a torn line there is real corruption.
	if err := os.WriteFile(filepath.Join(dir, "capture-000001.ndjson"), []byte(torn), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a torn line inside a sealed segment")
	}
}

func TestLoadSingleFileAndErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "log.ndjson")
	line, err := EncodeRecord(Record{Endpoint: "prices", Method: "POST", Path: "/v1/prices", Status: 200})
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	if err := os.WriteFile(file, append([]byte("\n"), line...), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	recs, err := Load(file)
	if err != nil {
		t.Fatalf("Load(file): %v", err)
	}
	if len(recs) != 1 || recs[0].Endpoint != "prices" {
		t.Fatalf("loaded %+v", recs)
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Load of a missing path succeeded")
	}
	empty := t.TempDir()
	if _, err := Load(empty); err == nil {
		t.Fatal("Load of an empty directory succeeded")
	}
}

func listSegments(t *testing.T, dir string) (sealed, parts []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), partSuffix):
			parts = append(parts, e.Name())
		case strings.HasSuffix(e.Name(), ".ndjson"):
			sealed = append(sealed, e.Name())
		}
	}
	return sealed, parts
}
