// Package harness is the sompi-replay subsystem: capture, replay and
// twin-diff of sompid production traffic with latency SLO regression
// gates.
//
// The flow has three stages. sompid, started with -capture-log DIR,
// appends one NDJSON Record per v1 request to a segmented capture log
// (Writer). cmd/sompi-replay loads a capture log (Load) and replays it
// against one or two live sompid targets at a configurable rate
// multiplier and concurrency (Replay), diffing twin responses
// field-by-field under ignore rules and folding per-endpoint latency
// into obs histograms. A Rules file then maps the resulting Report onto
// regression verdicts (Evaluate) with distinct exit codes for CI: a
// latency budget, a cache hit-rate floor, and a zero-plan-byte-diff
// gate between twin targets.
package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrBadRecord reports a capture-log line that does not decode into a
// valid Record. The decoder returns it — never panics — so replay can
// report the offending line and segment.
var ErrBadRecord = errors.New("harness: malformed capture record")

// MaxRecordBytes bounds one encoded capture record (one NDJSON line).
// Request bodies are small JSON documents; a line beyond this is
// corruption or an abuse of the log, not a legitimate capture.
const MaxRecordBytes = 1 << 22

// Record is one captured request/response pair: everything replay needs
// to re-issue the request, plus the response identity (status and body
// hash) the capture-time server produced. One Record is one NDJSON line
// in the capture log.
type Record struct {
	// Seq is the record's position in the capture stream, starting at 0
	// and strictly increasing across segment boundaries.
	Seq int `json:"seq"`
	// TimeMS is the request's start time in milliseconds relative to the
	// capture log's start — the pacing clock for rate-scaled replay.
	TimeMS float64 `json:"t_ms"`
	// Endpoint is the serve-side endpoint label ("plan", "prices", ...),
	// the key latency reports and rules files aggregate by.
	Endpoint string `json:"endpoint"`
	// Method and Path re-issue the request; Path keeps the query string
	// (?explain=1, ?sync=1) verbatim.
	Method string `json:"method"`
	Path   string `json:"path"`
	// RequestID is the X-Request-Id the serve middleware echoed —
	// captured so replay can re-send it (both twin targets then see the
	// same id) and diffing can ignore it by default.
	RequestID string `json:"request_id,omitempty"`
	// Body is the request body, verbatim (empty for GETs).
	Body string `json:"body,omitempty"`
	// Status and BodySHA256 identify the captured response: the hex
	// SHA-256 of the body keeps the log compact while still letting
	// replay detect capture-vs-replay drift.
	Status     int    `json:"status"`
	BodySHA256 string `json:"body_sha256,omitempty"`
}

// EncodeRecord renders a record as one NDJSON line (with the trailing
// newline).
func EncodeRecord(rec Record) ([]byte, error) {
	if err := rec.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return append(b, '\n'), nil
}

// DecodeCaptureRecord parses one capture-log line. It never panics:
// non-JSON input, non-object lines, unknown fields, out-of-range values
// and oversized lines all return ErrBadRecord-wrapped errors, so a
// corrupt segment fails typed instead of poisoning a replay run.
func DecodeCaptureRecord(line []byte) (Record, error) {
	if len(line) > MaxRecordBytes {
		return Record{}, fmt.Errorf("%w: line is %d bytes, limit %d", ErrBadRecord, len(line), MaxRecordBytes)
	}
	trimmed := strings.TrimSpace(string(line))
	if !strings.HasPrefix(trimmed, "{") {
		return Record{}, fmt.Errorf("%w: line is not a JSON object", ErrBadRecord)
	}
	dec := json.NewDecoder(strings.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	// A second document on the same line is framing corruption.
	if dec.More() {
		return Record{}, fmt.Errorf("%w: trailing data after record", ErrBadRecord)
	}
	if err := rec.validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// validate enforces the invariants replay depends on.
func (r Record) validate() error {
	switch {
	case r.Seq < 0:
		return fmt.Errorf("%w: negative seq %d", ErrBadRecord, r.Seq)
	case math.IsNaN(r.TimeMS) || math.IsInf(r.TimeMS, 0) || r.TimeMS < 0:
		return fmt.Errorf("%w: bad timestamp %v", ErrBadRecord, r.TimeMS)
	case r.Method == "":
		return fmt.Errorf("%w: empty method", ErrBadRecord)
	case r.Path == "" || !strings.HasPrefix(r.Path, "/"):
		return fmt.Errorf("%w: bad path %q", ErrBadRecord, r.Path)
	case r.Status < 100 || r.Status > 599:
		return fmt.Errorf("%w: status %d out of range", ErrBadRecord, r.Status)
	}
	return nil
}
