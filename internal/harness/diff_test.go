package harness

import (
	"strings"
	"testing"
)

func TestDiffJSONFindsFieldDivergence(t *testing.T) {
	a := []byte(`{"estimate":{"cost":1.25,"hours":4},"groups":[{"bid":0.10},{"bid":0.20}]}`)
	b := []byte(`{"estimate":{"cost":1.30,"hours":4},"groups":[{"bid":0.10},{"bid":0.25}]}`)
	diffs := DiffJSON(a, b, nil, 0)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs %v, want 2", len(diffs), diffs)
	}
	if diffs[0].Path != "estimate.cost" || diffs[0].A != "1.25" || diffs[0].B != "1.3" {
		t.Fatalf("first diff %+v", diffs[0])
	}
	if diffs[1].Path != "groups[1].bid" {
		t.Fatalf("second diff %+v", diffs[1])
	}
}

func TestDiffJSONIgnoreRules(t *testing.T) {
	a := []byte(`{"request_id":"r-1","plan":{"cost":5,"trace":{"span_id":"a"}},"stages":[{"name":"x","duration_ns":10}]}`)
	b := []byte(`{"request_id":"r-2","plan":{"cost":5,"trace":{"span_id":"b"}},"stages":[{"name":"x","duration_ns":99}]}`)
	// DefaultIgnore must absorb the id, span and timing churn: the two
	// documents are behaviorally identical.
	if diffs := DiffJSON(a, b, DefaultIgnore, 0); len(diffs) != 0 {
		t.Fatalf("DefaultIgnore leaked diffs: %v", diffs)
	}
	// Without ignore rules all three surface.
	if diffs := DiffJSON(a, b, nil, 0); len(diffs) != 3 {
		t.Fatalf("got %d raw diffs, want 3: %v", len(DiffJSON(a, b, nil, 0)), diffs)
	}
}

func TestDiffJSONDottedPathRule(t *testing.T) {
	a := []byte(`{"groups":[{"bid":1,"n":2}],"bid":7}`)
	b := []byte(`{"groups":[{"bid":9,"n":2}],"bid":8}`)
	// A dotted-path rule with indices stripped matches every element's
	// field but not the same leaf name elsewhere.
	diffs := DiffJSON(a, b, []string{"groups.bid"}, 0)
	if len(diffs) != 1 || diffs[0].Path != "bid" {
		t.Fatalf("got %v, want only the top-level bid diff", diffs)
	}
}

func TestDiffJSONAbsentAndShape(t *testing.T) {
	a := []byte(`{"x":1,"only_a":true,"arr":[1,2]}`)
	b := []byte(`{"x":1,"arr":[1,2,3]}`)
	diffs := DiffJSON(a, b, nil, 0)
	if len(diffs) != 2 {
		t.Fatalf("got %v, want absent-field and array-length diffs", diffs)
	}
	byPath := map[string]FieldDiff{}
	for _, d := range diffs {
		byPath[d.Path] = d
	}
	if d := byPath["only_a"]; d.B != "<absent>" {
		t.Fatalf("only_a diff %+v", d)
	}
	if d := byPath["arr"]; !strings.Contains(d.A, "2 elements") || !strings.Contains(d.B, "3 elements") {
		t.Fatalf("arr diff %+v", d)
	}
	// An ignored field that is absent on one side is still ignored.
	if diffs := DiffJSON(a, b, []string{"only_a", "arr"}, 0); len(diffs) != 0 {
		t.Fatalf("ignore rules missed absent/shape diffs: %v", diffs)
	}
}

func TestDiffJSONNonJSONFallback(t *testing.T) {
	if diffs := DiffJSON([]byte("ok"), []byte("ok"), nil, 0); len(diffs) != 0 {
		t.Fatalf("identical non-JSON bodies diffed: %v", diffs)
	}
	diffs := DiffJSON([]byte("ok"), []byte("meh"), nil, 0)
	if len(diffs) != 1 || diffs[0].Path != "" {
		t.Fatalf("non-JSON divergence %v, want one whole-body diff", diffs)
	}
}

func TestDiffJSONMaxBound(t *testing.T) {
	a := []byte(`{"a":1,"b":1,"c":1,"d":1}`)
	b := []byte(`{"a":2,"b":2,"c":2,"d":2}`)
	if diffs := DiffJSON(a, b, nil, 2); len(diffs) != 2 {
		t.Fatalf("max=2 returned %d diffs", len(diffs))
	}
}
