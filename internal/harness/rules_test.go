package harness

import (
	"os"
	"path/filepath"
	"testing"
)

func reportForRules() *Report {
	fast := &EndpointReport{Requests: 100, P50MS: 2, P90MS: 6, P99MS: 12, CacheLookups: 100, CacheHits: 80}
	slow := &EndpointReport{Requests: 50, Errors: 5, StatusMismatches: 2, P50MS: 40, P90MS: 90, P99MS: 400}
	return &Report{
		Records: 150,
		Targets: []TargetReport{{
			Name:      "mem",
			Endpoints: map[string]*EndpointReport{"plan": fast, "montecarlo": slow},
		}},
	}
}

func TestRulesEvaluatePasses(t *testing.T) {
	rules := Rules{
		MaxPlanDiffs:    0,
		MaxFieldDiffs:   0,
		MinCacheHitRate: 0.5,
		Endpoints: map[string]EndpointRule{
			"plan":       {P50MS: 5, P99MS: 50},
			"montecarlo": {P99MS: 500},
		},
	}
	if v := rules.Evaluate(reportForRules()); len(v) != 0 {
		t.Fatalf("clean report tripped rules: %v", v)
	}
}

func TestRulesEvaluateViolations(t *testing.T) {
	zero := 0.0
	rules := Rules{
		MaxPlanDiffs:          0,
		MaxFieldDiffs:         1,
		MinCacheHitRate:       0.9,
		MaxStatusMismatchRate: &zero,
		Endpoints: map[string]EndpointRule{
			"montecarlo": {P99MS: 100, MaxErrorRate: &zero},
			"plan":       {P50MS: 1},
			"sessions":   {P99MS: 1}, // no such traffic: must not trip
		},
	}
	rep := reportForRules()
	rep.PlanDiffs = 3
	rep.FieldDiffs = 2
	rep.TransportErrors = 1

	got := rules.Evaluate(rep)
	want := []string{
		"max_plan_diffs",           // 3 > 0
		"max_field_diffs",          // 2 > 1
		"max_transport_errors",     // 1 > 0
		"min_cache_hit_rate",       // 0.8 < 0.9
		"max_status_mismatch_rate", // 2/150 > 0
		"p99_ms",                   // montecarlo 400 > 100
		"max_error_rate",           // montecarlo 5/50 > 0
		"p50_ms",                   // plan 2 > 1
	}
	if len(got) != len(want) {
		t.Fatalf("got %d violations %v, want %d", len(got), got, len(want))
	}
	for i, v := range got {
		if v.Rule != want[i] {
			t.Fatalf("violation %d = %s, want %s (order must be deterministic); all: %v", i, v.Rule, want[i], got)
		}
	}
}

func TestRulesPerTargetHitRateOverride(t *testing.T) {
	// Two targets with different hit rates: the per-target override
	// gates each on its own floor while the global floor covers the
	// target without an entry.
	rep := &Report{Targets: []TargetReport{
		{Name: "single", Endpoints: map[string]*EndpointReport{
			"plan": {Requests: 100, CacheLookups: 100, CacheHits: 80},
		}},
		{Name: "cluster", Endpoints: map[string]*EndpointReport{
			"plan": {Requests: 100, CacheLookups: 100, CacheHits: 40},
		}},
	}}
	rules := Rules{
		MinCacheHitRate: 0.7,
		Targets:         map[string]TargetRule{"cluster": {MinCacheHitRate: 0.3}},
	}
	if v := rules.Evaluate(rep); len(v) != 0 {
		t.Fatalf("override should relax the cluster floor: %v", v)
	}
	rules.Targets["cluster"] = TargetRule{MinCacheHitRate: 0.5}
	v := rules.Evaluate(rep)
	if len(v) != 1 || v[0].Rule != "min_cache_hit_rate" || v[0].Target != "cluster" || v[0].Limit != 0.5 {
		t.Fatalf("got %v, want only the cluster target tripping its own 0.5 floor", v)
	}
}

func TestRulesHitRateFloorNeedsLookups(t *testing.T) {
	// A hit-rate floor over traffic that never exercised the cache is a
	// violation: the run cannot demonstrate the property it gates.
	rep := &Report{Targets: []TargetReport{{
		Name:      "mem",
		Endpoints: map[string]*EndpointReport{"prices": {Requests: 10}},
	}}}
	rules := Rules{MinCacheHitRate: 0.1}
	v := rules.Evaluate(rep)
	if len(v) != 1 || v[0].Rule != "min_cache_hit_rate" {
		t.Fatalf("got %v, want the unprovable hit-rate floor to trip", v)
	}
}

func TestLoadRulesStrict(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(good, []byte(`{"max_plan_diffs":0,"endpoints":{"plan":{"p99_ms":250}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRules(good)
	if err != nil {
		t.Fatalf("LoadRules: %v", err)
	}
	if r.Endpoints["plan"].P99MS != 250 {
		t.Fatalf("loaded %+v", r)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"max_pln_diffs":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRules(bad); err == nil {
		t.Fatal("LoadRules accepted an unknown field (typo squatting a gate)")
	}
	if _, err := LoadRules(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadRules accepted a missing file")
	}
}
