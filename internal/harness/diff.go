package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultIgnore is the ignore-rule set every diff starts from: fields
// that legitimately differ between a capture and its replay, or between
// twin targets, without signaling a behavior change. Request ids are
// minted per process; date/timestamp fields track wall time. Cache
// headers (X-Sompid-Cache, X-Request-Id) are excluded by construction —
// the differ compares bodies, never headers — but the id also appears
// inside id-bearing response bodies (trace spans, error texts echoing
// the id), which is what these field rules cover.
// duration_ns and total_ns cover the explain trail's per-stage and
// total wall-clock timings.
var DefaultIgnore = []string{"request_id", "trace_id", "span_id", "date", "timestamp", "duration_ns", "total_ns"}

// FieldDiff is one field-level divergence between two JSON documents.
type FieldDiff struct {
	// Path is the dotted field path ("estimate.cost", "plan.groups[0].bid");
	// empty means the document root.
	Path string `json:"path"`
	// A and B are the two sides' values at Path, rendered as JSON
	// (clipped); "<absent>" marks a field present on one side only.
	A string `json:"a"`
	B string `json:"b"`
}

// ignoreSet compiles ignore rules for matching. A rule matches a node
// when it equals the node's leaf field name or its full dotted path
// (array indices stripped for path comparison, so "groups.bid" matches
// every element's bid).
type ignoreSet struct{ rules map[string]bool }

func newIgnoreSet(rules []string) ignoreSet {
	s := ignoreSet{rules: make(map[string]bool, len(rules))}
	for _, r := range rules {
		if r = strings.TrimSpace(r); r != "" {
			s.rules[r] = true
		}
	}
	return s
}

func (s ignoreSet) matches(path, leaf string) bool {
	if s.rules[leaf] {
		return true
	}
	return s.rules[stripIndices(path)]
}

// stripIndices removes [i] array indices from a dotted path.
func stripIndices(path string) string {
	if !strings.ContainsRune(path, '[') {
		return path
	}
	var b strings.Builder
	skip := false
	for _, r := range path {
		switch {
		case r == '[':
			skip = true
		case r == ']':
			skip = false
		case !skip:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// DiffJSON compares two JSON documents field-by-field under the given
// ignore rules, returning every divergence up to max (0 = unlimited).
// Non-JSON input degrades to a whole-body comparison, so the differ is
// total over arbitrary response bytes.
func DiffJSON(a, b []byte, ignore []string, max int) []FieldDiff {
	var va, vb any
	errA := json.Unmarshal(a, &va)
	errB := json.Unmarshal(b, &vb)
	if errA != nil || errB != nil {
		if string(a) == string(b) {
			return nil
		}
		return []FieldDiff{{Path: "", A: clipValue(string(a)), B: clipValue(string(b))}}
	}
	d := &differ{ignore: newIgnoreSet(ignore), max: max}
	d.walk("", "", va, vb)
	return d.out
}

type differ struct {
	ignore ignoreSet
	max    int
	out    []FieldDiff
}

func (d *differ) full() bool { return d.max > 0 && len(d.out) >= d.max }

func (d *differ) add(path string, a, b any) {
	if d.full() {
		return
	}
	d.out = append(d.out, FieldDiff{Path: path, A: renderValue(a), B: renderValue(b)})
}

// walk recursively compares two values. leaf is the node's own field
// name (empty at the root and for array elements).
func (d *differ) walk(path, leaf string, a, b any) {
	if d.full() || d.ignore.matches(path, leaf) {
		return
	}
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			d.add(path, a, b)
			return
		}
		keys := make([]string, 0, len(av)+len(bv))
		for k := range av {
			keys = append(keys, k)
		}
		for k := range bv {
			if _, dup := av[k]; !dup {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub := k
			if path != "" {
				sub = path + "." + k
			}
			x, inA := av[k]
			y, inB := bv[k]
			switch {
			case !inA:
				if !d.ignore.matches(sub, k) {
					d.add(sub, absent{}, y)
				}
			case !inB:
				if !d.ignore.matches(sub, k) {
					d.add(sub, x, absent{})
				}
			default:
				d.walk(sub, k, x, y)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			d.add(path, a, b)
			return
		}
		if len(av) != len(bv) {
			d.add(path, fmt.Sprintf("<%d elements>", len(av)), fmt.Sprintf("<%d elements>", len(bv)))
			return
		}
		for i := range av {
			d.walk(path+"["+strconv.Itoa(i)+"]", leaf, av[i], bv[i])
		}
	default:
		if !equalScalar(a, b) {
			d.add(path, a, b)
		}
	}
}

// absent marks a field present on only one side.
type absent struct{}

func equalScalar(a, b any) bool {
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		return ok && af == bf
	}
	return a == b
}

func renderValue(v any) string {
	if _, ok := v.(absent); ok {
		return "<absent>"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return clipValue(string(b))
}

// clipValue bounds a rendered value for reports.
func clipValue(s string) string {
	const max = 160
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
