package harness

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakeSompid builds a stand-in target: plan responses carry the
// server's tag in a field plus the echoed request id, prices answers
// flip the cache header on repeat bodies.
func fakeSompid(tag string) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		n := hits.Add(1)
		cache := "miss"
		if n > 1 {
			cache = "hit"
		}
		w.Header().Set("X-Sompid-Cache", cache)
		fmt.Fprintf(w, `{"tag":%q,"request_id":%q,"cost":1.5,"echo_len":%d}`, tag, r.Header.Get("X-Request-Id"), len(body))
	})
	mux.HandleFunc("GET /v1/strategies", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"strategies":["paper"]}`)
	})
	mux.HandleFunc("POST /v1/montecarlo", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	return httptest.NewServer(mux), &hits
}

func captureFixture() []Record {
	return []Record{
		{Seq: 0, TimeMS: 0, Endpoint: "plan", Method: "POST", Path: "/v1/plan", RequestID: "cap-1", Body: `{"deadline":24}`, Status: 200},
		{Seq: 1, TimeMS: 1, Endpoint: "plan", Method: "POST", Path: "/v1/plan", RequestID: "cap-2", Body: `{"deadline":24}`, Status: 200},
		{Seq: 2, TimeMS: 2, Endpoint: "strategies", Method: "GET", Path: "/v1/strategies", Status: 200},
		{Seq: 3, TimeMS: 3, Endpoint: "montecarlo", Method: "POST", Path: "/v1/montecarlo", Body: `{}`, Status: 200},
	}
}

func TestReplaySingleTarget(t *testing.T) {
	ts, _ := fakeSompid("a")
	defer ts.Close()

	rep, err := Replay(context.Background(), captureFixture(), Options{
		Targets: []Target{{Name: "mem", URL: ts.URL}},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Records != 4 || len(rep.Targets) != 1 {
		t.Fatalf("report %+v", rep)
	}
	eps := rep.Targets[0].Endpoints
	plan := eps["plan"]
	if plan == nil || plan.Requests != 2 {
		t.Fatalf("plan endpoint %+v", plan)
	}
	if plan.CacheLookups != 2 || plan.CacheHits != 1 {
		t.Fatalf("cache header not folded in: %+v", plan)
	}
	if rate, ok := rep.Targets[0].HitRate(); !ok || rate != 0.5 {
		t.Fatalf("HitRate = %v, %v; want 0.5", rate, ok)
	}
	if plan.P50MS <= 0 || plan.P99MS < plan.P50MS {
		t.Fatalf("latency percentiles unresolved: %+v", plan)
	}
	// montecarlo answered 500 where the capture saw 200: one error and
	// one status mismatch, but no transport error.
	mc := eps["montecarlo"]
	if mc.Errors != 1 || mc.StatusMismatches != 1 || rep.TransportErrors != 0 {
		t.Fatalf("montecarlo %+v, transport %d", mc, rep.TransportErrors)
	}
	// A single target can never twin-diff.
	if rep.FieldDiffs != 0 || rep.PlanDiffs != 0 {
		t.Fatalf("single-target diffs: %+v", rep)
	}
}

func TestReplayTwinDiff(t *testing.T) {
	a, _ := fakeSompid("twin")
	defer a.Close()
	b, _ := fakeSompid("twin")
	defer b.Close()

	rep, err := Replay(context.Background(), captureFixture(), Options{
		Targets: []Target{{Name: "mem", URL: a.URL}, {Name: "disk", URL: b.URL}},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Identical twins: the id is re-sent to both, so even the id-bearing
	// field matches — zero field diffs, zero plan-byte diffs.
	if rep.FieldDiffs != 0 || rep.PlanDiffs != 0 {
		t.Fatalf("identical twins diverged: %+v samples %v", rep, rep.DiffSamples)
	}
}

func TestReplayTwinDivergence(t *testing.T) {
	a, _ := fakeSompid("mem")
	defer a.Close()
	b, _ := fakeSompid("disk") // tag differs: plan bodies diverge
	defer b.Close()

	records := append(captureFixture(),
		Record{Seq: 4, TimeMS: 4, Endpoint: "plan", Method: "POST", Path: "/v1/plan?explain=1", Body: `{"deadline":24}`, Status: 200},
	)
	rep, err := Replay(context.Background(), records, Options{
		Targets: []Target{{Name: "mem", URL: a.URL}, {Name: "disk", URL: b.URL}},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// All 3 plan records diverge on the tag field, but only the 2
	// unexplained ones count toward the plan-byte gate.
	if rep.FieldDiffs != 3 {
		t.Fatalf("FieldDiffs = %d, want 3: %+v", rep.FieldDiffs, rep.DiffSamples)
	}
	if rep.PlanDiffs != 2 {
		t.Fatalf("PlanDiffs = %d, want 2 (explain=1 must be exempt)", rep.PlanDiffs)
	}
	if len(rep.DiffSamples) == 0 || rep.DiffSamples[0].Fields[0].Path != "tag" {
		t.Fatalf("diff samples %+v", rep.DiffSamples)
	}
	// An ignore rule for the diverging field silences the field diffs;
	// the plan-byte gate still sees the raw bytes differ.
	rep2, err := Replay(context.Background(), records, Options{
		Targets: []Target{{Name: "mem", URL: a.URL}, {Name: "disk", URL: b.URL}},
		Ignore:  []string{"tag"},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep2.FieldDiffs != 0 || rep2.PlanDiffs != 2 {
		t.Fatalf("ignored rerun: field %d plan %d, want 0 and 2", rep2.FieldDiffs, rep2.PlanDiffs)
	}
}

func TestReplayTransportErrors(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused for every record

	rep, err := Replay(context.Background(), captureFixture()[:2], Options{
		Targets: []Target{{Name: "gone", URL: dead.URL}},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.TransportErrors != 2 {
		t.Fatalf("TransportErrors = %d, want 2", rep.TransportErrors)
	}
}

func TestReplayValidatesTargets(t *testing.T) {
	if _, err := Replay(context.Background(), captureFixture(), Options{}); err == nil {
		t.Fatal("zero targets accepted")
	}
	three := Options{Targets: []Target{{URL: "x"}, {URL: "y"}, {URL: "z"}}}
	if _, err := Replay(context.Background(), captureFixture(), three); err == nil {
		t.Fatal("three targets accepted")
	}
	one := Options{Targets: []Target{{URL: "http://127.0.0.1:0"}}}
	if _, err := Replay(context.Background(), nil, one); err == nil {
		t.Fatal("empty record set accepted")
	}
}
