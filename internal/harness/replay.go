package harness

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sompi/internal/obs"
)

// Target is one live sompid deployment replay fires at — a single
// instance, or a cluster addressed through any of its nodes.
type Target struct {
	// Name labels the target in reports ("mem", "disk", "cluster", ...).
	Name string `json:"name"`
	// URL is the target's base URL (no trailing slash needed).
	URL string `json:"url"`
	// Fallback lists additional base URLs for the same logical target —
	// the other nodes of a cluster. A request that fails at the
	// transport layer (connection refused, timeout) retries against
	// each fallback in order, so a replay rides through a node being
	// killed mid-run exactly like a client with a node list would.
	Fallback []string `json:"fallback,omitempty"`
}

// Options parameterize a replay run.
type Options struct {
	// Targets are the live instances; one replays, two twin-diffs. At
	// least one is required, at most two are supported.
	Targets []Target
	// Rate is the time-scale multiplier against the capture's own
	// pacing: 1 replays in real time, 10 replays 10x faster, <= 0
	// replays as fast as the targets answer (no pacing).
	Rate float64
	// Concurrency bounds in-flight records; <= 0 means 1. Twin-diff runs
	// over order-sensitive traffic (tracked sessions, ingestion) should
	// keep 1 so both targets observe the capture's exact sequence.
	Concurrency int
	// Timeout bounds each replayed request; <= 0 means 30s.
	Timeout time.Duration
	// Ignore are extra diff ignore rules, merged with DefaultIgnore.
	Ignore []string
	// MaxDiffSamples bounds the detailed diff samples retained in the
	// report (counts are always exact); <= 0 means 20.
	MaxDiffSamples int
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// EndpointReport is one (target, endpoint) aggregate.
type EndpointReport struct {
	Requests int `json:"requests"`
	// Errors counts transport failures and 5xx responses; the error rate
	// the rules gate is Errors/Requests.
	Errors int `json:"errors"`
	// StatusMismatches counts replayed responses whose status differs
	// from the captured one — drift vs the capture-time server.
	StatusMismatches int `json:"status_mismatches"`
	// CacheLookups/CacheHits track the X-Sompid-Cache header, the
	// hit-rate floor input.
	CacheLookups int `json:"cache_lookups,omitempty"`
	CacheHits    int `json:"cache_hits,omitempty"`
	// Latency percentiles in milliseconds, estimated from an obs
	// histogram over the same bucket ladder sompid's own /metrics uses.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	// QPS is Requests over the replay's wall-clock.
	QPS float64 `json:"qps"`

	hist *obs.Histogram
}

// TargetReport aggregates one target's replay outcome by endpoint.
type TargetReport struct {
	Name      string                     `json:"name"`
	URL       string                     `json:"url"`
	Endpoints map[string]*EndpointReport `json:"endpoints"`
}

// DiffSample is one recorded twin divergence, for the report's humans.
type DiffSample struct {
	Seq      int         `json:"seq"`
	Endpoint string      `json:"endpoint"`
	Path     string      `json:"path"`
	Fields   []FieldDiff `json:"fields"`
}

// Report is a replay run's complete outcome.
type Report struct {
	Records     int            `json:"records"`
	WallSeconds float64        `json:"wall_seconds"`
	Targets     []TargetReport `json:"targets"`
	// FieldDiffs counts records whose twin responses diverged on at
	// least one non-ignored field; PlanDiffs counts /v1/plan records
	// whose twin response bodies were not byte-identical — the
	// twin-equivalence gate. Both stay 0 with a single target.
	FieldDiffs  int          `json:"field_diffs"`
	PlanDiffs   int          `json:"plan_diffs"`
	DiffSamples []DiffSample `json:"diff_samples,omitempty"`
	// TransportErrors counts requests that never produced a response on
	// some target (connection refused, timeout).
	TransportErrors int `json:"transport_errors"`
}

// Replay replays records against opts.Targets and aggregates the
// outcome. Records are dispatched in capture order; with Concurrency >
// 1 later records may overtake slow ones, exactly like real traffic.
func Replay(ctx context.Context, records []Record, opts Options) (*Report, error) {
	if len(opts.Targets) == 0 || len(opts.Targets) > 2 {
		return nil, fmt.Errorf("harness: need 1 or 2 targets, have %d", len(opts.Targets))
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("harness: no records to replay")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 1
	}
	maxSamples := opts.MaxDiffSamples
	if maxSamples <= 0 {
		maxSamples = 20
	}
	ignore := append(append([]string{}, DefaultIgnore...), opts.Ignore...)

	rep := &Report{Records: len(records)}
	for _, t := range opts.Targets {
		rep.Targets = append(rep.Targets, TargetReport{
			Name: t.Name, URL: strings.TrimSuffix(t.URL, "/"),
			Endpoints: make(map[string]*EndpointReport),
		})
	}

	var mu sync.Mutex // guards rep aggregates
	endpointOf := func(rec Record) string {
		if rec.Endpoint != "" {
			return rec.Endpoint
		}
		return rec.Method + " " + strings.SplitN(rec.Path, "?", 2)[0]
	}
	epFor := func(ti int, name string) *EndpointReport {
		ep := rep.Targets[ti].Endpoints[name]
		if ep == nil {
			ep = &EndpointReport{hist: obs.NewHistogram(nil)}
			rep.Targets[ti].Endpoints[name] = ep
		}
		return ep
	}

	type result struct {
		status  int
		body    []byte
		cacheHd string
		err     error
	}
	// fireAt runs one attempt against one base URL.
	fireAt := func(rec Record, base string) (result, float64) {
		var body io.Reader
		if rec.Body != "" {
			body = strings.NewReader(rec.Body)
		}
		req, err := http.NewRequestWithContext(ctx, rec.Method, base+rec.Path, body)
		if err != nil {
			return result{err: err}, 0
		}
		if rec.Body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		// Re-send the captured id: both twin targets then serve the exact
		// request identity the capture saw, and id-echoing responses stay
		// comparable.
		if rec.RequestID != "" {
			req.Header.Set("X-Request-Id", rec.RequestID)
		}
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return result{err: err}, elapsed
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return result{err: err}, elapsed
		}
		return result{status: resp.StatusCode, body: b, cacheHd: resp.Header.Get("X-Sompid-Cache")}, elapsed
	}
	// fire walks the target's node list: the primary URL first, then each
	// fallback on a transport failure. An HTTP error status is a served
	// response, not a routing problem — it never triggers a retry.
	fire := func(rec Record, target Target) (result, float64) {
		res, elapsed := fireAt(rec, strings.TrimSuffix(target.URL, "/"))
		for _, alt := range target.Fallback {
			if res.err == nil || ctx.Err() != nil {
				break
			}
			res, elapsed = fireAt(rec, strings.TrimSuffix(alt, "/"))
		}
		return res, elapsed
	}

	replayOne := func(rec Record) {
		name := endpointOf(rec)
		results := make([]result, len(rep.Targets))
		for ti := range rep.Targets {
			res, seconds := fire(rec, opts.Targets[ti])
			results[ti] = res
			mu.Lock()
			ep := epFor(ti, name)
			ep.Requests++
			ep.hist.Observe(seconds)
			switch {
			case res.err != nil:
				ep.Errors++
				rep.TransportErrors++
			case res.status >= 500:
				ep.Errors++
			}
			if res.err == nil && res.status != rec.Status {
				ep.StatusMismatches++
			}
			if res.cacheHd != "" {
				ep.CacheLookups++
				if res.cacheHd == "hit" {
					ep.CacheHits++
				}
			}
			mu.Unlock()
		}
		if len(results) == 2 && results[0].err == nil && results[1].err == nil {
			diffs := DiffJSON(results[0].body, results[1].body, ignore, 8)
			// Explained plans carry wall-clock stage timings, so the
			// byte-identity gate covers only unexplained plan responses;
			// explain still rides the field diff under its ignore rules.
			planDiff := name == "plan" && !strings.Contains(rec.Path, "explain=1") &&
				!bytes.Equal(results[0].body, results[1].body)
			if len(diffs) > 0 || planDiff {
				mu.Lock()
				if len(diffs) > 0 {
					rep.FieldDiffs++
				}
				if planDiff {
					rep.PlanDiffs++
					if len(diffs) == 0 {
						// Byte drift the field walk cannot see (key order,
						// whitespace, an ignored field): still a plan diff.
						diffs = []FieldDiff{{Path: "", A: bodyDigest(results[0].body), B: bodyDigest(results[1].body)}}
					}
				}
				if len(rep.DiffSamples) < maxSamples {
					rep.DiffSamples = append(rep.DiffSamples, DiffSample{
						Seq: rec.Seq, Endpoint: name, Path: rec.Path, Fields: diffs,
					})
				}
				mu.Unlock()
			}
		}
	}

	// Dispatcher: pace by the capture's own clock scaled by Rate, fan
	// out to a bounded worker pool.
	work := make(chan Record)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range work {
				replayOne(rec)
			}
		}()
	}
	begin := time.Now()
	base := records[0].TimeMS
dispatch:
	for _, rec := range records {
		if opts.Rate > 0 {
			due := time.Duration((rec.TimeMS - base) / opts.Rate * float64(time.Millisecond))
			if wait := due - time.Since(begin); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					break dispatch
				}
			}
		}
		select {
		case work <- rec:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	rep.WallSeconds = time.Since(begin).Seconds()

	// Resolve percentiles and rates now that the histograms are final.
	for ti := range rep.Targets {
		for _, ep := range rep.Targets[ti].Endpoints {
			ep.P50MS = ep.hist.Quantile(0.50) * 1000
			ep.P90MS = ep.hist.Quantile(0.90) * 1000
			ep.P99MS = ep.hist.Quantile(0.99) * 1000
			if rep.WallSeconds > 0 {
				ep.QPS = float64(ep.Requests) / rep.WallSeconds
			}
		}
	}
	sort.Slice(rep.DiffSamples, func(i, j int) bool { return rep.DiffSamples[i].Seq < rep.DiffSamples[j].Seq })
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("harness: replay interrupted: %w", err)
	}
	return rep, nil
}

// bodyDigest renders a response body's identity for diff samples.
func bodyDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return fmt.Sprintf("sha256:%s (%d bytes)", hex.EncodeToString(sum[:8]), len(b))
}

// HitRate reports a target's plan-cache hit rate across endpoints;
// ok is false when the replay observed no cache lookups at all.
func (t TargetReport) HitRate() (rate float64, ok bool) {
	lookups, hits := 0, 0
	for _, ep := range t.Endpoints {
		lookups += ep.CacheLookups
		hits += ep.CacheHits
	}
	if lookups == 0 {
		return 0, false
	}
	return float64(hits) / float64(lookups), true
}
