package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Exit codes for cmd/sompi-replay, modeled on the replayer convention
// so CI pipelines can react programmatically. Precedence when several
// apply: usage > runtime > rules > diffs.
const (
	// ExitOK: replay completed, no twin differences, every rule passed.
	ExitOK = 0
	// ExitDiffs: twin targets diverged (field or plan-byte diffs) but no
	// explicit rule was violated.
	ExitDiffs = 1
	// ExitRules: one or more regression rules tripped.
	ExitRules = 2
	// ExitUsage: bad arguments or an unreadable rules file.
	ExitUsage = 3
	// ExitRuntime: the replay itself failed (capture unreadable, target
	// unreachable for every record, I/O error).
	ExitRuntime = 4
)

// EndpointRule is one endpoint's latency SLO budget in milliseconds
// (histogram-estimated percentiles; 0 disables that percentile's gate)
// plus an error-rate ceiling.
type EndpointRule struct {
	P50MS float64 `json:"p50_ms,omitempty"`
	P90MS float64 `json:"p90_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
	// MaxErrorRate is the endpoint's tolerated Errors/Requests fraction.
	// Omitted (null in JSON, NaN here) means no gate; an explicit 0
	// means zero tolerance.
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
}

// Rules is the regression-gate rule file: what a replay run must
// satisfy for CI to stay green.
type Rules struct {
	// MaxPlanDiffs bounds plan-byte diffs between twin targets; the
	// twin-equivalence default is 0.
	MaxPlanDiffs int `json:"max_plan_diffs"`
	// MaxFieldDiffs bounds records with any non-ignored field diff.
	MaxFieldDiffs int `json:"max_field_diffs"`
	// MinCacheHitRate is the plan-cache hit-rate floor over the whole
	// run (0 disables). A floor with no observed cache lookups is a
	// violation: the traffic cannot demonstrate the property.
	MinCacheHitRate float64 `json:"min_cache_hit_rate,omitempty"`
	// MaxStatusMismatchRate bounds capture-vs-replay status drift per
	// target across all endpoints (nil disables, 0 = none tolerated).
	MaxStatusMismatchRate *float64 `json:"max_status_mismatch_rate,omitempty"`
	// MaxTransportErrors bounds requests that never got a response.
	MaxTransportErrors int `json:"max_transport_errors"`
	// Endpoints maps endpoint labels ("plan", "prices", ...) to their
	// latency budgets.
	Endpoints map[string]EndpointRule `json:"endpoints,omitempty"`
	// Targets maps target names to per-target overrides. A cluster
	// target serving forwarded requests keeps its own hit-rate floor
	// here, separate from the single-node target it twin-diffs against.
	Targets map[string]TargetRule `json:"targets,omitempty"`
	// Ignore appends diff ignore rules from the rules file, so a team
	// can pin noisy fields next to the budgets that tolerate them.
	Ignore []string `json:"ignore,omitempty"`
}

// TargetRule is one target's rule overrides.
type TargetRule struct {
	// MinCacheHitRate overrides the global floor for this target
	// (0 falls back to the global value).
	MinCacheHitRate float64 `json:"min_cache_hit_rate,omitempty"`
}

// Violation is one tripped rule.
type Violation struct {
	Rule     string  `json:"rule"`
	Target   string  `json:"target,omitempty"`
	Endpoint string  `json:"endpoint,omitempty"`
	Got      float64 `json:"got"`
	Limit    float64 `json:"limit"`
}

func (v Violation) String() string {
	where := v.Rule
	if v.Endpoint != "" {
		where += "[" + v.Endpoint + "]"
	}
	if v.Target != "" {
		where += "@" + v.Target
	}
	return fmt.Sprintf("%s: got %g, limit %g", where, v.Got, v.Limit)
}

// LoadRules reads and strictly decodes a rules file.
func LoadRules(path string) (Rules, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Rules{}, fmt.Errorf("harness: rules file: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r Rules
	if err := dec.Decode(&r); err != nil {
		return Rules{}, fmt.Errorf("harness: rules file %s: %w", path, err)
	}
	return r, nil
}

// Evaluate checks a report against the rules, returning every violation
// in deterministic order (rule, then target, then endpoint).
func (r Rules) Evaluate(rep *Report) []Violation {
	var out []Violation
	if rep.PlanDiffs > r.MaxPlanDiffs {
		out = append(out, Violation{Rule: "max_plan_diffs", Got: float64(rep.PlanDiffs), Limit: float64(r.MaxPlanDiffs)})
	}
	if rep.FieldDiffs > r.MaxFieldDiffs {
		out = append(out, Violation{Rule: "max_field_diffs", Got: float64(rep.FieldDiffs), Limit: float64(r.MaxFieldDiffs)})
	}
	if rep.TransportErrors > r.MaxTransportErrors {
		out = append(out, Violation{Rule: "max_transport_errors", Got: float64(rep.TransportErrors), Limit: float64(r.MaxTransportErrors)})
	}
	for _, t := range rep.Targets {
		floor := r.MinCacheHitRate
		if tr, ok := r.Targets[t.Name]; ok && tr.MinCacheHitRate > 0 {
			floor = tr.MinCacheHitRate
		}
		if floor > 0 {
			rate, ok := t.HitRate()
			if !ok || rate < floor {
				out = append(out, Violation{Rule: "min_cache_hit_rate", Target: t.Name, Got: rate, Limit: floor})
			}
		}
		if r.MaxStatusMismatchRate != nil {
			requests, mismatches := 0, 0
			for _, ep := range t.Endpoints {
				requests += ep.Requests
				mismatches += ep.StatusMismatches
			}
			if requests > 0 {
				rate := float64(mismatches) / float64(requests)
				if rate > *r.MaxStatusMismatchRate {
					out = append(out, Violation{Rule: "max_status_mismatch_rate", Target: t.Name, Got: rate, Limit: *r.MaxStatusMismatchRate})
				}
			}
		}
		names := make([]string, 0, len(r.Endpoints))
		for name := range r.Endpoints {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rule := r.Endpoints[name]
			ep, ok := t.Endpoints[name]
			if !ok {
				continue // the capture held no such traffic; nothing to judge
			}
			check := func(kind string, got, limit float64) {
				if limit > 0 && got > limit {
					out = append(out, Violation{Rule: kind, Target: t.Name, Endpoint: name, Got: round3(got), Limit: limit})
				}
			}
			check("p50_ms", ep.P50MS, rule.P50MS)
			check("p90_ms", ep.P90MS, rule.P90MS)
			check("p99_ms", ep.P99MS, rule.P99MS)
			if rule.MaxErrorRate != nil && ep.Requests > 0 {
				rate := float64(ep.Errors) / float64(ep.Requests)
				if rate > *rule.MaxErrorRate {
					out = append(out, Violation{Rule: "max_error_rate", Target: t.Name, Endpoint: name, Got: rate, Limit: *rule.MaxErrorRate})
				}
			}
		}
	}
	return out
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
