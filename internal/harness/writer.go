package harness

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultSegmentRecords is how many records an active capture segment
// holds before it is sealed and a new one opened.
const DefaultSegmentRecords = 4096

// partSuffix marks the active (still-growing) segment. Sealing renames
// the .part file to its final name after an fsync, so a final-named
// segment is always complete: the same tmp→fsync→rename discipline the
// store package uses for snapshots.
const partSuffix = ".part"

// segName renders a segment's final file name.
func segName(seq uint64) string { return fmt.Sprintf("capture-%06d.ndjson", seq) }

// Writer appends capture records to a segmented NDJSON log in a
// directory:
//
//	capture-%06d.ndjson       sealed segments, complete and immutable
//	capture-%06d.ndjson.part  the active segment
//
// Append is safe for concurrent use (the serve middleware calls it from
// every request goroutine). Writes go through a buffered writer that is
// flushed per append — capture is an observability aid, so an append is
// cheap by design and the active segment is only guaranteed on disk
// once sealed (rotation or Close). A SIGKILL therefore loses at most
// the active segment's tail, never a sealed one.
type Writer struct {
	mu      sync.Mutex
	dir     string
	seq     uint64 // active segment sequence number
	f       *os.File
	w       *bufio.Writer
	recs    int // records in the active segment
	nextSeq int // global record sequence number
	segRecs int
	start   time.Time
	closed  bool
	// onAppend observes each append's duration in seconds (the serve
	// metrics hook); nil disables.
	onAppend func(seconds float64)
}

// OpenWriter opens (or creates) a capture directory and starts a fresh
// active segment numbered above every existing segment — sealed or
// abandoned — so a restarted capture never overwrites prior traffic.
// segRecs bounds records per segment; <= 0 means DefaultSegmentRecords.
func OpenWriter(dir string, segRecs int) (*Writer, error) {
	if segRecs <= 0 {
		segRecs = DefaultSegmentRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: creating capture dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: reading capture dir: %w", err)
	}
	var next uint64
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), partSuffix)
		var seq uint64
		if _, err := fmt.Sscanf(name, "capture-%d.ndjson", &seq); err == nil && seq >= next {
			next = seq + 1
		}
	}
	w := &Writer{dir: dir, seq: next, segRecs: segRecs, start: time.Now()}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// SetAppendObserver installs the per-append latency hook. Must be
// called before traffic starts.
func (w *Writer) SetAppendObserver(fn func(seconds float64)) { w.onAppend = fn }

// Start reports when the capture began — the zero point of every
// record's TimeMS.
func (w *Writer) Start() time.Time { return w.start }

// Dir reports the capture directory.
func (w *Writer) Dir() string { return w.dir }

// ActiveSegment reports the sequence number of the segment appends
// currently go to.
func (w *Writer) ActiveSegment() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

func (w *Writer) openSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)+partSuffix),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("harness: opening capture segment: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.recs = 0
	return nil
}

// sealLocked finalizes the active segment: flush, fsync, rename to the
// final name, fsync the directory so the rename is durable.
func (w *Writer) sealLocked() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	part := filepath.Join(w.dir, segName(w.seq)+partSuffix)
	if err := os.Rename(part, filepath.Join(w.dir, segName(w.seq))); err != nil {
		return err
	}
	return syncDir(w.dir)
}

// Append stamps the record's Seq and TimeMS (relative to Start) and
// writes it to the active segment, rotating when the segment is full.
func (w *Writer) Append(rec Record) error {
	begin := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("harness: capture writer is closed")
	}
	rec.Seq = w.nextSeq
	rec.TimeMS = float64(begin.Sub(w.start)) / float64(time.Millisecond)
	line, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(line); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.nextSeq++
	w.recs++
	if w.recs >= w.segRecs {
		if err := w.sealLocked(); err != nil {
			return err
		}
		w.seq++
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	if w.onAppend != nil {
		w.onAppend(time.Since(begin).Seconds())
	}
	return nil
}

// Records reports how many records have been appended.
func (w *Writer) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Close seals the active segment. An empty active segment is removed
// instead of sealed, so a capture directory never accumulates empty
// files across restarts.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.recs == 0 {
		w.f.Close()
		return os.Remove(filepath.Join(w.dir, segName(w.seq)+partSuffix))
	}
	return w.sealLocked()
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load reads a capture log from path — a single NDJSON file or a
// capture directory — returning records in capture order. In a
// directory, sealed segments are read in sequence order; an abandoned
// .part segment (the active segment of a SIGKILLed capture) is read
// last, tolerating a torn final line exactly like the WAL tolerates a
// torn tail. Blank lines are skipped; any other undecodable line is an
// error naming the file.
func Load(path string) ([]Record, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("harness: capture log: %w", err)
	}
	if !info.IsDir() {
		return loadFile(path, false)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("harness: capture dir: %w", err)
	}
	var sealed, parts []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "capture-") && strings.HasSuffix(name, ".ndjson"):
			sealed = append(sealed, name)
		case strings.HasPrefix(name, "capture-") && strings.HasSuffix(name, partSuffix):
			parts = append(parts, name)
		}
	}
	sort.Strings(sealed)
	sort.Strings(parts)
	var out []Record
	for _, name := range sealed {
		recs, err := loadFile(filepath.Join(path, name), false)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	for _, name := range parts {
		recs, err := loadFile(filepath.Join(path, name), true)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: %s holds no capture records", path)
	}
	return out, nil
}

func loadFile(path string, tolerateTorn bool) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: reading %s: %w", path, err)
	}
	var out []Record
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := DecodeCaptureRecord([]byte(line))
		if err != nil {
			// The final line of an abandoned active segment may be torn
			// mid-record by a crash; everything before it is intact.
			if tolerateTorn && i == len(lines)-1 {
				break
			}
			return nil, fmt.Errorf("%s line %d: %w", path, i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
