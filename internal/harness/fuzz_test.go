package harness

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCaptureSmokeFixtureDecodes pins the committed capture fixture:
// every line decodes, seq is dense from 0, timestamps never go
// backwards, and the record set survives an encode/decode round trip.
// The fixture doubles as the fuzz seed corpus and as replay-smoke's
// known-good capture shape.
func TestCaptureSmokeFixtureDecodes(t *testing.T) {
	recs, err := Load(filepath.Join("testdata", "capture_smoke.ndjson"))
	if err != nil {
		t.Fatalf("Load fixture: %v", err)
	}
	if len(recs) != 10 {
		t.Fatalf("fixture holds %d records, want 10", len(recs))
	}
	last := -1.0
	endpoints := map[string]bool{}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.TimeMS < last {
			t.Fatalf("record %d: t_ms %v < previous %v", i, r.TimeMS, last)
		}
		last = r.TimeMS
		endpoints[r.Endpoint] = true

		line, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("re-encode record %d: %v", i, err)
		}
		back, err := DecodeCaptureRecord(line)
		if err != nil {
			t.Fatalf("re-decode record %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("record %d round trip drifted:\n got %+v\nwant %+v", i, back, r)
		}
	}
	for _, ep := range []string{"plan", "evaluate", "montecarlo", "prices", "sessions", "strategies"} {
		if !endpoints[ep] {
			t.Fatalf("fixture covers %v; missing endpoint %q", endpoints, ep)
		}
	}
}

// FuzzDecodeCaptureRecord drives arbitrary bytes through the capture
// decoder: it must never panic, failures must be typed ErrBadRecord,
// and every accepted record must re-encode to a line that decodes to
// the same record.
func FuzzDecodeCaptureRecord(f *testing.F) {
	fixture, err := os.Open(filepath.Join("testdata", "capture_smoke.ndjson"))
	if err != nil {
		f.Fatalf("open fixture: %v", err)
	}
	sc := bufio.NewScanner(fixture)
	for sc.Scan() {
		f.Add(append([]byte(nil), sc.Bytes()...))
	}
	fixture.Close()
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":-1,"method":"GET","path":"/","status":200}`))
	f.Add([]byte(`{"seq":0,"t_ms":1e999,"method":"GET","path":"/","status":200}`))
	f.Add([]byte(`{"method":"GET","path":"relative","status":200}`))
	f.Add([]byte(`{"method":"GET","path":"/","status":99}`))
	f.Add([]byte(`{"method":"GET","path":"/","status":200}{"again":true}`))
	f.Add([]byte(`[{"method":"GET"}]`))
	f.Add([]byte(`{"unknown_field":1,"method":"GET","path":"/","status":200}`))
	f.Add([]byte("{\"method\":\"GET\",\"path\":\"/\",\"status\":200}\n\n"))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeCaptureRecord(line)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		out, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %+v: %v", rec, err)
		}
		back, err := DecodeCaptureRecord(out)
		if err != nil {
			t.Fatalf("re-encoded line does not decode: %s: %v", out, err)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, rec)
		}
	})
}
