package experiments

import (
	"fmt"
	"sort"

	"sompi/internal/report"
)

// Experiment couples an id with its constructor and the paper artifact it
// regenerates.
type Experiment struct {
	ID       string
	Artifact string
	Run      func(Params) *report.Table
}

// Registry lists every experiment, keyed by the ids used in DESIGN.md and
// cmd/experiments.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1 (spot price variation)", Fig1},
		{"fig2", "Figure 2 (stable price distribution)", Fig2},
		{"fig4", "Figure 4 (failure rate and expected price)", Fig4},
		{"fig5", "Figure 5 (cost vs state of the art)", Fig5},
		{"tab2", "Table 2 (normalized execution time)", Table2},
		{"fig6", "Figure 6 (heuristic comparison)", Fig6},
		{"fig7", "Figure 7 (cost vs deadline)", Fig7},
		{"fig8", "Figure 8 (fault-tolerance ablation)", Fig8},
		{"slack", "Section 5.2 (slack study)", Slack},
		{"kappa", "Section 5.2 (kappa study)", Kappa},
		{"tm", "Section 5.2 (T_m study)", Tm},
		{"acc-frf", "Section 5.4.1 (failure-rate accuracy)", AccFRF},
		{"acc-model", "Section 5.4.1 (model accuracy)", AccModel},
		{"tournament", "Strategy tournament ranking (internal/strategy)", TournamentExp},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
