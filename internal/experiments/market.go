package experiments

import (
	"fmt"

	"sompi/internal/cloud"
	"sompi/internal/failure"
	"sompi/internal/report"
	"sompi/internal/stats"
)

// Fig1 regenerates Figure 1: three days of spot prices for m1.medium and
// m1.large in us-east-1a and us-east-1b, sampled hourly — the temporal
// and spatial variation study.
func Fig1(p Params) *report.Table {
	p = p.withDefaults()
	m := cloud.GenerateMarket(
		cloud.Catalog{cloud.M1Medium, cloud.M1Large},
		[]string{cloud.ZoneA, cloud.ZoneB}, p.MarketHours, p.Seed)
	t := &report.Table{
		Title: "Figure 1: spot price variation over 72 hours ($/h)",
		Header: []string{"hour",
			"m1.medium/1a", "m1.medium/1b", "m1.large/1a", "m1.large/1b"},
	}
	for h := 0; h < 72; h++ {
		t.Add(h,
			m.Trace(cloud.M1Medium.Name, cloud.ZoneA).At(float64(h)),
			m.Trace(cloud.M1Medium.Name, cloud.ZoneB).At(float64(h)),
			m.Trace(cloud.M1Large.Name, cloud.ZoneA).At(float64(h)),
			m.Trace(cloud.M1Large.Name, cloud.ZoneB).At(float64(h)))
	}
	t.AddNote("paper shape: 1a spikes by an order of magnitude, 1b stays low; types differ")
	return t
}

// Fig2 regenerates Figure 2: the spot price histogram of m1.medium in
// us-east-1a over four consecutive days, plus the day-over-day L1
// distances quantifying the paper's "stable distribution" claim.
func Fig2(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	tr := m.Trace(cloud.M1Medium.Name, cloud.ZoneA)
	hi := cloud.M1Medium.OnDemand * 2
	t := &report.Table{
		Title:  "Figure 2: m1.medium us-east-1a daily price histograms (densities)",
		Header: []string{"bin-center", "day1", "day2", "day3", "day4"},
	}
	const bins = 12
	dayHists := make([]*stats.Histogram, 4)
	for day := 0; day < 4; day++ {
		dayHists[day] = tr.Window(float64(day)*24, 24).Histogram(0, hi, bins)
	}
	for b := 0; b < bins; b++ {
		t.Add(dayHists[0].BinCenter(b),
			dayHists[0].Density(b), dayHists[1].Density(b),
			dayHists[2].Density(b), dayHists[3].Density(b))
	}
	var l1 []float64
	for day := 1; day < 4; day++ {
		l1 = append(l1, dayHists[day-1].Distance(dayHists[day]))
	}
	t.AddNote("day-over-day L1 distances: %.3f %.3f %.3f (2.0 = disjoint)", l1[0], l1[1], l1[2])
	t.AddNote("paper shape: the four daily distributions are very close to each other")
	return t
}

// Fig4 regenerates Figure 4: the failure-rate function f(P, t) at a fixed
// horizon and the expected spot price S(P), as functions of the bid, for
// m1.small and c3.xlarge in us-east-1a.
func Fig4(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title: "Figure 4: failure rate and expected spot price vs bid (us-east-1a)",
		Header: []string{"bid-frac-of-max",
			"m1.small fail@12h", "m1.small S(P)",
			"c3.xlarge fail@12h", "c3.xlarge S(P)"},
	}
	const horizon = 12
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		row := []interface{}{fmt.Sprintf("%.2f", frac)}
		for _, it := range []cloud.InstanceType{cloud.M1Small, cloud.C3XLarge} {
			tr := m.Trace(it.Name, cloud.ZoneA)
			bid := tr.Max() * frac
			d := failure.Estimate(tr, bid, horizon)
			row = append(row, 1-d.Complete(), failure.ExpectedSpotPrice(tr, bid))
		}
		t.Add(row...)
	}
	t.AddNote("paper shape: failure rate falls and S(P) rises with the bid, fastest at low bids")
	return t
}
