package experiments

import (
	"strconv"
	"strings"
	"testing"

	"sompi/internal/app"
)

// tiny keeps experiment tests fast: short market, few runs, one app per
// class where the experiment allows restricting.
func tiny() Params {
	return Params{
		Seed:        7,
		MarketHours: 24 * 12,
		Runs:        3,
		Apps:        []app.Profile{app.BT(), app.FT(), app.BTIO()},
	}
}

func cell(t *testing.T, tab interface{ String() string }, rows [][]string, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric:\n%s", r, c, rows[r][c], tab.String())
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig4", "fig5", "tab2", "fig6", "fig7", "fig8",
		"slack", "kappa", "tm", "acc-frf", "acc-model", "tournament"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted an unknown id")
	}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1(tiny())
	if len(tab.Rows) != 72 {
		t.Fatalf("%d rows, want 72", len(tab.Rows))
	}
	// Spatial variation: zone A must exceed zone B somewhere for
	// m1.medium (column 1 vs 2).
	exceeded := false
	for r := range tab.Rows {
		if cell(t, tab, tab.Rows, r, 1) > 2*cell(t, tab, tab.Rows, r, 2) {
			exceeded = true
			break
		}
	}
	if !exceeded {
		t.Error("zone A never spiked past 2x zone B in 72h")
	}
}

func TestFig2DailyDistributionsClose(t *testing.T) {
	tab := Fig2(tiny())
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows, want 12 bins", len(tab.Rows))
	}
	// Each day's densities sum to ~1.
	for c := 1; c <= 4; c++ {
		sum := 0.0
		for r := range tab.Rows {
			sum += cell(t, tab, tab.Rows, r, c)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("day %d densities sum to %v", c, sum)
		}
	}
	// The stability note must report distances well under disjoint (2.0).
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "L1") {
		t.Fatal("missing L1 distance note")
	}
}

func TestFig4Monotonicity(t *testing.T) {
	tab := Fig4(tiny())
	for r := 1; r < len(tab.Rows); r++ {
		for _, col := range []int{1, 3} { // failure rates fall with bid
			if cell(t, tab, tab.Rows, r, col) > cell(t, tab, tab.Rows, r-1, col)+1e-9 {
				t.Errorf("failure rate rose with bid at row %d col %d:\n%s", r, col, tab)
			}
		}
		for _, col := range []int{2, 4} { // expected prices rise with bid
			if cell(t, tab, tab.Rows, r, col) < cell(t, tab, tab.Rows, r-1, col)-1e-9 {
				t.Errorf("S(P) fell with bid at row %d col %d:\n%s", r, col, tab)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	p := tiny()
	p.Apps = []app.Profile{app.BT()}
	tab := Fig5(p)
	if len(tab.Rows) != 2 { // loose + tight
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	for r := range tab.Rows {
		onDemand := cell(t, tab, tab.Rows, r, 3)
		sompi := cell(t, tab, tab.Rows, r, 6)
		// Loose deadlines must show a clear win; tight deadlines are
		// razor-thin in this market (see EXPERIMENTS.md), so only require
		// rough parity there.
		limit := onDemand
		if tab.Rows[r][2] == "tight" {
			limit = onDemand * 1.15
		}
		if sompi >= limit {
			t.Errorf("row %d (%s): SOMPI %.3f not below %.3f\n%s",
				r, tab.Rows[r][2], sompi, limit, tab)
		}
		if sompi <= 0 || sompi > 1.5 {
			t.Errorf("row %d: SOMPI normalized cost %v implausible", r, sompi)
		}
	}
}

func TestTable2TimesNearDeadline(t *testing.T) {
	p := tiny()
	p.Apps = []app.Profile{app.BT()}
	tab := Table2(p)
	for r := range tab.Rows {
		dl := cell(t, tab, tab.Rows, r, 4)
		for _, col := range []int{2, 3} {
			v := cell(t, tab, tab.Rows, r, col)
			if v > dl*1.15 {
				t.Errorf("row %d col %d: normalized time %.3f far above deadline %.2f\n%s",
					r, col, v, dl, tab)
			}
		}
	}
}

func TestFig6SOMPIBeatsHeuristics(t *testing.T) {
	p := tiny()
	p.Apps = []app.Profile{app.BT()}
	tab := Fig6(p)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for r := range tab.Rows {
		sompi := cell(t, tab, tab.Rows, r, 5)
		for _, col := range []int{2, 3, 4} {
			if sompi > cell(t, tab, tab.Rows, r, col)*1.1 {
				t.Errorf("row %d: SOMPI %.3f above competitor col %d\n%s", r, sompi, col, tab)
			}
		}
	}
}

func TestFig7CostFallsWithDeadline(t *testing.T) {
	p := tiny()
	p.Runs = 3
	tab := Fig7(p)
	// Within each app block (7 rows), the last deadline's cost must be
	// below the first's, and recovery types must step down the catalog.
	const block = 7
	if len(tab.Rows)%block != 0 {
		t.Fatalf("unexpected row count %d", len(tab.Rows))
	}
	for b := 0; b+block <= len(tab.Rows); b += block {
		first := cell(t, tab, tab.Rows, b, 2)
		last := cell(t, tab, tab.Rows, b+block-1, 2)
		if last >= first {
			t.Errorf("app %s: cost did not fall from tight (%v) to loose (%v)\n%s",
				tab.Rows[b][0], first, last, tab)
		}
	}
}

func TestFig8SOMPIBestOverall(t *testing.T) {
	p := tiny()
	tab := Fig8(p)
	// Average each strategy column over all rows; SOMPI (col 6) must have
	// the lowest mean.
	sums := make([]float64, 7)
	for r := range tab.Rows {
		for c := 2; c <= 6; c++ {
			sums[c] += cell(t, tab, tab.Rows, r, c)
		}
	}
	for c := 2; c < 6; c++ {
		if sums[6] > sums[c]*1.05 {
			t.Errorf("SOMPI mean %.3f above ablation col %d mean %.3f\n%s",
				sums[6], c, sums[c], tab)
		}
	}
}

func TestKappaEvalsGrow(t *testing.T) {
	tab := Kappa(tiny())
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tab.Rows))
	}
	for r := 1; r < len(tab.Rows); r++ {
		if cell(t, tab, tab.Rows, r, 2) <= cell(t, tab, tab.Rows, r-1, 2) {
			t.Errorf("evaluations did not grow with kappa:\n%s", tab)
		}
		if cell(t, tab, tab.Rows, r, 1) > cell(t, tab, tab.Rows, r-1, 1)+1e-9 {
			t.Errorf("expected cost rose with kappa:\n%s", tab)
		}
	}
}

func TestSlackStudyRuns(t *testing.T) {
	p := tiny()
	p.Runs = 2
	tab := Slack(p)
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tab.Rows))
	}
}

func TestAccFRFReportsAccuracy(t *testing.T) {
	tab := AccFRF(tiny())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for r := range tab.Rows {
		if mean := cell(t, tab, tab.Rows, r, 2); mean > 0.25 {
			t.Errorf("row %d: mean day-over-day survival drift %.0fpp — estimator unstable\n%s",
				r, mean*100, tab)
		}
	}
}

func TestAccModelWithinTolerance(t *testing.T) {
	p := tiny()
	p.Runs = 5
	tab := AccModel(p)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for r := range tab.Rows {
		if rel := cell(t, tab, tab.Rows, r, 3); rel > 0.5 {
			t.Errorf("row %d: model off by %.0f%% from replay\n%s", r, rel*100, tab)
		}
	}
}
