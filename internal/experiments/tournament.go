package experiments

import (
	"context"

	"sompi/internal/report"
	"sompi/internal/strategy"
)

// TournamentExp runs a reduced strategy tournament (every registered
// strategy against every scenario, BT only, one deadline) and renders the
// ranking table. The full grid lives behind `sompi tournament`; this entry
// keeps a seconds-scale version inside the experiment harness so strategy
// regressions show up next to the paper artifacts.
func TournamentExp(p Params) *report.Table {
	p = p.withDefaults()
	small := map[string]float64{"kappa": 2, "grid_levels": 3, "max_groups": 3}
	cfg := strategy.TournamentConfig{
		Workloads:       []string{"BT"},
		DeadlineFactors: []float64{LooseFactor},
		Runs:            p.Runs,
		Hours:           p.MarketHours,
		Seed:            p.Seed,
		Workers:         p.Workers,
		Params: map[string]map[string]float64{
			"sompi":         small,
			"adaptive-ckpt": small,
		},
	}
	t := &report.Table{
		Title:  "Strategy tournament (BT, deadline 1.5x baseline)",
		Header: []string{"rank", "strategy", "mean-score", "norm-cost", "miss-rate", "cells"},
	}
	rep, err := strategy.Tournament(context.Background(), cfg)
	if err != nil {
		t.AddNote("tournament failed: %v", err)
		return t
	}
	for _, r := range rep.Rankings {
		t.Add(r.Rank, r.Strategy, r.MeanScore, r.MeanNormCost, r.MeanMissRate, r.Cells)
	}
	t.AddNote("score = normalized cost + 10x deadline-miss rate, averaged over %d scenarios", len(rep.Config.Scenarios))
	t.AddNote("expected shape: sompi leads overall; noft competitive only in calm scenarios")
	return t
}
