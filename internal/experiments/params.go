package experiments

import (
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/report"
)

// Slack regenerates the Section 5.2 slack study: monetary cost and
// execution time of SOMPI on BT as the on-demand slack reservation varies,
// at a fixed deadline.
func Slack(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	pr := app.BT()
	baseCost, baseTime := baselineOf(pr)
	deadline := baseTime * LooseFactor
	t := &report.Table{
		Title:  "Parameter study: slack (BT, deadline 1.5x baseline)",
		Header: []string{"slack", "normalized-cost", "normalized-time", "miss-rate"},
	}
	for _, slack := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		s := &opt.Adaptive{
			Base:    opt.Config{Market: m, Slack: slack},
			History: baselines.History,
		}
		st := mc(s, m, pr, deadline, p)
		t.Add(slack, st.Cost.Mean()/baseCost, st.Hours.Mean()/baseTime, st.MissRate())
	}
	t.AddNote("paper shape: cost falls up to ~20%% slack, flat beyond; time bounded ~1.16x")
	return t
}

// Kappa regenerates the Section 5.2 κ study: expected cost and
// optimization overhead as the number of usable circle groups grows.
func Kappa(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	pr := app.BT()
	baseCost, baseTime := baselineOf(pr)
	deadline := baseTime * LooseFactor
	t := &report.Table{
		Title:  "Parameter study: kappa (BT, expected cost from the model)",
		Header: []string{"kappa", "normalized-expected-cost", "evaluations", "wall-ms"},
	}
	for kappa := 1; kappa <= 5; kappa++ {
		startT := time.Now()
		res, err := opt.Optimize(opt.Config{
			Profile: pr, Market: m, Deadline: deadline, Kappa: kappa,
			Workers: p.Workers,
		})
		if err != nil {
			t.Add(kappa, "infeasible", 0, 0)
			continue
		}
		t.Add(kappa, res.Est.Cost/baseCost, res.Evals,
			time.Since(startT).Milliseconds())
	}
	t.AddNote("paper shape: cost improvement saturates around kappa=4 while overhead keeps growing")
	return t
}

// Tm regenerates the Section 5.2 optimization-window study: SOMPI's
// measured cost as the window T_m varies.
func Tm(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	pr := app.BT()
	baseCost, baseTime := baselineOf(pr)
	deadline := baseTime * LooseFactor
	t := &report.Table{
		Title:  "Parameter study: optimization window T_m (BT)",
		Header: []string{"Tm-hours", "normalized-cost", "miss-rate"},
	}
	for _, window := range []float64{5, 10, 15, 20, 30} {
		st := mc(baselines.SOMPIWindow(m, window), m, pr, deadline, p)
		t.Add(window, st.Cost.Mean()/baseCost, st.MissRate())
	}
	t.AddNote("paper shape: sweet spot near 15h; smaller windows churn, larger ones go stale")
	return t
}

var _ = replay.MCStats{} // keep replay imported for doc references
