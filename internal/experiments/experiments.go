// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) against the simulated substrate. Each constructor
// returns a report.Table whose rows mirror what the paper plots; the
// EXPERIMENTS.md file in the repository root records measured-vs-paper
// shapes for each one.
package experiments

import (
	"fmt"
	"time"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/report"
)

// Deadline multipliers relative to Baseline Time (Section 5.1).
const (
	LooseFactor = 1.5
	TightFactor = 1.05
)

// Params sizes an experiment run. The zero value gives a configuration
// that regenerates recognizable shapes in minutes; cmd/experiments -full
// raises the replication counts toward the paper's.
type Params struct {
	// Seed drives market synthesis and Monte Carlo sampling.
	Seed uint64
	// MarketHours is the length of the synthesized price history.
	MarketHours float64
	// Runs is the Monte Carlo replication count per configuration.
	Runs int
	// Apps restricts the workloads (nil = the paper's full set).
	Apps []app.Profile
	// Workers is the optimizer/replay worker count (0 = GOMAXPROCS,
	// 1 = serial). Every experiment's numbers are identical at any
	// worker count; only wall-clock changes.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.MarketHours == 0 {
		p.MarketHours = 24 * 30
	}
	if p.Runs == 0 {
		p.Runs = 12
	}
	if p.Apps == nil {
		p.Apps = append(app.NPB(), app.LAMMPS(32), app.LAMMPS(128))
	}
	return p
}

func (p Params) market() *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), p.MarketHours, p.Seed)
}

// baselineOf reports the paper's normalization quantities: the cost and
// time of the best-performance on-demand fleet.
func baselineOf(pr app.Profile) (cost, hours float64) {
	od := opt.FastestOnDemand(nil, pr)
	return od.FullCost(), od.T
}

// mc runs one strategy through the Monte Carlo harness.
func mc(s replay.Strategy, m cloud.MarketView, pr app.Profile, deadline float64, p Params) replay.MCStats {
	r := &replay.Runner{Market: m, Profile: pr}
	return replay.MonteCarlo(s, r, replay.MCConfig{
		Deadline: deadline,
		Runs:     p.Runs,
		History:  baselines.History,
		Seed:     p.Seed + 1,
		Workers:  p.Workers,
	})
}

// Fig5 regenerates Figure 5: normalized monetary cost of On-demand,
// Marathe, Marathe-Opt and SOMPI under loose and tight deadlines for
// every workload, normalized to Baseline Cost.
func Fig5(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Figure 5: normalized monetary cost vs state of the art",
		Header: []string{"app", "class", "deadline", "On-demand", "Marathe", "Marathe-Opt", "SOMPI"},
	}
	for _, pr := range p.Apps {
		baseCost, baseTime := baselineOf(pr)
		for _, d := range []struct {
			label string
			mult  float64
		}{{"loose", LooseFactor}, {"tight", TightFactor}} {
			deadline := baseTime * d.mult
			row := []interface{}{pr.Name, string(pr.Class), d.label}
			for _, s := range []replay.Strategy{
				baselines.OnDemandOnly(),
				baselines.Marathe(m),
				baselines.MaratheOpt(m),
				baselines.SOMPI(m),
			} {
				st := mc(s, m, pr, deadline, p)
				row = append(row, st.Cost.Mean()/baseCost)
			}
			t.Add(row...)
		}
	}
	t.AddNote("paper shape: SOMPI < Marathe-Opt <= Marathe; SOMPI ~30%% of Baseline on average")
	return t
}

// Table2 regenerates Table 2: execution time of Marathe-Opt and SOMPI
// normalized to Baseline Time.
func Table2(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Table 2: normalized execution time",
		Header: []string{"app", "deadline", "Marathe-Opt", "SOMPI", "deadline/baseline"},
	}
	for _, pr := range p.Apps {
		_, baseTime := baselineOf(pr)
		for _, d := range []struct {
			label string
			mult  float64
		}{{"loose", LooseFactor}, {"tight", TightFactor}} {
			deadline := baseTime * d.mult
			mo := mc(baselines.MaratheOpt(m), m, pr, deadline, p)
			so := mc(baselines.SOMPI(m), m, pr, deadline, p)
			t.Add(pr.Name, d.label,
				mo.Hours.Mean()/baseTime, so.Hours.Mean()/baseTime, d.mult)
		}
	}
	t.AddNote("paper shape: both near the deadline under tight, well under it when loose")
	return t
}

// Fig6 regenerates Figure 6: normalized cost of the simple spot heuristics
// against SOMPI, averaged per workload class.
func Fig6(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Figure 6: comparison with heuristic spot usage",
		Header: []string{"class", "deadline", "On-demand", "Spot-Inf", "Spot-Avg", "SOMPI", "Spot-Inf std"},
	}
	classes := map[app.Class][]app.Profile{}
	for _, pr := range p.Apps {
		classes[pr.Class] = append(classes[pr.Class], pr)
	}
	for _, class := range []app.Class{app.Computation, app.Communication, app.IO} {
		apps := classes[class]
		if len(apps) == 0 {
			continue
		}
		for _, d := range []struct {
			label string
			mult  float64
		}{{"loose", LooseFactor}, {"tight", TightFactor}} {
			sums := make([]float64, 4)
			infStd := 0.0
			for _, pr := range apps {
				baseCost, baseTime := baselineOf(pr)
				deadline := baseTime * d.mult
				for i, s := range []replay.Strategy{
					baselines.OnDemandOnly(),
					baselines.SpotInf(m),
					baselines.SpotAvg(m),
					baselines.SOMPI(m),
				} {
					st := mc(s, m, pr, deadline, p)
					sums[i] += st.Cost.Mean() / baseCost / float64(len(apps))
					if i == 1 {
						infStd += st.Cost.Std() / baseCost / float64(len(apps))
					}
				}
			}
			t.Add(string(class), d.label, sums[0], sums[1], sums[2], sums[3], infStd)
		}
	}
	t.AddNote("paper shape: heuristics beat On-demand but lose to SOMPI; Spot-Inf variance large")
	return t
}

// Fig7 regenerates Figure 7: SOMPI's cost as the deadline stretches from
// Baseline Time to 2x, for one app per class, with the on-demand recovery
// type the optimizer selects at each point.
func Fig7(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Figure 7: monetary cost vs deadline (SOMPI)",
		Header: []string{"app", "deadline-extra", "normalized-cost", "recovery-type"},
	}
	for _, pr := range []app.Profile{app.BT(), app.FT(), app.BTIO()} {
		baseCost, baseTime := baselineOf(pr)
		for _, extra := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
			deadline := baseTime * (1 + extra)
			st := mc(baselines.SOMPI(m), m, pr, deadline, p)
			// The recovery type the one-shot optimizer picks at this
			// deadline (the arrows in Figure 7).
			rec := "-"
			if od, err := opt.SelectOnDemand(nil, pr, deadline, opt.DefaultSlack); err == nil {
				rec = od.Instance.Name
			} else if od, err := opt.SelectOnDemand(nil, pr, deadline, 0); err == nil {
				rec = od.Instance.Name
			}
			t.Add(pr.Name, fmt.Sprintf("%.2f", extra), st.Cost.Mean()/baseCost, rec)
		}
	}
	t.AddNote("paper shape: cost falls as the deadline loosens; recovery type steps down the catalog")
	return t
}

// Fig8 regenerates Figure 8: the fault-tolerance ablation (All-Unable,
// w/o-RP, w/o-CK, w/o-MT vs SOMPI), normalized to Baseline Cost and
// averaged over one app per class.
func Fig8(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Figure 8: individual fault-tolerance mechanisms",
		Header: []string{"app", "deadline", "All-Unable", "w/o-RP", "w/o-CK", "w/o-MT", "SOMPI"},
	}
	for _, pr := range []app.Profile{app.BT(), app.FT(), app.BTIO()} {
		baseCost, baseTime := baselineOf(pr)
		for _, d := range []struct {
			label string
			mult  float64
		}{{"loose", LooseFactor}, {"tight", TightFactor}} {
			deadline := baseTime * d.mult
			row := []interface{}{pr.Name, d.label}
			for _, s := range []replay.Strategy{
				baselines.AllUnable(m),
				baselines.WithoutRP(m),
				baselines.WithoutCK(m),
				baselines.WithoutMT(m),
				baselines.SOMPI(m),
			} {
				st := mc(s, m, pr, deadline, p)
				row = append(row, st.Cost.Mean()/baseCost)
			}
			t.Add(row...)
		}
	}
	t.AddNote("paper shape: single mechanisms barely beat All-Unable; SOMPI clearly below all")
	return t
}

// Timing wraps an experiment constructor and reports its wall time, for
// the optimization-overhead accounting the paper carries through all
// results.
func Timing(name string, f func(Params) *report.Table, p Params) (*report.Table, time.Duration) {
	startT := time.Now()
	t := f(p)
	return t, time.Since(startT)
}
