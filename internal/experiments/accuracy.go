package experiments

import (
	"math"

	"sompi/internal/app"
	"sompi/internal/baselines"
	"sompi/internal/cloud"
	"sompi/internal/failure"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/report"
	"sompi/internal/stats"
)

// AccFRF regenerates the Section 5.4.1 failure-rate-function accuracy
// study: train the estimator on three days of history, re-estimate on the
// following day, and report the distribution of relative differences.
func AccFRF(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Accuracy of the failure rate function (3-day train vs next-day test)",
		Header: []string{"market", "bid-frac", "abs-diff-mean", "frac<3pp", "frac<5pp"},
	}
	const horizon = 12
	for _, key := range []cloud.MarketKey{
		{Type: cloud.M1Small.Name, Zone: cloud.ZoneA},
		{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA},
		{Type: cloud.CC28XLarge.Name, Zone: cloud.ZoneB},
	} {
		full := m.Trace(key.Type, key.Zone)
		for _, frac := range []float64{0.1, 0.5} {
			bid := full.Max() * frac
			var diffs stats.Summary
			under3, under5, n := 0, 0, 0
			// Slide the 4-day window through the trace.
			for off := 0.0; off+96 <= full.Duration(); off += 24 {
				train := full.Window(off, 72)
				test := full.Window(off+72, 24)
				if train.Len() == 0 || test.Len() == 0 {
					continue
				}
				a := failure.Estimate(train, bid, horizon)
				b := failure.Estimate(test, bid, horizon)
				// Compare the survival curves pointwise. Differences are
				// absolute (percentage points): survival values are
				// probabilities, and the paper's relative metric degenerates
				// on the near-zero buckets our spikier markets produce.
				for h := 1; h <= horizon; h++ {
					d := math.Abs(a.Survival(h) - b.Survival(h))
					diffs.Add(d)
					n++
					if d < 0.03 {
						under3++
					}
					if d < 0.05 {
						under5++
					}
				}
			}
			if n == 0 {
				continue
			}
			t.Add(key.String(), frac, diffs.Mean(),
				float64(under3)/float64(n), float64(under5)/float64(n))
		}
	}
	t.AddNote("paper shape: ~90%% of relative differences below 3%%, ~98%% below 5%%")
	return t
}

// AccModel regenerates the Section 5.4.1 model accuracy study: the
// expected cost from Formula 1 (the analytic evaluator) against the
// Monte Carlo replay of the same plan.
func AccModel(p Params) *report.Table {
	p = p.withDefaults()
	m := p.market()
	t := &report.Table{
		Title:  "Accuracy of the cost model (Formula 1 vs Monte Carlo replay)",
		Header: []string{"app", "model-cost", "replay-cost", "rel-diff"},
	}
	var worst float64
	for _, pr := range []app.Profile{app.BT(), app.FT(), app.BTIO()} {
		_, baseTime := baselineOf(pr)
		deadline := baseTime * LooseFactor

		// The paper's accuracy experiment replays the same history the
		// model was estimated from (in-sample): it measures the error of
		// the formulas, not day-over-day market drift. Train and replay
		// on one 10-day window.
		train := m.Window(0, 240)
		res, err := opt.Optimize(opt.Config{Profile: pr, Market: train, Deadline: deadline, Workers: p.Workers})
		if err != nil {
			continue
		}
		r := &replay.Runner{Market: train, Profile: pr}
		fixed := replay.FixedPlan{
			Label: "plan",
			Provider: func(*replay.Runner, float64, float64) (model.Plan, error) {
				return res.Plan, nil
			},
		}
		st := replay.MonteCarlo(fixed, r, replay.MCConfig{
			Deadline: deadline, Runs: p.Runs * 4, History: baselines.History, Seed: p.Seed + 2,
			Workers: p.Workers,
		})
		rel := math.Abs(res.Est.Cost-st.Cost.Mean()) / st.Cost.Mean()
		if rel > worst {
			worst = rel
		}
		t.Add(pr.Name, res.Est.Cost, st.Cost.Mean(), rel)
	}
	t.AddNote("worst relative difference %.1f%%; paper reports at most ~15%%", worst*100)
	return t
}
