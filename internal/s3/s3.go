// Package s3 simulates the Amazon S3 object store the paper uses for
// checkpoint storage (Section 4.4): durable puts/gets with transfer times
// derived from the writer's bandwidth and $/GB-month storage accounting.
// The paper found storage cost below 0.1% of execution cost; the billing
// here exists to let experiments verify that claim rather than assume it.
package s3

import (
	"fmt"
	"sort"
)

// PricePerGBMonth is the 2014 S3 price the paper quotes ($0.03/GB-month).
const PricePerGBMonth = 0.03

// Object is one stored checkpoint image.
type Object struct {
	Key     string
	SizeGB  float64
	PutHour float64 // virtual time of the upload
}

// Store is a simulated object store. The zero value is ready to use.
type Store struct {
	objects map[string]Object
}

// Put stores (or replaces) an object at the given virtual hour. Negative
// sizes are rejected.
func (s *Store) Put(key string, sizeGB, hour float64) error {
	if sizeGB < 0 {
		return fmt.Errorf("s3: negative object size %v", sizeGB)
	}
	if s.objects == nil {
		s.objects = make(map[string]Object)
	}
	s.objects[key] = Object{Key: key, SizeGB: sizeGB, PutHour: hour}
	return nil
}

// Get returns the object and true, or a zero object and false.
func (s *Store) Get(key string) (Object, bool) {
	o, ok := s.objects[key]
	return o, ok
}

// Delete removes an object; deleting a missing key is a no-op (matching
// S3 semantics).
func (s *Store) Delete(key string) {
	delete(s.objects, key)
}

// Keys returns the stored keys in sorted order.
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TotalGB reports the stored volume.
func (s *Store) TotalGB() float64 {
	t := 0.0
	for _, o := range s.objects {
		t += o.SizeGB
	}
	return t
}

// StorageCost reports the dollars charged for holding the current
// contents until the given hour: each object is billed from its upload
// time at PricePerGBMonth (a month is 730 hours).
func (s *Store) StorageCost(untilHour float64) float64 {
	const hoursPerMonth = 730
	c := 0.0
	for _, o := range s.objects {
		held := untilHour - o.PutHour
		if held < 0 {
			continue
		}
		c += o.SizeGB * PricePerGBMonth * held / hoursPerMonth
	}
	return c
}

// TransferHours reports how long moving sizeGB at the given aggregate
// bandwidth (Gbit/s) takes, in hours.
func TransferHours(sizeGB, gbps float64) float64 {
	if gbps <= 0 {
		panic("s3: non-positive bandwidth")
	}
	return sizeGB * 8 / gbps / 3600
}
