package s3

import (
	"math"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	var s Store
	if err := s.Put("a", 2, 0); err != nil {
		t.Fatal(err)
	}
	o, ok := s.Get("a")
	if !ok || o.SizeGB != 2 {
		t.Fatalf("Get = %+v, %v", o, ok)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted object still present")
	}
	s.Delete("missing") // no-op
}

func TestPutRejectsNegativeSize(t *testing.T) {
	var s Store
	if err := s.Put("a", -1, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestPutReplaces(t *testing.T) {
	var s Store
	_ = s.Put("a", 2, 0)
	_ = s.Put("a", 5, 1)
	if s.TotalGB() != 5 {
		t.Fatalf("TotalGB = %v, want 5", s.TotalGB())
	}
}

func TestKeysSorted(t *testing.T) {
	var s Store
	_ = s.Put("b", 1, 0)
	_ = s.Put("a", 1, 0)
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStorageCost(t *testing.T) {
	var s Store
	_ = s.Put("ck", 100, 0)
	// 100 GB for one month = $3.
	got := s.StorageCost(730)
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("StorageCost = %v, want 3", got)
	}
	// Before the upload: free.
	_ = s.Put("later", 100, 1000)
	if c := s.StorageCost(730); math.Abs(c-3) > 1e-9 {
		t.Fatalf("future object billed: %v", c)
	}
}

func TestStorageCostNegligibleVsExecution(t *testing.T) {
	// The paper's claim: checkpoint storage cost is negligible (<0.1% of
	// execution cost). A checkpointing job keeps only its latest image:
	// 120 GB held for a two-day run vs a ~$150 spot bill.
	var s Store
	for i := 0; i < 30; i++ {
		s.Delete("latest")
		_ = s.Put("latest", 120, float64(i))
	}
	cost := s.StorageCost(48)
	if cost > 0.5 {
		t.Fatalf("checkpoint storage $%v is not negligible vs a $150 run", cost)
	}
}

func TestTransferHours(t *testing.T) {
	// 45 GB at 1 Gbps = 360 s = 0.1 h.
	if got := TransferHours(45, 1); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("TransferHours = %v, want 0.1", got)
	}
}

func TestTransferHoursPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	TransferHours(1, 0)
}
