// Package failure estimates the paper's failure-rate function f_i(P, t)
// — the probability that a circle group bidding P suffers its first
// out-of-bid event in hour t — together with the expected spot price
// S_i(P) and the mean time to out-of-bid (MTTF) that drives the optimal
// checkpoint-interval formula.
//
// The estimator follows Section 4.4 ("Obtaining Failure Rate Function"):
// start from a point in the recent price history, scan forward for the
// first time the price exceeds the bid, and histogram the first-passage
// hour. Starts are taken either exhaustively (every sample, deterministic)
// or by Monte Carlo sampling. The history is treated as cyclic so every
// start has a full horizon of lookahead.
package failure

import (
	"math"

	"sompi/internal/stats"
	"sompi/internal/trace"
)

// Dist is the discrete failure-time distribution of one circle group for
// one bid price over a horizon of T hours.
type Dist struct {
	// T is the horizon in hours. Index t < T holds the probability that
	// the first out-of-bid event lands in [t, t+1); index T holds the
	// probability of surviving the whole horizon (the paper's t_i = T_i
	// "application completed" outcome).
	T int
	// P has length T+1 and sums to 1.
	P []float64
}

// Fail reports the probability of first failure in hour t (t < T).
func (d *Dist) Fail(t int) float64 { return d.P[t] }

// Complete reports the probability of surviving the whole horizon.
func (d *Dist) Complete() float64 { return d.P[d.T] }

// Survival reports P(first out-of-bid >= t hours), with Survival(0) = 1.
func (d *Dist) Survival(t int) float64 {
	s := 0.0
	for i := t; i <= d.T; i++ {
		s += d.P[i]
	}
	return s
}

// firstExceedCyclic scans the trace from sample index start, wrapping
// around at the end, for at most horizonHours. It returns the first-
// passage time in hours and whether the price exceeded the bid within the
// horizon.
func firstExceedCyclic(tr *trace.Trace, start int, bid, horizonHours float64) (float64, bool) {
	n := tr.Len()
	if n == 0 {
		return horizonHours, false
	}
	steps := int(math.Ceil(horizonHours / tr.Step))
	for i := 0; i < steps; i++ {
		if tr.Prices[(start+i)%n] > bid {
			return float64(i) * tr.Step, true
		}
	}
	return horizonHours, false
}

// exceedSteps returns, for every sample index, the number of samples to
// the first price (cyclically) strictly above the bid, or -1 when no
// sample in the whole history exceeds it. One O(n) backward sweep over
// the doubled index space replaces the O(n·horizon) per-start rescan of
// firstExceedCyclic; the distances are the same integers that scan would
// count, so every derived quantity is bit-identical.
func exceedSteps(tr *trace.Trace, bid float64) []int {
	n := tr.Len()
	dist := make([]int, n)
	next := -1
	for i := 2*n - 1; i >= 0; i-- {
		j := i
		if j >= n {
			j -= n
		}
		if tr.Prices[j] > bid {
			next = i
		}
		if i < n {
			if next < 0 {
				dist[i] = -1
			} else {
				dist[i] = next - i
			}
		}
	}
	return dist
}

// Estimate computes the failure-time distribution exhaustively: every
// sample of the history is used as a start point once, which makes the
// result deterministic and exact with respect to the empirical history.
// It panics on an empty history or non-positive horizon.
func Estimate(tr *trace.Trace, bid float64, horizon int) *Dist {
	if tr.Len() == 0 {
		panic("failure: empty price history")
	}
	if horizon <= 0 {
		panic("failure: non-positive horizon")
	}
	d := &Dist{T: horizon, P: make([]float64, horizon+1)}
	steps := int(math.Ceil(float64(horizon) / tr.Step))
	for _, ds := range exceedSteps(tr, bid) {
		if ds >= 0 && ds < steps {
			d.record(float64(ds)*tr.Step, true)
		} else {
			d.record(float64(horizon), false)
		}
	}
	d.normalize(float64(tr.Len()))
	return d
}

// EstimateMC computes the distribution with g random start points, the
// paper's literal "repeat the same process for G times" procedure. It is
// used by the accuracy study to quantify sampling error against Estimate.
func EstimateMC(tr *trace.Trace, bid float64, horizon, g int, rng *stats.RNG) *Dist {
	if tr.Len() == 0 {
		panic("failure: empty price history")
	}
	if horizon <= 0 || g <= 0 {
		panic("failure: non-positive horizon or sample count")
	}
	d := &Dist{T: horizon, P: make([]float64, horizon+1)}
	for i := 0; i < g; i++ {
		h, exceeded := firstExceedCyclic(tr, rng.Intn(tr.Len()), bid, float64(horizon))
		d.record(h, exceeded)
	}
	d.normalize(float64(g))
	return d
}

func (d *Dist) record(h float64, exceeded bool) {
	if !exceeded || h >= float64(d.T) {
		d.P[d.T]++
		return
	}
	d.P[int(h)]++ // the paper discretizes failure times with floor
}

func (d *Dist) normalize(n float64) {
	for i := range d.P {
		d.P[i] /= n
	}
}

// RelativeError reports mean(|a-b| / max(a, eps)) over the buckets of two
// equal-horizon distributions — the §5.4.1 accuracy metric.
func RelativeError(a, b *Dist) float64 {
	if a.T != b.T {
		panic("failure: horizon mismatch")
	}
	const eps = 1e-9
	sum, n := 0.0, 0
	for i := range a.P {
		if a.P[i] < eps && b.P[i] < eps {
			continue
		}
		sum += math.Abs(a.P[i]-b.P[i]) / math.Max(a.P[i], eps)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MTTF reports the mean first-passage time (hours) of the history above
// the bid, estimated exhaustively with a generous horizon. Bids at or
// above the historical maximum never fail, giving +Inf — callers treat
// that as "checkpoints unnecessary".
func MTTF(tr *trace.Trace, bid float64) float64 {
	if tr.Len() == 0 {
		panic("failure: empty price history")
	}
	if bid >= tr.Max() {
		return math.Inf(1)
	}
	horizon := tr.Duration() * 2
	steps := int(math.Ceil(horizon / tr.Step))
	sum := 0.0
	censored := false
	for _, ds := range exceedSteps(tr, bid) {
		if ds >= 0 && ds < steps {
			sum += float64(ds) * tr.Step
		} else {
			censored = true
			sum += horizon
		}
	}
	if censored {
		// Bid below the max but some cyclic scans still never exceeded it
		// (possible only when horizon truncates); treat as very reliable.
		return math.Inf(1)
	}
	return sum / float64(tr.Len())
}

// ExpectedSpotPrice reports S_i(P): the mean of the historical prices at
// or below the bid (what the group actually pays while running).
func ExpectedSpotPrice(tr *trace.Trace, bid float64) float64 {
	return tr.MeanBelow(bid)
}
