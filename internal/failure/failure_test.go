package failure

import (
	"math"
	"testing"
	"testing/quick"

	"sompi/internal/cloud"
	"sompi/internal/stats"
	"sompi/internal/trace"
)

// flat returns a constant-price trace at 1-hour steps.
func flat(price float64, hours int) *trace.Trace {
	p := make([]float64, hours)
	for i := range p {
		p[i] = price
	}
	return trace.New(1, p)
}

func marketTrace(seed uint64) *trace.Trace {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, seed)
	return m.Trace(cloud.M1Medium.Name, cloud.ZoneA)
}

func TestDistSumsToOne(t *testing.T) {
	d := Estimate(marketTrace(1), 0.05, 30)
	sum := 0.0
	for _, p := range d.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestHighBidNeverFails(t *testing.T) {
	tr := marketTrace(2)
	d := Estimate(tr, tr.Max()+1, 30)
	if d.Complete() != 1 {
		t.Fatalf("bid above max: completion prob %v, want 1", d.Complete())
	}
}

func TestZeroBidAlwaysFailsImmediately(t *testing.T) {
	tr := marketTrace(3)
	d := Estimate(tr, 0, 30)
	if d.Fail(0) != 1 {
		t.Fatalf("zero bid: P(fail hour 0) = %v, want 1", d.Fail(0))
	}
}

func TestFlatTraceBidAboveSurvives(t *testing.T) {
	d := Estimate(flat(0.1, 48), 0.2, 24)
	if d.Complete() != 1 {
		t.Fatalf("flat trace below bid: completion %v, want 1", d.Complete())
	}
}

func TestKnownSpikeDistribution(t *testing.T) {
	// Price exceeds the bid only at sample 5 (hour 5). From start s <= 5
	// the first passage is 5-s hours; from s > 5 it wraps around to
	// 5 + 10 - s hours. Horizon 4 means only starts 2..5 (passage <= 3)
	// and 7..10 fail within the horizon... verify a couple of buckets.
	p := []float64{1, 1, 1, 1, 1, 9, 1, 1, 1, 1}
	tr := trace.New(1, p)
	d := Estimate(tr, 5, 4)
	// Starts with passage 0 hours: s=5 only -> 1/10.
	if math.Abs(d.Fail(0)-0.1) > 1e-12 {
		t.Fatalf("P(fail 0) = %v, want 0.1", d.Fail(0))
	}
	// Passage 1 hour: s=4 -> 1/10.
	if math.Abs(d.Fail(1)-0.1) > 1e-12 {
		t.Fatalf("P(fail 1) = %v, want 0.1", d.Fail(1))
	}
	// Completion: starts whose passage >= 4: s in {6,7,8,9,0,1} -> 6/10.
	if math.Abs(d.Complete()-0.6) > 1e-12 {
		t.Fatalf("P(complete) = %v, want 0.6", d.Complete())
	}
}

func TestSurvivalMonotone(t *testing.T) {
	d := Estimate(marketTrace(4), 0.04, 40)
	prev := 1.0
	for h := 0; h <= d.T; h++ {
		s := d.Survival(h)
		if s > prev+1e-12 {
			t.Fatalf("survival increased at %d: %v > %v", h, s, prev)
		}
		prev = s
	}
	if math.Abs(d.Survival(0)-1) > 1e-12 {
		t.Fatalf("Survival(0) = %v, want 1", d.Survival(0))
	}
}

func TestCompletionMonotoneInBid(t *testing.T) {
	// Higher bids can only improve survival.
	tr := marketTrace(5)
	prev := -1.0
	for _, bid := range []float64{0.01, 0.03, 0.05, 0.1, 0.5, 1.0} {
		c := Estimate(tr, bid, 30).Complete()
		if c < prev-1e-12 {
			t.Fatalf("completion prob decreased at bid %v: %v < %v", bid, c, prev)
		}
		prev = c
	}
}

func TestEstimateMCConvergesToExhaustive(t *testing.T) {
	tr := marketTrace(6)
	exact := Estimate(tr, 0.05, 20)
	mc := EstimateMC(tr, 0.05, 20, 200000, stats.NewRNG(7))
	for i := range exact.P {
		if math.Abs(exact.P[i]-mc.P[i]) > 0.01 {
			t.Fatalf("bucket %d: MC %v vs exact %v", i, mc.P[i], exact.P[i])
		}
	}
}

func TestRelativeErrorSelfZero(t *testing.T) {
	d := Estimate(marketTrace(8), 0.05, 20)
	if e := RelativeError(d, d); e != 0 {
		t.Fatalf("self relative error = %v", e)
	}
}

func TestRelativeErrorHorizonMismatchPanics(t *testing.T) {
	a := Estimate(flat(0.1, 10), 0.2, 5)
	b := Estimate(flat(0.1, 10), 0.2, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("horizon mismatch did not panic")
		}
	}()
	RelativeError(a, b)
}

func TestMTTFInfiniteAboveMax(t *testing.T) {
	tr := marketTrace(9)
	if m := MTTF(tr, tr.Max()); !math.IsInf(m, 1) {
		t.Fatalf("MTTF at max bid = %v, want +Inf", m)
	}
}

func TestMTTFZeroBid(t *testing.T) {
	tr := marketTrace(10)
	if m := MTTF(tr, 0); m != 0 {
		t.Fatalf("MTTF at zero bid = %v, want 0", m)
	}
}

func TestMTTFMonotoneInBid(t *testing.T) {
	tr := marketTrace(11)
	prev := -1.0
	for _, bid := range []float64{0.01, 0.02, 0.04, 0.08, 0.2, 0.5} {
		m := MTTF(tr, bid)
		if m < prev-1e-9 {
			t.Fatalf("MTTF decreased at bid %v: %v < %v", bid, m, prev)
		}
		prev = m
	}
}

func TestMTTFKnownValue(t *testing.T) {
	// Spike at sample 3 of 4 (hour 3): passages from s=0..3 are 3,2,1,0;
	// wrap start s=3 is the spike itself (0). Mean = (3+2+1+0)/4 = 1.5.
	tr := trace.New(1, []float64{1, 1, 1, 9})
	if m := MTTF(tr, 5); math.Abs(m-1.5) > 1e-12 {
		t.Fatalf("MTTF = %v, want 1.5", m)
	}
}

func TestExpectedSpotPriceBelowBid(t *testing.T) {
	tr := marketTrace(12)
	f := func(raw float64) bool {
		bid := math.Mod(math.Abs(raw), tr.Max()) + 0.001
		s := ExpectedSpotPrice(tr, bid)
		return s > 0 && s <= bid+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedSpotPriceMonotone(t *testing.T) {
	// Raising the bid admits dearer samples, so S(P) is non-decreasing.
	tr := marketTrace(13)
	prev := 0.0
	for _, bid := range []float64{0.01, 0.02, 0.05, 0.1, 0.3, 1.0} {
		s := ExpectedSpotPrice(tr, bid)
		if s < prev-1e-12 {
			t.Fatalf("S(P) decreased at %v: %v < %v", bid, s, prev)
		}
		prev = s
	}
}

func TestEstimatePanics(t *testing.T) {
	empty := trace.New(1, nil)
	cases := []func(){
		func() { Estimate(empty, 1, 5) },
		func() { Estimate(flat(1, 5), 1, 0) },
		func() { EstimateMC(flat(1, 5), 1, 5, 0, stats.NewRNG(1)) },
		func() { MTTF(empty, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestFigure4Shape reproduces the qualitative content of Figure 4: as the
// bid price rises, the failure probability at a fixed horizon falls and
// the expected spot price rises, both changing fastest at low bids.
func TestFigure4Shape(t *testing.T) {
	tr := marketTrace(14)
	lowFail := 1 - Estimate(tr, tr.Mean()*0.5, 24).Complete()
	highFail := 1 - Estimate(tr, tr.Max()*0.9, 24).Complete()
	if lowFail <= highFail {
		t.Fatalf("failure prob not decreasing in bid: low %v, high %v", lowFail, highFail)
	}
	if ExpectedSpotPrice(tr, tr.Mean()*0.5) >= ExpectedSpotPrice(tr, tr.Max()) {
		t.Fatal("expected spot price not increasing in bid")
	}
}

// TestExceedStepsMatchesScan pins the O(n) first-passage sweep against
// the original per-start cyclic scan it replaced, on a real synthesized
// trace across the bid range (below min, interior, at/above max).
func TestExceedStepsMatchesScan(t *testing.T) {
	tr := marketTrace(5)
	horizon := tr.Duration() * 2
	steps := int(math.Ceil(horizon / tr.Step))
	bids := []float64{0, tr.Mean() * 0.5, tr.Mean(), tr.Max() * 0.99, tr.Max(), tr.Max() * 2}
	for _, bid := range bids {
		dist := exceedSteps(tr, bid)
		for s := 0; s < tr.Len(); s += 7 {
			wantH, wantEx := firstExceedCyclic(tr, s, bid, horizon)
			gotEx := dist[s] >= 0 && dist[s] < steps
			gotH := horizon
			if gotEx {
				gotH = float64(dist[s]) * tr.Step
			}
			if gotEx != wantEx || gotH != wantH {
				t.Fatalf("bid %v start %d: sweep (%v,%v) != scan (%v,%v)",
					bid, s, gotH, gotEx, wantH, wantEx)
			}
		}
	}
}
