package des

import (
	"testing"
)

func TestEventsFireInOrder(t *testing.T) {
	var s Sim
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v", got)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (advanced to limit)", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { got = append(got, i) })
	}
	s.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	var s Sim
	var at float64
	s.After(2, func() {
		at = s.Now()
		s.After(3, func() { at = s.Now() })
	})
	s.Run(100)
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestRunLimit(t *testing.T) {
	var s Sim
	fired := false
	s.At(5, func() { fired = true })
	if n := s.Run(4); n != 0 {
		t.Fatalf("fired %d events before limit", n)
	}
	if fired {
		t.Fatal("event past the limit fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run(5)
	if !fired {
		t.Fatal("event at the limit did not fire")
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	s.Cancel(e) // double-cancel is a no-op
	s.Cancel(nil)
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Sim
	s.At(5, func() {})
	s.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Sim
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestStepByStep(t *testing.T) {
	var s Sim
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first step failed")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second step failed")
	}
	if s.Step() {
		t.Fatal("step on empty queue reported an event")
	}
}
