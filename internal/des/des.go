// Package des is a minimal discrete-event simulation engine: a virtual
// clock and a time-ordered event heap. The simulated MPI runtime
// (internal/mpirt) runs on it; it is deliberately tiny — processes are
// callbacks, not goroutines, so simulations are deterministic and fast.
package des

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At float64
	Fn func()

	seq   uint64 // FIFO tie-break for simultaneous events
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.index == -2 }

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    float64
	nextID uint64
	queue  eventQueue
}

// Now reports the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time at. It panics if at is in the
// virtual past.
func (s *Sim) At(at float64, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	e := &Event{At: at, Fn: fn, seq: s.nextID}
	s.nextID++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn delay units after the current time.
func (s *Sim) After(delay float64, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		if e != nil {
			e.index = -2
		}
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -2
}

// Step fires the earliest pending event and reports whether one existed.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.At
	e.Fn()
	return true
}

// Run fires events until the queue is empty or until the virtual clock
// would pass limit, and returns the number of events fired.
func (s *Sim) Run(limit float64) int {
	fired := 0
	for s.queue.Len() > 0 && s.queue[0].At <= limit {
		s.Step()
		fired++
	}
	if s.now < limit && s.queue.Len() == 0 {
		s.now = limit
	}
	return fired
}

// Pending reports the number of scheduled events.
func (s *Sim) Pending() int { return s.queue.Len() }

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
