package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The shipping stream is a sequence of length-prefixed frames:
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// over a plain chunked-HTTP response body. Frame payloads:
//
//	FrameChunk:    [8 bytes segment seq][8 bytes file offset][raw segment bytes]
//	FrameSnapshot: [8 bytes boundary seq][raw snapshot file bytes]
//	FrameReset:    empty — the follower's position is unservable (it ran
//	               ahead of the owner, or the segment vanished without a
//	               covering snapshot); wipe the standby and resync from 0.
//	FrameHeartbeat: empty — the owner is caught up and alive.
//
// Chunk offsets are raw file offsets including the 12-byte segment
// header, so the follower's standby file is a byte-for-byte prefix of
// the owner's segment at all times — which is exactly the crash-image
// contract the PR 5 recovery path already handles.
const (
	FrameChunk     byte = 1
	FrameSnapshot  byte = 2
	FrameReset     byte = 3
	FrameHeartbeat byte = 4
)

// MaxFramePayload bounds a single frame. Chunks are produced well under
// this; the bound exists so a corrupt or hostile length prefix cannot
// drive an allocation.
const MaxFramePayload = 64 << 20

const chunkHeaderLen = 16

// ErrFrameTooLarge reports a length prefix above MaxFramePayload.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds MaxFramePayload")

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// WriteChunkFrame writes a FrameChunk for segment bytes at (seq, off).
func WriteChunkFrame(w io.Writer, seq uint64, off int64, data []byte) error {
	payload := make([]byte, chunkHeaderLen+len(data))
	binary.BigEndian.PutUint64(payload, seq)
	binary.BigEndian.PutUint64(payload[8:], uint64(off))
	copy(payload[chunkHeaderLen:], data)
	return WriteFrame(w, FrameChunk, payload)
}

// WriteSnapshotFrame writes a FrameSnapshot carrying the raw snapshot
// file for boundary seq.
func WriteSnapshotFrame(w io.Writer, seq uint64, data []byte) error {
	payload := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(payload, seq)
	copy(payload[8:], data)
	return WriteFrame(w, FrameSnapshot, payload)
}

// ReadFrame reads one frame. Errors are typed: a clean EOF at a frame
// boundary is io.EOF, a length above the bound is ErrFrameTooLarge,
// anything torn mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// DecodeChunkPayload splits a FrameChunk payload.
func DecodeChunkPayload(payload []byte) (seq uint64, off int64, data []byte, err error) {
	if len(payload) < chunkHeaderLen {
		return 0, 0, nil, fmt.Errorf("cluster: chunk payload %d bytes, want >= %d", len(payload), chunkHeaderLen)
	}
	seq = binary.BigEndian.Uint64(payload)
	off = int64(binary.BigEndian.Uint64(payload[8:]))
	if off < 0 {
		return 0, 0, nil, fmt.Errorf("cluster: negative chunk offset")
	}
	return seq, off, payload[chunkHeaderLen:], nil
}

// DecodeSnapshotPayload splits a FrameSnapshot payload.
func DecodeSnapshotPayload(payload []byte) (seq uint64, data []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("cluster: snapshot payload %d bytes, want >= 8", len(payload))
	}
	return binary.BigEndian.Uint64(payload), payload[8:], nil
}
