// Package cluster is the scale-out substrate for sompid: a static
// N-node topology whose market shards are partitioned by rendezvous
// hashing, a length-prefixed frame codec for WAL segment shipping, and
// a follower that mirrors a peer's WAL into a local standby directory
// while replaying the records live.
//
// The package is deliberately transport- and domain-agnostic: shards
// are opaque strings (serve uses "type/zone"), nodes are (name, URL)
// pairs, and the follower's only contract with the rest of the system
// is a pair of callbacks. Everything that knows about markets,
// sessions, or HTTP routing lives in internal/serve.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Node is one cluster member: a stable name (the identity ownership
// hashes over) and the base URL peers reach it at.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Topology is a static cluster membership. Ownership is a pure function
// of (shard, node names): any process given the same node set computes
// the same assignment, so routing needs no coordination service.
type Topology struct {
	self  Node
	nodes []Node // sorted by name
}

// NewTopology validates and normalizes a membership list. The node list
// may arrive in any order — it is sorted by name, so two processes
// configured with permuted lists agree on everything.
func NewTopology(self string, nodes []Node) (*Topology, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 nodes, got %d", len(nodes))
	}
	seen := make(map[string]bool, len(nodes))
	t := &Topology{nodes: append([]Node(nil), nodes...)}
	for _, n := range t.nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node %+v needs both a name and a url", n)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the node list", self)
	}
	sort.Slice(t.nodes, func(i, j int) bool { return t.nodes[i].Name < t.nodes[j].Name })
	for _, n := range t.nodes {
		if n.Name == self {
			t.self = n
		}
	}
	return t, nil
}

// Self reports this process's own node.
func (t *Topology) Self() Node { return t.self }

// Nodes reports the full membership, sorted by name.
func (t *Topology) Nodes() []Node { return append([]Node(nil), t.nodes...) }

// Peers reports every node except self, sorted by name.
func (t *Topology) Peers() []Node {
	out := make([]Node, 0, len(t.nodes)-1)
	for _, n := range t.nodes {
		if n.Name != t.self.Name {
			out = append(out, n)
		}
	}
	return out
}

// Lookup resolves a node by name.
func (t *Topology) Lookup(name string) (Node, bool) {
	for _, n := range t.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// Owner assigns a shard to a node by rendezvous (highest-random-weight)
// hashing: every node scores the shard, the highest score owns it.
// Rendezvous gives the two properties the satellite test pins: the
// assignment is invariant under permutation of the node list (scores
// don't depend on position), and adding or removing a node moves only
// the shards that node wins or held (every other shard's argmax is
// unchanged).
func (t *Topology) Owner(shard string) Node {
	return owner(shard, t.nodes, nil)
}

// OwnerAlive assigns a shard considering only nodes not marked dead —
// the post-failover view. With every peer dead, self owns everything.
func (t *Topology) OwnerAlive(shard string, dead map[string]bool) Node {
	return owner(shard, t.nodes, dead)
}

func owner(shard string, nodes []Node, dead map[string]bool) Node {
	var best Node
	var bestScore uint64
	found := false
	for _, n := range nodes {
		if dead[n.Name] {
			continue
		}
		s := score(n.Name, shard)
		// Ties break toward the lexicographically smaller name; with a
		// 64-bit hash they are vanishingly rare, but determinism must not
		// depend on luck.
		if !found || s > bestScore || (s == bestScore && n.Name < best.Name) {
			best, bestScore, found = n, s, true
		}
	}
	return best
}

// score is the rendezvous weight of (node, shard): FNV-1a over the two
// names with a NUL separator so ("ab","c") and ("a","bc") differ,
// finished with a full-avalanche mixer. FNV is stable across processes
// and architectures, which is what makes routing deterministic
// cluster-wide — but its high bits avalanche poorly on short keys that
// differ in one byte (a 2-node "a"/"b" cluster assigned every shard of
// the default 12-market catalog to the same node), so the raw sum
// cannot serve as the weight by itself.
func score(node, shard string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(shard))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: every input bit flips every output
// bit with probability ~1/2, giving the rendezvous comparison the
// uniformity the raw FNV sum lacks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
