package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/store"
)

// A Follower mirrors one peer's WAL directory into a local standby
// directory and replays the shipped records live through callbacks. The
// mirror is maintained as a byte-for-byte prefix of the peer's data
// dir — segments and snapshots under their original names — so a
// promotion can hand the directory to store.Open+Recover and reuse the
// single-node crash-recovery path unchanged.
//
// Contract with the caller: before Start, the standby directory must
// have been replayed (and torn-tail truncated) via store.Open, Recover,
// Close — the follower resumes streaming from the mirrored byte
// position and only delivers records that arrive after Start.
type Follower struct {
	cfg    FollowerConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	seg   uint64   // segment currently being mirrored
	off   int64    // next byte offset within it (mirrored AND applied)
	f     *os.File // open mirror file for seg
	parse []byte   // undecoded record-tail of seg past its header

	connected atomic.Bool
	records   atomic.Int64
	snapshots atomic.Int64
	resyncs   atomic.Int64
	errs      atomic.Int64
}

// FollowerConfig parameterizes a Follower.
type FollowerConfig struct {
	// Peer is the node whose WAL is mirrored.
	Peer Node
	// Dir is the local standby directory.
	Dir string
	// Client issues the long-lived stream requests. It must not carry an
	// overall timeout (the stream is unbounded); nil uses a default.
	Client *http.Client
	// OnRecord sees every shipped WAL record, after its bytes are in the
	// mirror. An error aborts the stream and forces a full resync.
	OnRecord func(rec store.Record) error
	// OnSnapshot sees every shipped snapshot's payload.
	OnSnapshot func(payload []byte) error
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
	// RetryInterval is the reconnect backoff (default 500ms).
	RetryInterval time.Duration
}

var (
	followSegRe  = regexp.MustCompile(`^wal-(\d{16})\.seg$`)
	followSnapRe = regexp.MustCompile(`^snap-(\d{16})\.snap$`)
)

// errResync asks the stream loop to reconnect from position zero after
// wiping the mirror.
var errResync = errors.New("cluster: follower resync required")

// StartFollower scans the standby directory for the resume position and
// launches the streaming loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Peer.URL == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: follower needs a peer URL and a standby dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating standby dir: %w", err)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	f := &Follower{cfg: cfg}
	if err := f.scanResume(); err != nil {
		return nil, err
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// scanResume finds the highest mirrored segment and resumes at its end.
// The caller's pre-Start replay truncated any torn tail, so the file
// end is a record boundary.
func (f *Follower) scanResume() error {
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return fmt.Errorf("cluster: reading standby dir: %w", err)
	}
	for _, e := range entries {
		if m := followSegRe.FindStringSubmatch(e.Name()); m != nil {
			seq, _ := strconv.ParseUint(m[1], 10, 64)
			if seq > f.seg {
				f.seg = seq
			}
		}
	}
	if f.seg == 0 {
		return nil // fresh mirror: request from the beginning
	}
	fi, err := os.Stat(f.segPath(f.seg))
	if err != nil {
		return fmt.Errorf("cluster: stat standby segment %d: %w", f.seg, err)
	}
	f.off = fi.Size()
	return nil
}

// Stop cancels the stream and waits for it to exit.
func (f *Follower) Stop() {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
	f.mu.Unlock()
}

// Position reports the mirrored-and-applied byte position. A mirror at
// the peer's store.Position holds (and has applied) everything the peer
// has logged.
func (f *Follower) Position() (seg uint64, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seg, f.off
}

// Connected reports whether the stream is currently established.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Records reports how many WAL records arrived since Start.
func (f *Follower) Records() int64 { return f.records.Load() }

// Snapshots reports how many snapshot cuts were shipped since Start.
func (f *Follower) Snapshots() int64 { return f.snapshots.Load() }

// Resyncs reports how many full wipe-and-resync cycles have run.
func (f *Follower) Resyncs() int64 { return f.resyncs.Load() }

// Errors reports stream or apply errors since Start.
func (f *Follower) Errors() int64 { return f.errs.Load() }

// Dir reports the standby directory.
func (f *Follower) Dir() string { return f.cfg.Dir }

// Peer reports the node being followed.
func (f *Follower) Peer() Node { return f.cfg.Peer }

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) segPath(seq uint64) string {
	return filepath.Join(f.cfg.Dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func (f *Follower) snapPath(seq uint64) string {
	return filepath.Join(f.cfg.Dir, fmt.Sprintf("snap-%016d.snap", seq))
}

func (f *Follower) run() {
	defer f.wg.Done()
	for {
		err := f.stream()
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if errors.Is(err, errResync) {
			f.resyncs.Add(1)
			if werr := f.wipe(); werr != nil {
				f.logf("cluster: follower of %s: wiping standby: %v", f.cfg.Peer.Name, werr)
			}
		} else if err != nil {
			f.errs.Add(1)
			f.logf("cluster: follower of %s: stream: %v", f.cfg.Peer.Name, err)
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(f.cfg.RetryInterval):
		}
	}
}

// stream opens one long-lived shipping request from the current
// position and consumes frames until the connection drops or an error
// forces a resync.
func (f *Follower) stream() error {
	f.mu.Lock()
	seg, off := f.seg, f.off
	f.mu.Unlock()
	url := fmt.Sprintf("%s/cluster/wal?seg=%d&off=%d", f.cfg.Peer.URL, seg, off)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("shipping stream: %d %s", resp.StatusCode, body)
	}
	f.connected.Store(true)
	for {
		typ, payload, err := ReadFrame(resp.Body)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // peer closed cleanly (shutdown); reconnect
			}
			return err
		}
		switch typ {
		case FrameHeartbeat:
		case FrameReset:
			f.logf("cluster: follower of %s: peer reset the stream; resyncing from scratch", f.cfg.Peer.Name)
			return errResync
		case FrameChunk:
			if err := f.applyChunk(payload); err != nil {
				return err
			}
		case FrameSnapshot:
			if err := f.applySnapshot(payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown frame type %d", errResync, typ)
		}
	}
}

// applyChunk mirrors one byte range and live-applies any records it
// completes.
func (f *Follower) applyChunk(payload []byte) error {
	seq, off, data, err := DecodeChunkPayload(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", errResync, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case seq == f.seg && off == f.off:
		// In-order continuation.
	case seq == f.seg+1 && off == 0 || f.seg == 0 && off == 0:
		// The previous segment sealed (or this is the first byte of a
		// fresh mirror): seal our copy and open the next file.
		if err := f.openSegmentLocked(seq); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: chunk for (%d,%d), mirror at (%d,%d)", errResync, seq, off, f.seg, f.off)
	}
	if f.f == nil {
		// Resuming mid-segment after a restart: open without truncating —
		// the bytes below f.off are the mirrored prefix being extended.
		nf, err := os.OpenFile(f.segPath(seq), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("cluster: opening standby segment %d: %w", seq, err)
		}
		f.f = nf
	}
	if _, err := f.f.WriteAt(data, off); err != nil {
		return fmt.Errorf("cluster: mirroring segment %d: %w", seq, err)
	}
	f.off = off + int64(len(data))

	// Everything below the segment header is file framing, not records.
	if off < store.SegmentHeaderLen {
		skip := int64(store.SegmentHeaderLen) - off
		if skip >= int64(len(data)) {
			return nil
		}
		data = data[skip:]
	}
	f.parse = append(f.parse, data...)
	for {
		rec, n, derr := store.DecodeRecord(f.parse)
		if derr != nil {
			if errors.Is(derr, store.ErrShortRecord) {
				return nil // incomplete tail: wait for the next chunk
			}
			// The mirror carries CRC-checked bytes the owner wrote; a
			// non-short decode failure means the stream diverged.
			return fmt.Errorf("%w: record decode at segment %d: %v", errResync, seq, derr)
		}
		if f.cfg.OnRecord != nil {
			if err := f.cfg.OnRecord(rec); err != nil {
				f.errs.Add(1)
				return fmt.Errorf("%w: applying record: %v", errResync, err)
			}
		}
		f.records.Add(1)
		f.parse = f.parse[n:]
	}
}

// applySnapshot installs a shipped snapshot file, retires the mirror
// segments it covers, and jumps the stream position to its boundary.
func (f *Follower) applySnapshot(payload []byte) error {
	seq, data, err := DecodeSnapshotPayload(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", errResync, err)
	}
	decoded, err := store.DecodeSnapshotFile(data)
	if err != nil {
		return fmt.Errorf("%w: shipped snapshot %d: %v", errResync, seq, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp := f.snapPath(seq) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cluster: writing standby snapshot: %w", err)
	}
	if err := os.Rename(tmp, f.snapPath(seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: installing standby snapshot: %w", err)
	}
	// Retire what the snapshot covers, mirroring the owner's compaction.
	entries, _ := os.ReadDir(f.cfg.Dir)
	for _, e := range entries {
		if m := followSegRe.FindStringSubmatch(e.Name()); m != nil {
			if s, _ := strconv.ParseUint(m[1], 10, 64); s < seq {
				os.Remove(filepath.Join(f.cfg.Dir, e.Name()))
			}
		} else if m := followSnapRe.FindStringSubmatch(e.Name()); m != nil {
			if s, _ := strconv.ParseUint(m[1], 10, 64); s < seq {
				os.Remove(filepath.Join(f.cfg.Dir, e.Name()))
			}
		}
	}
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
	f.seg, f.off, f.parse = seq, 0, nil
	f.snapshots.Add(1)
	if f.cfg.OnSnapshot != nil {
		if err := f.cfg.OnSnapshot(decoded); err != nil {
			f.errs.Add(1)
			return fmt.Errorf("%w: applying snapshot %d: %v", errResync, seq, err)
		}
	}
	return nil
}

// openSegmentLocked seals the current mirror file and opens (truncating
// any stale leftover) the file for seq.
func (f *Follower) openSegmentLocked(seq uint64) error {
	if f.f != nil {
		f.f.Sync()
		f.f.Close()
		f.f = nil
	}
	nf, err := os.OpenFile(f.segPath(seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: creating standby segment %d: %w", seq, err)
	}
	f.f, f.seg, f.off, f.parse = nf, seq, 0, nil
	return nil
}

// wipe clears the mirror for a from-scratch resync.
func (f *Follower) wipe() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if followSegRe.MatchString(e.Name()) || followSnapRe.MatchString(e.Name()) {
			os.Remove(filepath.Join(f.cfg.Dir, e.Name()))
		}
	}
	f.seg, f.off, f.parse = 0, 0, nil
	return nil
}
