package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChunkFrame(&buf, 7, 4096, []byte("segment bytes")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotFrame(&buf, 9, []byte("snapshot file")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameReset, nil); err != nil {
		t.Fatal(err)
	}

	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FrameChunk {
		t.Fatalf("frame 1: type %d err %v", typ, err)
	}
	seq, off, data, err := DecodeChunkPayload(payload)
	if err != nil || seq != 7 || off != 4096 || string(data) != "segment bytes" {
		t.Fatalf("chunk = (%d, %d, %q), err %v", seq, off, data, err)
	}

	typ, payload, err = ReadFrame(&buf)
	if err != nil || typ != FrameSnapshot {
		t.Fatalf("frame 2: type %d err %v", typ, err)
	}
	sseq, sdata, err := DecodeSnapshotPayload(payload)
	if err != nil || sseq != 9 || string(sdata) != "snapshot file" {
		t.Fatalf("snapshot = (%d, %q), err %v", sseq, sdata, err)
	}

	for _, want := range []byte{FrameHeartbeat, FrameReset} {
		typ, payload, err = ReadFrame(&buf)
		if err != nil || typ != want || payload != nil {
			t.Fatalf("frame type %d: got (%d, %v, %v)", want, typ, payload, err)
		}
	}
	if _, _, err = ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameTornInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChunkFrame(&buf, 1, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix must fail typed: io.EOF exactly at a frame
	// boundary (offset 0), io.ErrUnexpectedEOF mid-frame.
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if !errors.Is(err, want) {
			t.Fatalf("prefix of %d bytes: err %v, want %v", cut, err, want)
		}
	}
}

func TestFrameLengthBound(t *testing.T) {
	if err := WriteFrame(io.Discard, FrameChunk, make([]byte, MaxFramePayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
	// A hostile length prefix must be rejected before allocation.
	hostile := []byte{FrameChunk, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length: %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodePayloadBounds(t *testing.T) {
	if _, _, _, err := DecodeChunkPayload(make([]byte, chunkHeaderLen-1)); err == nil {
		t.Fatal("short chunk payload accepted")
	}
	if _, _, err := DecodeSnapshotPayload(make([]byte, 7)); err == nil {
		t.Fatal("short snapshot payload accepted")
	}
}
