package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func nodes(names ...string) []Node {
	out := make([]Node, len(names))
	for i, n := range names {
		out[i] = Node{Name: n, URL: "http://" + n + ".invalid"}
	}
	return out
}

// shards mirrors the serve layer's shard identifiers: "type/zone".
func shards(n int) []string {
	types := []string{"m1.small", "m1.medium", "m1.large", "m1.xlarge", "c3.large", "r3.large"}
	zones := []string{"us-east-1a", "us-east-1b", "us-east-1c"}
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, types[i%len(types)]+"/"+zones[(i/len(types))%len(zones)])
	}
	return out
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology("a", nodes("a")); err == nil {
		t.Fatal("single-node topology accepted")
	}
	if _, err := NewTopology("c", nodes("a", "b")); err == nil {
		t.Fatal("self outside the node list accepted")
	}
	if _, err := NewTopology("a", nodes("a", "a")); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	if _, err := NewTopology("a", []Node{{Name: "a", URL: "u"}, {Name: "b"}}); err == nil {
		t.Fatal("node without URL accepted")
	}
	topo, err := NewTopology("b", nodes("b", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Self().Name != "b" {
		t.Fatalf("Self = %q, want b", topo.Self().Name)
	}
	if got := topo.Nodes(); got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("Nodes not sorted by name: %v", got)
	}
	if peers := topo.Peers(); len(peers) != 1 || peers[0].Name != "a" {
		t.Fatalf("Peers = %v, want [a]", peers)
	}
}

// TestOwnerPinned pins concrete assignments so any change to the hash
// function — which would silently re-route every running cluster — is a
// loud test failure. The values double as the cross-process determinism
// check: they were computed once and must reproduce everywhere.
func TestOwnerPinned(t *testing.T) {
	topo, err := NewTopology("a", nodes("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, sh := range shards(8) {
		got[sh] = topo.Owner(sh).Name
	}
	want := map[string]string{
		"m1.small/us-east-1a":  "a",
		"m1.medium/us-east-1a": "a",
		"m1.large/us-east-1a":  "a",
		"m1.xlarge/us-east-1a": "b",
		"c3.large/us-east-1a":  "b",
		"r3.large/us-east-1a":  "a",
		"m1.small/us-east-1b":  "b",
		"m1.medium/us-east-1b": "b",
	}
	for sh, owner := range want {
		if got[sh] != owner {
			t.Errorf("Owner(%q) = %q, want pinned %q (hash function changed?)", sh, got[sh], owner)
		}
	}
}

// TestOwnerPermutationInvariant is the first half of the stability
// property: the assignment must not depend on the order nodes were
// configured in.
func TestOwnerPermutationInvariant(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	base, err := NewTopology("a", nodes(names...))
	if err != nil {
		t.Fatal(err)
	}
	sh := shards(64)
	want := make(map[string]string, len(sh))
	for _, s := range sh {
		want[s] = base.Owner(s).Name
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := append([]string(nil), names...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		topo, err := NewTopology(perm[0], nodes(perm...))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sh {
			if got := topo.Owner(s).Name; got != want[s] {
				t.Fatalf("trial %d (order %v): Owner(%q) = %q, want %q", trial, perm, s, got, want[s])
			}
		}
	}
}

// TestOwnerMinimalMovement is the second half: adding a node moves only
// the shards the new node wins, and removing a node moves only the
// shards it held — every other assignment is untouched.
func TestOwnerMinimalMovement(t *testing.T) {
	sh := shards(240)
	two, err := NewTopology("a", nodes("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewTopology("a", nodes("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, s := range sh {
		before, after := two.Owner(s).Name, three.Owner(s).Name
		if before != after {
			if after != "c" {
				t.Fatalf("adding c moved %q from %q to %q — only moves onto the new node are allowed", s, before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("adding a third node attracted zero shards out of 240 — hash is not spreading")
	}
	if moved > len(sh)*2/3 {
		t.Fatalf("adding a third node moved %d/%d shards — far beyond the ~1/3 rendezvous bound", moved, len(sh))
	}

	// Removing a node (the failover view) relocates only its shards.
	dead := map[string]bool{"b": true}
	for _, s := range sh {
		before, after := two.Owner(s).Name, two.OwnerAlive(s, dead).Name
		if before != "b" && before != after {
			t.Fatalf("declaring b dead moved %q from %q to %q", s, before, after)
		}
		if after == "b" {
			t.Fatalf("dead node b still owns %q", s)
		}
	}
}

// TestOwnerCoversDefaultMarket asserts the 2-node split of the real
// default market keys is non-degenerate: both nodes own at least one
// shard, and every shard has exactly one owner. The key list mirrors
// cloud.DefaultCatalog x cloud.DefaultZones — the paper's four types,
// not a plausible-looking stand-in: the raw FNV score (before the
// avalanche finalizer) passed this test with made-up m1.* names while
// assigning every real shard to one node.
func TestOwnerCoversDefaultMarket(t *testing.T) {
	types := []string{"m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"}
	zones := []string{"us-east-1a", "us-east-1b", "us-east-1c"}
	topo, err := NewTopology("a", nodes("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, ty := range types {
		for _, z := range zones {
			count[topo.Owner(ty+"/"+z).Name]++
		}
	}
	if count["a"] == 0 || count["b"] == 0 {
		t.Fatalf("degenerate default-market split: %v", count)
	}
	if count["a"]+count["b"] != len(types)*len(zones) {
		t.Fatalf("split %v does not cover all %d shards", count, len(types)*len(zones))
	}
}

func TestOwnerAliveAllDead(t *testing.T) {
	topo, err := NewTopology("a", nodes("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	dead := map[string]bool{"a": true, "b": true}
	if got := topo.OwnerAlive("x", dead); got.Name != "" {
		t.Fatalf("OwnerAlive with every node dead = %+v, want zero Node", got)
	}
}

func BenchmarkOwner(b *testing.B) {
	topo, _ := NewTopology("a", nodes("a", "b", "c", "d"))
	sh := shards(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Owner(sh[i%len(sh)])
	}
}

func ExampleTopology_Owner() {
	topo, _ := NewTopology("a", []Node{
		{Name: "a", URL: "http://127.0.0.1:8377"},
		{Name: "b", URL: "http://127.0.0.1:8378"},
	})
	fmt.Println(topo.Owner("m1.small/us-east-1a").Name)
	// Output: a
}
