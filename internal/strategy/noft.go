package strategy

import (
	"context"
	"fmt"
	"sort"

	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
)

// NoFTParams shape the "noft" strategy.
type NoFTParams struct {
	// BidMultiple scales the on-demand price into the bid: 1.0 bids
	// exactly on-demand (interruptions possible but rare), higher values
	// buy more availability with money.
	BidMultiple float64
	// Replicas runs the application on that many distinct markets at
	// once: still no checkpoints, but one surviving replica finishes the
	// run.
	Replicas int
	// Slack is the deadline fraction reserved when sizing the backstop.
	Slack float64
}

// NoFT is ride-out provisioning in the spirit of arXiv:2003.13846: no
// checkpoints, no φ(P) cadence — the entire fault-tolerance budget is
// spent on a high bid instead, and an out-of-bid event loses all
// progress and falls back to the on-demand backstop. Against calm
// markets this wins exactly the checkpoint overhead sompi pays; against
// spike storms it re-runs from zero.
type NoFT struct {
	hosted
	Params NoFTParams
}

var noftSpecs = []ParamSpec{
	{Name: "bid_multiple", Type: "float", Default: 1.0, Min: 0.1, Max: 10, Doc: "bid as a multiple of the instance's on-demand price"},
	{Name: "replicas", Type: "int", Default: 1, Min: 1, Max: 4, Doc: "distinct markets run in parallel (no checkpoints either way)"},
	{Name: "slack", Type: "float", Default: 0.2, Min: 0, Max: 0.9, Doc: "deadline fraction reserved when sizing the backstop"},
}

func init() {
	register(Descriptor{
		Name:    "noft",
		Summary: "ride-out provisioning: high-bid spot, zero checkpoint overhead, on-demand fallback",
		Params:  noftSpecs,
		New: func(params map[string]float64) (Strategy, error) {
			p, err := decodeParams("noft", noftSpecs, params)
			if err != nil {
				return nil, err
			}
			return &NoFT{Params: NoFTParams{
				BidMultiple: p["bid_multiple"],
				Replicas:    int(p["replicas"]),
				Slack:       p["slack"],
			}}, nil
		},
	})
}

// Name implements Strategy.
func (s *NoFT) Name() string { return "noft" }

// Plan implements Strategy: rank every candidate market by the expected
// cost of running bare on it (bid = BidMultiple × on-demand, interval =
// T, i.e. never checkpoint), take the best Replicas distinct markets,
// back them with the cheapest deadline-feasible on-demand fleet.
func (s *NoFT) Plan(ctx context.Context, view cloud.MarketView, w Workload, d Deadline) (Plan, *Explain, error) {
	if err := ctx.Err(); err != nil {
		return Plan{}, nil, err
	}
	backstop, err := opt.SelectOnDemand(view.Catalog(), w.Profile, d.Hours, s.Params.Slack)
	if err != nil {
		return Plan{}, nil, err
	}

	type ranked struct {
		gp       model.GroupPlan
		cost     float64
		feasible bool
	}
	var cands []ranked
	for _, key := range s.keysOf(view) {
		it, ok := view.Catalog().ByName(key.Type)
		if !ok {
			continue
		}
		tr, ok := view.TraceFor(key)
		if !ok || tr.Len() == 0 {
			continue
		}
		g := model.NewGroup(w.Profile, it, key.Zone, tr)
		gp := model.GroupPlan{Group: g, Bid: s.Params.BidMultiple * it.OnDemand, Interval: float64(g.T)}
		est := model.Evaluate(model.Plan{Groups: []model.GroupPlan{gp}, Recovery: backstop})
		cands = append(cands, ranked{gp: gp, cost: est.Cost, feasible: est.Time <= d.Hours})
	}
	// Feasible before infeasible, then by cost; ties broken by key so the
	// ranking is deterministic whatever order keysOf produced.
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.feasible != b.feasible {
			return a.feasible
		}
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		return keyLess(a.gp.Group.Key, b.gp.Group.Key)
	})

	ex := &Explain{}
	plan := model.Plan{Recovery: backstop}
	for _, c := range cands {
		if len(plan.Groups) >= s.Params.Replicas {
			break
		}
		plan.Groups = append(plan.Groups, c.gp)
		ex.Notes = append(ex.Notes, fmt.Sprintf("replica on %s bid $%.3f/h (%.1f× on-demand), no checkpoints",
			c.gp.Group.Key, c.gp.Bid, s.Params.BidMultiple))
	}
	if len(plan.Groups) == 0 {
		ex.Notes = append(ex.Notes, "no usable spot market: pure backstop execution")
	}
	return Plan{Model: plan, Est: model.Evaluate(plan)}, ex, nil
}

func keyLess(a, b cloud.MarketKey) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Zone < b.Zone
}
