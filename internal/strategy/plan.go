package strategy

import (
	"context"

	"sompi/internal/cloud"
	"sompi/internal/opt"
)

// PlanOption configures one PlanWith call.
type PlanOption func(*planSettings)

type planSettings struct {
	name       string
	params     map[string]float64
	candidates []cloud.MarketKey
	reuse      *opt.ReuseCache
	explain    bool
}

// WithStrategy selects a registered strategy by name with the given
// parameters (nil = defaults). Omitting the option — or the empty name —
// plans with the default "sompi" strategy.
func WithStrategy(name string, params map[string]float64) PlanOption {
	return func(s *planSettings) { s.name, s.params = name, params }
}

// WithCandidates restricts planning to the given (type, zone) markets.
func WithCandidates(keys ...cloud.MarketKey) PlanOption {
	return func(s *planSettings) { s.candidates = keys }
}

// WithReuse shares an optimizer memoization cache across calls.
func WithReuse(r *opt.ReuseCache) PlanOption {
	return func(s *planSettings) { s.reuse = r }
}

// WithExplain asks for the strategy's decision trail.
func WithExplain() PlanOption {
	return func(s *planSettings) { s.explain = true }
}

// PlanWith is the one-call planning entry point the v1 facade builds on:
// resolve a strategy, configure host plumbing, plan. With no options it
// is exactly the default sompi plan.
func PlanWith(ctx context.Context, view cloud.MarketView, w Workload, d Deadline, opts ...PlanOption) (Plan, *Explain, error) {
	var s planSettings
	for _, o := range opts {
		o(&s)
	}
	st, err := New(s.name, s.params)
	if err != nil {
		return Plan{}, nil, err
	}
	Configure(st, s.candidates, s.reuse)
	if so, ok := st.(*SOMPI); ok {
		so.Explain = s.explain
	}
	return st.Plan(ctx, view, w, d)
}
