package strategy

import (
	"context"
	"fmt"
	"math"

	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
)

// AdaptiveCkptParams shape the "adaptive-ckpt" strategy.
type AdaptiveCkptParams struct {
	// Levels is the cadence search radius: each group tries intervals
	// φ·2^j for j in [-Levels, +Levels] (φ = the Young/Daly interval at
	// the group's bid) and keeps the joint-cost minimizer.
	Levels int
	// Kappa, GridLevels and MaxGroups parameterize the underlying
	// κ-subset search that picks the groups; zero = paper defaults.
	Kappa      int
	GridLevels int
	MaxGroups  int
}

// AdaptiveCkpt starts from the sompi plan and then re-tunes every
// group's checkpoint cadence per group: Young/Daly's φ(P) balances
// checkpoint overhead against one group's own MTTF, but in a replicated
// plan a group backed by healthy siblings can afford sparser
// checkpoints (its failures rarely decide the run) while the plan's
// last line of defense wants denser ones. A deterministic
// coordinate-descent pass per group over a geometric cadence grid,
// scored by the joint cost model, captures exactly that coupling.
type AdaptiveCkpt struct {
	hosted
	Params AdaptiveCkptParams
}

var adaptiveCkptSpecs = []ParamSpec{
	{Name: "levels", Type: "int", Default: 2, Min: 1, Max: 4, Doc: "cadence search radius: intervals φ·2^j, j ∈ [-levels, levels]"},
	{Name: "kappa", Type: "int", Default: 0, Min: 0, Max: 8, Doc: "circle groups per plan (0 = paper default 4)"},
	{Name: "grid_levels", Type: "int", Default: 0, Min: 0, Max: 12, Doc: "logarithmic bid-grid levels (0 = default 6)"},
	{Name: "max_groups", Type: "int", Default: 0, Min: 0, Max: 16, Doc: "candidate groups entering the subset search (0 = default 8)"},
}

func init() {
	register(Descriptor{
		Name:    "adaptive-ckpt",
		Summary: "sompi plan with per-group checkpoint cadence re-tuned against the joint cost model",
		Params:  adaptiveCkptSpecs,
		New: func(params map[string]float64) (Strategy, error) {
			p, err := decodeParams("adaptive-ckpt", adaptiveCkptSpecs, params)
			if err != nil {
				return nil, err
			}
			return &AdaptiveCkpt{Params: AdaptiveCkptParams{
				Levels:     int(p["levels"]),
				Kappa:      int(p["kappa"]),
				GridLevels: int(p["grid_levels"]),
				MaxGroups:  int(p["max_groups"]),
			}}, nil
		},
	})
}

// Name implements Strategy.
func (s *AdaptiveCkpt) Name() string { return "adaptive-ckpt" }

// Plan implements Strategy.
func (s *AdaptiveCkpt) Plan(ctx context.Context, view cloud.MarketView, w Workload, d Deadline) (Plan, *Explain, error) {
	res, err := opt.OptimizeContext(ctx, opt.Config{
		Profile:    w.Profile,
		Market:     view,
		Deadline:   d.Hours,
		Candidates: s.candidates,
		Kappa:      s.Params.Kappa,
		GridLevels: s.Params.GridLevels,
		MaxGroups:  s.Params.MaxGroups,
		Reuse:      s.reuse,
	})
	if err != nil {
		return Plan{}, nil, err
	}
	plan := res.Plan
	ex := &Explain{}

	// One deterministic coordinate-descent pass, group by group in plan
	// order: try the geometric cadence grid around the group's current
	// interval's φ anchor, keep the joint-cost minimizer that stays
	// deadline-feasible. Later groups see earlier groups' tuned cadence.
	for i := range plan.Groups {
		gp := plan.Groups[i]
		anchor := opt.Phi(gp.Group, gp.Bid)
		T := float64(gp.Group.T)
		bestInterval := gp.Interval
		best := model.Evaluate(plan)
		for j := -s.Params.Levels; j <= s.Params.Levels; j++ {
			interval := anchor * math.Pow(2, float64(j))
			// The replayer treats interval ≥ T as "never checkpoint"; keep
			// the candidate grid inside meaningful cadences.
			if interval > T {
				interval = T
			}
			if interval < math.Min(0.5, T) {
				interval = math.Min(0.5, T)
			}
			if interval == bestInterval {
				continue
			}
			plan.Groups[i].Interval = interval
			est := model.Evaluate(plan)
			if est.Time <= d.Hours && est.Cost < best.Cost {
				best, bestInterval = est, interval
			}
		}
		plan.Groups[i].Interval = bestInterval
		if bestInterval != gp.Interval {
			ex.Notes = append(ex.Notes, fmt.Sprintf("group %s cadence %.2fh → %.2fh (×%.2g of φ)",
				gp.Group.Key, gp.Interval, bestInterval, bestInterval/anchor))
		} else {
			ex.Notes = append(ex.Notes, fmt.Sprintf("group %s keeps φ cadence %.2fh", gp.Group.Key, gp.Interval))
		}
	}

	return Plan{
		Model:      plan,
		Est:        model.Evaluate(plan),
		Evals:      res.Evals,
		Pruned:     res.Pruned,
		SavedEvals: res.SavedEvals,
	}, ex, nil
}
