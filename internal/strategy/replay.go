package strategy

import (
	"context"
	"math"

	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
)

// Replay adapts a planning strategy to the replay engine so baselines,
// Monte Carlo evaluation and the tournament can execute it against price
// history. m must be the full market; history is the trailing window each
// (re)plan trains on (0 = DefaultHistory).
//
// The sompi strategy becomes the paper's Algorithm 1 adaptive loop — the
// same opt.Adaptive used everywhere else, so replays of the default
// strategy are bit-identical to the existing SOMPI baseline. Every other
// strategy plans once from history at the start point and runs that plan
// to completion, which is faithful to what those policies are: contract
// portfolios and ride-out provisioning commit up front.
func Replay(s Strategy, m cloud.MarketView, history float64) replay.Strategy {
	if history <= 0 {
		history = DefaultHistory
	}
	if so, ok := s.(*SOMPI); ok {
		cfg := so.config(m, Workload{}, Deadline{})
		cfg.Explain = false // per-window explain trails would be discarded
		return &opt.Adaptive{Base: cfg, History: history, Label: so.Name()}
	}
	return replay.FixedPlan{
		Label: s.Name(),
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			lo := math.Max(0, start-history)
			view := m.Window(lo, start-lo)
			p, _, err := s.Plan(context.Background(), view, Workload{Profile: r.Profile}, Deadline{Hours: deadline})
			if err != nil {
				return model.Plan{}, err
			}
			return p.Model, nil
		},
	}
}
