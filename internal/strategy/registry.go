package strategy

import (
	"fmt"
	"math"

	"sompi/internal/opt"
)

// ParamSpec is one strategy parameter's wire schema: GET /v1/strategies
// serves these so clients can discover and validate parameters without
// guessing. All parameters travel as JSON numbers; Type documents how
// the strategy interprets the number.
type ParamSpec struct {
	// Name is the parameter key in a strategy_params object.
	Name string `json:"name"`
	// Type is "float", "int" or "bool" (bools: 0 = false, nonzero = true).
	Type string `json:"type"`
	// Default is the value used when the parameter is omitted.
	Default float64 `json:"default"`
	// Min and Max bound accepted values (inclusive).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// Descriptor is one registry entry: a named strategy constructor plus
// its parameter schema.
type Descriptor struct {
	// Name is the registry key ("sompi", "portfolio", ...).
	Name string `json:"name"`
	// Summary is a one-line description of the policy.
	Summary string `json:"summary"`
	// Params is the strategy's parameter schema.
	Params []ParamSpec `json:"params"`
	// New builds the strategy from a parameter map. Missing keys take
	// their defaults; unknown keys and out-of-range values are rejected
	// with an opt.ErrInvalidConfig-wrapped error.
	New func(params map[string]float64) (Strategy, error) `json:"-"`
}

// DefaultName is the strategy an empty name resolves to; Names()[0] is
// always this strategy regardless of init order.
const DefaultName = "sompi"

// registry holds the built-in strategies with DefaultName pinned first.
// The set is fixed at init time: metric label sets and cache namespaces
// derive from it, so it must be bounded and immutable at runtime.
var registry []Descriptor

// register adds a descriptor at init time, refusing duplicates. The
// default strategy is moved to the front so Names()[0] is stable no
// matter which file's init ran first (Go inits files alphabetically).
func register(d Descriptor) {
	for _, have := range registry {
		if have.Name == d.Name {
			panic("strategy: duplicate registration of " + d.Name)
		}
	}
	if d.Name == DefaultName {
		registry = append([]Descriptor{d}, registry...)
		return
	}
	registry = append(registry, d)
}

// List returns the registered strategies, the default first. The slice is a copy; descriptors are shared.
func List() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered strategy names, the default first.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// Lookup finds a descriptor by exact name. The empty name resolves to
// DefaultName.
func Lookup(name string) (Descriptor, bool) {
	if name == "" {
		name = DefaultName
	}
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// New builds a named strategy with the given parameters (nil = all
// defaults). Unknown names are reported as ErrUnknownStrategy; bad
// parameters as opt.ErrInvalidConfig.
func New(name string, params map[string]float64) (Strategy, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownStrategy, name, Names())
	}
	return d.New(params)
}

// decodeParams validates params against specs and returns the effective
// values with defaults applied. The parameter surface is flat numeric on
// purpose: it survives JSON round-trips exactly and keeps cache keys and
// report rows canonical.
func decodeParams(strategyName string, specs []ParamSpec, params map[string]float64) (map[string]float64, error) {
	out := make(map[string]float64, len(specs))
	for _, sp := range specs {
		out[sp.Name] = sp.Default
	}
	for k, v := range params {
		sp, ok := findSpec(specs, k)
		if !ok {
			return nil, fmt.Errorf("%w: strategy %q has no parameter %q", opt.ErrInvalidConfig, strategyName, k)
		}
		if math.IsNaN(v) || v < sp.Min || v > sp.Max {
			return nil, fmt.Errorf("%w: strategy %q parameter %q = %v outside [%g, %g]",
				opt.ErrInvalidConfig, strategyName, k, v, sp.Min, sp.Max)
		}
		if sp.Type == "int" && v != math.Trunc(v) {
			return nil, fmt.Errorf("%w: strategy %q parameter %q = %v is not an integer",
				opt.ErrInvalidConfig, strategyName, k, v)
		}
		out[k] = v
	}
	return out, nil
}

func findSpec(specs []ParamSpec, name string) (ParamSpec, bool) {
	for _, sp := range specs {
		if sp.Name == name {
			return sp, true
		}
	}
	return ParamSpec{}, false
}
