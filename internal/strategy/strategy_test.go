package strategy_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/strategy"
)

const (
	testHours = 200
	testSeed  = 7
)

func testView(t *testing.T) cloud.MarketView {
	t.Helper()
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), testHours, testSeed)
	return m.Window(0, strategy.DefaultHistory)
}

func testDeadline(profile app.Profile, factor float64) strategy.Deadline {
	return strategy.Deadline{Hours: opt.FastestOnDemand(nil, profile).T * factor}
}

var smallKnobs = map[string]float64{"kappa": 2, "grid_levels": 3, "max_groups": 3}

func TestRegistry(t *testing.T) {
	names := strategy.Names()
	if len(names) < 4 {
		t.Fatalf("only %d strategies registered: %v", len(names), names)
	}
	if names[0] != strategy.DefaultName {
		t.Fatalf("Names()[0] = %q, want %q", names[0], strategy.DefaultName)
	}
	for _, want := range []string{"sompi", "portfolio", "noft", "adaptive-ckpt"} {
		if _, ok := strategy.Lookup(want); !ok {
			t.Fatalf("strategy %q not registered (have %v)", want, names)
		}
	}
	// Empty name resolves to the default.
	d, ok := strategy.Lookup("")
	if !ok || d.Name != strategy.DefaultName {
		t.Fatalf(`Lookup("") = %+v, %v`, d, ok)
	}
	// Descriptors and built strategies agree on the name.
	for _, d := range strategy.List() {
		st, err := strategy.New(d.Name, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", d.Name, err)
		}
		if st.Name() != d.Name {
			t.Fatalf("New(%q).Name() = %q", d.Name, st.Name())
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := strategy.New("no-such-strategy", nil); !errors.Is(err, strategy.ErrUnknownStrategy) {
		t.Fatalf("unknown name: %v, want ErrUnknownStrategy", err)
	}
	cases := []struct {
		name   string
		params map[string]float64
	}{
		{"sompi", map[string]float64{"bogus": 1}},                 // unknown key
		{"sompi", map[string]float64{"kappa": 99}},                // out of range
		{"sompi", map[string]float64{"kappa": 1.5}},               // non-integer int
		{"portfolio", map[string]float64{"contracts": 0}},         // below min
		{"portfolio", map[string]float64{"high_quantile": 1.5}},   // above max
		{"noft", map[string]float64{"replicas": 2.5}},             // non-integer int
		{"adaptive-ckpt", map[string]float64{"levels": -1}},       // below min
		{"adaptive-ckpt", map[string]float64{"interval_mult": 1}}, // unknown key
	}
	for _, c := range cases {
		if _, err := strategy.New(c.name, c.params); !errors.Is(err, opt.ErrInvalidConfig) {
			t.Errorf("New(%q, %v): err = %v, want ErrInvalidConfig", c.name, c.params, err)
		}
	}
	// low_quantile above high_quantile is a constructor-level rejection.
	if _, err := strategy.New("portfolio", map[string]float64{"low_quantile": 0.9, "high_quantile": 0.7}); err == nil {
		t.Errorf("portfolio low>high accepted")
	}
}

// TestSOMPIMatchesOptimizer is the bit-identity contract: the wrapped
// strategy must produce exactly the plan OptimizeContext produces for the
// equivalent config.
func TestSOMPIMatchesOptimizer(t *testing.T) {
	view := testView(t)
	profile, _ := app.ByName("BT")
	d := testDeadline(profile, 2)

	st, err := strategy.New("sompi", smallKnobs)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := st.Plan(context.Background(), view, strategy.Workload{Profile: profile}, d)
	if err != nil {
		t.Fatalf("strategy plan: %v", err)
	}
	res, err := opt.OptimizeContext(context.Background(), opt.Config{
		Profile: profile, Market: view, Deadline: d.Hours,
		Kappa: 2, GridLevels: 3, MaxGroups: 3,
	})
	if err != nil {
		t.Fatalf("library plan: %v", err)
	}
	a, _ := json.Marshal(p.Model)
	b, _ := json.Marshal(res.Plan)
	if string(a) != string(b) {
		t.Fatalf("plans diverged:\n strategy: %s\n library:  %s", a, b)
	}
	if p.Est != res.Est {
		t.Fatalf("estimates diverged: %+v vs %+v", p.Est, res.Est)
	}
}

// TestStrategiesPlanValidDeterministic runs every registered strategy
// twice on the same inputs: plans must validate, meet the deadline in
// expectation, and be deterministic.
func TestStrategiesPlanValidDeterministic(t *testing.T) {
	view := testView(t)
	profile, _ := app.ByName("BT")
	d := testDeadline(profile, 2)
	params := map[string]map[string]float64{
		"sompi":         smallKnobs,
		"adaptive-ckpt": smallKnobs,
	}

	for _, name := range strategy.Names() {
		st, err := strategy.New(name, params[name])
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		p1, ex, err := st.Plan(context.Background(), view, strategy.Workload{Profile: profile}, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p1.Model.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", name, err)
		}
		if p1.Est.Time > d.Hours {
			t.Errorf("%s: expected time %.2fh misses deadline %.2fh", name, p1.Est.Time, d.Hours)
		}
		if p1.Est.Cost <= 0 {
			t.Errorf("%s: non-positive expected cost %v", name, p1.Est.Cost)
		}
		_ = ex // explain payloads are optional; notes are checked per-strategy below

		st2, _ := strategy.New(name, params[name])
		p2, _, err := st2.Plan(context.Background(), view, strategy.Workload{Profile: profile}, d)
		if err != nil {
			t.Fatalf("%s second plan: %v", name, err)
		}
		a, _ := json.Marshal(p1.Model)
		b, _ := json.Marshal(p2.Model)
		if string(a) != string(b) {
			t.Fatalf("%s: non-deterministic plan:\n 1: %s\n 2: %s", name, a, b)
		}
	}
}

// TestAdaptiveCkptRetunesCadence checks the cadence pass keeps the plan
// feasible and never worsens the joint expected cost versus the same base
// search.
func TestAdaptiveCkptRetunesCadence(t *testing.T) {
	view := testView(t)
	profile, _ := app.ByName("FT")
	d := testDeadline(profile, 2)

	base, err := strategy.New("sompi", smallKnobs)
	if err != nil {
		t.Fatal(err)
	}
	bp, _, err := base.Plan(context.Background(), view, strategy.Workload{Profile: profile}, d)
	if err != nil {
		t.Fatal(err)
	}

	ck, err := strategy.New("adaptive-ckpt", smallKnobs)
	if err != nil {
		t.Fatal(err)
	}
	cp, ex, err := ck.Plan(context.Background(), view, strategy.Workload{Profile: profile}, d)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Est.Cost > bp.Est.Cost*(1+1e-9) {
		t.Fatalf("cadence pass worsened expected cost: %.4f > %.4f", cp.Est.Cost, bp.Est.Cost)
	}
	if cp.Est.Time > d.Hours {
		t.Fatalf("cadence pass broke the deadline: %.2fh > %.2fh", cp.Est.Time, d.Hours)
	}
	if ex == nil || len(ex.Notes) == 0 {
		t.Fatalf("adaptive-ckpt explain notes missing")
	}
}

func TestScenarioCatalog(t *testing.T) {
	names := strategy.ScenarioNames()
	if len(names) < 4 {
		t.Fatalf("only %d scenarios: %v", len(names), names)
	}
	if _, err := strategy.NewScenario("no-such-scenario"); !errors.Is(err, strategy.ErrUnknownScenario) {
		t.Fatalf("unknown scenario: %v", err)
	}
	// Empty resolves to realistic.
	sc, err := strategy.NewScenario("")
	if err != nil || sc.Name != "realistic" {
		t.Fatalf(`NewScenario("") = %+v, %v`, sc, err)
	}

	// The realistic scenario must reproduce GenerateMarket exactly; the
	// others must produce a different market from the same seed.
	ref := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), testHours, testSeed)
	refKey := marketFingerprint(ref)
	for _, name := range names {
		sc, err := strategy.NewScenario(name)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", name, err)
		}
		m := sc.Market(testHours, testSeed)
		fp := marketFingerprint(m)
		if name == "realistic" && fp != refKey {
			t.Fatalf("realistic scenario market differs from GenerateMarket")
		}
		// Same scenario, same seed: identical market.
		if fp2 := marketFingerprint(sc.Market(testHours, testSeed)); fp2 != fp {
			t.Fatalf("scenario %q market not deterministic", name)
		}
	}
	// At least one scenario must actually change the prices.
	storm, _ := strategy.NewScenario("spike-storm")
	if marketFingerprint(storm.Market(testHours, testSeed)) == refKey {
		t.Fatalf("spike-storm scenario produced the realistic market")
	}
}

// marketFingerprint hashes a market's prices into a comparable string.
func marketFingerprint(m cloud.MarketView) string {
	var sum float64
	n := 0
	for _, k := range m.Keys() {
		tr := m.Trace(k.Type, k.Zone)
		for i, p := range tr.Prices {
			sum += p * float64(i%97+1)
			n++
		}
	}
	b, _ := json.Marshal(struct {
		S float64
		N int
	}{sum, n})
	return string(b)
}
