package strategy

import (
	"errors"
	"fmt"

	"sompi/internal/cloud"
	"sompi/internal/replay"
	"sompi/internal/stats"
	"sompi/internal/trace"
)

// ErrUnknownScenario reports a scenario name absent from the catalog.
var ErrUnknownScenario = errors.New("strategy: unknown scenario")

// Scenario is a named market-and-billing regime to evaluate strategies
// under. Each scenario owns a deterministic market generator (a variation
// of cloud.GenerateMarket's regime-switching model) plus the billing and
// interruption-notice rules the replayer should apply. The catalog is
// fixed at init time, like the strategy registry: tournaments, metric
// labels and reports all enumerate it.
type Scenario struct {
	// Name is the catalog key ("realistic", "spike-storm", ...).
	Name string `json:"name"`
	// Summary is a one-line description of the regime.
	Summary string `json:"summary"`
	// Billing is the spot accounting rule replays use.
	Billing replay.SpotBilling `json:"billing"`
	// NoticeHours is the advance interruption warning (0 = none; 1.0/30
	// models EC2's 2-minute notice).
	NoticeHours float64 `json:"notice_hours,omitempty"`

	// Market-shape knobs, applied on top of cloud.ModelFor:

	// RateScale multiplies every market's volatile-episode rate
	// (0 is treated as 1 = unchanged).
	RateScale float64 `json:"rate_scale,omitempty"`
	// SpikeShift is added to every market's log-normal spike location
	// parameter (μ): positive = taller repricing spikes.
	SpikeShift float64 `json:"spike_shift,omitempty"`
	// QuietZone, if non-empty, silences that zone's volatile regime
	// entirely and halves its calm jitter.
	QuietZone string `json:"quiet_zone,omitempty"`
}

// scenarios is the built-in catalog in registration order. "realistic"
// generates traces identical to cloud.GenerateMarket for the same seed —
// the tournament's anchor cell.
var scenarios = []Scenario{
	{
		Name:    "optimistic",
		Summary: "calm 2014 market: rare, shallow repricing episodes; hourly billing",
		Billing: replay.BillingHourly, RateScale: 0.25, SpikeShift: -0.5,
	},
	{
		Name:    "realistic",
		Summary: "the paper's market model as-is; hourly billing with out-of-bid refunds",
		Billing: replay.BillingHourly,
	},
	{
		Name:    "spike-storm",
		Summary: "turbulent market: 3x episode rate and taller spikes; hourly billing",
		Billing: replay.BillingHourly, RateScale: 3, SpikeShift: 0.6,
	},
	{
		Name:    "quiet-az",
		Summary: "one availability zone (us-east-1a) never spikes — rewards zone selection",
		Billing: replay.BillingHourly, QuietZone: cloud.ZoneA,
	},
	{
		Name:    "per-second",
		Summary: "the realistic market under modern per-second billing (no hour rounding, no refunds)",
		Billing: replay.BillingContinuous,
	},
	{
		Name:    "notice-2m",
		Summary: "per-second billing plus a 2-minute interruption notice usable for emergency checkpoints",
		Billing: replay.BillingContinuous, NoticeHours: 1.0 / 30,
	},
}

// Scenarios returns the scenario catalog in registration order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the catalog's names in registration order.
func ScenarioNames() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.Name
	}
	return out
}

// LookupScenario finds a scenario by exact name; the empty name resolves
// to "realistic".
func LookupScenario(name string) (Scenario, bool) {
	if name == "" {
		name = "realistic"
	}
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// NewScenario resolves a name or reports ErrUnknownScenario.
func NewScenario(name string) (Scenario, error) {
	s, ok := LookupScenario(name)
	if !ok {
		return Scenario{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownScenario, name, ScenarioNames())
	}
	return s, nil
}

// Market synthesizes the scenario's price history for the default catalog
// and zones, deterministically from seed. It mirrors
// cloud.GenerateMarket's iteration and stream-splitting discipline exactly
// so that a scenario with no shape knobs set reproduces its traces
// bit-for-bit from the same seed.
func (s Scenario) Market(hours float64, seed uint64) *cloud.Market {
	cat := cloud.DefaultCatalog()
	zones := cloud.DefaultZones()
	root := stats.NewRNG(seed)
	traces := make(map[cloud.MarketKey]*trace.Trace)
	for _, it := range cat {
		for _, z := range zones {
			m := cloud.ModelFor(it, z)
			if s.RateScale > 0 {
				m.VolatileRate *= s.RateScale
			}
			m.SpikeMu += s.SpikeShift
			if s.QuietZone != "" && z == s.QuietZone {
				m.VolatileRate = 0
				m.Jitter /= 2
			}
			traces[cloud.MarketKey{Type: it.Name, Zone: z}] = m.Generate(root.Split(), hours)
		}
	}
	return cloud.NewMarket(cat, zones, traces)
}
