package strategy

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/stats"
)

// ReportSchemaVersion identifies the tournament report's JSON shape.
// Bump it on any field change; CI's tournament-smoke step fails when the
// emitted schema no longer matches what it expects.
const ReportSchemaVersion = 1

// TournamentConfig selects the grid a tournament evaluates: every
// (strategy, workload, deadline factor, scenario) cell is Monte
// Carlo-replayed Runs times. Zero-valued fields take defaults that cover
// the whole built-in catalog.
type TournamentConfig struct {
	// Strategies are registry names (default: all registered).
	Strategies []string `json:"strategies"`
	// Scenarios are catalog names (default: all scenarios).
	Scenarios []string `json:"scenarios"`
	// Workloads are NPB application names (default: BT and FT).
	Workloads []string `json:"workloads"`
	// DeadlineFactors multiply each workload's fastest on-demand
	// execution time into a deadline (default: 1.5 and 3).
	DeadlineFactors []float64 `json:"deadline_factors"`
	// Runs is the number of Monte Carlo replications per cell.
	Runs int `json:"runs"`
	// Hours is the generated market length per scenario.
	Hours float64 `json:"hours"`
	// History is the training window ahead of each start point.
	History float64 `json:"history"`
	// Seed drives every random choice; a fixed seed fixes the report.
	Seed uint64 `json:"seed"`
	// Workers sizes the cell worker pool (0 = GOMAXPROCS). The report is
	// identical at every worker count.
	Workers int `json:"-"`
	// Params optionally overrides strategy parameters by strategy name.
	Params map[string]map[string]float64 `json:"params,omitempty"`
}

func (c TournamentConfig) withDefaults() TournamentConfig {
	if len(c.Strategies) == 0 {
		c.Strategies = Names()
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = ScenarioNames()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"BT", "FT"}
	}
	if len(c.DeadlineFactors) == 0 {
		c.DeadlineFactors = []float64{1.5, 3}
	}
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.Hours <= 0 {
		c.Hours = 480
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Cell is one grid point's Monte Carlo outcome.
type Cell struct {
	Strategy       string  `json:"strategy"`
	Scenario       string  `json:"scenario"`
	Workload       string  `json:"workload"`
	DeadlineFactor float64 `json:"deadline_factor"`
	DeadlineHours  float64 `json:"deadline_hours"`
	// CostMean/CostStd/HoursMean summarize the replications.
	CostMean  float64 `json:"cost_mean"`
	CostStd   float64 `json:"cost_std"`
	HoursMean float64 `json:"hours_mean"`
	// NormCost is CostMean normalized by the fastest on-demand fleet's
	// full-run cost — the paper's Baseline normalization.
	NormCost float64 `json:"norm_cost"`
	// MissRate is the deadline-miss fraction; Score folds it into the
	// ranking objective (NormCost + 10×MissRate).
	MissRate float64 `json:"miss_rate"`
	Score    float64 `json:"score"`
	Runs     int     `json:"runs"`
	Failures int     `json:"failures"`
}

// Ranking is one strategy's aggregate standing across all cells.
type Ranking struct {
	Rank         int     `json:"rank"`
	Strategy     string  `json:"strategy"`
	MeanScore    float64 `json:"mean_score"`
	MeanNormCost float64 `json:"mean_norm_cost"`
	MeanMissRate float64 `json:"mean_miss_rate"`
	Cells        int     `json:"cells"`
}

// Report is a complete tournament result. For a fixed config it is
// byte-identical across runs and worker counts.
type Report struct {
	SchemaVersion int              `json:"schema_version"`
	Config        TournamentConfig `json:"config"`
	Cells         []Cell           `json:"cells"`
	Rankings      []Ranking        `json:"rankings"`
}

// Tournament Monte Carlo-evaluates every configured (strategy, workload,
// deadline, scenario) cell and ranks the strategies by mean score.
//
// Determinism: cells are enumerated in a canonical scenario-major order;
// each scenario's market derives from stats.StreamRNG(Seed, scenario
// index) and each cell's replication seed from StreamRNG(Seed, cell
// index + 1<<16), so the report depends only on the config — never on
// worker scheduling. Workers parallelize whole cells and write into a
// position-indexed slice.
func Tournament(ctx context.Context, cfg TournamentConfig) (*Report, error) {
	cfg = cfg.withDefaults()

	// Resolve everything up front so a misconfigured grid fails fast.
	type cellJob struct {
		idx                int
		strategy, scenario string
		workload           string
		factor             float64
	}
	var jobs []cellJob
	for _, sc := range cfg.Scenarios {
		if _, err := NewScenario(sc); err != nil {
			return nil, err
		}
		for _, wl := range cfg.Workloads {
			if _, ok := app.ByName(wl); !ok {
				return nil, fmt.Errorf("%w: unknown workload %q", opt.ErrInvalidConfig, wl)
			}
			for _, f := range cfg.DeadlineFactors {
				if f <= 0 {
					return nil, fmt.Errorf("%w: non-positive deadline factor %v", opt.ErrInvalidConfig, f)
				}
				for _, st := range cfg.Strategies {
					if _, err := New(st, cfg.Params[st]); err != nil {
						return nil, err
					}
					jobs = append(jobs, cellJob{
						idx: len(jobs), strategy: st, scenario: sc, workload: wl, factor: f,
					})
				}
			}
		}
	}

	// One market per scenario, shared by all its cells.
	markets := make(map[string]*marketBundle, len(cfg.Scenarios))
	for si, name := range cfg.Scenarios {
		sc, _ := LookupScenario(name)
		markets[name] = &marketBundle{
			scenario: sc,
			market:   sc.Market(cfg.Hours, stats.StreamRNG(cfg.Seed, uint64(si)).Uint64()),
		}
	}

	cells := make([]Cell, len(jobs))
	jobCh := make(chan cellJob)
	errOnce := sync.Once{}
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				cell, err := runCell(ctx, cfg, markets[job.scenario], job.strategy, job.workload, job.factor, uint64(job.idx))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				cells[job.idx] = cell
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return &Report{
		SchemaVersion: ReportSchemaVersion,
		Config:        cfg,
		Cells:         cells,
		Rankings:      rank(cfg.Strategies, cells),
	}, nil
}

type marketBundle struct {
	scenario Scenario
	market   cloud.MarketView
}

// runCell Monte Carlo-replays one grid point.
func runCell(ctx context.Context, cfg TournamentConfig, mb *marketBundle, stName, wlName string, factor float64, cellIdx uint64) (Cell, error) {
	profile, _ := app.ByName(wlName)
	fastest := opt.FastestOnDemand(nil, profile)
	deadline := fastest.T * factor

	st, err := New(stName, cfg.Params[stName])
	if err != nil {
		return Cell{}, err
	}
	runner := &replay.Runner{
		Market:      mb.market,
		Profile:     profile,
		Billing:     mb.scenario.Billing,
		NoticeHours: mb.scenario.NoticeHours,
	}
	mc, err := replay.MonteCarloContext(ctx, Replay(st, mb.market, cfg.History), runner, replay.MCConfig{
		Deadline: deadline,
		Runs:     cfg.Runs,
		History:  cfg.History,
		// Cell seeds live in their own stream block so they can never
		// collide with the scenario market seeds.
		Seed: stats.StreamRNG(cfg.Seed, cellIdx+1<<16).Uint64(),
		// The cell pool owns the parallelism; serial replications inside
		// a cell keep per-cell wall time proportional to Runs.
		Workers: 1,
	})
	if err != nil {
		return Cell{}, fmt.Errorf("cell %s/%s/%s×%g: %w", stName, mb.scenario.Name, wlName, factor, err)
	}

	cell := Cell{
		Strategy:       stName,
		Scenario:       mb.scenario.Name,
		Workload:       wlName,
		DeadlineFactor: factor,
		DeadlineHours:  deadline,
		CostMean:       mc.Cost.Mean(),
		CostStd:        mc.Cost.Std(),
		HoursMean:      mc.Hours.Mean(),
		MissRate:       mc.MissRate(),
		Runs:           mc.Runs,
		Failures:       mc.Failures,
	}
	if base := fastest.FullCost(); base > 0 {
		cell.NormCost = cell.CostMean / base
	}
	cell.Score = cell.NormCost + 10*cell.MissRate
	return cell, nil
}

// rank aggregates cells per strategy and orders by mean score ascending,
// ties broken by name.
func rank(strategies []string, cells []Cell) []Ranking {
	byName := make(map[string]*Ranking, len(strategies))
	order := make([]*Ranking, 0, len(strategies))
	for _, s := range strategies {
		r := &Ranking{Strategy: s}
		byName[s] = r
		order = append(order, r)
	}
	for _, c := range cells {
		r := byName[c.Strategy]
		r.MeanScore += c.Score
		r.MeanNormCost += c.NormCost
		r.MeanMissRate += c.MissRate
		r.Cells++
	}
	for _, r := range order {
		if r.Cells > 0 {
			n := float64(r.Cells)
			r.MeanScore /= n
			r.MeanNormCost /= n
			r.MeanMissRate /= n
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].MeanScore != order[j].MeanScore {
			return order[i].MeanScore < order[j].MeanScore
		}
		return order[i].Strategy < order[j].Strategy
	})
	out := make([]Ranking, len(order))
	for i, r := range order {
		r.Rank = i + 1
		out[i] = *r
	}
	return out
}

// Markdown renders the report as the TOURNAMENT.md document: the ranking
// table first, then every cell.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# Strategy tournament\n\n")
	fmt.Fprintf(&b, "Schema v%d — seed %d, %d runs/cell, %gh markets, %d cells.\n",
		r.SchemaVersion, r.Config.Seed, r.Config.Runs, r.Config.Hours, len(r.Cells))
	b.WriteString("Score = normalized cost + 10 × deadline-miss rate (lower is better).\n\n")

	b.WriteString("## Ranking\n\n")
	b.WriteString("| rank | strategy | mean score | mean norm. cost | mean miss rate | cells |\n")
	b.WriteString("|-----:|----------|-----------:|----------------:|---------------:|------:|\n")
	for _, rk := range r.Rankings {
		fmt.Fprintf(&b, "| %d | %s | %.4f | %.4f | %.3f | %d |\n",
			rk.Rank, rk.Strategy, rk.MeanScore, rk.MeanNormCost, rk.MeanMissRate, rk.Cells)
	}

	b.WriteString("\n## Cells\n\n")
	b.WriteString("| scenario | workload | deadline | strategy | cost $ | norm. | miss | runs | errors |\n")
	b.WriteString("|----------|----------|---------:|----------|-------:|------:|-----:|-----:|-------:|\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "| %s | %s | %.1fh (×%g) | %s | %.0f ±%.0f | %.3f | %.2f | %d | %d |\n",
			c.Scenario, c.Workload, c.DeadlineHours, c.DeadlineFactor, c.Strategy,
			c.CostMean, c.CostStd, c.NormCost, c.MissRate, c.Runs, c.Failures)
	}
	return b.String()
}
