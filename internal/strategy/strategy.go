// Package strategy turns the planner from one algorithm into a pluggable
// subsystem: a Strategy plans one application run against a market view,
// and a name-keyed registry of typed-parameter strategies lets callers —
// the v1 facade, the sompid service, the tournament runner — select a
// policy by name.
//
// The paper's own policy family (replicated execution with checkpoints
// and F = φ(P)) is registered as "sompi" and stays the default: its plans
// are byte-identical to a direct opt.OptimizeContext call with the same
// knobs. The rivals named in the paper's related work ride alongside it:
// "portfolio" contract bidding (a mix of (spot market, bid-price) options
// with an on-demand backstop, arXiv:1811.12901 style), "noft" ride-out
// provisioning (no checkpoint overhead, arXiv:2003.13846 style), and
// "adaptive-ckpt" per-group checkpoint cadence re-tuned against the joint
// cost model instead of Young/Daly alone.
package strategy

import (
	"context"
	"errors"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
)

// ErrUnknownStrategy reports a strategy name absent from the registry.
// The sompid service maps it to a 400 in the v1 error vocabulary.
var ErrUnknownStrategy = errors.New("strategy: unknown strategy")

// DefaultHistory is how many hours of trailing price history strategies
// train on when the caller does not say (see baselines.History).
const DefaultHistory = 96

// Workload is the application a strategy plans for.
type Workload struct {
	// Profile is the TAU-style resource profile of the application (or of
	// its residual work, when re-planning mid-run).
	Profile app.Profile
}

// Deadline is the completion constraint, relative to planning time.
type Deadline struct {
	// Hours is the wall-clock budget for the remaining work.
	Hours float64
}

// Plan is a strategy's answer: an executable hybrid plan plus the cost
// model's evaluation of it and — for strategies that run the κ-subset
// search — the search-effort counters.
type Plan struct {
	// Model is the executable spot/on-demand plan.
	Model model.Plan
	// Est is the analytic cost model's evaluation of Model.
	Est model.Estimate
	// Evals, Pruned and SavedEvals report optimizer search effort; zero
	// for strategies that never enter the κ-subset search.
	Evals, Pruned, SavedEvals int
	// WarmRetried reports that an inadmissible warm-start seed was
	// detected and the search re-ran cold (sompi only).
	WarmRetried bool
}

// Explain is a strategy's decision trail.
type Explain struct {
	// Notes are strategy-level decisions in order (which markets were
	// picked for which contract rung, which cadence multiplier won, ...).
	Notes []string `json:"notes,omitempty"`
	// Opt is the optimizer's own trail, present when the strategy ran the
	// κ-subset search with explanation enabled.
	Opt *opt.Explain `json:"opt,omitempty"`
}

// Strategy plans one application run against the market history in view.
// Implementations must read view only (no side effects), must not peek
// past view's frontier, and must be deterministic: the same view,
// workload and deadline always produce the same plan.
type Strategy interface {
	// Name is the registry name the strategy was built under.
	Name() string
	// Plan builds an executable plan for w completing within d, training
	// on the price history in view. The returned Explain may be nil when
	// the strategy has nothing beyond the plan to say.
	Plan(ctx context.Context, view cloud.MarketView, w Workload, d Deadline) (Plan, *Explain, error)
}

// hosted carries the host-side plumbing a serving layer may hand a
// strategy: a candidate-market restriction and the optimizer's
// cross-optimization reuse cache. Strategies embed it; Configure fills
// it. Neither field changes what plan a strategy picks for a given
// candidate universe — Reuse is a pure memoization.
type hosted struct {
	candidates []cloud.MarketKey
	reuse      *opt.ReuseCache
}

func (h *hosted) setHost(candidates []cloud.MarketKey, reuse *opt.ReuseCache) {
	h.candidates = candidates
	h.reuse = reuse
}

// keysOf reports the strategy's candidate universe over view: the
// configured restriction, or every key of the view.
func (h *hosted) keysOf(view cloud.MarketView) []cloud.MarketKey {
	if len(h.candidates) > 0 {
		return h.candidates
	}
	return view.Keys()
}

// hostAware is the optional interface Configure drives.
type hostAware interface {
	setHost(candidates []cloud.MarketKey, reuse *opt.ReuseCache)
}

// Configure hands host-side plumbing to strategies that accept it: a
// candidate (type, zone) restriction and a shared optimizer reuse cache.
// Strategies without host plumbing ignore the call.
func Configure(s Strategy, candidates []cloud.MarketKey, reuse *opt.ReuseCache) {
	if h, ok := s.(hostAware); ok {
		h.setHost(candidates, reuse)
	}
}
