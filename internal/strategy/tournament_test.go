package strategy_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"sompi/internal/strategy"
)

// smallTournament is a seconds-scale grid covering every strategy and
// every scenario: one workload, one deadline, few replications, reduced
// search knobs.
func smallTournament(workers int) strategy.TournamentConfig {
	return strategy.TournamentConfig{
		Workloads:       []string{"BT"},
		DeadlineFactors: []float64{2},
		Runs:            3,
		Hours:           testHours,
		Seed:            testSeed,
		Workers:         workers,
		Params: map[string]map[string]float64{
			"sompi":         smallKnobs,
			"adaptive-ckpt": smallKnobs,
		},
	}
}

// TestTournamentDeterministic is the ranking-report contract: a fixed
// seed produces byte-identical reports across repeated runs and across
// worker counts. Run with -race to exercise the cell worker pool.
func TestTournamentDeterministic(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 1, 3, 8} {
		rep, err := strategy.Tournament(context.Background(), smallTournament(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d report differs:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestTournamentReportShape checks the grid covers every (strategy,
// scenario) pairing, cells are finite, and rankings aggregate them.
func TestTournamentReportShape(t *testing.T) {
	rep, err := strategy.Tournament(context.Background(), smallTournament(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != strategy.ReportSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, strategy.ReportSchemaVersion)
	}
	nStrat, nScen := len(strategy.Names()), len(strategy.ScenarioNames())
	if len(rep.Cells) != nStrat*nScen {
		t.Fatalf("%d cells, want %d strategies x %d scenarios", len(rep.Cells), nStrat, nScen)
	}
	seen := map[[2]string]bool{}
	for _, c := range rep.Cells {
		seen[[2]string{c.Strategy, c.Scenario}] = true
		if c.Runs != 3 {
			t.Fatalf("cell %s/%s runs = %d", c.Strategy, c.Scenario, c.Runs)
		}
		if c.CostMean <= 0 || c.NormCost <= 0 {
			t.Fatalf("cell %s/%s cost %v norm %v", c.Strategy, c.Scenario, c.CostMean, c.NormCost)
		}
		if c.MissRate < 0 || c.MissRate > 1 {
			t.Fatalf("cell %s/%s miss rate %v", c.Strategy, c.Scenario, c.MissRate)
		}
	}
	if len(seen) != nStrat*nScen {
		t.Fatalf("grid has duplicates: %d unique pairings of %d cells", len(seen), len(rep.Cells))
	}
	if len(rep.Rankings) != nStrat {
		t.Fatalf("%d rankings, want %d", len(rep.Rankings), nStrat)
	}
	for i, r := range rep.Rankings {
		if r.Rank != i+1 {
			t.Fatalf("ranking %d has rank %d", i, r.Rank)
		}
		if i > 0 && r.MeanScore < rep.Rankings[i-1].MeanScore {
			t.Fatalf("rankings not sorted: %v then %v", rep.Rankings[i-1].MeanScore, r.MeanScore)
		}
		if r.Cells != nScen {
			t.Fatalf("ranking %s covers %d cells, want %d", r.Strategy, r.Cells, nScen)
		}
	}
	// The markdown rendering must mention every strategy.
	md := rep.Markdown()
	for _, name := range strategy.Names() {
		if !strings.Contains(md, name) {
			t.Fatalf("markdown report missing strategy %q", name)
		}
	}
}

// TestTournamentValidatesGrid checks up-front rejection of bad grids.
func TestTournamentValidatesGrid(t *testing.T) {
	cfg := smallTournament(1)
	cfg.Strategies = []string{"no-such-strategy"}
	if _, err := strategy.Tournament(context.Background(), cfg); !errors.Is(err, strategy.ErrUnknownStrategy) {
		t.Fatalf("unknown strategy: %v", err)
	}
	cfg = smallTournament(1)
	cfg.Scenarios = []string{"no-such-scenario"}
	if _, err := strategy.Tournament(context.Background(), cfg); !errors.Is(err, strategy.ErrUnknownScenario) {
		t.Fatalf("unknown scenario: %v", err)
	}
	cfg = smallTournament(1)
	cfg.Workloads = []string{"NOPE"}
	if _, err := strategy.Tournament(context.Background(), cfg); err == nil {
		t.Fatalf("unknown workload accepted")
	}
	cfg = smallTournament(1)
	cfg.DeadlineFactors = []float64{-1}
	if _, err := strategy.Tournament(context.Background(), cfg); err == nil {
		t.Fatalf("negative deadline factor accepted")
	}
}

// TestTournamentCancel checks a cancelled context aborts the run with the
// context error rather than hanging or returning a partial report.
func TestTournamentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := strategy.Tournament(ctx, smallTournament(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled tournament: %v", err)
	}
}
