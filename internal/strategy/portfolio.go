package strategy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/trace"
)

// PortfolioParams shape the "portfolio" strategy's contract ladder.
type PortfolioParams struct {
	// Contracts is how many (spot market, bid price) options the
	// portfolio holds, each on a distinct market.
	Contracts int
	// HighQuantile and LowQuantile bound the bid ladder: contract i bids
	// the q_i-quantile of its market's trailing price history, with q
	// spaced evenly from HighQuantile (the reliable anchor contract) down
	// to LowQuantile (the cheap opportunistic one).
	HighQuantile float64
	LowQuantile  float64
	// Slack is the deadline fraction reserved when sizing the on-demand
	// backstop.
	Slack float64
}

// Portfolio bids a mix of (spot market, bid price) options with an
// on-demand backstop — the contract-portfolio family of arXiv:1811.12901.
// Where sompi searches bids jointly on a logarithmic grid, the portfolio
// fixes a quantile ladder up front: the anchor contract bids near the
// top of the observed price distribution (rarely interrupted), lower
// rungs bid cheaper quantiles on other markets, and the backstop is the
// cheapest deadline-feasible on-demand fleet. Groups checkpoint at φ(P).
type Portfolio struct {
	hosted
	Params PortfolioParams
}

var portfolioSpecs = []ParamSpec{
	{Name: "contracts", Type: "int", Default: 3, Min: 1, Max: 5, Doc: "(market, bid) options held, each on a distinct market"},
	{Name: "high_quantile", Type: "float", Default: 0.97, Min: 0.5, Max: 1, Doc: "bid quantile of the anchor contract"},
	{Name: "low_quantile", Type: "float", Default: 0.60, Min: 0.05, Max: 1, Doc: "bid quantile of the cheapest rung"},
	{Name: "slack", Type: "float", Default: 0.2, Min: 0, Max: 0.9, Doc: "deadline fraction reserved when sizing the backstop"},
}

func init() {
	register(Descriptor{
		Name:    "portfolio",
		Summary: "contract portfolio: a quantile ladder of (market, bid) options with an on-demand backstop",
		Params:  portfolioSpecs,
		New: func(params map[string]float64) (Strategy, error) {
			p, err := decodeParams("portfolio", portfolioSpecs, params)
			if err != nil {
				return nil, err
			}
			if p["low_quantile"] > p["high_quantile"] {
				return nil, fmt.Errorf("%w: portfolio low_quantile %g > high_quantile %g",
					opt.ErrInvalidConfig, p["low_quantile"], p["high_quantile"])
			}
			return &Portfolio{Params: PortfolioParams{
				Contracts:    int(p["contracts"]),
				HighQuantile: p["high_quantile"],
				LowQuantile:  p["low_quantile"],
				Slack:        p["slack"],
			}}, nil
		},
	})
}

// Name implements Strategy.
func (s *Portfolio) Name() string { return "portfolio" }

// Plan implements Strategy.
func (s *Portfolio) Plan(ctx context.Context, view cloud.MarketView, w Workload, d Deadline) (Plan, *Explain, error) {
	if err := ctx.Err(); err != nil {
		return Plan{}, nil, err
	}
	backstop, err := opt.SelectOnDemand(view.Catalog(), w.Profile, d.Hours, s.Params.Slack)
	if err != nil {
		return Plan{}, nil, err
	}
	ex := &Explain{}

	// The bid ladder, most reliable rung first.
	quantiles := make([]float64, s.Params.Contracts)
	for i := range quantiles {
		q := s.Params.HighQuantile
		if s.Params.Contracts > 1 {
			q -= (s.Params.HighQuantile - s.Params.LowQuantile) * float64(i) / float64(s.Params.Contracts-1)
		}
		quantiles[i] = q
	}

	plan := model.Plan{Recovery: backstop}
	used := make(map[cloud.MarketKey]bool)
	for _, q := range quantiles {
		gp, pick := s.pickContract(view, w, d, backstop, q, used)
		if !pick {
			break // fewer live markets than rungs: hold a shorter portfolio
		}
		used[gp.Group.Key] = true
		plan.Groups = append(plan.Groups, gp)
		ex.Notes = append(ex.Notes, fmt.Sprintf("rung q=%.2f: %s bid $%.3f/h interval %.2fh",
			q, gp.Group.Key, gp.Bid, gp.Interval))
	}
	if len(plan.Groups) == 0 {
		ex.Notes = append(ex.Notes, "no usable spot market: pure backstop execution")
	}
	return Plan{Model: plan, Est: model.Evaluate(plan)}, ex, nil
}

// pickContract chooses the best market for one ladder rung: among unused
// markets, the single-group-plus-backstop plan with the lowest expected
// cost, preferring deadline-feasible choices. Bids below the rung's
// quantile are what make the lower rungs cheap — and interruptible.
func (s *Portfolio) pickContract(view cloud.MarketView, w Workload, d Deadline, backstop model.OnDemand, q float64, used map[cloud.MarketKey]bool) (model.GroupPlan, bool) {
	var best model.GroupPlan
	bestCost := math.Inf(1)
	bestFeasible := false
	found := false
	for _, key := range s.keysOf(view) {
		if used[key] {
			continue
		}
		it, ok := view.Catalog().ByName(key.Type)
		if !ok {
			continue
		}
		tr, ok := view.TraceFor(key)
		if !ok || tr.Len() == 0 {
			continue
		}
		bid := quantilePrice(tr, q)
		if bid <= 0 {
			continue
		}
		g := model.NewGroup(w.Profile, it, key.Zone, tr)
		gp := model.GroupPlan{Group: g, Bid: bid, Interval: opt.Phi(g, bid)}
		est := model.Evaluate(model.Plan{Groups: []model.GroupPlan{gp}, Recovery: backstop})
		feasible := est.Time <= d.Hours
		switch {
		case feasible && !bestFeasible,
			feasible == bestFeasible && est.Cost < bestCost:
			best, bestCost, bestFeasible, found = gp, est.Cost, feasible, true
		}
	}
	return best, found
}

// quantilePrice reports the q-quantile of the trace's retained samples
// (nearest-rank on the sorted copy).
func quantilePrice(tr *trace.Trace, q float64) float64 {
	if tr.Len() == 0 {
		return 0
	}
	ps := append([]float64(nil), tr.Prices...)
	sort.Float64s(ps)
	idx := int(math.Ceil(q*float64(len(ps)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ps) {
		idx = len(ps) - 1
	}
	return ps[idx]
}
