package strategy

import (
	"context"

	"sompi/internal/cloud"
	"sompi/internal/opt"
)

// SOMPIParams are the optimizer knobs of the "sompi" strategy, mirroring
// opt.Config field for field. Zero values take the paper's defaults —
// exactly the convention of opt.Config itself, which is what keeps a
// parameterless "sompi" plan byte-identical to a direct
// opt.OptimizeContext call.
type SOMPIParams struct {
	Kappa              int
	GridLevels         int
	MaxGroups          int
	Workers            int
	Slack              float64
	MaxAllFail         float64
	DisableCheckpoints bool
	DisablePruning     bool
}

// SOMPI is the paper's policy as a registry strategy: replicated spot
// execution with checkpoints, F = φ(P), κ-subset search over circle
// groups with an on-demand backstop. It is the registry default.
type SOMPI struct {
	hosted
	Params SOMPIParams
	// Explain enables the optimizer's decision trail.
	Explain bool
}

var sompiSpecs = []ParamSpec{
	{Name: "kappa", Type: "int", Default: 0, Min: 0, Max: 8, Doc: "circle groups per plan (0 = paper default 4)"},
	{Name: "grid_levels", Type: "int", Default: 0, Min: 0, Max: 12, Doc: "logarithmic bid-grid levels (0 = default 6)"},
	{Name: "max_groups", Type: "int", Default: 0, Min: 0, Max: 16, Doc: "candidate groups entering the subset search (0 = default 8)"},
	{Name: "workers", Type: "int", Default: 0, Min: 0, Max: 256, Doc: "search workers (0 = GOMAXPROCS; plans identical at any count)"},
	{Name: "slack", Type: "float", Default: 0, Min: 0, Max: 0.9, Doc: "deadline fraction reserved for checkpoint/recovery overhead (0 = default 0.2)"},
	{Name: "max_all_fail", Type: "float", Default: 0, Min: 0, Max: 1, Doc: "cap on P(all groups fail) (0 = unconstrained)"},
	{Name: "disable_checkpoints", Type: "bool", Default: 0, Min: 0, Max: 1, Doc: "run groups bare (w/o-CK ablation)"},
	{Name: "disable_pruning", Type: "bool", Default: 0, Min: 0, Max: 1, Doc: "exhaustive search without branch-and-bound"},
}

func init() {
	register(Descriptor{
		Name:    "sompi",
		Summary: "the paper's optimizer: replicated spot groups + checkpoints + on-demand backstop (default)",
		Params:  sompiSpecs,
		New: func(params map[string]float64) (Strategy, error) {
			p, err := decodeParams("sompi", sompiSpecs, params)
			if err != nil {
				return nil, err
			}
			return &SOMPI{Params: SOMPIParams{
				Kappa:              int(p["kappa"]),
				GridLevels:         int(p["grid_levels"]),
				MaxGroups:          int(p["max_groups"]),
				Workers:            int(p["workers"]),
				Slack:              p["slack"],
				MaxAllFail:         p["max_all_fail"],
				DisableCheckpoints: p["disable_checkpoints"] != 0,
				DisablePruning:     p["disable_pruning"] != 0,
			}}, nil
		},
	})
}

// Name implements Strategy.
func (s *SOMPI) Name() string { return "sompi" }

// config assembles the optimizer configuration for one planning call.
func (s *SOMPI) config(view cloud.MarketView, w Workload, d Deadline) opt.Config {
	return opt.Config{
		Profile:            w.Profile,
		Market:             view,
		Deadline:           d.Hours,
		Candidates:         s.candidates,
		Kappa:              s.Params.Kappa,
		GridLevels:         s.Params.GridLevels,
		MaxGroups:          s.Params.MaxGroups,
		Workers:            s.Params.Workers,
		Slack:              s.Params.Slack,
		MaxAllFail:         s.Params.MaxAllFail,
		DisableCheckpoints: s.Params.DisableCheckpoints,
		DisablePruning:     s.Params.DisablePruning,
		Reuse:              s.reuse,
		Explain:            s.Explain,
	}
}

// Plan implements Strategy by delegating to the κ-subset search. The
// mapping from params to opt.Config is total and adds nothing, so the
// plan is byte-identical to opt.OptimizeContext with the same knobs.
func (s *SOMPI) Plan(ctx context.Context, view cloud.MarketView, w Workload, d Deadline) (Plan, *Explain, error) {
	res, err := opt.OptimizeContext(ctx, s.config(view, w, d))
	out := Plan{
		Model:       res.Plan,
		Est:         res.Est,
		Evals:       res.Evals,
		Pruned:      res.Pruned,
		SavedEvals:  res.SavedEvals,
		WarmRetried: res.WarmRetried,
	}
	var ex *Explain
	if res.Explain != nil {
		ex = &Explain{Opt: res.Explain}
	}
	return out, ex, err
}
