package cloud

import (
	"fmt"
	"math"
	"sync"

	"sompi/internal/trace"
)

// Shard is one spot market's live price store: the append log for a
// single (instance type, availability zone) pair. Each shard carries its
// own lock, version counter and bounded ring-buffer retention, so
// ingestion into one market never contends with ingestion into — or
// reads of — any other shard. This mirrors the paper's Algorithm 1,
// which re-optimizes per circle group: price movement in one (type, AZ)
// market is an event for that market alone.
//
// The trace inside a shard is immutable; append installs a fresh
// *trace.Trace. A reader that captured the trace before an append keeps
// a consistent view forever.
type shard struct {
	key MarketKey

	mu sync.RWMutex
	tr *trace.Trace
	// version is this shard's mutation counter: 1 at construction, +1
	// per append (empty appends included — the ingestion heartbeat).
	version uint64
	// ticks counts appends applied; unlike version it starts at 0, so
	// operators read it directly as "ingestion events seen".
	ticks uint64
	// compacted counts samples dropped by ring-buffer retention.
	compacted uint64
}

func newShard(key MarketKey, tr *trace.Trace) *shard {
	return &shard{key: key, tr: tr, version: 1}
}

// capture returns the shard's current trace and version under one read
// lock, so the pair is mutually consistent.
func (s *shard) capture() (*trace.Trace, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tr, s.version
}

// trace returns the shard's current immutable trace.
func (s *shard) currentTrace() *trace.Trace {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tr
}

// append validates and applies new samples, enforcing the retention
// bound (retainHours of trailing history; 0 disables). It returns the
// shard's new version. Only this shard's lock is held — appends to
// different shards proceed in parallel.
func (s *shard) append(samples []float64, retainHours float64) (uint64, error) {
	for i, p := range samples {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			s.mu.RLock()
			v := s.version
			s.mu.RUnlock()
			return v, fmt.Errorf("%w: sample %d for %v is not a price: %v", ErrBadSample, i, s.key, p)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.tr.Append(trace.New(s.tr.Step, samples))
	if drop := retainDrop(next, retainHours); drop > 0 {
		next = next.Compact(drop)
		s.compacted += uint64(drop)
	}
	s.tr = next
	s.version++
	s.ticks++
	return s.version, nil
}

// compactTo applies a retention bound to the current trace without
// appending (used when retention is tightened on a live market).
func (s *shard) compactTo(retainHours float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if drop := retainDrop(s.tr, retainHours); drop > 0 {
		s.tr = s.tr.Compact(drop)
		s.compacted += uint64(drop)
	}
}

// retainDrop computes how many leading samples exceed the retention
// bound. At least one sample is always retained so the shard keeps a
// live price.
func retainDrop(tr *trace.Trace, retainHours float64) int {
	if retainHours <= 0 {
		return 0
	}
	keep := int(retainHours / tr.Step)
	if keep < 1 {
		keep = 1
	}
	if drop := tr.Len() - keep; drop > 0 {
		return drop
	}
	return 0
}

// ShardStat is one shard's observable ingestion state, surfaced through
// /healthz and /metrics so operators can see per-market ingestion skew.
type ShardStat struct {
	Key MarketKey
	// Version is the shard's mutation counter (1 = never appended).
	Version uint64
	// Ticks counts appends applied to this shard.
	Ticks uint64
	// Samples is the number of retained price samples.
	Samples int
	// Compacted counts samples dropped by ring-buffer retention.
	Compacted uint64
	// DurationHours is the shard's absolute price frontier.
	DurationHours float64
}

func (s *shard) stat() ShardStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ShardStat{
		Key:           s.key,
		Version:       s.version,
		Ticks:         s.ticks,
		Samples:       s.tr.Len(),
		Compacted:     s.compacted,
		DurationHours: s.tr.Duration(),
	}
}
