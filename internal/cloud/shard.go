package cloud

import (
	"fmt"
	"math"
	"sync"

	"sompi/internal/trace"
)

// Shard is one spot market's live price store: the append log for a
// single (instance type, availability zone) pair. Each shard carries its
// own lock, version counter and bounded ring-buffer retention, so
// ingestion into one market never contends with ingestion into — or
// reads of — any other shard. This mirrors the paper's Algorithm 1,
// which re-optimizes per circle group: price movement in one (type, AZ)
// market is an event for that market alone.
//
// The trace inside a shard is immutable; append installs a fresh
// *trace.Trace. A reader that captured the trace before an append keeps
// a consistent view forever.
type shard struct {
	key MarketKey

	mu sync.RWMutex
	tr *trace.Trace
	// version is this shard's mutation counter: 1 at construction, +1
	// per append (empty appends included — the ingestion heartbeat).
	version uint64
	// ticks counts appends applied; unlike version it starts at 0, so
	// operators read it directly as "ingestion events seen".
	ticks uint64
	// compacted counts samples dropped by ring-buffer retention.
	compacted uint64
}

func newShard(key MarketKey, tr *trace.Trace) *shard {
	return &shard{key: key, tr: tr, version: 1}
}

// capture returns the shard's current trace and version under one read
// lock, so the pair is mutually consistent.
func (s *shard) capture() (*trace.Trace, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tr, s.version
}

// trace returns the shard's current immutable trace.
func (s *shard) currentTrace() *trace.Trace {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tr
}

// append validates and applies new samples, enforcing the retention
// bound (retainHours of trailing history; 0 disables). It returns the
// shard's new version. Only this shard's lock is held — appends to
// different shards proceed in parallel.
//
// persist, when non-nil, is invoked under the write lock before the
// in-memory apply, with the version the append will produce: the
// WAL-first ordering. A persist failure aborts the append whole, so a
// version recorded in the log is always reached by the shard and a
// version reached by the shard is always in the log. Holding the lock
// across persist also gives snapshots their barrier: a snapshot cut
// after this append's WAL write cannot capture the shard until the
// apply lands.
func (s *shard) append(samples []float64, retainHours float64, persist PersistFunc) (uint64, error) {
	for i, p := range samples {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			s.mu.RLock()
			v := s.version
			s.mu.RUnlock()
			return v, fmt.Errorf("%w: sample %d for %v is not a price: %v", ErrBadSample, i, s.key, p)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if persist != nil {
		if err := persist(s.key, samples, s.version+1); err != nil {
			return s.version, fmt.Errorf("cloud: persisting tick for %v: %w", s.key, err)
		}
	}
	s.applyLocked(samples, retainHours)
	return s.version, nil
}

// appendBatch validates and applies a run of ticks under one write-lock
// acquisition, preserving the WAL-first contract per tick. All ticks are
// validated before the lock is taken, so a bad sample rejects the batch
// whole with nothing applied. With a batch persist hook the entire run
// is logged in one call (group commit); the hook reports how many
// leading ticks are durably in the log and exactly that prefix is
// applied — a tick is applied iff its version is reachable by WAL
// replay. Without a batch hook, a per-tick persist hook (or none) is
// invoked tick by tick, stopping at the first failure.
//
// Returns the number of ticks applied and the shard's resulting
// version; a partial apply returns both the applied count and the
// error.
func (s *shard) appendBatch(ticks [][]float64, retainHours float64, persistBatch PersistBatchFunc, persist PersistFunc) (int, uint64, error) {
	for t, samples := range ticks {
		for i, p := range samples {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				s.mu.RLock()
				v := s.version
				s.mu.RUnlock()
				return 0, v, fmt.Errorf("%w: tick %d sample %d for %v is not a price: %v", ErrBadSample, t, i, s.key, p)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	apply := len(ticks)
	var persistErr error
	switch {
	case persistBatch != nil:
		n, err := persistBatch(s.key, ticks, s.version+1)
		if err != nil {
			persistErr = fmt.Errorf("cloud: persisting batch for %v: %w", s.key, err)
		}
		if n < apply {
			apply = n
		}
	case persist != nil:
		for i, samples := range ticks {
			if err := persist(s.key, samples, s.version+1+uint64(i)); err != nil {
				persistErr = fmt.Errorf("cloud: persisting tick for %v: %w", s.key, err)
				apply = i
				break
			}
		}
	}
	for _, samples := range ticks[:apply] {
		s.applyLocked(samples, retainHours)
	}
	return apply, s.version, persistErr
}

// applyLocked performs the in-memory append; the caller holds the write
// lock.
func (s *shard) applyLocked(samples []float64, retainHours float64) {
	next := s.tr.Append(trace.New(s.tr.Step, samples))
	if drop := retainDrop(next, retainHours); drop > 0 {
		next = next.Compact(drop)
		s.compacted += uint64(drop)
	}
	s.tr = next
	s.version++
	s.ticks++
}

// applyReplay applies a WAL tick during recovery, idempotently: a
// version the shard already reached is skipped (it was materialized by
// the snapshot the replay started from), version+1 applies, and
// anything further ahead is a gap — records are missing and the store
// must not pretend otherwise. Reports whether the tick was applied.
func (s *shard) applyReplay(samples []float64, version uint64, retainHours float64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case version <= s.version:
		return false, nil
	case version == s.version+1:
		s.applyLocked(samples, retainHours)
		return true, nil
	default:
		return false, fmt.Errorf("cloud: replay gap for %v: shard at version %d, record claims %d", s.key, s.version, version)
	}
}

// exportState captures the shard's full durable state under one read
// lock.
func (s *shard) exportState() ShardState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prices := make([]float64, len(s.tr.Prices))
	copy(prices, s.tr.Prices)
	return ShardState{
		Type:      s.key.Type,
		Zone:      s.key.Zone,
		Step:      s.tr.Step,
		Head:      s.tr.Head,
		Prices:    prices,
		Version:   s.version,
		Ticks:     s.ticks,
		Compacted: s.compacted,
	}
}

// restoreState overwrites the shard from a snapshot capture.
func (s *shard) restoreState(st ShardState) error {
	if st.Step <= 0 {
		return fmt.Errorf("cloud: restoring %v: non-positive step %v", s.key, st.Step)
	}
	prices := make([]float64, len(st.Prices))
	copy(prices, st.Prices)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = &trace.Trace{Step: st.Step, Prices: prices, Head: st.Head}
	s.version = st.Version
	s.ticks = st.Ticks
	s.compacted = st.Compacted
	return nil
}

// mergeState restores the shard from a snapshot capture only when that
// advances the shard's version — the forward-only variant cluster
// replication uses, where a shipped snapshot may lag records already
// applied locally and must never rewind them. It returns how many
// versions the shard advanced (0 = state not taken), computed under the
// shard's write lock so the caller can adjust the market's composite
// tick counter by delta without racing concurrent appends.
func (s *shard) mergeState(st ShardState) (uint64, error) {
	if st.Step <= 0 {
		return 0, fmt.Errorf("cloud: merging %v: non-positive step %v", s.key, st.Step)
	}
	prices := make([]float64, len(st.Prices))
	copy(prices, st.Prices)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.Version <= s.version {
		return 0, nil
	}
	delta := st.Version - s.version
	s.tr = &trace.Trace{Step: st.Step, Prices: prices, Head: st.Head}
	s.version = st.Version
	s.ticks = st.Ticks
	s.compacted = st.Compacted
	return delta, nil
}

// compactTo applies a retention bound to the current trace without
// appending (used when retention is tightened on a live market).
func (s *shard) compactTo(retainHours float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if drop := retainDrop(s.tr, retainHours); drop > 0 {
		s.tr = s.tr.Compact(drop)
		s.compacted += uint64(drop)
	}
}

// retainDrop computes how many leading samples exceed the retention
// bound. At least one sample is always retained so the shard keeps a
// live price.
func retainDrop(tr *trace.Trace, retainHours float64) int {
	if retainHours <= 0 {
		return 0
	}
	keep := int(retainHours / tr.Step)
	if keep < 1 {
		keep = 1
	}
	if drop := tr.Len() - keep; drop > 0 {
		return drop
	}
	return 0
}

// ShardStat is one shard's observable ingestion state, surfaced through
// /healthz and /metrics so operators can see per-market ingestion skew.
type ShardStat struct {
	Key MarketKey
	// Version is the shard's mutation counter (1 = never appended).
	Version uint64
	// Ticks counts appends applied to this shard.
	Ticks uint64
	// Samples is the number of retained price samples.
	Samples int
	// Compacted counts samples dropped by ring-buffer retention.
	Compacted uint64
	// DurationHours is the shard's absolute price frontier.
	DurationHours float64
}

func (s *shard) stat() ShardStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ShardStat{
		Key:           s.key,
		Version:       s.version,
		Ticks:         s.ticks,
		Samples:       s.tr.Len(),
		Compacted:     s.compacted,
		DurationHours: s.tr.Duration(),
	}
}
