package cloud

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sompi/internal/stats"
	"sompi/internal/trace"
)

// ErrUnknownMarket reports an append against a (type, zone) pair the
// market does not carry. Ingestion must target existing markets: the
// catalog and zone set are fixed at market construction, and a typo'd
// key silently creating a new market would corrupt every version-keyed
// cache downstream.
var ErrUnknownMarket = errors.New("cloud: unknown market")

// ErrBadSample reports an ingested price that is not a price (negative,
// NaN or infinite). The offending request is rejected whole: a partial
// append would leave the market's version claiming an update that only
// half-happened.
var ErrBadSample = errors.New("cloud: invalid price sample")

// MarketKey identifies one spot market: an instance type in an availability
// zone. Each market is a candidate circle group.
type MarketKey struct {
	Type string
	Zone string
}

func (k MarketKey) String() string { return k.Type + "/" + k.Zone }

// Market holds the spot-price histories for every (type, zone) pair plus
// the catalog they refer to. It is the optimizer's entire view of the
// cloud's spot economy.
//
// A market is versioned: construction (GenerateMarket, LoadMarket) yields
// version 1 and every Append bumps the version, so downstream caches can
// key on (inputs, version) and ingestion is well-defined. Traces are
// immutable — Append installs a new *trace.Trace rather than growing the
// old one — so a view captured before an append (a Window, a Group's
// Hist) stays internally consistent. The Market struct itself is not
// synchronized; concurrent mutation and reading must be fenced by the
// owner (internal/serve holds an RWMutex and hands out Window snapshots).
type Market struct {
	Catalog Catalog
	Zones   []string
	Traces  map[MarketKey]*trace.Trace

	// version counts mutations: 1 for a freshly built market, +1 per
	// Append. Zero means a hand-assembled Market that never ingested.
	version uint64
}

// Version reports the market's mutation version.
func (m *Market) Version() uint64 { return m.version }

// Append extends one market's price history with new samples (prices in
// $/instance-hour, one per trace step) and returns the market's new
// version. The existing trace is not mutated: a fresh trace replaces it,
// so previously captured views remain consistent. Appending an empty
// sample set is a no-op that still bumps the version (the ingestion
// heartbeat advanced, even if no price changed).
func (m *Market) Append(key MarketKey, samples []float64) (uint64, error) {
	tr, ok := m.Traces[key]
	if !ok {
		return m.version, fmt.Errorf("%w: %v", ErrUnknownMarket, key)
	}
	for i, p := range samples {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return m.version, fmt.Errorf("%w: sample %d for %v is not a price: %v", ErrBadSample, i, key, p)
		}
	}
	m.Traces[key] = tr.Append(trace.New(tr.Step, samples))
	m.version++
	return m.version, nil
}

// Trace returns the price history for the given market. It panics if the
// market does not exist — asking for an unknown market is a programming
// error, not an environmental condition.
func (m *Market) Trace(typeName, zone string) *trace.Trace {
	tr, ok := m.Traces[MarketKey{typeName, zone}]
	if !ok {
		panic(fmt.Sprintf("cloud: no market for %s/%s", typeName, zone))
	}
	return tr
}

// Keys returns the market keys in deterministic (type, zone) order.
func (m *Market) Keys() []MarketKey {
	keys := make([]MarketKey, 0, len(m.Traces))
	for k := range m.Traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].Zone < keys[j].Zone
	})
	return keys
}

// Window returns a market view restricted to [startHour, startHour+dur).
// The adaptive optimizer trains on the previous optimization window only.
// The view keeps the parent's version: it is a projection of the same
// market state, not a new one.
func (m *Market) Window(startHour, dur float64) *Market {
	out := &Market{Catalog: m.Catalog, Zones: m.Zones, Traces: make(map[MarketKey]*trace.Trace, len(m.Traces)), version: m.version}
	for k, tr := range m.Traces {
		out.Traces[k] = tr.Window(startHour, dur)
	}
	return out
}

// Snapshot returns a shallow copy of the market at its current version.
// Traces are shared, not copied — they are immutable, so the snapshot is a
// consistent view that later Appends on the parent cannot disturb. The
// planner service hands snapshots to long-running work (Monte Carlo
// replays) so ingestion never races a replay's market reads.
func (m *Market) Snapshot() *Market {
	out := &Market{Catalog: m.Catalog, Zones: m.Zones, Traces: make(map[MarketKey]*trace.Trace, len(m.Traces)), version: m.version}
	for k, tr := range m.Traces {
		out.Traces[k] = tr
	}
	return out
}

// MinDuration reports the shortest trace duration across the market's
// markets — the consistent "now" frontier for ingestion-driven replay
// (every market has prices up to at least this hour).
func (m *Market) MinDuration() float64 {
	dur := math.Inf(1)
	for _, tr := range m.Traces {
		if d := tr.Duration(); d < dur {
			dur = d
		}
	}
	if math.IsInf(dur, 1) {
		return 0
	}
	return dur
}

// zoneProfile captures how turbulent a zone's markets are. The paper's
// Figure 1 shows us-east-1a markets spiking past 10x on-demand while
// us-east-1b stays flat; us-east-1c sits in between.
type zoneProfile struct {
	volatileRate      float64 // episodes per hour
	volatileMeanHours float64
	spikeMu           float64
	spikeSigma        float64
	jitter            float64
}

// No zone is risk-free: even the calm us-east-1b suffers occasional
// episodes (otherwise a single un-checkpointed group there would dominate
// every plan and neither replication nor checkpointing would ever pay,
// contradicting the market reality the paper measures). Episode frequency
// and spike magnitude are set so that bidding the historical maximum
// buys availability at a real premium — the expected paid price at an
// unbeatable bid is several times the calm price — which is the market
// feature that makes low bids + fault tolerance the economical choice.
// Spikes are near-bimodal: calm prices cluster near Base while volatile
// repricings land an order of magnitude higher (Figure 1's $0.1 → $10
// jumps). Bids between the two clusters fail on every episode without
// paying more while running, and bids above the spike cluster buy
// availability at close to (or beyond) the on-demand price — which is why
// the optimum is a low bid plus fault tolerance rather than Spot-Inf.
// Episodes are frequent and short rather than rare and long: several per
// day in the turbulent zones. That keeps each day's first-passage
// statistics close to the next day's — the Figure 2 "stable short-term
// distribution" property the failure-rate estimator relies on — while
// still making out-of-bid events a routine hazard for multi-hour runs.
var zoneProfiles = map[string]zoneProfile{
	ZoneA: {volatileRate: 1.0 / 7, volatileMeanHours: 1.2, spikeMu: 2.4, spikeSigma: 0.7, jitter: 0.06},
	ZoneB: {volatileRate: 1.0 / 15, volatileMeanHours: 1.0, spikeMu: 2.2, spikeSigma: 0.6, jitter: 0.02},
	ZoneC: {volatileRate: 1.0 / 10, volatileMeanHours: 1.1, spikeMu: 2.3, spikeSigma: 0.65, jitter: 0.04},
}

// typeTurbulence scales how often a type's markets misbehave. The paper
// observes that small general-purpose types (heavily bid on in 2014) spike
// more than large cluster-compute types.
var typeTurbulence = map[string]float64{
	M1Small.Name:    1.1,
	M1Medium.Name:   1.3,
	M1Large.Name:    1.0,
	C3XLarge.Name:   1.0,
	CC28XLarge.Name: 0.9,
}

// ModelFor builds the synthetic generator parameters for one market.
// The calm price sits at roughly a third of on-demand (the paper's
// observation (a): spot is usually much cheaper) and spikes are capped at
// 12x on-demand, mirroring the >$10 spikes Figure 1 shows for the ~$0.87
// on-demand m1.medium.
func ModelFor(it InstanceType, zone string) trace.Model {
	zp, ok := zoneProfiles[zone]
	if !ok {
		zp = zoneProfiles[ZoneC]
	}
	turb := typeTurbulence[it.Name]
	if turb == 0 {
		turb = 1
	}
	return trace.Model{
		Name:              it.Name + "/" + zone,
		Base:              it.OnDemand * 0.32,
		Jitter:            zp.jitter,
		CalmHoldHours:     5,
		VolatileRate:      zp.volatileRate * turb,
		VolatileMeanHours: zp.volatileMeanHours,
		SpikeMu:           zp.spikeMu,
		SpikeSigma:        zp.spikeSigma,
		SpikeCap:          it.OnDemand * 6,
		Floor:             it.OnDemand * 0.05,
	}
}

// GenerateMarket synthesizes hours of price history for every (type, zone)
// pair, deterministically from seed. Each market gets an independent
// generator stream, matching the paper's assumption that spot prices in
// different markets are independent.
func GenerateMarket(cat Catalog, zones []string, hours float64, seed uint64) *Market {
	root := stats.NewRNG(seed)
	m := &Market{Catalog: cat, Zones: zones, Traces: make(map[MarketKey]*trace.Trace), version: 1}
	// Iterate in deterministic order so the seed fully determines output.
	for _, it := range cat {
		for _, z := range zones {
			m.Traces[MarketKey{it.Name, z}] = ModelFor(it, z).Generate(root.Split(), hours)
		}
	}
	return m
}

// LoadMarket builds a version-1 market from a directory of per-market CSV
// files as written by cmd/tracegen: one "<type>_<zone>.csv" file (slashes
// in the type name also flattened to underscores) per (type, zone) pair,
// each in the two-column hour,price shape trace.ReadCSV accepts. Every
// (catalog × zones) pair must be present — a market with holes would make
// candidate enumeration silently lossy.
func LoadMarket(dir string, cat Catalog, zones []string) (*Market, error) {
	m := &Market{Catalog: cat, Zones: zones, Traces: make(map[MarketKey]*trace.Trace), version: 1}
	for _, it := range cat {
		for _, z := range zones {
			key := MarketKey{it.Name, z}
			name := strings.ReplaceAll(key.String(), "/", "_") + ".csv"
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("cloud: loading market %v: %w", key, err)
			}
			tr, err := trace.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("cloud: loading market %v: %w", key, err)
			}
			m.Traces[key] = tr
		}
	}
	return m, nil
}
