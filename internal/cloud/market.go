package cloud

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sompi/internal/obs"
	"sompi/internal/stats"
	"sompi/internal/trace"
)

// ErrUnknownMarket reports an append against a (type, zone) pair the
// market does not carry. Ingestion must target existing markets: the
// catalog and zone set are fixed at market construction, and a typo'd
// key silently creating a new market would corrupt every version-keyed
// cache downstream.
var ErrUnknownMarket = errors.New("cloud: unknown market")

// ErrBadSample reports an ingested price that is not a price (negative,
// NaN or infinite). The offending request is rejected whole: a partial
// append would leave the market's version claiming an update that only
// half-happened.
var ErrBadSample = errors.New("cloud: invalid price sample")

// MarketKey identifies one spot market: an instance type in an availability
// zone. Each market is a candidate circle group.
type MarketKey struct {
	Type string
	Zone string
}

func (k MarketKey) String() string { return k.Type + "/" + k.Zone }

// VersionVector maps each market key to its shard's version. It is the
// fine-grained analogue of the composite Version: a consumer that only
// read some shards records just those entries, and a cache keyed on the
// subset stays valid across ticks on every other shard.
type VersionVector map[MarketKey]uint64

// Subset returns the vector restricted to keys (missing keys are
// skipped). A nil keys slice returns vv itself.
func (vv VersionVector) Subset(keys []MarketKey) VersionVector {
	if keys == nil {
		return vv
	}
	out := make(VersionVector, len(keys))
	for _, k := range keys {
		if v, ok := vv[k]; ok {
			out[k] = v
		}
	}
	return out
}

// String renders the vector deterministically — entries in sorted key
// order — so it can serve as a cache-key component.
func (vv VersionVector) String() string {
	keys := make([]MarketKey, 0, len(vv))
	for k := range vv {
		keys = append(keys, k)
	}
	sortKeys(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", k, vv[k])
	}
	return b.String()
}

// MarketView is the read-only interface every price-history consumer —
// the optimizer, the replay simulator, the baselines, the serve layer —
// programs against. Two implementations exist: *Market (the live
// sharded store; reads take per-shard read locks) and *MarketSnapshot
// (an immutable capture; reads are lock-free). Long-running work
// (optimization, Monte Carlo) should take a Snapshot first so ingestion
// never races its reads.
type MarketView interface {
	// Catalog returns the instance types the market's keys refer to.
	Catalog() Catalog
	// Zones returns the availability zones the market spans.
	Zones() []string
	// Keys returns the market keys in deterministic (type, zone) order.
	Keys() []MarketKey
	// NumMarkets reports the number of (type, zone) shards.
	NumMarkets() int
	// Trace returns one market's price history, panicking if the market
	// does not exist — asking for an unknown market is a programming
	// error, not an environmental condition.
	Trace(typeName, zone string) *trace.Trace
	// TraceFor is the non-panicking lookup.
	TraceFor(key MarketKey) (*trace.Trace, bool)
	// Version is the composite mutation version: construction yields 1
	// and every Append (to any shard) adds 1, so version arithmetic from
	// the pre-sharding Market is preserved.
	Version() uint64
	// VersionVector returns every shard's individual version.
	VersionVector() VersionVector
	// MinDuration reports the shortest price frontier across all shards —
	// the consistent "now" for ingestion-driven replay.
	MinDuration() float64
	// MinDurationFor reports the frontier across just the given shards
	// (nil means all), so consumers restricted to a candidate subset
	// advance with their own markets, not the globally slowest one.
	MinDurationFor(keys []MarketKey) float64
	// RetainedStartFor reports the absolute hour of the oldest sample
	// still retained across the given shards (nil means all) — the
	// earliest hour a read can reach without being clamped by
	// ring-buffer retention. Zero until retention compacts something.
	RetainedStartFor(keys []MarketKey) float64
	// Window returns an immutable view restricted to
	// [startHour, startHour+dur) in absolute market hours.
	Window(startHour, dur float64) MarketView
	// Snapshot returns an immutable capture of the current state.
	Snapshot() MarketView
}

var (
	_ MarketView = (*Market)(nil)
	_ MarketView = (*MarketSnapshot)(nil)
)

// Market is the live sharded price store: one shard per (type, zone)
// pair, each with its own append log, version counter and bounded
// ring-buffer retention. It is the optimizer's entire view of the
// cloud's spot economy and the only mutable implementation of
// MarketView.
//
// Concurrency: Append locks only the target shard, so ingestion into
// different markets proceeds in parallel and readers of other shards are
// undisturbed. Traces are immutable — an append installs a new
// *trace.Trace — so any captured view stays internally consistent.
// Composite reads (Version, VersionVector, MinDuration, Snapshot) visit
// shards one read-lock at a time and are therefore weakly consistent
// under concurrent ingestion: each entry is exact, the cross-shard
// combination may interleave with in-flight appends. Lock ordering:
// shard locks are leaf locks — no shard lock is ever held while
// acquiring another shard's lock or any lock outside this package.
//
// The zero value is an empty market: version 0, no shards, MinDuration 0.
type Market struct {
	cat    Catalog
	zones  []string
	shards map[MarketKey]*shard
	keys   []MarketKey // sorted; immutable after construction

	// base is the construction version (1 for built markets, 0 for the
	// zero value); composite Version = base + ticks.
	base  uint64
	ticks atomic.Uint64

	// retainBits holds the per-shard retention bound in hours as
	// math.Float64bits (0 = unbounded), atomically so SetRetention is
	// safe against concurrent appends.
	retainBits atomic.Uint64

	// collector, when set, records one "market.append" span per Append.
	// An atomic pointer so SetCollector is safe against in-flight appends;
	// nil (the default) keeps the ingest path free of clock reads.
	collector atomic.Pointer[obs.Collector]

	// persist, when set, is the durability hook: every Append invokes it
	// under the target shard's write lock, before the in-memory apply,
	// with the shard version the append will produce. An atomic pointer
	// for the same reason as collector; nil (the default) keeps the
	// market pure in-memory.
	persist atomic.Pointer[PersistFunc]

	// persistBatch, when set, is the group-commit durability hook:
	// AppendBatch logs a shard's whole run of ticks in one call instead
	// of one WAL append per tick. Without it AppendBatch falls back to
	// the per-tick persist hook.
	persistBatch atomic.Pointer[PersistBatchFunc]
}

// PersistFunc is the durability hook invoked by Append before a tick is
// applied: the target market, the samples, and the shard version the
// apply will produce. Returning an error aborts the append — the hook
// runs WAL-first, so an unlogged tick is never applied.
type PersistFunc func(key MarketKey, samples []float64, version uint64) error

// PersistBatchFunc is the batch durability hook invoked by AppendBatch
// under the target shard's write lock, before any in-memory apply, with
// the whole run of ticks and the shard version the first tick will
// produce (tick i lands at firstVersion+i). It returns how many leading
// ticks are durably in the log: on a clean write that is len(ticks); on
// a mid-batch write failure it is the index of the failed tick (nothing
// from that tick onward was logged); a post-write sync failure still
// returns len(ticks) — the frames are in the log and will replay, so
// the market must apply them all or replay would outrun the live state.
// AppendBatch applies exactly the returned prefix.
type PersistBatchFunc func(key MarketKey, ticks [][]float64, firstVersion uint64) (int, error)

// ShardState is one shard's full durable state as captured into (and
// restored from) a snapshot: the retained ring buffer, the absolute
// clock, and the counters.
type ShardState struct {
	Type      string    `json:"type"`
	Zone      string    `json:"zone"`
	Step      float64   `json:"step"`
	Head      int       `json:"head"`
	Prices    []float64 `json:"prices"`
	Version   uint64    `json:"version"`
	Ticks     uint64    `json:"ticks"`
	Compacted uint64    `json:"compacted"`
}

// NewMarket assembles a market over the given traces at version 1. The
// catalog and zone set are fixed for the market's lifetime; so is the
// key set (one shard per traces entry).
func NewMarket(cat Catalog, zones []string, traces map[MarketKey]*trace.Trace) *Market {
	m := &Market{cat: cat, zones: zones, shards: make(map[MarketKey]*shard, len(traces)), base: 1}
	for k, tr := range traces {
		m.shards[k] = newShard(k, tr)
		m.keys = append(m.keys, k)
	}
	sortKeys(m.keys)
	return m
}

func sortKeys(keys []MarketKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].Zone < keys[j].Zone
	})
}

// Catalog returns the instance types the market's keys refer to.
func (m *Market) Catalog() Catalog { return m.cat }

// Zones returns the availability zones the market spans.
func (m *Market) Zones() []string { return m.zones }

// Keys returns the market keys in deterministic (type, zone) order.
func (m *Market) Keys() []MarketKey {
	out := make([]MarketKey, len(m.keys))
	copy(out, m.keys)
	return out
}

// NumMarkets reports the number of (type, zone) shards.
func (m *Market) NumMarkets() int { return len(m.shards) }

// Version reports the composite mutation version: base construction
// version plus one per applied append across all shards.
func (m *Market) Version() uint64 { return m.base + m.ticks.Load() }

// VersionVector returns every shard's individual version. Entries are
// exact per shard; the combination is weakly consistent under
// concurrent ingestion.
func (m *Market) VersionVector() VersionVector {
	vv := make(VersionVector, len(m.shards))
	for k, s := range m.shards {
		_, v := s.capture()
		vv[k] = v
	}
	return vv
}

// SetRetention bounds every shard's retained history to at most hours of
// trailing samples (0 restores unbounded retention). Existing shards are
// compacted immediately; future appends enforce the bound as a ring
// buffer. Compaction drops only samples, never the absolute clock:
// Duration and MinDuration keep reporting the true frontier.
func (m *Market) SetRetention(hours float64) {
	if hours < 0 {
		hours = 0
	}
	m.retainBits.Store(math.Float64bits(hours))
	for _, s := range m.shards {
		s.compactTo(hours)
	}
}

// Retention reports the per-shard retention bound in hours (0 =
// unbounded).
func (m *Market) Retention() float64 {
	return math.Float64frombits(m.retainBits.Load())
}

// SetCollector installs (or, with nil, removes) a span collector: every
// subsequent Append records a "market.append" span with the shard key,
// sample count and shard version. Safe to call concurrently with
// ingestion; without a collector the append path performs no clock reads.
func (m *Market) SetCollector(c *obs.Collector) { m.collector.Store(c) }

// SetPersist installs (or, with nil, removes) the durability hook. Safe
// to call concurrently with ingestion; appends in flight when the hook
// is installed may complete without it.
func (m *Market) SetPersist(fn PersistFunc) {
	if fn == nil {
		m.persist.Store(nil)
		return
	}
	m.persist.Store(&fn)
}

// SetPersistBatch installs (or, with nil, removes) the batch durability
// hook used by AppendBatch. Safe to call concurrently with ingestion.
func (m *Market) SetPersistBatch(fn PersistBatchFunc) {
	if fn == nil {
		m.persistBatch.Store(nil)
		return
	}
	m.persistBatch.Store(&fn)
}

// ValidateTick checks an append's arguments without applying anything:
// the key must name an existing shard and every sample must be a price.
// It lets a streaming ingester reject bad input eagerly, before the
// tick is queued for a batched apply.
func (m *Market) ValidateTick(key MarketKey, samples []float64) error {
	if _, ok := m.shards[key]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownMarket, key)
	}
	for i, p := range samples {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w: sample %d for %v is not a price: %v", ErrBadSample, i, key, p)
		}
	}
	return nil
}

// Append extends one shard's price history with new samples (prices in
// $/instance-hour, one per trace step) and returns the market's new
// composite version. Only the target shard is locked: concurrent appends
// to other shards, and reads of them, proceed undisturbed. The existing
// trace is not mutated — a fresh trace replaces it, so previously
// captured views remain consistent. Appending an empty sample set is a
// no-op that still bumps both the shard and composite versions (the
// ingestion heartbeat advanced, even if no price changed).
func (m *Market) Append(key MarketKey, samples []float64) (uint64, error) {
	col := m.collector.Load()
	var start time.Time
	if col != nil {
		start = time.Now()
	}
	s, ok := m.shards[key]
	if !ok {
		return m.Version(), fmt.Errorf("%w: %v", ErrUnknownMarket, key)
	}
	var persist PersistFunc
	if p := m.persist.Load(); p != nil {
		persist = *p
	}
	sv, err := s.append(samples, m.Retention(), persist)
	if err != nil {
		return m.Version(), err
	}
	if col != nil {
		col.RecordSpan("market.append", start,
			obs.Attr{Key: "market", Value: key.String()},
			obs.Attr{Key: "samples", Value: fmt.Sprint(len(samples))},
			obs.Attr{Key: "shard_version", Value: fmt.Sprint(sv)})
	}
	return m.base + m.ticks.Add(1), nil
}

// AppendBatch extends one shard's price history with a run of ticks
// under a single shard write-lock acquisition — the batched analogue of
// calling Append len(ticks) times, with one durability call (group
// commit) when a batch persist hook is installed. All ticks are
// validated up front; a bad sample rejects the batch whole. A
// durability failure applies exactly the prefix the hook reports as
// logged and returns that count alongside the error, so the shard never
// runs ahead of (or behind) what WAL replay will reconstruct.
//
// Returns the number of ticks applied and the market's resulting
// composite version (each applied tick bumps it by 1, exactly as
// Append would).
func (m *Market) AppendBatch(key MarketKey, ticks [][]float64) (int, uint64, error) {
	col := m.collector.Load()
	var start time.Time
	if col != nil {
		start = time.Now()
	}
	s, ok := m.shards[key]
	if !ok {
		return 0, m.Version(), fmt.Errorf("%w: %v", ErrUnknownMarket, key)
	}
	var persist PersistFunc
	if p := m.persist.Load(); p != nil {
		persist = *p
	}
	var persistBatch PersistBatchFunc
	if p := m.persistBatch.Load(); p != nil {
		persistBatch = *p
	}
	applied, sv, err := s.appendBatch(ticks, m.Retention(), persistBatch, persist)
	version := m.Version()
	if applied > 0 {
		version = m.base + m.ticks.Add(uint64(applied))
	}
	if col != nil {
		col.RecordSpan("market.append_batch", start,
			obs.Attr{Key: "market", Value: key.String()},
			obs.Attr{Key: "ticks", Value: fmt.Sprint(applied)},
			obs.Attr{Key: "shard_version", Value: fmt.Sprint(sv)})
	}
	return applied, version, err
}

// Trace returns the price history for the given market. It panics if the
// market does not exist.
func (m *Market) Trace(typeName, zone string) *trace.Trace {
	tr, ok := m.TraceFor(MarketKey{typeName, zone})
	if !ok {
		panic(fmt.Sprintf("cloud: no market for %s/%s", typeName, zone))
	}
	return tr
}

// TraceFor returns the current price history for key, reporting whether
// the market exists.
func (m *Market) TraceFor(key MarketKey) (*trace.Trace, bool) {
	s, ok := m.shards[key]
	if !ok {
		return nil, false
	}
	return s.currentTrace(), true
}

// ShardVersion reports one shard's current version, and whether the
// market carries that key.
func (m *Market) ShardVersion(key MarketKey) (uint64, bool) {
	s, ok := m.shards[key]
	if !ok {
		return 0, false
	}
	_, v := s.capture()
	return v, true
}

// ExportShards captures every shard's full durable state in
// deterministic key order — the market half of a snapshot payload. Each
// shard is captured under its own read lock; combined with the
// WAL-first append ordering (the hook runs under the shard write lock)
// any tick logged before the snapshot's WAL boundary is visible here,
// and ticks logged after it re-apply idempotently on recovery.
func (m *Market) ExportShards() []ShardState {
	out := make([]ShardState, 0, len(m.keys))
	for _, k := range m.keys {
		out = append(out, m.shards[k].exportState())
	}
	return out
}

// RestoreShards overwrites shard state from a snapshot capture and
// recomputes the composite tick counter. Every state must target an
// existing shard: the key set is fixed at construction, and a snapshot
// from a differently configured market must not half-load. Intended for
// recovery, before the market serves traffic.
func (m *Market) RestoreShards(states []ShardState) error {
	for _, st := range states {
		key := MarketKey{st.Type, st.Zone}
		s, ok := m.shards[key]
		if !ok {
			return fmt.Errorf("%w: snapshot carries %v", ErrUnknownMarket, key)
		}
		if err := s.restoreState(st); err != nil {
			return err
		}
	}
	m.recomputeTicks()
	return nil
}

// MergeShards applies a snapshot capture forward-only: each shard's
// state is taken only when it advances that shard's version, so a
// shipped peer snapshot that lags records already applied locally never
// rewinds them. Unlike RestoreShards this is safe on a live market — it
// is the cluster replication path — because the composite tick counter
// is adjusted by per-shard deltas computed under each shard's write
// lock, never recomputed globally. Reports how many shards moved.
func (m *Market) MergeShards(states []ShardState) (int, error) {
	applied := 0
	for _, st := range states {
		key := MarketKey{st.Type, st.Zone}
		s, ok := m.shards[key]
		if !ok {
			return applied, fmt.Errorf("%w: snapshot carries %v", ErrUnknownMarket, key)
		}
		delta, err := s.mergeState(st)
		if err != nil {
			return applied, err
		}
		if delta > 0 {
			m.ticks.Add(delta)
			applied++
		}
	}
	return applied, nil
}

// ApplyTick applies one WAL tick record during recovery, idempotently
// by shard version: already-reached versions are skipped, version+1
// applies, a gap is an error. See shard.applyReplay.
func (m *Market) ApplyTick(key MarketKey, samples []float64, version uint64) error {
	s, ok := m.shards[key]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownMarket, key)
	}
	applied, err := s.applyReplay(samples, version, m.Retention())
	if err != nil {
		return err
	}
	if applied {
		m.ticks.Add(1)
	}
	return nil
}

// recomputeTicks rederives the composite tick counter from the shard
// versions (each shard starts at 1, so its append count is version-1).
func (m *Market) recomputeTicks() {
	total := uint64(0)
	for _, s := range m.shards {
		_, v := s.capture()
		total += v - 1
	}
	m.ticks.Store(total)
}

// ShardStats returns every shard's observable state in deterministic key
// order — the /healthz and /metrics payload for ingestion-skew
// monitoring.
func (m *Market) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, len(m.keys))
	for _, k := range m.keys {
		out = append(out, m.shards[k].stat())
	}
	return out
}

// MinDuration reports the shortest price frontier across all shards.
func (m *Market) MinDuration() float64 { return m.MinDurationFor(nil) }

// MinDurationFor reports the frontier across the given shards (nil means
// all). Unknown keys are skipped.
func (m *Market) MinDurationFor(keys []MarketKey) float64 {
	if keys == nil {
		keys = m.keys
	}
	dur := math.Inf(1)
	for _, k := range keys {
		s, ok := m.shards[k]
		if !ok {
			continue
		}
		if d := s.currentTrace().Duration(); d < dur {
			dur = d
		}
	}
	if math.IsInf(dur, 1) {
		return 0
	}
	return dur
}

// RetainedStartFor reports the absolute hour of the oldest sample still
// retained across the given shards (nil means all): the latest
// compaction head, i.e. the earliest hour a read over those shards can
// reach without being clamped to the retained range. Zero until
// retention compacts something.
func (m *Market) RetainedStartFor(keys []MarketKey) float64 {
	if keys == nil {
		keys = m.keys
	}
	start := 0.0
	for _, k := range keys {
		s, ok := m.shards[k]
		if !ok {
			continue
		}
		if h := s.currentTrace().StartHour(); h > start {
			start = h
		}
	}
	return start
}

// Window returns an immutable view restricted to [startHour,
// startHour+dur) in absolute market hours. The adaptive optimizer trains
// on the previous optimization window only. The view keeps the parent's
// versions: it is a projection of the same market state, not a new one.
func (m *Market) Window(startHour, dur float64) MarketView {
	return m.Capture().Window(startHour, dur)
}

// Snapshot returns an immutable capture of the market at its current
// versions. Traces are shared, not copied — they are immutable, so the
// snapshot is a consistent view that later Appends on the parent cannot
// disturb. The planner service hands snapshots to long-running work
// (optimization, Monte Carlo replays) so ingestion never races a
// replay's market reads.
func (m *Market) Snapshot() MarketView { return m.Capture() }

// WindowBounds reports the absolute [start, start+dur) window this view
// is restricted to, and whether those bounds are exactly known. A live
// market is the full history: bounds (0, +Inf) and exact. Together with
// a shard's version, exact bounds fully determine that shard's visible
// trace content — which is what lets the optimizer's delta-reuse cache
// (opt.ReuseCache) key prepared per-group state on (version, window)
// and skip re-deriving failure distributions for shards that did not
// change. Views whose bounds cannot be stated exactly (e.g. a window of
// a window, whose clamps compose through sample rounding) report
// exact=false and are simply not reused.
func (m *Market) WindowBounds() (start, dur float64, exact bool) {
	return 0, math.Inf(1), true
}

// Capture is Snapshot with a concrete return type, for callers that need
// the snapshot-only API surface.
func (m *Market) Capture() *MarketSnapshot {
	snap := &MarketSnapshot{
		cat:      m.cat,
		zones:    m.zones,
		keys:     m.keys,
		traces:   make(map[MarketKey]*trace.Trace, len(m.shards)),
		vv:       make(VersionVector, len(m.shards)),
		winDur:   math.Inf(1),
		winExact: true,
	}
	// The composite version is derived from the captured vector — base
	// plus one tick per append each shard had seen (shards start at
	// version 1) — so the snapshot's version and vector always agree,
	// even when concurrent ingestion advances m.ticks between the
	// per-shard captures.
	ticks := uint64(0)
	for _, k := range m.keys {
		tr, v := m.shards[k].capture()
		snap.traces[k] = tr
		snap.vv[k] = v
		ticks += v - 1
	}
	snap.version = m.base + ticks
	return snap
}

// MarketSnapshot is an immutable MarketView: the traces, version vector
// and composite version of a Market at capture time. All reads are
// lock-free.
type MarketSnapshot struct {
	cat     Catalog
	zones   []string
	keys    []MarketKey
	traces  map[MarketKey]*trace.Trace
	vv      VersionVector
	version uint64
	// winStart/winDur record the absolute window this snapshot is
	// restricted to; winExact is false for views whose bounds are not
	// exactly known (a window of a window — the clamps compose through
	// per-sample rounding, so the effective bounds cannot be restated).
	winStart, winDur float64
	winExact         bool
}

// Catalog returns the instance types the snapshot's keys refer to.
func (s *MarketSnapshot) Catalog() Catalog { return s.cat }

// Zones returns the availability zones the snapshot spans.
func (s *MarketSnapshot) Zones() []string { return s.zones }

// Keys returns the market keys in deterministic (type, zone) order.
func (s *MarketSnapshot) Keys() []MarketKey {
	out := make([]MarketKey, len(s.keys))
	copy(out, s.keys)
	return out
}

// NumMarkets reports the number of (type, zone) markets captured.
func (s *MarketSnapshot) NumMarkets() int { return len(s.traces) }

// Version reports the composite version at capture time.
func (s *MarketSnapshot) Version() uint64 { return s.version }

// VersionVector returns the per-shard versions at capture time.
func (s *MarketSnapshot) VersionVector() VersionVector { return s.vv }

// Trace returns the captured price history for the given market,
// panicking if it does not exist.
func (s *MarketSnapshot) Trace(typeName, zone string) *trace.Trace {
	tr, ok := s.traces[MarketKey{typeName, zone}]
	if !ok {
		panic(fmt.Sprintf("cloud: no market for %s/%s", typeName, zone))
	}
	return tr
}

// TraceFor returns the captured price history for key, reporting whether
// the market exists.
func (s *MarketSnapshot) TraceFor(key MarketKey) (*trace.Trace, bool) {
	tr, ok := s.traces[key]
	return tr, ok
}

// MinDuration reports the shortest price frontier across the capture.
func (s *MarketSnapshot) MinDuration() float64 { return s.MinDurationFor(nil) }

// MinDurationFor reports the frontier across the given markets (nil
// means all). Unknown keys are skipped.
func (s *MarketSnapshot) MinDurationFor(keys []MarketKey) float64 {
	if keys == nil {
		keys = s.keys
	}
	dur := math.Inf(1)
	for _, k := range keys {
		tr, ok := s.traces[k]
		if !ok {
			continue
		}
		if d := tr.Duration(); d < dur {
			dur = d
		}
	}
	if math.IsInf(dur, 1) {
		return 0
	}
	return dur
}

// RetainedStartFor reports the retention head across the given markets
// (nil means all) at capture time. Unknown keys are skipped.
func (s *MarketSnapshot) RetainedStartFor(keys []MarketKey) float64 {
	if keys == nil {
		keys = s.keys
	}
	start := 0.0
	for _, k := range keys {
		tr, ok := s.traces[k]
		if !ok {
			continue
		}
		if h := tr.StartHour(); h > start {
			start = h
		}
	}
	return start
}

// Window returns a snapshot restricted to [startHour, startHour+dur) in
// absolute market hours, keeping the parent's versions.
func (s *MarketSnapshot) Window(startHour, dur float64) MarketView {
	out := &MarketSnapshot{
		cat:     s.cat,
		zones:   s.zones,
		keys:    s.keys,
		traces:  make(map[MarketKey]*trace.Trace, len(s.traces)),
		vv:      s.vv,
		version: s.version,
		// A window of the full capture has exactly the requested bounds;
		// a window of a window does not (trace.Window detaches the head,
		// so the inner clamp composes with the outer one in sample space
		// and the effective absolute bounds are no longer [start, dur)).
		winStart: startHour,
		winDur:   dur,
		winExact: s.winExact && s.winStart == 0 && math.IsInf(s.winDur, 1),
	}
	for k, tr := range s.traces {
		out.traces[k] = tr.Window(startHour, dur)
	}
	return out
}

// WindowBounds reports the absolute window this snapshot is restricted
// to and whether the bounds are exactly known. See (*Market).WindowBounds.
func (s *MarketSnapshot) WindowBounds() (start, dur float64, exact bool) {
	return s.winStart, s.winDur, s.winExact
}

// Snapshot returns the snapshot itself: it is already immutable.
func (s *MarketSnapshot) Snapshot() MarketView { return s }

// zoneProfile captures how turbulent a zone's markets are. The paper's
// Figure 1 shows us-east-1a markets spiking past 10x on-demand while
// us-east-1b stays flat; us-east-1c sits in between.
type zoneProfile struct {
	volatileRate      float64 // episodes per hour
	volatileMeanHours float64
	spikeMu           float64
	spikeSigma        float64
	jitter            float64
}

// No zone is risk-free: even the calm us-east-1b suffers occasional
// episodes (otherwise a single un-checkpointed group there would dominate
// every plan and neither replication nor checkpointing would ever pay,
// contradicting the market reality the paper measures). Episode frequency
// and spike magnitude are set so that bidding the historical maximum
// buys availability at a real premium — the expected paid price at an
// unbeatable bid is several times the calm price — which is the market
// feature that makes low bids + fault tolerance the economical choice.
// Spikes are near-bimodal: calm prices cluster near Base while volatile
// repricings land an order of magnitude higher (Figure 1's $0.1 → $10
// jumps). Bids between the two clusters fail on every episode without
// paying more while running, and bids above the spike cluster buy
// availability at close to (or beyond) the on-demand price — which is why
// the optimum is a low bid plus fault tolerance rather than Spot-Inf.
// Episodes are frequent and short rather than rare and long: several per
// day in the turbulent zones. That keeps each day's first-passage
// statistics close to the next day's — the Figure 2 "stable short-term
// distribution" property the failure-rate estimator relies on — while
// still making out-of-bid events a routine hazard for multi-hour runs.
var zoneProfiles = map[string]zoneProfile{
	ZoneA: {volatileRate: 1.0 / 7, volatileMeanHours: 1.2, spikeMu: 2.4, spikeSigma: 0.7, jitter: 0.06},
	ZoneB: {volatileRate: 1.0 / 15, volatileMeanHours: 1.0, spikeMu: 2.2, spikeSigma: 0.6, jitter: 0.02},
	ZoneC: {volatileRate: 1.0 / 10, volatileMeanHours: 1.1, spikeMu: 2.3, spikeSigma: 0.65, jitter: 0.04},
}

// typeTurbulence scales how often a type's markets misbehave. The paper
// observes that small general-purpose types (heavily bid on in 2014) spike
// more than large cluster-compute types.
var typeTurbulence = map[string]float64{
	M1Small.Name:    1.1,
	M1Medium.Name:   1.3,
	M1Large.Name:    1.0,
	C3XLarge.Name:   1.0,
	CC28XLarge.Name: 0.9,
}

// ModelFor builds the synthetic generator parameters for one market.
// The calm price sits at roughly a third of on-demand (the paper's
// observation (a): spot is usually much cheaper) and spikes are capped at
// 12x on-demand, mirroring the >$10 spikes Figure 1 shows for the ~$0.87
// on-demand m1.medium.
func ModelFor(it InstanceType, zone string) trace.Model {
	zp, ok := zoneProfiles[zone]
	if !ok {
		zp = zoneProfiles[ZoneC]
	}
	turb := typeTurbulence[it.Name]
	if turb == 0 {
		turb = 1
	}
	return trace.Model{
		Name:              it.Name + "/" + zone,
		Base:              it.OnDemand * 0.32,
		Jitter:            zp.jitter,
		CalmHoldHours:     5,
		VolatileRate:      zp.volatileRate * turb,
		VolatileMeanHours: zp.volatileMeanHours,
		SpikeMu:           zp.spikeMu,
		SpikeSigma:        zp.spikeSigma,
		SpikeCap:          it.OnDemand * 6,
		Floor:             it.OnDemand * 0.05,
	}
}

// GenerateMarket synthesizes hours of price history for every (type, zone)
// pair, deterministically from seed. Each market gets an independent
// generator stream, matching the paper's assumption that spot prices in
// different markets are independent.
func GenerateMarket(cat Catalog, zones []string, hours float64, seed uint64) *Market {
	root := stats.NewRNG(seed)
	traces := make(map[MarketKey]*trace.Trace)
	// Iterate in deterministic order so the seed fully determines output.
	for _, it := range cat {
		for _, z := range zones {
			traces[MarketKey{it.Name, z}] = ModelFor(it, z).Generate(root.Split(), hours)
		}
	}
	return NewMarket(cat, zones, traces)
}

// LoadMarket builds a version-1 market from a directory of per-market CSV
// files as written by cmd/tracegen: one "<type>_<zone>.csv" file (slashes
// in the type name also flattened to underscores) per (type, zone) pair,
// each in the two-column hour,price shape trace.ReadCSV accepts. Every
// (catalog × zones) pair must be present — a market with holes would make
// candidate enumeration silently lossy.
func LoadMarket(dir string, cat Catalog, zones []string) (*Market, error) {
	traces := make(map[MarketKey]*trace.Trace)
	for _, it := range cat {
		for _, z := range zones {
			key := MarketKey{it.Name, z}
			name := strings.ReplaceAll(key.String(), "/", "_") + ".csv"
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("cloud: loading market %v: %w", key, err)
			}
			tr, err := trace.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("cloud: loading market %v: %w", key, err)
			}
			traces[key] = tr
		}
	}
	return NewMarket(cat, zones, traces), nil
}
