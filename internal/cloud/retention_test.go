package cloud_test

import (
	"math"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/trace"
)

const (
	retainTestHours = 400
	retainTestSeed  = 11
)

func generatedPair() (compacted, pristine *cloud.Market) {
	compacted = cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), retainTestHours, retainTestSeed)
	pristine = cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), retainTestHours, retainTestSeed)
	return
}

// TestSetRetentionCompactsPastBound: setting a retention bound trims
// every shard's ring to at most bound/step samples while the absolute
// price frontier — what MinDuration and replay clocks read — stays put.
func TestSetRetentionCompactsPastBound(t *testing.T) {
	m, _ := generatedPair()
	const retain = 100.0
	m.SetRetention(retain)

	if got := m.Retention(); got != retain {
		t.Fatalf("Retention() = %v, want %v", got, retain)
	}
	if got := m.MinDuration(); got != retainTestHours {
		t.Fatalf("MinDuration %v after compaction, want the absolute frontier %v", got, retainTestHours)
	}
	bound := int(retain / trace.DefaultStep)
	stats := m.ShardStats()
	if len(stats) != len(cloud.DefaultCatalog())*len(cloud.DefaultZones()) {
		t.Fatalf("%d shard stats, want one per (type, zone)", len(stats))
	}
	for _, st := range stats {
		if st.Samples > bound {
			t.Errorf("shard %v retains %d samples, bound is %d", st.Key, st.Samples, bound)
		}
		if st.Compacted == 0 {
			t.Errorf("shard %v reports no compaction on a %vh history trimmed to %vh", st.Key, retainTestHours, retain)
		}
		if st.DurationHours != retainTestHours {
			t.Errorf("shard %v frontier %vh, want %vh", st.Key, st.DurationHours, retainTestHours)
		}
		if st.Version != 1 {
			t.Errorf("shard %v version %d: compaction must not look like a price tick", st.Key, st.Version)
		}
	}
}

// TestRetentionPreservesTrainingWindow: the optimizer's training window
// — the trailing slice replay and planning read — is sample-identical
// before and after compaction, as long as retention covers it.
func TestRetentionPreservesTrainingWindow(t *testing.T) {
	m, pristine := generatedPair()
	m.SetRetention(120) // comfortably covers the 96h window below

	const history = 96.0
	lo := retainTestHours - history
	a := m.Window(lo, history)
	b := pristine.Window(lo, history)
	for _, k := range m.Keys() {
		ta, tb := a.Trace(k.Type, k.Zone), b.Trace(k.Type, k.Zone)
		if ta.Len() != tb.Len() {
			t.Fatalf("%v: window %d vs %d samples", k, ta.Len(), tb.Len())
		}
		for i := range ta.Prices {
			if ta.Prices[i] != tb.Prices[i] {
				t.Fatalf("%v window sample %d: %v vs %v", k, i, ta.Prices[i], tb.Prices[i])
			}
		}
	}
}

// TestRetentionPreservesPhiAndMTTF: first-passage statistics (MTTF) and
// the paper's φ(P) checkpoint-interval reduction computed from a
// training window over the retained range match the uncompacted market
// exactly — compaction must be invisible to the failure model.
func TestRetentionPreservesPhiAndMTTF(t *testing.T) {
	m, pristine := generatedPair()
	m.SetRetention(120)

	const history = 96.0
	lo := retainTestHours - history
	profile := app.BT()
	for _, k := range []cloud.MarketKey{
		{Type: cloud.M1Medium.Name, Zone: cloud.ZoneA},
		{Type: cloud.C3XLarge.Name, Zone: cloud.ZoneC},
	} {
		it, _ := cloud.DefaultCatalog().ByName(k.Type)
		ga := model.NewGroup(profile, it, k.Zone, m.Window(lo, history).Trace(k.Type, k.Zone))
		gb := model.NewGroup(profile, it, k.Zone, pristine.Window(lo, history).Trace(k.Type, k.Zone))
		for _, frac := range []float64{0.2, 0.5, 0.9, 1.1} {
			bid := gb.Hist.Max() * frac
			ma, mb := ga.MTTF(bid), gb.MTTF(bid)
			if ma != mb && !(math.IsInf(ma, 1) && math.IsInf(mb, 1)) {
				t.Errorf("%v bid %v: MTTF %v (compacted) vs %v", k, bid, ma, mb)
			}
			if fa, fb := opt.Phi(ga, bid), opt.Phi(gb, bid); fa != fb {
				t.Errorf("%v bid %v: Phi %v (compacted) vs %v", k, bid, fa, fb)
			}
		}
	}
}

// TestRetentionBoundsAppends: with retention active, appends keep
// advancing the frontier and version while the ring stays bounded; a
// degenerate bound still keeps one sample per shard.
func TestRetentionBoundsAppends(t *testing.T) {
	key := cloud.MarketKey{Type: cloud.M1Small.Name, Zone: cloud.ZoneA}
	flat := make([]float64, int(50/trace.DefaultStep))
	for i := range flat {
		flat[i] = 0.01
	}
	m := cloud.NewMarket(cloud.Catalog{cloud.M1Small}, []string{cloud.ZoneA},
		map[cloud.MarketKey]*trace.Trace{key: trace.New(trace.DefaultStep, flat)})
	m.SetRetention(10)
	bound := int(10 / trace.DefaultStep)

	for i := 0; i < 5; i++ {
		if _, err := m.Append(key, []float64{0.02, 0.03, 0.04}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		st := m.ShardStats()[0]
		if st.Samples > bound {
			t.Fatalf("append %d: %d samples exceed the %d-sample ring", i, st.Samples, bound)
		}
	}
	st := m.ShardStats()[0]
	wantFrontier := 50 + 15*trace.DefaultStep
	if math.Abs(st.DurationHours-wantFrontier) > 1e-9 || m.MinDuration() != st.DurationHours {
		t.Fatalf("frontier %vh after 15 appended samples, want %vh", st.DurationHours, wantFrontier)
	}
	if st.Version != 6 || st.Ticks != 5 {
		t.Fatalf("shard version %d ticks %d, want 6/5", st.Version, st.Ticks)
	}

	// A bound below one step still keeps the newest sample: an empty
	// trace would zero the frontier and break MinDuration consumers.
	m.SetRetention(trace.DefaultStep / 2)
	if st := m.ShardStats()[0]; st.Samples != 1 {
		t.Fatalf("degenerate retention kept %d samples, want exactly 1", st.Samples)
	}
	if m.MinDuration() != st.DurationHours {
		t.Fatal("degenerate retention moved the frontier")
	}
}
