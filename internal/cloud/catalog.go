// Package cloud models the Amazon EC2 substrate the paper runs on:
// instance types with their 2014-era prices and capabilities, availability
// zones, per-(type, zone) spot markets backed by price traces, and the
// hourly billing rules for spot and on-demand instances.
package cloud

import "fmt"

// InstanceType describes one EC2 instance type. Capability numbers are the
// coarse per-instance figures the paper's performance model consumes
// (Section 4.4: execution time = CPU + network + I/O time).
type InstanceType struct {
	// Name is the EC2 API name, e.g. "m1.small".
	Name string
	// Cores is the number of cores; the paper pins one MPI process per
	// core, so the instance count for N processes is ceil(N/Cores).
	Cores int
	// GIPS is the *effective* per-core compute rate in billions of
	// instructions per second on NPB-like codes when the instance is fully
	// packed with one MPI rank per core. It is lower than raw ECU ratings
	// for many-core types because packed ranks contend for memory
	// bandwidth — the effect that makes cc2.8xlarge per-work expensive for
	// compute-intensive kernels in the paper's measurements.
	GIPS float64
	// NetGbps is the per-instance network bandwidth in gigabits/s.
	NetGbps float64
	// NetEff is the fraction of NetGbps that MPI traffic achieves
	// (protocol overhead hits slow virtualized NICs hardest; 10 GbE
	// cluster-compute placement groups approach line rate).
	NetEff float64
	// IOSeqMBps and IORndMBps are per-instance sequential and random disk
	// bandwidths in MB/s.
	IOSeqMBps, IORndMBps float64
	// OnDemand is the on-demand price in $/instance-hour.
	OnDemand float64
}

// InstancesFor reports how many instances of this type are needed to host
// procs one-process-per-core MPI ranks (the paper's M_i = ceil(N/cores)).
func (it InstanceType) InstancesFor(procs int) int {
	if procs <= 0 {
		panic(fmt.Sprintf("cloud: non-positive process count %d", procs))
	}
	return (procs + it.Cores - 1) / it.Cores
}

// The four candidate types the paper evaluates (Section 5.1): m1.small and
// m1.medium for their low price, c3.xlarge and cc2.8xlarge for their
// computational power.
//
// Calibration note (see DESIGN.md §2): m1 prices are the August 2014
// us-east rates. The c3.xlarge and cc2.8xlarge prices and the effective
// GIPS figures are tuned so the fleet-level cost/performance *orderings*
// the paper measures on EC2 hold — each cheaper fleet is slower, making
// the four types a true cost/time Pareto frontier for compute-intensive
// kernels (Figure 7's type-switch arrows), while cc2.8xlarge's 10 GbE wins
// both cost and time for communication-intensive kernels and loses badly
// on I/O parallelism (4 instances vs 128).
var (
	M1Small = InstanceType{
		Name: "m1.small", Cores: 1, GIPS: 1.0,
		NetGbps: 0.25, NetEff: 0.45, IOSeqMBps: 40, IORndMBps: 8,
		OnDemand: 0.044,
	}
	M1Medium = InstanceType{
		Name: "m1.medium", Cores: 1, GIPS: 1.6,
		NetGbps: 0.45, NetEff: 0.45, IOSeqMBps: 60, IORndMBps: 12,
		OnDemand: 0.087,
	}
	C3XLarge = InstanceType{
		Name: "c3.xlarge", Cores: 4, GIPS: 2.5,
		NetGbps: 0.7, NetEff: 0.70, IOSeqMBps: 150, IORndMBps: 60,
		OnDemand: 0.460,
	}
	CC28XLarge = InstanceType{
		Name: "cc2.8xlarge", Cores: 32, GIPS: 2.0,
		NetGbps: 10, NetEff: 1.0, IOSeqMBps: 200, IORndMBps: 80,
		OnDemand: 4.400,
	}
	// M1Large only appears in the Figure 1 market study.
	M1Large = InstanceType{
		Name: "m1.large", Cores: 2, GIPS: 1.6,
		NetGbps: 0.45, NetEff: 0.45, IOSeqMBps: 80, IORndMBps: 16,
		OnDemand: 0.175,
	}
)

// Catalog is the ordered set of instance types available to the optimizer.
type Catalog []InstanceType

// DefaultCatalog returns the paper's four candidate types.
func DefaultCatalog() Catalog {
	return Catalog{M1Small, M1Medium, C3XLarge, CC28XLarge}
}

// ByName returns the type with the given name and true, or a zero type and
// false.
func (c Catalog) ByName(name string) (InstanceType, bool) {
	for _, it := range c {
		if it.Name == name {
			return it, true
		}
	}
	return InstanceType{}, false
}

// Zones used throughout the paper's evaluation.
const (
	ZoneA = "us-east-1a"
	ZoneB = "us-east-1b"
	ZoneC = "us-east-1c"
)

// DefaultZones returns the three zones the paper draws circle groups from.
func DefaultZones() []string { return []string{ZoneA, ZoneB, ZoneC} }
