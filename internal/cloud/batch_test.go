package cloud

import (
	"errors"
	"reflect"
	"testing"
)

// AppendBatch must group-commit: one persist-batch call carrying every
// tick and the first post-batch version, then every tick applied, with
// the shard and composite versions advanced by the batch length.
func TestAppendBatchGroupCommit(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneA}
	type call struct {
		key          MarketKey
		ticks        [][]float64
		firstVersion uint64
	}
	var calls []call
	m.SetPersistBatch(func(key MarketKey, ticks [][]float64, firstVersion uint64) (int, error) {
		cp := make([][]float64, len(ticks))
		for i, tk := range ticks {
			cp[i] = append([]float64(nil), tk...)
		}
		calls = append(calls, call{key, cp, firstVersion})
		return len(ticks), nil
	})

	shardBefore, _ := m.ShardVersion(key)
	compositeBefore := m.Version()
	lenBefore := m.Trace(key.Type, key.Zone).Len()
	ticks := [][]float64{{0.1, 0.2}, {0.3}, {0.4, 0.5, 0.6}}

	applied, version, err := m.AppendBatch(key, ticks)
	if err != nil || applied != 3 {
		t.Fatalf("AppendBatch: applied %d, err %v", applied, err)
	}
	if len(calls) != 1 {
		t.Fatalf("persist-batch called %d times, want 1 (group commit)", len(calls))
	}
	if calls[0].key != key || calls[0].firstVersion != shardBefore+1 || !reflect.DeepEqual(calls[0].ticks, ticks) {
		t.Fatalf("persist-batch saw %+v, want key %v firstVersion %d ticks %v",
			calls[0], key, shardBefore+1, ticks)
	}
	if sv, _ := m.ShardVersion(key); sv != shardBefore+3 {
		t.Fatalf("shard version %d, want %d", sv, shardBefore+3)
	}
	if version != compositeBefore+3 || m.Version() != compositeBefore+3 {
		t.Fatalf("composite version %d (returned %d), want %d", m.Version(), version, compositeBefore+3)
	}
	if got := m.Trace(key.Type, key.Zone).Len(); got != lenBefore+6 {
		t.Fatalf("trace len %d, want %d (all six samples appended)", got, lenBefore+6)
	}
}

// The prefix contract: when the persist hook reports n < len ticks
// durable, exactly that prefix applies — the shard never holds a tick
// the WAL lost, and applied/version reflect the prefix.
func TestAppendBatchAppliesPersistedPrefixOnly(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Medium.Name, ZoneB}
	boom := errors.New("disk full")
	m.SetPersistBatch(func(_ MarketKey, ticks [][]float64, _ uint64) (int, error) {
		return 1, boom // first tick hit the log, second did not
	})
	shardBefore, _ := m.ShardVersion(key)
	lenBefore := m.Trace(key.Type, key.Zone).Len()

	applied, version, err := m.AppendBatch(key, [][]float64{{0.1}, {0.2}})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want wrapped disk full", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d, want 1 (the persisted prefix)", applied)
	}
	if sv, _ := m.ShardVersion(key); sv != shardBefore+1 {
		t.Fatalf("shard version %d, want %d", sv, shardBefore+1)
	}
	if version != m.Version() {
		t.Fatalf("returned version %d != composite %d", version, m.Version())
	}
	if got := m.Trace(key.Type, key.Zone).Len(); got != lenBefore+1 {
		t.Fatalf("trace len %d, want %d", got, lenBefore+1)
	}
}

// A trailing-fsync-style failure — hook reports every tick durable but
// still errors — applies the whole batch: the frames are in the log, so
// dropping them would diverge from WAL replay.
func TestAppendBatchFsyncTailFailureAppliesAll(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneB}
	boom := errors.New("fsync: I/O error")
	m.SetPersistBatch(func(_ MarketKey, ticks [][]float64, _ uint64) (int, error) {
		return len(ticks), boom
	})
	shardBefore, _ := m.ShardVersion(key)

	applied, _, err := m.AppendBatch(key, [][]float64{{0.1}, {0.2}})
	if !errors.Is(err, boom) || applied != 2 {
		t.Fatalf("applied %d err %v, want 2 ticks applied with the fsync error surfaced", applied, err)
	}
	if sv, _ := m.ShardVersion(key); sv != shardBefore+2 {
		t.Fatalf("shard version %d, want %d", sv, shardBefore+2)
	}
}

// Without a batch hook AppendBatch degrades to the per-tick persist
// hook, assigning each tick its own version; a mid-batch failure keeps
// the logged prefix.
func TestAppendBatchFallsBackToPerTickPersist(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneA}
	var versions []uint64
	boom := errors.New("disk full")
	m.SetPersist(func(_ MarketKey, _ []float64, version uint64) error {
		if len(versions) == 2 {
			return boom
		}
		versions = append(versions, version)
		return nil
	})
	shardBefore, _ := m.ShardVersion(key)

	applied, _, err := m.AppendBatch(key, [][]float64{{0.1}, {0.2}, {0.3}})
	if !errors.Is(err, boom) || applied != 2 {
		t.Fatalf("applied %d err %v, want the 2-tick logged prefix and the error", applied, err)
	}
	if want := []uint64{shardBefore + 1, shardBefore + 2}; !reflect.DeepEqual(versions, want) {
		t.Fatalf("per-tick persist versions %v, want %v", versions, want)
	}
	if sv, _ := m.ShardVersion(key); sv != shardBefore+2 {
		t.Fatalf("shard version %d, want %d", sv, shardBefore+2)
	}
}

// Validation is all-or-nothing and up-front: a bad sample anywhere in
// the batch rejects the whole batch before the persist hook runs.
func TestAppendBatchRejectsBadSamplesWhole(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneA}
	persisted := false
	m.SetPersistBatch(func(MarketKey, [][]float64, uint64) (int, error) {
		persisted = true
		return 0, nil
	})
	before := m.Version()

	applied, _, err := m.AppendBatch(key, [][]float64{{0.1}, {0.2, -1}})
	if !errors.Is(err, ErrBadSample) || applied != 0 {
		t.Fatalf("applied %d err %v, want 0 applied with ErrBadSample", applied, err)
	}
	if persisted {
		t.Fatal("persist hook ran for a batch that failed validation")
	}
	if m.Version() != before {
		t.Fatal("rejected batch bumped the composite version")
	}

	if applied, _, err := m.AppendBatch(MarketKey{"ghost", ZoneA}, [][]float64{{0.1}}); !errors.Is(err, ErrUnknownMarket) || applied != 0 {
		t.Fatalf("unknown market: applied %d err %v, want ErrUnknownMarket", applied, err)
	}
}

// ValidateTick mirrors append validation without touching the shard.
func TestValidateTick(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneA}
	if err := m.ValidateTick(key, []float64{0.1, 0.2}); err != nil {
		t.Fatalf("valid tick rejected: %v", err)
	}
	if err := m.ValidateTick(key, []float64{0.1, -3}); !errors.Is(err, ErrBadSample) {
		t.Fatalf("bad sample: got %v, want ErrBadSample", err)
	}
	if err := m.ValidateTick(MarketKey{"ghost", ZoneA}, nil); !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("unknown market: got %v, want ErrUnknownMarket", err)
	}
	if m.Version() != persistMarket(t).Version() {
		t.Fatal("ValidateTick mutated the market")
	}
}

// AppendBatch interleaved with replay must reproduce the same shard
// state: batch appends go through the same durability path as per-tick
// appends, so a WAL written by one replays under the other.
func TestAppendBatchMatchesSequentialAppends(t *testing.T) {
	key := MarketKey{M1Medium.Name, ZoneA}
	ticks := [][]float64{{0.1}, {0.2, 0.3}, {0.4}}

	batched := persistMarket(t)
	if _, _, err := batched.AppendBatch(key, ticks); err != nil {
		t.Fatal(err)
	}
	sequential := persistMarket(t)
	for _, tk := range ticks {
		if _, err := sequential.Append(key, tk); err != nil {
			t.Fatal(err)
		}
	}
	bv, _ := batched.ShardVersion(key)
	sv, _ := sequential.ShardVersion(key)
	if bv != sv || batched.Version() != sequential.Version() {
		t.Fatalf("versions diverged: batched %d/%d sequential %d/%d",
			bv, batched.Version(), sv, sequential.Version())
	}
	bt, st := batched.Trace(key.Type, key.Zone), sequential.Trace(key.Type, key.Zone)
	if !reflect.DeepEqual(bt.Prices, st.Prices) {
		t.Fatal("batched and sequential appends produced different traces")
	}
}
