package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"sompi/internal/trace"
)

func TestInstancesFor(t *testing.T) {
	cases := []struct {
		it    InstanceType
		procs int
		want  int
	}{
		{M1Small, 128, 128},
		{M1Medium, 128, 128},
		{C3XLarge, 128, 32},
		{CC28XLarge, 128, 4},
		{CC28XLarge, 33, 2},
		{CC28XLarge, 32, 1},
		{C3XLarge, 1, 1},
	}
	for _, c := range cases {
		if got := c.it.InstancesFor(c.procs); got != c.want {
			t.Errorf("%s.InstancesFor(%d) = %d, want %d", c.it.Name, c.procs, got, c.want)
		}
	}
}

func TestInstancesForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InstancesFor(0) did not panic")
		}
	}()
	M1Small.InstancesFor(0)
}

func TestCatalogByName(t *testing.T) {
	cat := DefaultCatalog()
	it, ok := cat.ByName("c3.xlarge")
	if !ok || it.Cores != 4 {
		t.Fatalf("ByName(c3.xlarge) = %+v, %v", it, ok)
	}
	if _, ok := cat.ByName("nope"); ok {
		t.Fatal("ByName found a nonexistent type")
	}
}

func TestDefaultCatalogSane(t *testing.T) {
	for _, it := range DefaultCatalog() {
		if it.Cores <= 0 || it.GIPS <= 0 || it.NetGbps <= 0 ||
			it.IOSeqMBps <= 0 || it.IORndMBps <= 0 || it.OnDemand <= 0 {
			t.Errorf("type %s has a non-positive capability: %+v", it.Name, it)
		}
	}
}

func TestCatalogPriceOrdering(t *testing.T) {
	// The paper's trade-off space requires small-cheap to big-expensive.
	if !(M1Small.OnDemand < M1Medium.OnDemand &&
		M1Medium.OnDemand < C3XLarge.OnDemand &&
		C3XLarge.OnDemand < CC28XLarge.OnDemand) {
		t.Fatal("on-demand prices are not increasing with capability")
	}
}

func TestGenerateMarketDeterministic(t *testing.T) {
	a := GenerateMarket(DefaultCatalog(), DefaultZones(), 48, 9)
	b := GenerateMarket(DefaultCatalog(), DefaultZones(), 48, 9)
	for _, k := range a.Keys() {
		tr, other := a.Trace(k.Type, k.Zone), b.Trace(k.Type, k.Zone)
		for i := range tr.Prices {
			if tr.Prices[i] != other.Prices[i] {
				t.Fatalf("market %v diverges at sample %d", k, i)
			}
		}
	}
}

func TestGenerateMarketCoverage(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	want := len(DefaultCatalog()) * len(DefaultZones())
	if m.NumMarkets() != want {
		t.Fatalf("market has %d traces, want %d", m.NumMarkets(), want)
	}
	for _, k := range m.Keys() {
		if m.Trace(k.Type, k.Zone).Len() == 0 {
			t.Fatalf("market %v is empty", k)
		}
	}
}

func TestMarketKeysDeterministicOrder(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 4, 1)
	a, b := m.Keys(), m.Keys()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys order is unstable")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Type > a[i].Type {
			t.Fatal("Keys not sorted by type")
		}
	}
}

func TestMarketTracePanicsOnUnknown(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Trace for unknown market did not panic")
		}
	}()
	m.Trace("t2.nano", ZoneA)
}

func TestZoneBQuieterThanZoneA(t *testing.T) {
	// Figure 1: us-east-1b m1.medium is far calmer than us-east-1a, but
	// no zone is risk-free (see zoneProfiles).
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24*28, 2)
	quiet := m.Trace(M1Medium.Name, ZoneB)
	noisy := m.Trace(M1Medium.Name, ZoneA)
	od := M1Medium.OnDemand
	if qa, na := 1-quiet.FractionBelow(od), 1-noisy.FractionBelow(od); qa >= na {
		t.Fatalf("zone B above on-demand %.3f of the time, zone A %.3f — B should be calmer", qa, na)
	}
	if noisy.Max() < od*2 {
		t.Fatalf("zone A never spiked: max %v", noisy.Max())
	}
	if quiet.Max() <= od*0.5 {
		t.Fatalf("zone B appears risk-free: max %v", quiet.Max())
	}
}

func TestSpotCheaperThanOnDemandMostly(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24*14, 3)
	for _, k := range m.Keys() {
		it, _ := m.Catalog().ByName(k.Type)
		if frac := m.Trace(k.Type, k.Zone).FractionBelow(it.OnDemand); frac < 0.6 {
			t.Errorf("market %v below on-demand only %.0f%% of the time", k, frac*100)
		}
	}
}

func TestMarketWindow(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 48, 4)
	w := m.Window(12, 12)
	for _, k := range w.Keys() {
		if d := w.Trace(k.Type, k.Zone).Duration(); math.Abs(d-12) > 2*trace.DefaultStep {
			t.Fatalf("window duration %v, want ~12", d)
		}
	}
}

func TestBilledHours(t *testing.T) {
	cases := []struct {
		policy BillingPolicy
		in     float64
		want   float64
	}{
		{BillContinuous, 1.5, 1.5},
		{BillContinuous, 0, 0},
		{BillContinuous, -3, 0},
		{BillHourly, 0.1, 1},
		{BillHourly, 1.0, 1},
		{BillHourly, 1.0001, 2},
		{BillHourly, 0, 0},
	}
	for _, c := range cases {
		if got := BilledHours(c.policy, c.in); got != c.want {
			t.Errorf("BilledHours(%v, %v) = %v, want %v", c.policy, c.in, got, c.want)
		}
	}
}

func TestOnDemandCost(t *testing.T) {
	got := OnDemandCost(BillContinuous, M1Small, 128, 2)
	want := 0.044 * 128 * 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("OnDemandCost = %v, want %v", got, want)
	}
}

func TestSpotCostConstantPrice(t *testing.T) {
	tr := trace.New(0.5, []float64{0.1, 0.1, 0.1, 0.1})
	got := SpotCost(tr, 0, 2, 3)
	if math.Abs(got-0.1*2*3) > 1e-12 {
		t.Fatalf("SpotCost = %v, want 0.6", got)
	}
}

func TestSpotCostFractionalSamples(t *testing.T) {
	tr := trace.New(1, []float64{0.1, 0.3})
	// Half an hour at 0.1 plus half an hour at 0.3.
	got := SpotCost(tr, 0.5, 1, 1)
	if math.Abs(got-(0.05+0.15)) > 1e-12 {
		t.Fatalf("SpotCost = %v, want 0.2", got)
	}
}

func TestSpotCostPastTraceEnd(t *testing.T) {
	tr := trace.New(1, []float64{0.2})
	// Charged at the final sample's price beyond the trace.
	got := SpotCost(tr, 0, 3, 1)
	if math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("SpotCost = %v, want 0.6", got)
	}
}

func TestSpotCostZeroDuration(t *testing.T) {
	tr := trace.New(1, []float64{0.2})
	if got := SpotCost(tr, 0, 0, 5); got != 0 {
		t.Fatalf("SpotCost of zero duration = %v", got)
	}
}

func TestSpotCostMonotoneInDuration(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 48, 5)
	tr := m.Trace(M1Small.Name, ZoneA)
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 24)
		b := math.Mod(math.Abs(bRaw), 24)
		if a > b {
			a, b = b, a
		}
		return SpotCost(tr, 0, a, 1) <= SpotCost(tr, 0, b, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpotCostAdditiveInInstances(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 48, 6)
	tr := m.Trace(C3XLarge.Name, ZoneC)
	one := SpotCost(tr, 3, 7, 1)
	ten := SpotCost(tr, 3, 7, 10)
	if math.Abs(ten-10*one) > 1e-9 {
		t.Fatalf("SpotCost not additive: %v vs 10*%v", ten, one)
	}
}
