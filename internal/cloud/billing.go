package cloud

import (
	"math"

	"sompi/internal/trace"
)

// BillingPolicy selects how running time converts into billed time.
type BillingPolicy int

const (
	// BillContinuous charges for exact running time. The paper's cost
	// model (Formula 5) integrates price over time, i.e. continuous
	// billing; it is also what the simulation results use.
	BillContinuous BillingPolicy = iota
	// BillHourly rounds each instance's running time up to whole hours,
	// EC2's 2014 on-demand rule.
	BillHourly
)

// BilledHours converts running hours into billed hours under the policy.
func BilledHours(policy BillingPolicy, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	if policy == BillHourly {
		return math.Ceil(hours - 1e-9)
	}
	return hours
}

// OnDemandCost charges m instances of type it for hours of running time.
func OnDemandCost(policy BillingPolicy, it InstanceType, m int, hours float64) float64 {
	return it.OnDemand * float64(m) * BilledHours(policy, hours)
}

// SpotCost integrates the actual spot price over [startHour,
// startHour+hours) on the given trace, for m instances. This is the
// "replay the trace and calculate the monetary cost given the spot price"
// accounting from Section 5.1. The caller guarantees the instances were
// running (price at or below bid) throughout the interval; out-of-bid
// detection lives in the replay simulator, not here.
func SpotCost(tr *trace.Trace, startHour, hours float64, m int) float64 {
	if hours <= 0 || tr.Len() == 0 {
		return 0
	}
	cost := 0.0
	end := startHour + hours
	// Integrate sample by sample, handling fractional first/last samples.
	for t := startHour; t < end; {
		idx := tr.IndexAt(t)
		sampleEnd := float64(idx+1) * tr.Step
		if sampleEnd <= t { // clamped at trace end: charge the final price
			cost += tr.Prices[len(tr.Prices)-1] * (end - t)
			break
		}
		upto := math.Min(sampleEnd, end)
		cost += tr.Prices[idx] * (upto - t)
		t = upto
	}
	return cost * float64(m)
}
