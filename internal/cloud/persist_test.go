package cloud

import (
	"errors"
	"reflect"
	"testing"
)

func persistMarket(t *testing.T) *Market {
	t.Helper()
	return GenerateMarket(Catalog{M1Small, M1Medium}, []string{ZoneA, ZoneB}, 24, 7)
}

// The persist hook must see every append WAL-first: the key, the exact
// samples, and the version the apply will produce.
func TestPersistHookSeesEveryAppend(t *testing.T) {
	m := persistMarket(t)
	type call struct {
		key     MarketKey
		samples []float64
		version uint64
	}
	var calls []call
	m.SetPersist(func(key MarketKey, samples []float64, version uint64) error {
		calls = append(calls, call{key, append([]float64(nil), samples...), version})
		return nil
	})
	key := MarketKey{M1Small.Name, ZoneA}
	for i := 0; i < 3; i++ {
		if _, err := m.Append(key, []float64{0.1 + float64(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if len(calls) != 3 {
		t.Fatalf("persist saw %d appends, want 3", len(calls))
	}
	for i, c := range calls {
		if c.key != key || c.version != uint64(i+2) { // shard starts at version 1
			t.Fatalf("call %d: key %v version %d", i, c.key, c.version)
		}
		if want := []float64{0.1 + float64(i)}; !reflect.DeepEqual(c.samples, want) {
			t.Fatalf("call %d samples %v, want %v", i, c.samples, want)
		}
	}
	got, _ := m.ShardVersion(key)
	if got != 4 {
		t.Fatalf("shard version %d, want 4", got)
	}
}

// A persist failure must abort the append whole: no version bump, no
// trace mutation — an unlogged tick is never applied.
func TestPersistFailureAbortsAppend(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneA}
	before, _ := m.ShardVersion(key)
	beforeLen := m.Trace(key.Type, key.Zone).Len()
	beforeComposite := m.Version()

	boom := errors.New("disk full")
	m.SetPersist(func(MarketKey, []float64, uint64) error { return boom })
	if _, err := m.Append(key, []float64{0.5}); !errors.Is(err, boom) {
		t.Fatalf("Append with failing persist: got %v, want wrapped disk full", err)
	}
	after, _ := m.ShardVersion(key)
	if after != before {
		t.Fatalf("shard version moved %d -> %d despite persist failure", before, after)
	}
	if got := m.Trace(key.Type, key.Zone).Len(); got != beforeLen {
		t.Fatalf("trace grew %d -> %d despite persist failure", beforeLen, got)
	}
	if m.Version() != beforeComposite {
		t.Fatalf("composite version moved despite persist failure")
	}

	// Removing the hook restores pure in-memory appends.
	m.SetPersist(nil)
	if _, err := m.Append(key, []float64{0.5}); err != nil {
		t.Fatalf("Append after removing hook: %v", err)
	}
}

// Export → restore must reproduce the exact market: retained prices,
// absolute clock, versions, counters, composite version.
func TestExportRestoreRoundTrip(t *testing.T) {
	src := persistMarket(t)
	src.SetRetention(12) // exercise Head != 0 in the export
	key := MarketKey{M1Medium.Name, ZoneB}
	for i := 0; i < 5; i++ {
		if _, err := src.Append(key, []float64{0.2, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	states := src.ExportShards()

	dst := persistMarket(t)
	dst.SetRetention(12)
	if err := dst.RestoreShards(states); err != nil {
		t.Fatalf("RestoreShards: %v", err)
	}
	if !reflect.DeepEqual(dst.VersionVector(), src.VersionVector()) {
		t.Fatalf("version vector mismatch:\n%v\n%v", dst.VersionVector(), src.VersionVector())
	}
	if dst.Version() != src.Version() {
		t.Fatalf("composite version %d != %d", dst.Version(), src.Version())
	}
	for _, k := range src.Keys() {
		st, dt := src.Trace(k.Type, k.Zone), dst.Trace(k.Type, k.Zone)
		if st.Step != dt.Step || st.Head != dt.Head || !reflect.DeepEqual(st.Prices, dt.Prices) {
			t.Fatalf("trace mismatch for %v", k)
		}
	}
	if !reflect.DeepEqual(dst.ShardStats(), src.ShardStats()) {
		t.Fatalf("shard stats mismatch:\n%v\n%v", dst.ShardStats(), src.ShardStats())
	}
}

func TestRestoreShardsRejectsUnknownKey(t *testing.T) {
	dst := persistMarket(t)
	err := dst.RestoreShards([]ShardState{{Type: "no-such-type", Zone: ZoneA, Step: 1.0 / 12, Version: 1}})
	if !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("got %v, want ErrUnknownMarket", err)
	}
}

// ApplyTick replays idempotently: skip versions already reached, apply
// version+1, reject gaps.
func TestApplyTickIdempotent(t *testing.T) {
	m := persistMarket(t)
	key := MarketKey{M1Small.Name, ZoneB}
	baseLen := m.Trace(key.Type, key.Zone).Len()
	baseVersion := m.Version()

	// Already-reached version: skipped, nothing changes.
	if err := m.ApplyTick(key, []float64{9.9}, 1); err != nil {
		t.Fatalf("ApplyTick v1: %v", err)
	}
	if got := m.Trace(key.Type, key.Zone).Len(); got != baseLen {
		t.Fatalf("skipped tick mutated trace: %d -> %d", baseLen, got)
	}
	if m.Version() != baseVersion {
		t.Fatal("skipped tick bumped composite version")
	}

	// Next version: applied.
	if err := m.ApplyTick(key, []float64{0.42}, 2); err != nil {
		t.Fatalf("ApplyTick v2: %v", err)
	}
	if v, _ := m.ShardVersion(key); v != 2 {
		t.Fatalf("shard version %d, want 2", v)
	}
	if got := m.Trace(key.Type, key.Zone).Len(); got != baseLen+1 {
		t.Fatalf("applied tick: trace len %d, want %d", got, baseLen+1)
	}
	if m.Version() != baseVersion+1 {
		t.Fatalf("composite version %d, want %d", m.Version(), baseVersion+1)
	}

	// Gap: record claims version 5 while the shard sits at 2.
	if err := m.ApplyTick(key, []float64{0.1}, 5); err == nil {
		t.Fatal("gap replay should fail")
	}
	if err := m.ApplyTick(MarketKey{"ghost", ZoneA}, nil, 1); !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("unknown key: got %v, want ErrUnknownMarket", err)
	}
}
